//! A fully-traced experiment: attach a JSONL sink to the unified
//! [`Runner`] driver, run a short collaborative adaptation, then read the
//! trace back and summarise what the instrumentation captured — span
//! hierarchy, per-round fault accounting, wire frames, and the gate-load
//! histograms that show which cloud modules the devices kept activating.
//!
//! Run: `cargo run --release --example traced_run`
//!
//! [`Runner`]: nebula::sim::Runner

use std::collections::BTreeMap;
use std::sync::Arc;

use nebula::data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula::modular::ModularConfig;
use nebula::sim::experiment::ExperimentConfig;
use nebula::sim::strategy::{NebulaStrategy, StrategyConfig};
use nebula::sim::{ResourceSampler, Runner, SimWorld};
use nebula::telemetry::{Event, JsonlSink};

fn main() {
    // Stable path so CI can upload the trace as an artifact (gitignored).
    std::fs::create_dir_all("results").expect("create results dir");
    let trace_path = std::path::PathBuf::from("results/trace.jsonl");

    // A toy task: 12 devices, label-skewed partitions, tiny modular model.
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(12, Partitioner::LabelSkew { m: 2 });
    let mut world = SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), 5);

    let mut cfg = StrategyConfig::new(ModularConfig::toy(16, 4));
    cfg.devices_per_round = 4;
    cfg.rounds_per_step = 1;
    cfg.pretrain_epochs = 2;
    cfg.proxy_samples = 100;
    let mut strategy = NebulaStrategy::new(cfg, 7);

    let sink = Arc::new(JsonlSink::create(&trace_path).expect("create trace file"));
    let out = Runner::new(&mut world, &mut strategy)
        .config(ExperimentConfig { eval_devices: 3, seed: 7 })
        .target(1.01, 4, 2) // unreachable target → always runs all 4 rounds
        .telemetry(sink)
        .run()
        .expect("traced run");

    println!(
        "run: {} rounds, final accuracy {:.3}, {} B moved, cohort {:?}",
        out.rounds,
        out.final_accuracy,
        out.stats.comm.total_bytes(),
        out.eval_ids
    );

    // The sink flushed when the Runner finished — read the trace back.
    let contents = std::fs::read_to_string(&trace_path).expect("read trace");
    let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
    let mut span_names: BTreeMap<String, usize> = BTreeMap::new();
    for line in contents.lines() {
        let e: Event = serde_json::from_str(line).expect("every trace line parses as an Event");
        if e.kind == "span" {
            *span_names.entry(e.text["name"].clone()).or_default() += 1;
        }
        *by_kind.entry(e.kind).or_default() += 1;
    }
    println!("\ntrace: {} events at {}", contents.lines().count(), trace_path.display());
    for (kind, n) in &by_kind {
        println!("  {kind:<12} x{n}");
    }
    println!("spans: {:?}", span_names);

    for kind in ["run", "eval_cohort", "span", "round", "client", "wire", "gate_load", "metric"] {
        assert!(by_kind.contains_key(kind), "trace should contain {kind:?} events");
    }
    println!("\nevery line parsed; all expected event kinds present.");
}
