//! Heterogeneous fleet: resource-aware sub-model derivation.
//!
//! Samples a fleet of devices with AI-Benchmark-shaped hardware (mobile
//! SoCs vs IoT boards), derives a personalized sub-model for each under
//! its own resource profile, and shows how sub-model size, memory and
//! per-batch training latency track the hardware — including the
//! on-device module scheduling (`shrink_to`) that reacts to runtime
//! contention.
//!
//! Run: `cargo run --release --example heterogeneous_fleet`

use nebula::core::{EdgeClient, NebulaCloud, NebulaParams};
use nebula::data::{Synthesizer, TaskPreset};
use nebula::sim::device::TEST_SAMPLES_PER_DEVICE;
use nebula::sim::latency::{synchronous_round_ms, training_batch_latency_ms, RoundParticipant};
use nebula::sim::{DeviceClass, ResourceSampler, SimDevice};
use nebula::tensor::NebulaRng;

fn main() {
    let mut rng = NebulaRng::seed(11);
    let task = TaskPreset::SpeechCommands;
    let synth = Synthesizer::new(task.synth_spec(), 42);

    // A lightly pre-trained cloud (enough for meaningful routing).
    let mut params = NebulaParams::default();
    params.pretrain.epochs = 8;
    let mut cloud = NebulaCloud::new(nebula::core::modular_config_for(task), params, 1);
    let proxy = synth.sample(1500, 0, &mut rng);
    cloud.pretrain(&proxy, &mut rng);
    let full = cloud.cost_model().full_model();

    println!("{} fleet — full model: {} K params\n", task.name(), full.params / 1000);
    println!(
        "{:<4} {:<12} {:>7} {:>9} {:>10} {:>12} {:>12}",
        "dev", "class", "budget", "modules", "params(K)", "batch(ms)", "busy(ms)"
    );

    // Sample a mixed fleet and derive per-device sub-models.
    use nebula::data::partition::{partition, PartitionSpec, Partitioner};
    let pspec = PartitionSpec::new(8, Partitioner::LabelSkew { m: 5 });
    let parts = partition(&synth, &pspec, 9, &mut rng);
    let sampler = ResourceSampler::default();
    let mut fleet_devices = Vec::new();
    let mut fleet_work = Vec::new();

    for (i, part) in parts.into_iter().enumerate() {
        let hw = sampler.sample(&mut rng);
        let mut dev = SimDevice::new(i, part, hw, rng.fork(i as u64), &synth);
        let profile = dev.profile(cloud.cost_model());
        let outcome = cloud.derive_for_data(&dev.partition.data, &profile, None);
        let cost = cloud.cost_model().submodel(&outcome.spec);

        // Per-batch training latency, calm vs under contention.
        let calm = training_batch_latency_ms(&dev.resources, cost.flops, 16);
        dev.resources.background_procs = 3;
        let busy = training_batch_latency_ms(&dev.resources, cost.flops, 16);
        dev.resources.background_procs = 0;

        println!(
            "{:<4} {:<12} {:>6.0}% {:>9} {:>10} {:>12.2} {:>12.2}",
            i,
            dev.resources.class.name(),
            dev.resources.budget_ratio * 100.0,
            outcome.spec.total_modules(),
            cost.params / 1000,
            calm,
            busy
        );
        fleet_devices.push(dev.resources);
        fleet_work.push(RoundParticipant {
            forward_flops_per_sample: cost.flops,
            exchange_bytes: 2 * cost.comm_bytes,
            samples: dev.partition.data.len(),
            epochs: 3,
            batch: 16,
        });

        // When contention spikes, the device shrinks its sub-model locally
        // (module scheduling) instead of querying the cloud.
        if dev.resources.class == DeviceClass::Iot && i == 7 {
            let payload = cloud.dispatch(&outcome.spec);
            let mut client = EdgeClient::from_payload(cloud.model().config().clone(), &payload);
            let before = client.spec().total_modules();
            client.shrink_to(2, &dev.partition.data);
            let shrunk_cost = cloud.cost_model().submodel(client.spec());
            println!(
                "\n  device {i} under load: shrank {} → {} modules locally ({} K params), accuracy {:.1}% on {} local test samples",
                before,
                client.spec().total_modules(),
                shrunk_cost.params / 1000,
                client.accuracy(&dev.test) * 100.0,
                TEST_SAMPLES_PER_DEVICE,
            );
        }
    }

    // A synchronous collaborative round waits for the slowest device —
    // show who the straggler is and what the round costs end to end.
    let refs: Vec<&nebula::sim::DeviceResources> = fleet_devices.iter().collect();
    let (round_ms, straggler) = synchronous_round_ms(&refs, &fleet_work);
    println!(
        "\nsynchronous round over the fleet: {:.0} ms, bounded by device {} ({})",
        round_ms,
        straggler,
        fleet_devices[straggler].class.name()
    );
}
