//! Dynamic edge environments: continuous adaptation under data drift.
//!
//! Builds a small device population over a CIFAR-10-like vision task whose
//! environments keep shifting (each time slot, half of every device's
//! data is replaced and the device's class group — "the objects in front
//! of the camera" — is re-drawn), and compares full Nebula against a
//! never-adapting cloud model, slot by slot.
//!
//! Run: `cargo run --release --example dynamic_edge`

use nebula::data::drift::DriftKind;
use nebula::data::{DriftModel, PartitionSpec, Partitioner, Synthesizer, TaskPreset};
use nebula::sim::experiment::ExperimentConfig;
use nebula::sim::strategy::{AdaptStrategy, StrategyConfig};
use nebula::sim::{NebulaStrategy, NoAdaptStrategy, ResourceSampler, Runner, SimWorld};

const GROUP_SEED: u64 = 9;

fn world(seed: u64) -> SimWorld {
    let task = TaskPreset::Cifar10;
    let synth = Synthesizer::new(task.synth_spec(), 42);
    let pspec = PartitionSpec::new(24, Partitioner::LabelSkew { m: 2 });
    let drift = DriftModel::new(0.5, DriftKind::ClassShift { m: 2, group_seed: GROUP_SEED });
    SimWorld::new(synth, pspec, GROUP_SEED, Some(drift), &ResourceSampler::default(), seed)
}

fn main() {
    let task = TaskPreset::Cifar10;
    let mut cfg = StrategyConfig::new(nebula::core::modular_config_for(task));
    cfg.rounds_per_step = 2;
    cfg.devices_per_round = 8;
    cfg.pretrain_epochs = 10;
    cfg.proxy_samples = 2000;

    let slots = 8;
    println!("CIFAR-10-like vision task, {slots} time slots, 50% data drift per slot");
    println!("(each slot a device's visible class group can change entirely)\n");

    let mut lines = Vec::new();
    let strategies: Vec<Box<dyn AdaptStrategy>> =
        vec![Box::new(NoAdaptStrategy::new(cfg.clone(), 1)), Box::new(NebulaStrategy::new(cfg.clone(), 1))];
    for mut s in strategies {
        let mut w = world(5);
        let out = Runner::new(&mut w, s.as_mut())
            .config(ExperimentConfig { eval_devices: 4, seed: 3 })
            .continuous(slots)
            .run()
            .expect("valid config");
        lines.push((out.strategy.clone(), out.accuracy_per_slot));
    }

    println!("{:<12} {}", "slot:", (1..=slots).map(|s| format!("{s:>6}")).collect::<String>());
    for (name, accs) in &lines {
        let cells: String = accs.iter().map(|a| format!("{:>6.2}", a * 100.0)).collect();
        println!("{name:<12} {cells}");
    }

    let na_mean: f32 = lines[0].1.iter().sum::<f32>() / slots as f32;
    let nb_mean: f32 = lines[1].1.iter().sum::<f32>() / slots as f32;
    println!(
        "\nmean accuracy: NoAdapt {:.1}%, Nebula {:.1}%  (+{:.1} points from edge-cloud collaboration)",
        na_mean * 100.0,
        nb_mean * 100.0,
        (nb_mean - na_mean) * 100.0
    );
}
