//! Speech-commands scenario: a 35-way keyword-spotting task where each
//! device hears only a handful of commands, and the vocabulary a device
//! needs shifts over time (the user starts using new commands).
//!
//! Demonstrates the Fig-10 style comparison on one task: Nebula's three
//! variants (full / w-o local training / w-o cloud) against pure local
//! adaptation, over drifting slots.
//!
//! Run: `cargo run --release --example speech_commands`

use nebula::data::drift::DriftKind;
use nebula::data::DriftModel;
use nebula::data::{PartitionSpec, Partitioner, Synthesizer, TaskPreset};
use nebula::sim::experiment::ExperimentConfig;
use nebula::sim::strategy::{AdaptStrategy, StrategyConfig};
use nebula::sim::{LocalAdaptStrategy, NebulaStrategy, NebulaVariant, ResourceSampler, Runner, SimWorld};

fn world(seed: u64) -> SimWorld {
    let task = TaskPreset::SpeechCommands;
    let synth = Synthesizer::new(task.synth_spec(), 42);
    let pspec = PartitionSpec::new(24, Partitioner::LabelSkew { m: 5 });
    // Vocabulary drift: the device's command group is re-drawn, half the
    // buffered audio is replaced.
    let drift = DriftModel::new(0.5, DriftKind::ClassShift { m: 5, group_seed: 9 });
    SimWorld::new(synth, pspec, 9, Some(drift), &ResourceSampler::default(), seed)
}

fn main() {
    let task = TaskPreset::SpeechCommands;
    let mut cfg = StrategyConfig::new(nebula::core::modular_config_for(task));
    cfg.rounds_per_step = 2;
    cfg.devices_per_round = 8;
    cfg.pretrain_epochs = 8;
    cfg.proxy_samples = 1500;

    let slots = 6;
    println!("{}: 35 commands, 5 per device, vocabulary shifts each slot\n", task.name());

    let strategies: Vec<Box<dyn AdaptStrategy>> = vec![
        Box::new(LocalAdaptStrategy::new(cfg.clone(), 1)),
        Box::new(NebulaStrategy::with_variant(cfg.clone(), 1, NebulaVariant::NoLocalTraining)),
        Box::new(NebulaStrategy::with_variant(cfg.clone(), 1, NebulaVariant::NoCloud)),
        Box::new(NebulaStrategy::with_variant(cfg.clone(), 1, NebulaVariant::Full)),
    ];

    for mut s in strategies {
        let mut w = world(5);
        let out = Runner::new(&mut w, s.as_mut())
            .config(ExperimentConfig { eval_devices: 3, seed: 3 })
            .continuous(slots)
            .run()
            .expect("valid config");
        let mean = out.accuracy_per_slot.iter().sum::<f32>() / slots as f32;
        let cells: String = out.accuracy_per_slot.iter().map(|a| format!("{:>6.1}", a * 100.0)).collect();
        println!("{:<22} mean {:>5.1}%  per-slot:{cells}", out.strategy, mean * 100.0);
    }

    println!("\nThe full pipeline wins because the cloud keeps absorbing what every");
    println!("device learns about the new vocabulary, and hands it back as compact,");
    println!("personalized sub-models the moment a device's command set shifts.");
}
