//! Quickstart: the full Nebula loop in one file.
//!
//! 1. Synthesise an edge task (a CIFAR-10-like 10-class problem).
//! 2. Offline stage — pre-train the modularized cloud model on proxy data
//!    and run module ability-enhancing training over the sub-tasks.
//! 3. Online stage — a resource-limited device asks for a personalized
//!    sub-model, adapts it on fresh local data, and ships its update back;
//!    the cloud aggregates module-wise.
//!
//! Run: `cargo run --release --example quickstart`

use nebula::core::{EdgeClient, NebulaCloud, NebulaParams, ResourceProfile};
use nebula::data::{partition, PartitionSpec, Partitioner, Synthesizer, TaskPreset};
use nebula::tensor::NebulaRng;

fn main() {
    let mut rng = NebulaRng::seed(7);

    // --- the task -------------------------------------------------------
    let task = TaskPreset::Cifar10;
    let synth = Synthesizer::new(task.synth_spec(), 42);
    println!("task: {} ({} classes)", task.name(), task.classes());

    // --- offline stage on the cloud --------------------------------------
    let mut params = NebulaParams::default();
    params.pretrain.epochs = 10;
    let mut cloud = NebulaCloud::new(nebula::core::modular_config_for(task), params, 1);

    let proxy = synth.sample(2000, 0, &mut rng);
    println!("pre-training on {} proxy samples…", proxy.len());
    let loss = cloud.pretrain(&proxy, &mut rng);
    println!("  final pre-training loss: {loss:.3}");

    // Sub-tasks: the class groups that co-occur on devices (m = 2).
    let groups = partition::cooccurrence_groups(task.classes(), 2, 9);
    let subtasks: Vec<_> = groups.iter().map(|g| synth.sample_classes(150, g, 0, &mut rng)).collect();
    println!("ability-enhancing over {} sub-tasks…", subtasks.len());
    cloud.enhance(&subtasks, &mut rng);

    // --- online stage on a device ----------------------------------------
    // One label-skewed device with fresh local data.
    let pspec = PartitionSpec::new(1, Partitioner::LabelSkew { m: 2 });
    let device = partition::partition(&synth, &pspec, 9, &mut rng).remove(0);
    let test = synth.sample_classes(200, &device.classes, device.context, &mut rng);
    println!("\ndevice observes classes {:?} ({} local samples)", device.classes, device.data.len());

    // The device can only afford ~30% of the full model.
    let full = cloud.cost_model().full_model();
    let profile = ResourceProfile {
        mem_bytes: full.training_mem_bytes * 3 / 10,
        flops: full.flops * 3 / 10,
        comm_bytes: full.comm_bytes * 3 / 10,
    };
    let outcome = cloud.derive_for_data(&device.data, &profile, None);
    let cost = cloud.cost_model().submodel(&outcome.spec);
    println!(
        "derived sub-model: {} of {} modules, {:.0}% of full parameters",
        outcome.spec.total_modules(),
        cloud.model().config().total_modules(),
        100.0 * cost.params as f64 / full.params as f64,
    );

    let payload = cloud.dispatch(&outcome.spec);
    println!("payload: {} KiB over the wire", payload.bytes() / 1024);
    let mut client = EdgeClient::from_payload(cloud.model().config().clone(), &payload);

    let before = client.accuracy(&test);
    client.adapt(&device.data, 3, 16, 0.02, &mut rng);
    let after = client.accuracy(&test);
    println!("local accuracy: {:.1}% → {:.1}% after 3 local epochs", before * 100.0, after * 100.0);

    // --- knowledge flows back --------------------------------------------
    let update = client.make_update(&device.data);
    let touched = cloud.aggregate(&[update]);
    println!("cloud aggregated the update module-wise ({touched} modules refreshed)");
}
