//! Cloud operations: checkpointing and rolling back a bad aggregation.
//!
//! A production Nebula cloud snapshots its modularized model before each
//! aggregation window. If a round of updates degrades the model (bad
//! devices, poisoned labels, a buggy client), the operator rolls back and
//! keeps serving. This example walks that loop with the compact binary
//! checkpoint format.
//!
//! Run: `cargo run --release --example cloud_operations`

use nebula::core::checkpoint::{load_binary, save_binary};
use nebula::core::{EdgeClient, NebulaCloud, NebulaParams, ResourceProfile};
use nebula::data::{evaluate_accuracy, Dataset, Synthesizer, TaskPreset};
use nebula::tensor::NebulaRng;

fn main() {
    let mut rng = NebulaRng::seed(7);
    let task = TaskPreset::Cifar10;
    let synth = Synthesizer::new(task.synth_spec(), 42);

    let mut params = NebulaParams::default();
    params.pretrain.epochs = 8;
    let mut cloud = NebulaCloud::new(nebula::core::modular_config_for(task), params, 1);
    cloud.pretrain(&synth.sample(2000, 0, &mut rng), &mut rng);

    let probe = synth.sample(600, 0, &mut rng);
    let healthy = evaluate_accuracy(cloud.model_mut(), &probe, 64);
    println!("healthy cloud accuracy: {:.1}%", healthy * 100.0);

    // Snapshot before the aggregation window.
    let ckpt_path = std::env::temp_dir().join("nebula-cloud.nbla");
    save_binary(cloud.model(), &ckpt_path).expect("snapshot");
    println!(
        "checkpoint written: {} ({} KiB)",
        ckpt_path.display(),
        std::fs::metadata(&ckpt_path).map(|m| m.len() / 1024).unwrap_or(0)
    );

    // A compromised device pushes an update trained on mislabelled data.
    let clean = synth.sample_classes(150, &[0, 1], 0, &mut rng);
    let poisoned =
        Dataset::new(clean.features().clone(), clean.labels().iter().map(|&c| (c + 5) % 10).collect(), 10);
    let outcome = cloud.derive_for_data(&poisoned, &ResourceProfile::unconstrained(), Some(6));
    let payload = cloud.dispatch(&outcome.spec);
    let mut bad_client = EdgeClient::from_payload(cloud.model().config().clone(), &payload);
    bad_client.adapt(&poisoned, 10, 16, 0.1, &mut rng);
    cloud.aggregate(&[bad_client.make_update(&poisoned)]);

    let after_poison = evaluate_accuracy(cloud.model_mut(), &probe, 64);
    println!("after poisoned round:   {:.1}%", after_poison * 100.0);

    // The monitoring gate trips; roll back.
    if after_poison < healthy - 0.02 {
        load_binary(cloud.model_mut(), &ckpt_path).expect("rollback");
        let restored = evaluate_accuracy(cloud.model_mut(), &probe, 64);
        println!("rolled back:            {:.1}%", restored * 100.0);
        assert!((restored - healthy).abs() < 1e-6, "rollback must be exact");
    } else {
        println!("(poison was absorbed — no rollback needed this time)");
    }
    std::fs::remove_file(&ckpt_path).ok();
}
