//! # Nebula
//!
//! A from-scratch Rust reproduction of *"Nebula: An Edge-Cloud Collaborative
//! Learning Framework for Dynamic Edge Environments"* (ICPP 2024).
//!
//! This facade crate re-exports every workspace crate so downstream users
//! (and the root-level examples/integration tests) can depend on a single
//! `nebula` crate:
//!
//! * [`tensor`] — dense f32 tensors with rayon-parallel linear algebra.
//! * [`nn`] — layers, losses and optimisers with manual backprop.
//! * [`data`] — synthetic datasets, non-IID partitioners, distribution drift.
//! * [`modular`] — block-level model modularization and the unified module
//!   selector (the paper's §4.1–§4.2).
//! * [`opt`] — the constrained solvers behind Eq. 1 and Eq. 2.
//! * [`core`] — offline training + online edge-cloud adaptation (§4.3, §5).
//! * [`baselines`] — NoAdapt / LocalAdapt / AdaptiveNet / FedAvg / HeteroFL.
//! * [`sim`] — devices, resources, network accounting, time-slot loop, and
//!   the unified [`sim::Runner`] experiment driver.
//! * [`telemetry`] — counters/gauges/histograms, hierarchical spans and
//!   pluggable JSONL / in-memory / null trace sinks.
//!
//! See `examples/quickstart.rs` for the 60-second tour and `DESIGN.md` for
//! the full system inventory.
//!
//! ```
//! use nebula::core::{NebulaCloud, NebulaParams, EdgeClient, ResourceProfile};
//! use nebula::data::{Synthesizer, SynthSpec};
//! use nebula::modular::ModularConfig;
//! use nebula::tensor::NebulaRng;
//!
//! // A tiny task and cloud (toy-scale so this doctest stays fast).
//! let mut rng = NebulaRng::seed(7);
//! let synth = Synthesizer::new(SynthSpec::toy(), 42);
//! let mut params = NebulaParams::default();
//! params.pretrain.epochs = 2;
//! let mut cloud = NebulaCloud::new(ModularConfig::toy(16, 4), params, 1);
//! cloud.pretrain(&synth.sample(100, 0, &mut rng), &mut rng);
//!
//! // Derive a sub-model for a device, adapt it, send knowledge back.
//! let local = synth.sample_classes(40, &[0, 1], 0, &mut rng);
//! let out = cloud.derive_for_data(&local, &ResourceProfile::unconstrained(), Some(2));
//! let payload = cloud.dispatch(&out.spec);
//! let mut client = EdgeClient::from_payload(cloud.model().config().clone(), &payload);
//! client.adapt(&local, 1, 16, 0.02, &mut rng);
//! let touched = cloud.aggregate(&[client.make_update(&local)]);
//! assert!(touched > 0);
//! ```

pub use nebula_baselines as baselines;
pub use nebula_core as core;
pub use nebula_data as data;
pub use nebula_modular as modular;
pub use nebula_nn as nn;
pub use nebula_opt as opt;
pub use nebula_sim as sim;
pub use nebula_telemetry as telemetry;
pub use nebula_tensor as tensor;
