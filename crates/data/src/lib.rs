//! # nebula-data
//!
//! Synthetic data substrate for the Nebula reproduction.
//!
//! The paper evaluates on HAR, CIFAR-10, CIFAR-100 and Google Speech
//! Commands. Those datasets are unavailable here, and — more importantly —
//! the phenomena Nebula exploits are *distributional*: label skew, feature
//! skew, per-device sub-tasks, and drift over time. This crate synthesises
//! class-conditional Gaussian-mixture datasets with the same shape
//! parameters (class counts, per-device volumes of 50–150 samples, m-of-n
//! label skew, subject-based feature skew) so every code path of the
//! framework is exercised by data with the right structure.
//!
//! Contents:
//! * [`dataset`] — the `Dataset` container and batch iteration.
//! * [`synth`] — the Gaussian-mixture generator (`SynthSpec`).
//! * [`presets`] — `TaskPreset`: HAR / CIFAR-10 / CIFAR-100 / Speech
//!   equivalents with matching class counts.
//! * [`mod@partition`] — IID, m-of-n label skew (with co-occurrence groups),
//!   subject feature skew, Dirichlet partitioners; unbalanced volumes.
//! * [`drift`] — time-slot data-distribution drift (replace a fraction of
//!   local data with data from a new context).
//! * [`eval`] — model evaluation helpers (accuracy over a dataset).

pub mod dataset;
pub mod drift;
pub mod eval;
pub mod metrics;
pub mod partition;
pub mod presets;
pub mod synth;

pub use dataset::Dataset;
pub use drift::DriftModel;
pub use eval::{evaluate_accuracy, train_epochs, TrainConfig};
pub use metrics::{confusion_matrix, ConfusionMatrix};
pub use partition::{partition, PartitionSpec, Partitioner};
pub use presets::TaskPreset;
pub use synth::{SynthSpec, Synthesizer};
