//! Task presets mirroring the paper's four evaluation workloads.
//!
//! Class counts match the paper exactly; feature dimensionalities are
//! scaled to keep a laptop-scale simulation fast while preserving the
//! class-count : capacity ratios that drive the results (documented as a
//! substitution in DESIGN.md).

use crate::synth::SynthSpec;

/// The paper's four evaluation tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TaskPreset {
    /// Human-activity recognition (UCI HAR): 6 activities, subject-skewed.
    Har,
    /// CIFAR-10 equivalent: 10 classes.
    Cifar10,
    /// CIFAR-100 equivalent: 100 classes.
    Cifar100,
    /// Google Speech Commands equivalent: 35 classes.
    SpeechCommands,
}

impl TaskPreset {
    /// All presets, in the paper's table order.
    pub fn all() -> [TaskPreset; 4] {
        [TaskPreset::Har, TaskPreset::Cifar10, TaskPreset::Cifar100, TaskPreset::SpeechCommands]
    }

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            TaskPreset::Har => "HAR",
            TaskPreset::Cifar10 => "CIFAR10",
            TaskPreset::Cifar100 => "CIFAR100",
            TaskPreset::SpeechCommands => "GoogleSpeech",
        }
    }

    /// The model the paper pairs with this task.
    pub fn model_name(self) -> &'static str {
        match self {
            TaskPreset::Har => "MLP",
            TaskPreset::Cifar10 => "ResNet18",
            TaskPreset::Cifar100 => "VGG16",
            TaskPreset::SpeechCommands => "ResNet34",
        }
    }

    /// Number of classes (matches the real datasets).
    pub fn classes(self) -> usize {
        match self {
            TaskPreset::Har => 6,
            TaskPreset::Cifar10 => 10,
            TaskPreset::Cifar100 => 100,
            TaskPreset::SpeechCommands => 35,
        }
    }

    /// The synthetic-task spec for this preset.
    ///
    /// Separation/noise are tuned so a full-capacity model lands in the
    /// accuracy band the paper reports for the corresponding task (HAR
    /// easiest ~95%+, CIFAR-100 hardest ~60–75%).
    pub fn synth_spec(self) -> SynthSpec {
        match self {
            TaskPreset::Har => SynthSpec {
                classes: 6,
                feature_dim: 64,
                clusters_per_class: 4,
                class_separation: 4.0,
                cluster_spread: 1.4,
                noise_std: 1.0,
                label_noise: 0.01,
                contexts: 30, // 30 subjects, as in UCI HAR
                context_shift: 0.35,
            },
            TaskPreset::Cifar10 => SynthSpec {
                classes: 10,
                feature_dim: 96,
                clusters_per_class: 6,
                class_separation: 3.2,
                cluster_spread: 2.0,
                noise_std: 1.7,
                label_noise: 0.02,
                contexts: 8,
                context_shift: 0.5,
            },
            TaskPreset::Cifar100 => SynthSpec {
                classes: 100,
                feature_dim: 160,
                clusters_per_class: 5,
                class_separation: 3.2,
                cluster_spread: 1.8,
                noise_std: 1.35,
                label_noise: 0.03,
                contexts: 8,
                context_shift: 0.35,
            },
            TaskPreset::SpeechCommands => SynthSpec {
                classes: 35,
                feature_dim: 128,
                clusters_per_class: 6,
                class_separation: 3.1,
                cluster_spread: 1.8,
                noise_std: 1.4,
                label_noise: 0.03,
                contexts: 12,
                context_shift: 0.4,
            },
        }
    }

    /// The per-device label-skew degrees (`m` classes per device) the paper
    /// evaluates for this task — `None` for HAR, which uses subject
    /// (feature) skew instead.
    pub fn skew_degrees(self) -> Option<[usize; 2]> {
        match self {
            TaskPreset::Har => None,
            TaskPreset::Cifar10 => Some([2, 5]),
            TaskPreset::Cifar100 => Some([10, 20]),
            TaskPreset::SpeechCommands => Some([5, 10]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Synthesizer;
    use nebula_tensor::NebulaRng;

    #[test]
    fn class_counts_match_paper() {
        assert_eq!(TaskPreset::Har.classes(), 6);
        assert_eq!(TaskPreset::Cifar10.classes(), 10);
        assert_eq!(TaskPreset::Cifar100.classes(), 100);
        assert_eq!(TaskPreset::SpeechCommands.classes(), 35);
    }

    #[test]
    fn specs_are_internally_consistent() {
        for preset in TaskPreset::all() {
            let spec = preset.synth_spec();
            assert_eq!(spec.classes, preset.classes(), "{:?}", preset);
            assert!(spec.contexts >= 1);
        }
    }

    #[test]
    fn skew_degrees_match_paper_rows() {
        assert_eq!(TaskPreset::Cifar10.skew_degrees(), Some([2, 5]));
        assert_eq!(TaskPreset::Cifar100.skew_degrees(), Some([10, 20]));
        assert_eq!(TaskPreset::SpeechCommands.skew_degrees(), Some([5, 10]));
        assert_eq!(TaskPreset::Har.skew_degrees(), None);
    }

    #[test]
    fn every_preset_synthesises() {
        let mut rng = NebulaRng::seed(1);
        for preset in TaskPreset::all() {
            let synth = Synthesizer::new(preset.synth_spec(), 42);
            let d = synth.sample(10, 0, &mut rng);
            assert_eq!(d.len(), 10);
            assert_eq!(d.classes(), preset.classes());
        }
    }
}
