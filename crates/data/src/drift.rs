//! Distribution drift across time slots.
//!
//! The paper simulates dynamic edge environments by "replacing a part of
//! the local data with new data" each time slot (30% in Fig. 1a, 50% in
//! the continuous-adaptation study, Fig. 10). Two drift kinds cover the
//! paper's two dynamics:
//!
//! * [`DriftKind::ClassShift`] — the device's sub-task changes: it draws a
//!   new co-occurrence group of classes (outer environment dynamic,
//!   "target objects change with scenes").
//! * [`DriftKind::ContextShift`] — the sensing context changes: same
//!   classes, new subject/lighting (feature-level drift).

use crate::partition::{cooccurrence_groups, DevicePartition};
use crate::synth::Synthesizer;
use nebula_tensor::NebulaRng;

/// What changes when the environment shifts.
#[derive(Clone, Debug)]
pub enum DriftKind {
    /// Re-draw the device's class group (sub-task change). `m` is the
    /// classes-per-device degree, `group_seed` must match the partitioner's.
    ClassShift { m: usize, group_seed: u64 },
    /// Move the device to a fresh sensing context.
    ContextShift,
}

/// A drift process applied once per time slot.
#[derive(Clone, Debug)]
pub struct DriftModel {
    /// Fraction of local data replaced by new-environment data each step.
    pub replace_frac: f32,
    /// What the new-environment data looks like.
    pub kind: DriftKind,
}

impl DriftModel {
    pub fn new(replace_frac: f32, kind: DriftKind) -> Self {
        assert!((0.0..=1.0).contains(&replace_frac), "replace_frac out of range");
        Self { replace_frac, kind }
    }

    /// Advances one time slot: replaces `replace_frac` of the device's data
    /// with samples from the new environment and updates the device's
    /// sub-task metadata.
    pub fn step(&self, device: &mut DevicePartition, synth: &Synthesizer, rng: &mut NebulaRng) {
        let n = device.data.len();
        let n_new = ((n as f32) * self.replace_frac).round() as usize;
        if n_new == 0 {
            return;
        }

        // Decide the new environment.
        let (new_classes, new_context, new_subtask) = match &self.kind {
            DriftKind::ClassShift { m, group_seed } => {
                let groups = cooccurrence_groups(synth.spec().classes, *m, *group_seed);
                let g = rng.below(groups.len());
                (groups[g].clone(), device.context, g)
            }
            DriftKind::ContextShift => {
                let ctx = rng.below(synth.spec().contexts);
                (device.classes.clone(), ctx, ctx)
            }
        };

        let fresh = synth.sample_classes(n_new, &new_classes, new_context, rng);

        // Keep a random (1 − replace_frac) portion of the old data.
        let keep_idx = rng.sample_indices(n, n - n_new);
        let kept = device.data.subset(&keep_idx);
        device.data = kept.concat(&fresh);

        // The device's *current* sub-task is the new environment; old
        // classes may linger in the retained samples, which is exactly the
        // transitional mixture the paper's time slots create.
        device.classes = new_classes;
        device.context = new_context;
        device.subtask = new_subtask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition, PartitionSpec, Partitioner};
    use crate::synth::{SynthSpec, Synthesizer};

    fn setup() -> (Synthesizer, Vec<DevicePartition>) {
        let synth = Synthesizer::new(SynthSpec::toy(), 3);
        let spec = PartitionSpec::new(4, Partitioner::LabelSkew { m: 2 });
        let mut rng = NebulaRng::seed(1);
        let parts = partition(&synth, &spec, 9, &mut rng);
        (synth, parts)
    }

    #[test]
    fn step_preserves_volume() {
        let (synth, mut parts) = setup();
        let model = DriftModel::new(0.5, DriftKind::ContextShift);
        let mut rng = NebulaRng::seed(2);
        let before = parts[0].data.len();
        model.step(&mut parts[0], &synth, &mut rng);
        assert_eq!(parts[0].data.len(), before);
    }

    #[test]
    fn class_shift_changes_subtask_distribution() {
        let (synth, mut parts) = setup();
        let model = DriftModel::new(1.0, DriftKind::ClassShift { m: 2, group_seed: 9 });
        let mut rng = NebulaRng::seed(3);
        // With full replacement, all labels must lie in the new class set.
        for p in parts.iter_mut() {
            model.step(p, &synth, &mut rng);
            for &label in p.data.labels() {
                assert!(p.classes.contains(&label));
            }
        }
    }

    #[test]
    fn partial_replacement_mixes_old_and_new() {
        let (synth, mut parts) = setup();
        let p = &mut parts[0];
        let old_ctx = p.context;
        let model = DriftModel::new(0.3, DriftKind::ContextShift);
        let mut rng = NebulaRng::seed(4);
        let before_len = p.data.len();
        model.step(p, &synth, &mut rng);
        assert_eq!(p.data.len(), before_len);
        // Context metadata updated even though 70% of samples are old.
        let _ = old_ctx; // context may coincide by chance; only check validity
        assert!(p.context < synth.spec().contexts);
    }

    #[test]
    fn zero_replace_frac_is_noop() {
        let (synth, mut parts) = setup();
        let before = parts[0].clone();
        let model = DriftModel::new(0.0, DriftKind::ContextShift);
        let mut rng = NebulaRng::seed(5);
        model.step(&mut parts[0], &synth, &mut rng);
        assert_eq!(parts[0].data.labels(), before.data.labels());
        assert_eq!(parts[0].context, before.context);
    }

    #[test]
    #[should_panic(expected = "replace_frac out of range")]
    fn rejects_bad_fraction() {
        DriftModel::new(1.5, DriftKind::ContextShift);
    }
}
