//! Class-conditional Gaussian-mixture synthesiser.
//!
//! The generator fixes a *geometry* from a seed — per-class anchor
//! directions, per-class cluster centres, a random mixing matrix, and
//! per-context affine sensor transforms — and then samples datasets from
//! it. Keeping the geometry fixed while varying the sampled subset is what
//! lets the same "global task" be observed by many devices under label
//! skew, feature skew and drift, exactly like a deployed sensing task.
//!
//! Pipeline per sample of class `c` in context `k`:
//!
//! ```text
//! z  = cluster_centre(c, j) + noise_std · N(0, I)      (mixture draw)
//! z' = scale_k ⊙ z + bias_k                            (context transform)
//! x  = tanh(M · z')                                    (fixed nonlinearity)
//! ```
//!
//! The `tanh(M·)` stage bounds features and makes the task non-linear so
//! the MLP substrates are actually exercised.

use crate::dataset::Dataset;
use nebula_tensor::{NebulaRng, Tensor};

/// Parameters of a synthetic classification task.
#[derive(Clone, Debug)]
pub struct SynthSpec {
    /// Number of classes in the global task.
    pub classes: usize,
    /// Output feature dimensionality.
    pub feature_dim: usize,
    /// Gaussian clusters per class (sub-modes of a class).
    pub clusters_per_class: usize,
    /// Distance of class anchors from the origin (higher = easier).
    pub class_separation: f32,
    /// Spread of a class's cluster centres around its anchor.
    pub cluster_spread: f32,
    /// Sample noise around a cluster centre (higher = harder).
    pub noise_std: f32,
    /// Fraction of labels flipped uniformly at random.
    pub label_noise: f32,
    /// Number of sensing contexts (subjects / scenes) for feature skew.
    pub contexts: usize,
    /// Magnitude of the per-context affine transform (0 disables skew).
    pub context_shift: f32,
}

impl SynthSpec {
    /// A small, easy default used by tests.
    pub fn toy() -> Self {
        Self {
            classes: 4,
            feature_dim: 16,
            clusters_per_class: 2,
            class_separation: 3.0,
            cluster_spread: 1.0,
            noise_std: 0.6,
            label_noise: 0.0,
            contexts: 4,
            context_shift: 0.3,
        }
    }
}

/// A frozen task geometry from which datasets are sampled.
#[derive(Clone, Debug)]
pub struct Synthesizer {
    spec: SynthSpec,
    /// `classes × clusters_per_class` cluster centres, each of latent dim.
    centres: Vec<Tensor>,
    /// Per-context feature scale (latent dim).
    ctx_scale: Vec<Vec<f32>>,
    /// Per-context feature bias (latent dim).
    ctx_bias: Vec<Vec<f32>>,
    /// Fixed mixing matrix `feature_dim × latent_dim`.
    mix: Tensor,
}

impl Synthesizer {
    /// Builds the task geometry deterministically from `seed`.
    pub fn new(spec: SynthSpec, seed: u64) -> Self {
        assert!(spec.classes > 0 && spec.feature_dim > 0 && spec.clusters_per_class > 0);
        assert!(spec.contexts > 0, "need at least one context");
        let mut rng = NebulaRng::seed(seed);
        let d = spec.feature_dim;

        let mut centres = Vec::with_capacity(spec.classes * spec.clusters_per_class);
        for _ in 0..spec.classes {
            // Class anchor: random direction scaled to class_separation.
            let mut anchor: Vec<f32> = (0..d).map(|_| rng.normal_f32(0.0, 1.0)).collect();
            let norm = anchor.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
            anchor.iter_mut().for_each(|v| *v *= spec.class_separation / norm);
            for _ in 0..spec.clusters_per_class {
                let centre: Vec<f32> =
                    anchor.iter().map(|&a| a + rng.normal_f32(0.0, spec.cluster_spread)).collect();
                centres.push(Tensor::vector(&centre));
            }
        }

        let mut ctx_scale = Vec::with_capacity(spec.contexts);
        let mut ctx_bias = Vec::with_capacity(spec.contexts);
        for k in 0..spec.contexts {
            if k == 0 || spec.context_shift == 0.0 {
                // Context 0 is the canonical sensing condition.
                ctx_scale.push(vec![1.0; d]);
                ctx_bias.push(vec![0.0; d]);
            } else {
                ctx_scale.push((0..d).map(|_| 1.0 + rng.normal_f32(0.0, spec.context_shift)).collect());
                ctx_bias.push((0..d).map(|_| rng.normal_f32(0.0, spec.context_shift)).collect());
            }
        }

        // Mixing matrix with 1/sqrt(d) scaling keeps tanh inputs in a
        // useful range.
        let scale = 1.0 / (d as f32).sqrt();
        let mix = Tensor::from_vec((0..d * d).map(|_| rng.normal_f32(0.0, scale)).collect(), &[d, d]);

        Self { spec, centres, ctx_scale, ctx_bias, mix }
    }

    /// The task spec this synthesiser realises.
    pub fn spec(&self) -> &SynthSpec {
        &self.spec
    }

    fn centre(&self, class: usize, cluster: usize) -> &Tensor {
        &self.centres[class * self.spec.clusters_per_class + cluster]
    }

    /// Samples `n` points restricted to `classes`, drawn uniformly over the
    /// listed classes, observed in sensing context `context`.
    pub fn sample_classes(
        &self,
        n: usize,
        classes: &[usize],
        context: usize,
        rng: &mut NebulaRng,
    ) -> Dataset {
        assert!(!classes.is_empty(), "need at least one class to sample");
        assert!(classes.iter().all(|&c| c < self.spec.classes), "class out of range");
        let weights = vec![1.0f32; classes.len()];
        self.sample_weighted(n, classes, &weights, context, rng)
    }

    /// Samples `n` points over all classes uniformly.
    pub fn sample(&self, n: usize, context: usize, rng: &mut NebulaRng) -> Dataset {
        let all: Vec<usize> = (0..self.spec.classes).collect();
        self.sample_classes(n, &all, context, rng)
    }

    /// Samples with per-class weights (over the listed classes).
    pub fn sample_weighted(
        &self,
        n: usize,
        classes: &[usize],
        weights: &[f32],
        context: usize,
        rng: &mut NebulaRng,
    ) -> Dataset {
        assert_eq!(classes.len(), weights.len(), "class/weight length mismatch");
        assert!(context < self.spec.contexts, "context {context} out of range");
        let d = self.spec.feature_dim;
        let scale = &self.ctx_scale[context];
        let bias = &self.ctx_bias[context];

        let mut xdata = Vec::with_capacity(n * d);
        let mut y = Vec::with_capacity(n);
        let mut latent = vec![0.0f32; d];
        for _ in 0..n {
            let c = classes[rng.weighted_index(weights)];
            let j = rng.below(self.spec.clusters_per_class);
            let centre = self.centre(c, j);
            for (i, l) in latent.iter_mut().enumerate() {
                let z = centre.data()[i] + rng.normal_f32(0.0, self.spec.noise_std);
                *l = scale[i] * z + bias[i];
            }
            // x = tanh(M · z')
            let lat = Tensor::vector(&latent);
            let mixed = self.mix.matvec(&lat);
            xdata.extend(mixed.data().iter().map(|v| v.tanh()));

            let label = if self.spec.label_noise > 0.0 && rng.bernoulli(self.spec.label_noise as f64) {
                *rng.choose(classes)
            } else {
                c
            };
            y.push(label);
        }
        Dataset::new(Tensor::from_vec(xdata, &[n, d]), y, self.spec.classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_deterministic_from_seed() {
        let a = Synthesizer::new(SynthSpec::toy(), 7);
        let b = Synthesizer::new(SynthSpec::toy(), 7);
        let mut ra = NebulaRng::seed(1);
        let mut rb = NebulaRng::seed(1);
        let da = a.sample(20, 0, &mut ra);
        let db = b.sample(20, 0, &mut rb);
        assert_eq!(da.features().data(), db.features().data());
        assert_eq!(da.labels(), db.labels());
    }

    #[test]
    fn different_seeds_give_different_geometry() {
        let a = Synthesizer::new(SynthSpec::toy(), 1);
        let b = Synthesizer::new(SynthSpec::toy(), 2);
        let mut ra = NebulaRng::seed(3);
        let mut rb = NebulaRng::seed(3);
        assert_ne!(a.sample(10, 0, &mut ra).features().data(), b.sample(10, 0, &mut rb).features().data());
    }

    #[test]
    fn sample_classes_restricts_labels() {
        let s = Synthesizer::new(SynthSpec::toy(), 5);
        let mut rng = NebulaRng::seed(1);
        let d = s.sample_classes(50, &[1, 3], 0, &mut rng);
        assert!(d.labels().iter().all(|&c| c == 1 || c == 3));
        assert_eq!(d.classes(), 4);
    }

    #[test]
    fn features_are_bounded_by_tanh() {
        let s = Synthesizer::new(SynthSpec::toy(), 5);
        let mut rng = NebulaRng::seed(2);
        let d = s.sample(100, 0, &mut rng);
        assert!(d.features().data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn contexts_shift_feature_distribution() {
        let mut spec = SynthSpec::toy();
        spec.context_shift = 0.8;
        let s = Synthesizer::new(spec, 5);
        let mut rng = NebulaRng::seed(3);
        let d0 = s.sample_classes(500, &[0], 0, &mut rng);
        let d1 = s.sample_classes(500, &[0], 1, &mut rng);
        let m0 = d0.features().mean_rows();
        let m1 = d1.features().mean_rows();
        let dist = m0.sub(&m1).norm();
        assert!(dist > 0.1, "contexts should shift the feature mean (dist {dist})");
    }

    #[test]
    fn classes_are_separable_enough_to_learn() {
        // 1-NN on class means should beat chance comfortably: the generator
        // must produce learnable structure.
        let s = Synthesizer::new(SynthSpec::toy(), 9);
        let mut rng = NebulaRng::seed(4);
        let train = s.sample(400, 0, &mut rng);
        let test = s.sample(200, 0, &mut rng);
        // Class means from train.
        let d = train.feature_dim();
        let mut means = vec![vec![0.0f32; d]; 4];
        let mut counts = vec![0usize; 4];
        for i in 0..train.len() {
            let c = train.labels()[i];
            counts[c] += 1;
            for (m, &v) in means[c].iter_mut().zip(train.features().row(i)) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            m.iter_mut().for_each(|v| *v /= c.max(1) as f32);
        }
        let mut correct = 0;
        for i in 0..test.len() {
            let row = test.features().row(i);
            let pred = (0..4)
                .min_by(|&a, &b| {
                    let da: f32 = means[a].iter().zip(row).map(|(m, v)| (m - v).powi(2)).sum();
                    let db: f32 = means[b].iter().zip(row).map(|(m, v)| (m - v).powi(2)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if pred == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(acc > 0.5, "nearest-mean accuracy only {acc}");
    }

    #[test]
    fn label_noise_flips_roughly_requested_fraction() {
        let mut spec = SynthSpec::toy();
        spec.label_noise = 0.5;
        spec.noise_std = 0.01;
        spec.clusters_per_class = 1;
        let s = Synthesizer::new(spec, 11);
        let mut rng = NebulaRng::seed(5);
        // Sampling a single class: with 50% label noise ~ 1/8 of labels
        // stay class 0 by the uniform re-draw among {0}, so all labels are
        // 0 when the candidate set is {0}. Use two classes instead.
        let d = s.sample_classes(2000, &[0, 1], 0, &mut rng);
        // At least some labels must differ from the nearest-anchor class —
        // crude but catches "label_noise ignored".
        let hist = d.class_histogram();
        assert!(hist[0] > 0 && hist[1] > 0);
    }

    #[test]
    #[should_panic(expected = "context")]
    fn rejects_out_of_range_context() {
        let s = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(1);
        s.sample(1, 99, &mut rng);
    }
}
