//! Non-IID partitioners: how the global task is split across edge devices.
//!
//! The paper tests two heterogeneity types (§6.1):
//! * **label skew** — each device holds only `m` of the `n` classes, with
//!   sub-tasks defined as "classes that usually appear together": classes
//!   are chunked into co-occurrence groups and each device draws one group;
//! * **feature skew** — each device observes one subject/context (HAR).
//!
//! Data volumes are unbalanced across devices (50–150 samples, as in the
//! paper). IID and Dirichlet partitioners are provided for ablations.

use crate::dataset::Dataset;
use crate::synth::Synthesizer;
use nebula_tensor::NebulaRng;

/// Strategy for assigning data distributions to devices.
#[derive(Clone, Debug)]
pub enum Partitioner {
    /// Every device samples from the full class set uniformly.
    Iid,
    /// Each device holds `m` classes drawn as one co-occurrence group.
    LabelSkew { m: usize },
    /// Each device observes exactly one sensing context (subject).
    FeatureSkew,
    /// Per-device class weights drawn from a symmetric Dirichlet(α).
    Dirichlet { alpha: f32 },
    /// Classes IID but volumes drawn from a heavy-tailed distribution:
    /// a few data-rich devices dominate (quantity skew). `shape` is the
    /// Pareto-like tail exponent — smaller means heavier tail.
    QuantitySkew { shape: f32 },
}

/// Full description of a device population.
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// Number of edge devices.
    pub devices: usize,
    /// Minimum local samples per device.
    pub min_samples: usize,
    /// Maximum local samples per device (inclusive).
    pub max_samples: usize,
    /// Distribution-assignment strategy.
    pub partitioner: Partitioner,
}

impl PartitionSpec {
    /// Paper defaults: unbalanced volumes in 50–150.
    pub fn new(devices: usize, partitioner: Partitioner) -> Self {
        Self { devices, min_samples: 50, max_samples: 150, partitioner }
    }
}

/// One device's local data and the sub-task it represents.
#[derive(Clone, Debug)]
pub struct DevicePartition {
    /// The device's local dataset.
    pub data: Dataset,
    /// Classes the device observes (its sub-task under label skew).
    pub classes: Vec<usize>,
    /// Sensing context the device observes.
    pub context: usize,
    /// Index of the co-occurrence group this device drew (label skew), or
    /// the context id (feature skew); used as the device's sub-task id.
    pub subtask: usize,
}

/// Chunks a seeded shuffle of `0..classes` into groups of size `m`
/// (last group may be smaller if `m` does not divide `classes`).
///
/// These groups are the paper's "classes that usually appear together on a
/// device" — the application-specific sub-task definition fed to the
/// module ability-enhancing training (§4.3 step 1).
pub fn cooccurrence_groups(classes: usize, m: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(m >= 1 && m <= classes, "group size {m} invalid for {classes} classes");
    let mut order: Vec<usize> = (0..classes).collect();
    let mut rng = NebulaRng::seed(seed ^ 0xC0_0C_C0_0C);
    rng.shuffle(&mut order);
    order.chunks(m).map(|c| c.to_vec()).collect()
}

/// Samples a device population from the synthesiser's geometry.
///
/// `group_seed` fixes the co-occurrence groups so that the cloud-side
/// sub-task definition and the device population agree (the cloud learns
/// sub-tasks in the offline stage and devices then realise them online).
pub fn partition(
    synth: &Synthesizer,
    spec: &PartitionSpec,
    group_seed: u64,
    rng: &mut NebulaRng,
) -> Vec<DevicePartition> {
    let n_classes = synth.spec().classes;
    let n_contexts = synth.spec().contexts;
    let mut out = Vec::with_capacity(spec.devices);

    let groups = match &spec.partitioner {
        Partitioner::LabelSkew { m } => cooccurrence_groups(n_classes, *m, group_seed),
        _ => Vec::new(),
    };

    for _ in 0..spec.devices {
        let volume = match &spec.partitioner {
            Partitioner::QuantitySkew { shape } => {
                // Inverse-CDF Pareto draw truncated to [min, 4·max]: a few
                // devices end up holding several times the typical volume.
                assert!(*shape > 0.0, "quantity-skew shape must be positive");
                let u = rng.uniform_f32(1e-4, 1.0);
                let draw = spec.min_samples as f32 * u.powf(-1.0 / shape);
                (draw as usize).clamp(spec.min_samples, spec.max_samples * 4)
            }
            _ if spec.max_samples > spec.min_samples => {
                spec.min_samples + rng.below(spec.max_samples - spec.min_samples + 1)
            }
            _ => spec.min_samples,
        };
        let dp = match &spec.partitioner {
            Partitioner::Iid => {
                let context = rng.below(n_contexts);
                let data = synth.sample(volume, context, rng);
                DevicePartition { data, classes: (0..n_classes).collect(), context, subtask: 0 }
            }
            Partitioner::LabelSkew { .. } => {
                let g = rng.below(groups.len());
                let classes = groups[g].clone();
                let context = rng.below(n_contexts);
                let data = synth.sample_classes(volume, &classes, context, rng);
                DevicePartition { data, classes, context, subtask: g }
            }
            Partitioner::FeatureSkew => {
                let context = rng.below(n_contexts);
                let data = synth.sample(volume, context, rng);
                DevicePartition { data, classes: (0..n_classes).collect(), context, subtask: context }
            }
            Partitioner::Dirichlet { alpha } => {
                let weights = rng.dirichlet(*alpha, n_classes);
                let classes: Vec<usize> = (0..n_classes).collect();
                let context = rng.below(n_contexts);
                let data = synth.sample_weighted(volume, &classes, &weights, context, rng);
                let present = data.present_classes();
                DevicePartition { data, classes: present, context, subtask: 0 }
            }
            Partitioner::QuantitySkew { .. } => {
                let context = rng.below(n_contexts);
                let data = synth.sample(volume, context, rng);
                DevicePartition { data, classes: (0..n_classes).collect(), context, subtask: 0 }
            }
        };
        out.push(dp);
    }
    out
}

/// Builds the cloud's proxy dataset: `n` IID samples from the canonical
/// context, as the paper's "30% of the training dataset used as the proxy
/// dataset for model pre-training on the cloud".
pub fn proxy_dataset(synth: &Synthesizer, n: usize, rng: &mut NebulaRng) -> Dataset {
    synth.sample(n, 0, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;

    fn synth() -> Synthesizer {
        Synthesizer::new(SynthSpec::toy(), 3)
    }

    #[test]
    fn cooccurrence_groups_cover_all_classes_once() {
        let groups = cooccurrence_groups(10, 3, 5);
        assert_eq!(groups.len(), 4); // 3+3+3+1
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cooccurrence_groups_deterministic_per_seed() {
        assert_eq!(cooccurrence_groups(8, 2, 1), cooccurrence_groups(8, 2, 1));
        assert_ne!(cooccurrence_groups(8, 2, 1), cooccurrence_groups(8, 2, 2));
    }

    #[test]
    fn volumes_respect_bounds() {
        let s = synth();
        let spec = PartitionSpec::new(20, Partitioner::Iid);
        let mut rng = NebulaRng::seed(1);
        let parts = partition(&s, &spec, 0, &mut rng);
        assert_eq!(parts.len(), 20);
        for p in &parts {
            assert!((50..=150).contains(&p.data.len()), "volume {}", p.data.len());
        }
    }

    #[test]
    fn label_skew_limits_classes_per_device() {
        let s = synth();
        let spec = PartitionSpec::new(30, Partitioner::LabelSkew { m: 2 });
        let mut rng = NebulaRng::seed(2);
        let parts = partition(&s, &spec, 7, &mut rng);
        for p in &parts {
            assert_eq!(p.classes.len(), 2);
            for &label in p.data.labels() {
                assert!(p.classes.contains(&label), "label {label} outside device classes {:?}", p.classes);
            }
        }
        // With 4 classes and m=2 there are exactly 2 groups; both should
        // appear across 30 devices.
        let subtasks: std::collections::HashSet<usize> = parts.iter().map(|p| p.subtask).collect();
        assert_eq!(subtasks.len(), 2);
    }

    #[test]
    fn feature_skew_assigns_single_context() {
        let s = synth();
        let spec = PartitionSpec::new(16, Partitioner::FeatureSkew);
        let mut rng = NebulaRng::seed(3);
        let parts = partition(&s, &spec, 0, &mut rng);
        let contexts: std::collections::HashSet<usize> = parts.iter().map(|p| p.context).collect();
        assert!(contexts.len() > 1, "feature skew should spread devices over contexts");
        for p in &parts {
            assert_eq!(p.subtask, p.context);
        }
    }

    #[test]
    fn dirichlet_skews_class_histograms() {
        let s = synth();
        let spec = PartitionSpec {
            devices: 10,
            min_samples: 200,
            max_samples: 200,
            partitioner: Partitioner::Dirichlet { alpha: 0.1 },
        };
        let mut rng = NebulaRng::seed(4);
        let parts = partition(&s, &spec, 0, &mut rng);
        // With α=0.1 most devices should be dominated by one class.
        let dominated = parts
            .iter()
            .filter(|p| {
                let h = p.data.class_histogram();
                let max = *h.iter().max().unwrap();
                max as f32 / p.data.len() as f32 > 0.5
            })
            .count();
        assert!(dominated >= 5, "only {dominated}/10 devices dominated");
    }

    #[test]
    fn quantity_skew_produces_heavy_tailed_volumes() {
        let s = synth();
        let spec = PartitionSpec {
            devices: 60,
            min_samples: 50,
            max_samples: 150,
            partitioner: Partitioner::QuantitySkew { shape: 1.2 },
        };
        let mut rng = NebulaRng::seed(7);
        let parts = partition(&s, &spec, 0, &mut rng);
        let volumes: Vec<usize> = parts.iter().map(|p| p.data.len()).collect();
        let max = *volumes.iter().max().unwrap();
        let min = *volumes.iter().min().unwrap();
        assert!(min >= 50);
        assert!(max <= 600);
        // The tail must actually be heavy: the biggest device holds
        // several times the smallest.
        assert!(max >= 3 * min, "no heavy tail: min {min}, max {max}");
    }

    #[test]
    fn proxy_dataset_is_iid_over_classes() {
        let s = synth();
        let mut rng = NebulaRng::seed(5);
        let proxy = proxy_dataset(&s, 400, &mut rng);
        let hist = proxy.class_histogram();
        for &h in &hist {
            assert!(h > 50, "class underrepresented in proxy: {hist:?}");
        }
    }
}
