//! Model training/evaluation helpers shared by the baselines, the Nebula
//! core and the experiment harness.

use crate::dataset::Dataset;
use nebula_nn::{cross_entropy, Layer, Mode, Optimizer};
use nebula_tensor::NebulaRng;

/// Hyper-parameters for a local training run (paper §6.1: batch 16,
/// lr 1e-3, 3 local epochs for collaborative rounds / 10 for on-device
/// fine-tuning).
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    /// Gradient-norm clip; `None` disables clipping.
    pub clip_norm: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 3, batch_size: 16, clip_norm: Some(5.0) }
    }
}

/// Trains `model` on `data` with the supplied optimiser; returns the mean
/// loss of the final epoch. No-op (returns 0) on an empty dataset.
pub fn train_epochs(
    model: &mut dyn Layer,
    opt: &mut dyn Optimizer,
    data: &Dataset,
    cfg: TrainConfig,
    rng: &mut NebulaRng,
) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let mut last_epoch_loss = 0.0;
    for _ in 0..cfg.epochs {
        let mut epoch_loss = 0.0f64;
        let mut seen = 0usize;
        for (x, y) in data.batches(cfg.batch_size, rng) {
            model.zero_grad();
            let logits = model.forward(&x, Mode::Train);
            let (loss, grad) = cross_entropy(&logits, &y);
            model.backward(&grad);
            if let Some(c) = cfg.clip_norm {
                model.clip_grad_norm(c);
            }
            opt.step(model);
            epoch_loss += loss as f64 * y.len() as f64;
            seen += y.len();
        }
        last_epoch_loss = (epoch_loss / seen.max(1) as f64) as f32;
    }
    last_epoch_loss
}

/// Top-1 accuracy of `model` on `data` (eval mode). Returns 0 on empty data.
pub fn evaluate_accuracy(model: &mut dyn Layer, data: &Dataset, batch_size: usize) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    let n = data.len();
    let mut i = 0;
    while i < n {
        let end = (i + batch_size).min(n);
        let idx: Vec<usize> = (i..end).collect();
        let sub = data.subset(&idx);
        let logits = model.forward(sub.features(), Mode::Eval);
        let preds = logits.argmax_rows();
        correct += preds.iter().zip(sub.labels()).filter(|(p, y)| p == y).count();
        i = end;
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthSpec, Synthesizer};
    use nebula_nn::{Activation, Linear, Sequential, Sgd};

    fn mlp(in_dim: usize, classes: usize, seed: u64) -> Sequential {
        let mut rng = NebulaRng::seed(seed);
        Sequential::new()
            .with(Linear::new(in_dim, 32, &mut rng))
            .with(Activation::relu())
            .with(Linear::new(32, classes, &mut rng))
    }

    #[test]
    fn training_improves_accuracy_on_toy_task() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(2);
        let train = synth.sample(400, 0, &mut rng);
        let test = synth.sample(200, 0, &mut rng);

        let mut model = mlp(16, 4, 3);
        let before = evaluate_accuracy(&mut model, &test, 64);
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let cfg = TrainConfig { epochs: 15, batch_size: 16, clip_norm: Some(5.0) };
        let loss = train_epochs(&mut model, &mut opt, &train, cfg, &mut rng);
        let after = evaluate_accuracy(&mut model, &test, 64);

        assert!(loss < 1.0, "final loss {loss}");
        assert!(after > before + 0.2, "accuracy {before} -> {after}");
        assert!(after > 0.7, "accuracy only {after}");
    }

    #[test]
    fn empty_dataset_is_noop() {
        let mut model = mlp(16, 4, 4);
        let mut opt = Sgd::new(0.1);
        let mut rng = NebulaRng::seed(5);
        let empty = Dataset::empty(16, 4);
        assert_eq!(train_epochs(&mut model, &mut opt, &empty, TrainConfig::default(), &mut rng), 0.0);
        assert_eq!(evaluate_accuracy(&mut model, &empty, 16), 0.0);
    }

    #[test]
    fn accuracy_is_batch_size_invariant() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(6);
        let test = synth.sample(101, 0, &mut rng);
        let mut model = mlp(16, 4, 7);
        let a = evaluate_accuracy(&mut model, &test, 7);
        let b = evaluate_accuracy(&mut model, &test, 64);
        let c = evaluate_accuracy(&mut model, &test, 101);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
