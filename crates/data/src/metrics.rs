//! Classification metrics beyond plain top-1 accuracy.
//!
//! Personalized-evaluation analyses (per-device, per-class) need the
//! confusion matrix, per-class recall/precision and macro-F1 — e.g. to
//! check that a derived sub-model is strong on the device's sub-task
//! classes specifically, not just on average.

use crate::dataset::Dataset;
use nebula_nn::{Layer, Mode};

/// A `classes × classes` confusion matrix: `m[actual][predicted]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Empty matrix for `classes` classes.
    pub fn new(classes: usize) -> Self {
        Self { counts: vec![vec![0; classes]; classes] }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.counts.len()
    }

    /// Records one `(actual, predicted)` observation.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        self.counts[actual][predicted] += 1;
    }

    /// Raw count for `(actual, predicted)`.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy (trace / total); 0 on an empty matrix.
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.classes()).map(|c| self.counts[c][c]).sum();
        correct as f32 / total as f32
    }

    /// Recall of class `c` (`None` if the class never appears).
    pub fn recall(&self, c: usize) -> Option<f32> {
        let actual: usize = self.counts[c].iter().sum();
        (actual > 0).then(|| self.counts[c][c] as f32 / actual as f32)
    }

    /// Precision of class `c` (`None` if it is never predicted).
    pub fn precision(&self, c: usize) -> Option<f32> {
        let predicted: usize = (0..self.classes()).map(|a| self.counts[a][c]).sum();
        (predicted > 0).then(|| self.counts[c][c] as f32 / predicted as f32)
    }

    /// F1 of class `c` (`None` when undefined).
    pub fn f1(&self, c: usize) -> Option<f32> {
        let p = self.precision(c)?;
        let r = self.recall(c)?;
        if p + r == 0.0 {
            return Some(0.0);
        }
        Some(2.0 * p * r / (p + r))
    }

    /// Macro-F1 over the classes that appear in the data.
    pub fn macro_f1(&self) -> f32 {
        let scores: Vec<f32> = (0..self.classes()).filter_map(|c| self.f1(c)).collect();
        if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f32>() / scores.len() as f32
        }
    }
}

/// Evaluates `model` on `data`, returning the full confusion matrix.
pub fn confusion_matrix(model: &mut dyn Layer, data: &Dataset, batch_size: usize) -> ConfusionMatrix {
    let mut cm = ConfusionMatrix::new(data.classes());
    let n = data.len();
    let mut i = 0;
    while i < n {
        let end = (i + batch_size).min(n);
        let idx: Vec<usize> = (i..end).collect();
        let sub = data.subset(&idx);
        let logits = model.forward(sub.features(), Mode::Eval);
        for (pred, &actual) in logits.argmax_rows().iter().zip(sub.labels()) {
            cm.record(actual, *pred);
        }
        i = end;
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthSpec, Synthesizer};
    use nebula_nn::{Activation, Linear, Sequential, Sgd};
    use nebula_tensor::NebulaRng;

    fn manual_cm() -> ConfusionMatrix {
        // actual 0: 3 right, 1 wrong→1; actual 1: 2 right, 2 wrong→0.
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..3 {
            cm.record(0, 0);
        }
        cm.record(0, 1);
        for _ in 0..2 {
            cm.record(1, 1);
        }
        for _ in 0..2 {
            cm.record(1, 0);
        }
        cm
    }

    #[test]
    fn accuracy_is_trace_over_total() {
        let cm = manual_cm();
        nebula_tensor::assert_close(cm.accuracy(), 5.0 / 8.0, 1e-6);
    }

    #[test]
    fn recall_precision_f1() {
        let cm = manual_cm();
        nebula_tensor::assert_close(cm.recall(0).unwrap(), 0.75, 1e-6);
        nebula_tensor::assert_close(cm.recall(1).unwrap(), 0.5, 1e-6);
        nebula_tensor::assert_close(cm.precision(0).unwrap(), 3.0 / 5.0, 1e-6);
        nebula_tensor::assert_close(cm.precision(1).unwrap(), 2.0 / 3.0, 1e-6);
        let f1_0 = cm.f1(0).unwrap();
        nebula_tensor::assert_close(f1_0, 2.0 * 0.6 * 0.75 / (0.6 + 0.75), 1e-6);
    }

    #[test]
    fn absent_class_yields_none() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        assert!(cm.recall(2).is_none());
        assert!(cm.precision(2).is_none());
        assert!(cm.f1(2).is_none());
        // Macro-F1 skips undefined classes instead of poisoning the mean.
        assert!(cm.macro_f1() > 0.0);
    }

    #[test]
    fn empty_matrix_behaves() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.macro_f1(), 0.0);
    }

    #[test]
    fn confusion_matrix_agrees_with_evaluate_accuracy() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(2);
        let train = synth.sample(300, 0, &mut rng);
        let test = synth.sample(150, 0, &mut rng);
        let mut model = Sequential::new()
            .with(Linear::new(16, 24, &mut rng))
            .with(Activation::relu())
            .with(Linear::new(24, 4, &mut rng));
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        crate::eval::train_epochs(
            &mut model,
            &mut opt,
            &train,
            crate::eval::TrainConfig { epochs: 8, batch_size: 16, clip_norm: Some(5.0) },
            &mut rng,
        );
        let cm = confusion_matrix(&mut model, &test, 32);
        let direct = crate::eval::evaluate_accuracy(&mut model, &test, 32);
        nebula_tensor::assert_close(cm.accuracy(), direct, 1e-6);
        assert_eq!(cm.total(), test.len());
    }
}
