//! The [`Dataset`] container: a feature matrix plus integer labels.

use nebula_tensor::{NebulaRng, Tensor};

/// A labelled classification dataset.
///
/// `x` is `n × d` (row per sample), `y` holds class indices in
/// `[0, classes)`. The class count is carried explicitly because a device's
/// local dataset typically contains only a subset of the global classes.
#[derive(Clone, Debug)]
pub struct Dataset {
    x: Tensor,
    y: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating shapes and label ranges.
    pub fn new(x: Tensor, y: Vec<usize>, classes: usize) -> Self {
        assert_eq!(x.rank(), 2, "dataset features must be rank-2");
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(y.iter().all(|&c| c < classes), "label out of range");
        Self { x, y, classes }
    }

    /// An empty dataset with the given feature width and class count.
    pub fn empty(feature_dim: usize, classes: usize) -> Self {
        Self { x: Tensor::zeros(&[0, feature_dim]), y: Vec::new(), classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.x.cols()
    }

    /// Number of classes in the global task this dataset belongs to.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The feature matrix.
    pub fn features(&self) -> &Tensor {
        &self.x
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// Set of distinct classes present, sorted ascending.
    pub fn present_classes(&self) -> Vec<usize> {
        let mut c: Vec<usize> = self.y.clone();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// Per-class sample counts (length = `classes`).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.classes];
        for &c in &self.y {
            h[c] += 1;
        }
        h
    }

    /// Selects a subset by sample indices.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: self.x.gather_rows(idx),
            y: idx.iter().map(|&i| self.y[i]).collect(),
            classes: self.classes,
        }
    }

    /// Concatenates two datasets over the same task.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.feature_dim(), other.feature_dim(), "feature dims differ");
        assert_eq!(self.classes, other.classes, "class counts differ");
        let mut data = self.x.data().to_vec();
        data.extend_from_slice(other.x.data());
        let mut y = self.y.clone();
        y.extend_from_slice(&other.y);
        Dataset {
            x: Tensor::from_vec(data, &[self.len() + other.len(), self.feature_dim()]),
            y,
            classes: self.classes,
        }
    }

    /// Randomly splits into `(left, right)` with `left_frac` of the samples
    /// on the left (rounded down, at least 0).
    pub fn split(&self, left_frac: f32, rng: &mut NebulaRng) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&left_frac), "left_frac out of range");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let cut = (self.len() as f32 * left_frac) as usize;
        (self.subset(&idx[..cut]), self.subset(&idx[cut..]))
    }

    /// Returns the samples whose label is in `keep` (order preserved).
    pub fn filter_classes(&self, keep: &[usize]) -> Dataset {
        let idx: Vec<usize> = (0..self.len()).filter(|&i| keep.contains(&self.y[i])).collect();
        self.subset(&idx)
    }

    /// Draws `n` samples uniformly with replacement.
    pub fn sample_with_replacement(&self, n: usize, rng: &mut NebulaRng) -> Dataset {
        assert!(!self.is_empty(), "cannot sample from empty dataset");
        let idx: Vec<usize> = (0..n).map(|_| rng.below(self.len())).collect();
        self.subset(&idx)
    }

    /// Iterates over shuffled mini-batches of `(features, labels)`.
    pub fn batches(&self, batch_size: usize, rng: &mut NebulaRng) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        idx.chunks(batch_size)
            .map(|chunk| {
                let sub = self.subset(chunk);
                (sub.x, sub.y)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Tensor::matrix(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        Dataset::new(x, vec![0, 1, 0, 2], 3)
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.feature_dim(), 2);
        assert_eq!(d.classes(), 3);
        assert_eq!(d.present_classes(), vec![0, 1, 2]);
        assert_eq!(d.class_histogram(), vec![2, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_label() {
        Dataset::new(Tensor::zeros(&[1, 2]), vec![5], 3);
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy();
        let s = d.subset(&[3, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[2, 0]);
        assert_eq!(s.features().row(0), &[3.0, 3.0]);
    }

    #[test]
    fn concat_appends() {
        let d = toy();
        let c = d.concat(&d);
        assert_eq!(c.len(), 8);
        assert_eq!(c.labels()[4..], d.labels()[..]);
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy();
        let mut rng = NebulaRng::seed(1);
        let (l, r) = d.split(0.5, &mut rng);
        assert_eq!(l.len() + r.len(), d.len());
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn filter_classes_keeps_only_listed() {
        let d = toy();
        let f = d.filter_classes(&[0]);
        assert_eq!(f.len(), 2);
        assert!(f.labels().iter().all(|&c| c == 0));
    }

    #[test]
    fn batches_cover_every_sample_once() {
        let d = toy();
        let mut rng = NebulaRng::seed(2);
        let batches = d.batches(3, &mut rng);
        assert_eq!(batches.len(), 2);
        let total: usize = batches.iter().map(|(_, y)| y.len()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn sample_with_replacement_has_requested_size() {
        let d = toy();
        let mut rng = NebulaRng::seed(3);
        let s = d.sample_with_replacement(10, &mut rng);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn empty_dataset_behaves() {
        let d = Dataset::empty(5, 2);
        assert!(d.is_empty());
        assert_eq!(d.feature_dim(), 5);
        assert_eq!(d.class_histogram(), vec![0, 0]);
    }
}
