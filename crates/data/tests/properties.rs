//! Property-based tests for the data substrate: partitioners, drift and
//! the synthesiser must uphold their structural invariants for arbitrary
//! parameters.

use nebula_data::drift::DriftKind;
use nebula_data::partition::{cooccurrence_groups, partition, PartitionSpec, Partitioner};
use nebula_data::{DriftModel, SynthSpec, Synthesizer};
use nebula_tensor::NebulaRng;
use proptest::prelude::*;

fn synth(classes: usize, contexts: usize, seed: u64) -> Synthesizer {
    Synthesizer::new(
        SynthSpec {
            classes,
            feature_dim: 8,
            clusters_per_class: 2,
            class_separation: 3.0,
            cluster_spread: 1.0,
            noise_std: 0.8,
            label_noise: 0.0,
            contexts,
            context_shift: 0.3,
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cooccurrence_groups_partition_the_classes(
        classes in 2usize..20, m in 1usize..20, seed in 0u64..200
    ) {
        prop_assume!(m <= classes);
        let groups = cooccurrence_groups(classes, m, seed);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..classes).collect::<Vec<_>>());
        // Every group except possibly the last has exactly m classes.
        for g in &groups[..groups.len() - 1] {
            prop_assert_eq!(g.len(), m);
        }
    }

    #[test]
    fn label_skew_devices_only_see_their_classes(
        classes in 2usize..10, m in 1usize..10, devices in 1usize..12, seed in 0u64..100
    ) {
        prop_assume!(m <= classes);
        let s = synth(classes, 3, seed);
        let spec = PartitionSpec::new(devices, Partitioner::LabelSkew { m });
        let mut rng = NebulaRng::seed(seed ^ 9);
        for p in partition(&s, &spec, seed, &mut rng) {
            prop_assert!(p.classes.len() <= m);
            for &label in p.data.labels() {
                prop_assert!(p.classes.contains(&label));
            }
            prop_assert!((50..=150).contains(&p.data.len()));
        }
    }

    #[test]
    fn drift_preserves_volume_and_label_validity(
        replace in 0.0f32..1.0, seed in 0u64..100
    ) {
        let s = synth(6, 4, seed);
        let spec = PartitionSpec::new(3, Partitioner::LabelSkew { m: 2 });
        let mut rng = NebulaRng::seed(seed ^ 5);
        let mut parts = partition(&s, &spec, seed, &mut rng);
        let drift = DriftModel::new(replace, DriftKind::ClassShift { m: 2, group_seed: seed });
        for p in parts.iter_mut() {
            let before = p.data.len();
            drift.step(p, &s, &mut rng);
            prop_assert_eq!(p.data.len(), before, "drift changed the volume");
            prop_assert!(p.data.labels().iter().all(|&c| c < 6));
        }
    }

    #[test]
    fn context_shift_drift_keeps_classes(seed in 0u64..100) {
        let s = synth(5, 6, seed);
        let spec = PartitionSpec::new(2, Partitioner::LabelSkew { m: 2 });
        let mut rng = NebulaRng::seed(seed ^ 6);
        let mut parts = partition(&s, &spec, seed, &mut rng);
        let classes_before = parts[0].classes.clone();
        let drift = DriftModel::new(0.5, DriftKind::ContextShift);
        drift.step(&mut parts[0], &s, &mut rng);
        prop_assert_eq!(parts[0].classes.clone(), classes_before, "context drift must not change the class set");
        prop_assert!(parts[0].context < 6);
    }

    #[test]
    fn sampling_respects_requested_volume_and_classes(
        n in 1usize..200, context in 0usize..3, seed in 0u64..100
    ) {
        let s = synth(4, 3, seed);
        let mut rng = NebulaRng::seed(seed);
        let d = s.sample_classes(n, &[1, 3], context, &mut rng);
        prop_assert_eq!(d.len(), n);
        prop_assert!(d.labels().iter().all(|&c| c == 1 || c == 3));
        prop_assert!(d.features().all_finite());
    }

    #[test]
    fn dataset_split_partitions_exactly(frac in 0.0f32..1.0, n in 1usize..100, seed in 0u64..100) {
        let s = synth(4, 2, seed);
        let mut rng = NebulaRng::seed(seed ^ 2);
        let d = s.sample(n, 0, &mut rng);
        let (l, r) = d.split(frac, &mut rng);
        prop_assert_eq!(l.len() + r.len(), n);
        // Histograms add up.
        let hl = l.class_histogram();
        let hr = r.class_histogram();
        let hd = d.class_histogram();
        for i in 0..4 {
            prop_assert_eq!(hl[i] + hr[i], hd[i]);
        }
    }
}
