//! # nebula-opt
//!
//! Self-contained solvers for the two constrained optimisation problems in
//! the Nebula paper (the authors use SciPy / OR-Tools; this crate replaces
//! them with exact and greedy solvers sized for Nebula's instances —
//! dozens of sub-tasks × at most 64 modules per layer):
//!
//! * [`assignment`] — Eq. 1: given the sub-task × module load matrix `H`,
//!   find a binary mask `M` maximising `Σ (H ⊙ M)` under a per-module
//!   sub-task budget κ₁ and a per-sub-task module budget κ₂.
//! * [`knapsack`] — Eq. 2: the multi-dimensional 0/1 knapsack that selects
//!   modules by importance under communication / computation / memory
//!   limits.

pub mod assignment;
pub mod knapsack;

pub use assignment::{solve_assignment, solve_assignment_exact, AssignmentProblem};
pub use knapsack::{solve_mdkp_exact, solve_mdkp_greedy, solve_mdkp_lagrangian, MdkpInstance};
