//! Eq. 2 of the paper: the multi-dimensional 0/1 knapsack behind
//! personalized sub-model derivation.
//!
//! ```text
//! max  Σ Importance(ω_i | D_k) · d_i
//! s.t. Σ Resource_j(ω_i) · d_i ≤ L_j,  j ∈ {Comm, Comp, Mem}
//!      d_i ∈ {0, 1}
//! ```
//!
//! Items whose costs are charged even when unselected (the paper's
//! "first select the most important module in each module layer") are
//! modelled by the caller subtracting mandatory items from the limits
//! before building the instance.
//!
//! Two solvers:
//! * [`solve_mdkp_greedy`] — density greedy (value / normalised cost) with
//!   a single-swap improvement pass; linear-ithmic, used online;
//! * [`solve_mdkp_exact`] — branch-and-bound with a fractional-relaxation
//!   bound; exact, used in tests and for the ablation bench.

/// One multi-dimensional knapsack instance.
#[derive(Clone, Debug)]
pub struct MdkpInstance {
    /// Item values (module importances), non-negative.
    pub values: Vec<f32>,
    /// `items × dims` cost matrix.
    pub costs: Vec<Vec<f32>>,
    /// Per-dimension capacity limits.
    pub limits: Vec<f32>,
}

impl MdkpInstance {
    /// Validates the instance and returns `(items, dims)`.
    pub fn dims(&self) -> (usize, usize) {
        let n = self.values.len();
        assert_eq!(self.costs.len(), n, "values/costs length mismatch");
        let d = self.limits.len();
        assert!(d > 0, "need at least one resource dimension");
        assert!(self.costs.iter().all(|c| c.len() == d), "ragged cost matrix");
        assert!(self.values.iter().all(|&v| v >= 0.0), "negative value");
        assert!(self.costs.iter().flatten().all(|&c| c >= 0.0), "negative cost");
        (n, d)
    }

    /// Total value of a selection.
    pub fn value(&self, selected: &[bool]) -> f32 {
        self.values.iter().zip(selected).filter(|(_, &s)| s).map(|(&v, _)| v).sum()
    }

    /// True when the selection fits within every limit.
    pub fn feasible(&self, selected: &[bool]) -> bool {
        let (_, d) = self.dims();
        for j in 0..d {
            let used: f32 = self.costs.iter().zip(selected).filter(|(_, &s)| s).map(|(c, _)| c[j]).sum();
            if used > self.limits[j] * (1.0 + 1e-5) {
                return false;
            }
        }
        true
    }
}

/// Density-greedy solver: items sorted by `value / Σ_j cost_j / limit_j`
/// (normalised aggregate cost), inserted when they fit; followed by a pass
/// that tries to add any remaining fitting item.
pub fn solve_mdkp_greedy(inst: &MdkpInstance) -> Vec<bool> {
    let (n, d) = inst.dims();
    let mut selected = vec![false; n];
    let mut used = vec![0.0f32; d];

    let density = |i: usize| -> f32 {
        let norm_cost: f32 = (0..d)
            .map(|j| {
                if inst.limits[j] > 0.0 {
                    inst.costs[i][j] / inst.limits[j]
                } else if inst.costs[i][j] > 0.0 {
                    f32::INFINITY
                } else {
                    0.0
                }
            })
            .sum();
        if norm_cost <= 0.0 {
            f32::INFINITY // free item: always take
        } else {
            inst.values[i] / norm_cost
        }
    };

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        density(b).partial_cmp(&density(a)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });

    let fits =
        |i: usize, used: &[f32]| (0..d).all(|j| used[j] + inst.costs[i][j] <= inst.limits[j] * (1.0 + 1e-6));

    for &i in &order {
        if inst.values[i] <= 0.0 && density(i) != f32::INFINITY {
            continue;
        }
        if fits(i, &used) {
            selected[i] = true;
            for (u, c) in used.iter_mut().zip(&inst.costs[i]) {
                *u += c;
            }
        }
    }

    // Fill pass in pure value order (density can starve high-value items).
    let mut by_value: Vec<usize> = (0..n).collect();
    by_value
        .sort_by(|&a, &b| inst.values[b].partial_cmp(&inst.values[a]).unwrap_or(std::cmp::Ordering::Equal));
    for &i in &by_value {
        if !selected[i] && inst.values[i] > 0.0 && fits(i, &used) {
            selected[i] = true;
            for (u, c) in used.iter_mut().zip(&inst.costs[i]) {
                *u += c;
            }
        }
    }

    debug_assert!(inst.feasible(&selected));
    selected
}

/// Lagrangian-relaxation heuristic: dualise the resource constraints with
/// multipliers λ ≥ 0, solve the unconstrained relaxation (select item i
/// iff `value_i > Σ_j λ_j·cost_ij`), and adjust λ by projected subgradient
/// steps. The best *feasible* relaxation solution seen is returned,
/// repaired greedily if no iterate is feasible.
///
/// On Nebula-sized instances this typically matches the exact optimum and
/// beats plain density-greedy on adversarial value/cost mixes, at
/// `O(iters · n · d)` cost.
pub fn solve_mdkp_lagrangian(inst: &MdkpInstance, iters: usize) -> Vec<bool> {
    let (n, d) = inst.dims();
    let mut lambda = vec![0.0f32; d];
    let mut best_sel: Option<(f32, Vec<bool>)> = None;

    for t in 0..iters.max(1) {
        // Solve the relaxation at the current multipliers.
        let mut sel = vec![false; n];
        for (i, si) in sel.iter_mut().enumerate() {
            let penalty: f32 = lambda.iter().zip(&inst.costs[i]).map(|(l, c)| l * c).sum();
            if inst.values[i] > penalty {
                *si = true;
            }
        }
        // Track the best feasible iterate.
        if inst.feasible(&sel) {
            let v = inst.value(&sel);
            if best_sel.as_ref().is_none_or(|(bv, _)| v > *bv) {
                best_sel = Some((v, sel.clone()));
            }
        }
        // Subgradient: usage − limit per dimension.
        let step = 1.0 / (t as f32 + 1.0);
        for (j, l) in lambda.iter_mut().enumerate() {
            let used: f32 = (0..n).filter(|&i| sel[i]).map(|i| inst.costs[i][j]).sum();
            let slack = used - inst.limits[j];
            let scale = if inst.limits[j] > 0.0 { inst.limits[j] } else { 1.0 };
            *l = (*l + step * slack / scale).max(0.0);
        }
    }

    // Duality gaps are real (a high-density item can block the dual from
    // ever proposing the optimal set); never return worse than greedy.
    let greedy = solve_mdkp_greedy(inst);
    match best_sel {
        Some((v, sel)) if v >= inst.value(&greedy) => sel,
        _ => greedy,
    }
}

/// Exact branch-and-bound. Items are ordered by density; the upper bound
/// is the LP relaxation of the *single* most-binding dimension. Practical
/// up to ~30 items (Nebula layers hold at most 64 modules, but the exact
/// solver is only used for verification and small ablations).
pub fn solve_mdkp_exact(inst: &MdkpInstance) -> Vec<bool> {
    let (n, d) = inst.dims();
    assert!(n <= 30, "exact MDKP limited to ≤30 items");

    // Order by density for tighter bounds.
    let mut order: Vec<usize> = (0..n).collect();
    let density = |i: usize| -> f32 {
        let c: f32 =
            (0..d).map(|j| if inst.limits[j] > 0.0 { inst.costs[i][j] / inst.limits[j] } else { 0.0 }).sum();
        if c <= 0.0 {
            f32::INFINITY
        } else {
            inst.values[i] / c
        }
    };
    order.sort_by(|&a, &b| density(b).partial_cmp(&density(a)).unwrap_or(std::cmp::Ordering::Equal));

    struct State<'a> {
        inst: &'a MdkpInstance,
        order: &'a [usize],
        best_val: f32,
        best_sel: Vec<bool>,
    }

    fn bound(s: &State<'_>, pos: usize, val: f32) -> f32 {
        // Optimistic: add all remaining values (cheap, admissible).
        val + s.order[pos..].iter().map(|&i| s.inst.values[i]).sum::<f32>()
    }

    fn recurse(s: &mut State<'_>, pos: usize, used: &mut Vec<f32>, sel: &mut Vec<bool>, val: f32) {
        if val > s.best_val {
            s.best_val = val;
            s.best_sel = sel.clone();
        }
        if pos == s.order.len() || bound(s, pos, val) <= s.best_val {
            return;
        }
        let i = s.order[pos];
        let d = s.inst.limits.len();
        // Include if it fits.
        if (0..d).all(|j| used[j] + s.inst.costs[i][j] <= s.inst.limits[j] * (1.0 + 1e-6)) {
            for (u, c) in used.iter_mut().zip(&s.inst.costs[i]) {
                *u += c;
            }
            sel[i] = true;
            recurse(s, pos + 1, used, sel, val + s.inst.values[i]);
            sel[i] = false;
            for (u, c) in used.iter_mut().zip(&s.inst.costs[i]) {
                *u -= c;
            }
        }
        // Exclude.
        recurse(s, pos + 1, used, sel, val);
    }

    let mut state = State { inst, order: &order, best_val: 0.0, best_sel: vec![false; n] };
    let mut used = vec![0.0; d];
    let mut sel = vec![false; n];
    recurse(&mut state, 0, &mut used, &mut sel, 0.0);
    state.best_sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn inst(values: Vec<f32>, costs: Vec<Vec<f32>>, limits: Vec<f32>) -> MdkpInstance {
        MdkpInstance { values, costs, limits }
    }

    #[test]
    fn takes_everything_when_unconstrained() {
        let i = inst(vec![1.0, 2.0], vec![vec![1.0], vec![1.0]], vec![100.0]);
        let sel = solve_mdkp_greedy(&i);
        assert_eq!(sel, vec![true, true]);
    }

    #[test]
    fn respects_single_dimension_limit() {
        let i = inst(vec![3.0, 2.0, 1.0], vec![vec![2.0], vec![2.0], vec![2.0]], vec![4.0]);
        let sel = solve_mdkp_greedy(&i);
        assert!(i.feasible(&sel));
        assert_eq!(sel.iter().filter(|&&s| s).count(), 2);
        assert!(sel[0] && sel[1], "should keep the two most valuable");
    }

    #[test]
    fn multi_dimensional_binding() {
        // Item 0 is cheap in dim 0 but expensive in dim 1.
        let i = inst(vec![5.0, 4.0], vec![vec![1.0, 10.0], vec![1.0, 1.0]], vec![10.0, 5.0]);
        let sel = solve_mdkp_greedy(&i);
        assert!(i.feasible(&sel));
        // Only item 1 fits alongside nothing else in dim 1? item0 alone uses 10 > 5.
        assert!(!sel[0]);
        assert!(sel[1]);
    }

    #[test]
    fn exact_matches_brute_force_small() {
        let i = inst(vec![6.0, 10.0, 12.0], vec![vec![1.0], vec![2.0], vec![3.0]], vec![5.0]);
        let sel = solve_mdkp_exact(&i);
        // Optimal: items 1+2 = 22.
        assert_eq!(i.value(&sel), 22.0);
    }

    #[test]
    fn zero_cost_items_always_selected_by_greedy() {
        let i = inst(vec![0.1, 1.0], vec![vec![0.0], vec![10.0]], vec![5.0]);
        let sel = solve_mdkp_greedy(&i);
        assert!(sel[0], "free item skipped");
        assert!(!sel[1]);
    }

    #[test]
    fn infeasible_item_is_skipped() {
        let i = inst(vec![100.0, 1.0], vec![vec![50.0], vec![1.0]], vec![10.0]);
        let sel = solve_mdkp_greedy(&i);
        assert!(!sel[0]);
        assert!(sel[1]);
    }

    #[test]
    fn lagrangian_solves_the_easy_cases() {
        // Optimal {1, 2} = 22 and the densities agree, so both the dual
        // and the greedy fallback find it.
        let i = inst(vec![6.0, 10.0, 12.0], vec![vec![3.0], vec![2.0], vec![3.0]], vec![5.0]);
        let sel = solve_mdkp_lagrangian(&i, 50);
        assert!(i.feasible(&sel));
        assert_eq!(i.value(&sel), 22.0);
    }

    #[test]
    fn lagrangian_never_worse_than_greedy() {
        // The integrality-gap trap: the high-density item 0 blocks the
        // dual from proposing the optimal {1, 2}; the solver must still
        // match greedy.
        let i = inst(vec![6.0, 10.0, 12.0], vec![vec![1.0], vec![2.0], vec![3.0]], vec![5.0]);
        let sel = solve_mdkp_lagrangian(&i, 50);
        assert!(i.feasible(&sel));
        let g = i.value(&solve_mdkp_greedy(&i));
        assert!(i.value(&sel) >= g);
    }

    #[test]
    fn lagrangian_handles_infeasible_relaxations_via_fallback() {
        // Every item alone exceeds the limit except item 1.
        let i = inst(vec![100.0, 1.0], vec![vec![50.0], vec![1.0]], vec![10.0]);
        let sel = solve_mdkp_lagrangian(&i, 30);
        assert!(i.feasible(&sel));
        assert!(sel[1]);
    }

    proptest! {
        #[test]
        fn lagrangian_always_feasible_and_competitive(
            n in 1usize..12,
            seed in 0u64..300,
        ) {
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32) / (u32::MAX as f32)
            };
            let values: Vec<f32> = (0..n).map(|_| next()).collect();
            let costs: Vec<Vec<f32>> = (0..n).map(|_| (0..2).map(|_| next()).collect()).collect();
            let limits: Vec<f32> = (0..2).map(|_| next() * n as f32 * 0.3).collect();
            let inst = MdkpInstance { values, costs, limits };
            let sel = solve_mdkp_lagrangian(&inst, 40);
            prop_assert!(inst.feasible(&sel));
            // By construction, never worse than greedy.
            let g = inst.value(&solve_mdkp_greedy(&inst));
            prop_assert!(inst.value(&sel) + 1e-5 >= g, "lagrangian {} vs greedy {}", inst.value(&sel), g);
        }

        #[test]
        fn greedy_always_feasible(
            n in 1usize..12,
            seed in 0u64..500,
        ) {
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32) / (u32::MAX as f32)
            };
            let values: Vec<f32> = (0..n).map(|_| next()).collect();
            let costs: Vec<Vec<f32>> = (0..n).map(|_| (0..3).map(|_| next()).collect()).collect();
            let limits: Vec<f32> = (0..3).map(|_| next() * n as f32 * 0.4).collect();
            let inst = MdkpInstance { values, costs, limits };
            let sel = solve_mdkp_greedy(&inst);
            prop_assert!(inst.feasible(&sel));
        }

        #[test]
        fn exact_dominates_greedy(
            n in 1usize..10,
            seed in 0u64..200,
        ) {
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32) / (u32::MAX as f32)
            };
            let values: Vec<f32> = (0..n).map(|_| next()).collect();
            let costs: Vec<Vec<f32>> = (0..n).map(|_| (0..2).map(|_| next()).collect()).collect();
            let limits: Vec<f32> = (0..2).map(|_| next() * n as f32 * 0.3).collect();
            let inst = MdkpInstance { values, costs, limits };
            let g = inst.value(&solve_mdkp_greedy(&inst));
            let e = inst.value(&solve_mdkp_exact(&inst));
            prop_assert!(e + 1e-4 >= g, "exact {} below greedy {}", e, g);
            prop_assert!(inst.feasible(&solve_mdkp_exact(&inst)));
        }
    }
}
