//! Eq. 1 of the paper: sub-task → module assignment.
//!
//! ```text
//! max  Σ (H ⊙ M)                      (preserve the learned load matrix)
//! s.t. Σ_t M[t][n] ≤ κ₁  ∀ module n   (no module overload)
//!      Σ_n M[t][n] ≤ κ₂  ∀ sub-task t (bounded sub-model width)
//!      M[t][n] ∈ {0, 1}
//! ```
//!
//! The constraint matrix is that of a transportation problem (totally
//! unimodular), so the LP relaxation has an integral optimum. Our instances
//! are small (T ≤ ~50 sub-tasks, N ≤ 64 modules), so we solve with a greedy
//! pass followed by 1-swap local improvement — and provide an exact
//! branch-and-bound solver used for verification on small instances.
//!
//! Beyond the paper's constraints we add a *coverage repair* step: every
//! sub-task must receive at least one module, otherwise the fine-tuning
//! target `P = H ⊙ M` would recommend activating nothing for that
//! sub-task, which cannot be realised by a top-k gate.

/// An instance of the Eq. 1 assignment problem.
#[derive(Clone, Debug)]
pub struct AssignmentProblem {
    /// `T × N` load matrix; `h[t][n]` is the load of module `n` in
    /// sub-task `t` (non-negative).
    pub load: Vec<Vec<f32>>,
    /// κ₁ — maximum number of sub-tasks a module may serve.
    pub max_tasks_per_module: usize,
    /// κ₂ — maximum number of modules a sub-task may activate.
    pub max_modules_per_task: usize,
}

impl AssignmentProblem {
    /// Validates and returns the `(T, N)` dimensions.
    pub fn dims(&self) -> (usize, usize) {
        let t = self.load.len();
        assert!(t > 0, "empty load matrix");
        let n = self.load[0].len();
        assert!(n > 0, "load matrix with zero modules");
        assert!(self.load.iter().all(|row| row.len() == n), "ragged load matrix");
        assert!(self.max_tasks_per_module >= 1, "κ1 must be ≥ 1");
        assert!(self.max_modules_per_task >= 1, "κ2 must be ≥ 1");
        assert!(
            self.max_tasks_per_module * n >= t,
            "infeasible: {} sub-tasks cannot be covered by {} modules at κ1 = {}",
            t,
            n,
            self.max_tasks_per_module
        );
        (t, n)
    }

    /// Objective value of a mask.
    pub fn objective(&self, mask: &[Vec<bool>]) -> f32 {
        mask.iter()
            .zip(&self.load)
            .flat_map(|(mrow, hrow)| mrow.iter().zip(hrow).filter(|(&m, _)| m).map(|(_, &h)| h))
            .sum()
    }

    /// True when a mask satisfies both budget constraints.
    pub fn feasible(&self, mask: &[Vec<bool>]) -> bool {
        let (t, n) = self.dims();
        if mask.len() != t || mask.iter().any(|r| r.len() != n) {
            return false;
        }
        for row in mask {
            if row.iter().filter(|&&m| m).count() > self.max_modules_per_task {
                return false;
            }
        }
        for col in 0..n {
            if mask.iter().filter(|row| row[col]).count() > self.max_tasks_per_module {
                return false;
            }
        }
        true
    }
}

/// Greedy + local-improvement solver with coverage repair.
///
/// Returns the mask `M` (T×N). Every sub-task is guaranteed at least one
/// module when κ₁·N ≥ T (validated in [`AssignmentProblem::dims`]).
pub fn solve_assignment(p: &AssignmentProblem) -> Vec<Vec<bool>> {
    let (t, n) = p.dims();
    let mut mask = vec![vec![false; n]; t];
    let mut task_count = vec![0usize; t];
    let mut module_count = vec![0usize; n];

    // Greedy over all entries, highest load first.
    let mut entries: Vec<(usize, usize)> = (0..t).flat_map(|ti| (0..n).map(move |ni| (ti, ni))).collect();
    entries.sort_by(|&(ta, na), &(tb, nb)| {
        p.load[tb][nb]
            .partial_cmp(&p.load[ta][na])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then((ta, na).cmp(&(tb, nb)))
    });
    for &(ti, ni) in &entries {
        if p.load[ti][ni] <= 0.0 {
            continue;
        }
        if task_count[ti] < p.max_modules_per_task && module_count[ni] < p.max_tasks_per_module {
            mask[ti][ni] = true;
            task_count[ti] += 1;
            module_count[ni] += 1;
        }
    }

    // Coverage repair: a sub-task left with no module steals the slot of
    // the weakest assignment on its best under-loaded module, or claims a
    // free module if one exists.
    for ti in 0..t {
        if task_count[ti] > 0 {
            continue;
        }
        // Prefer the highest-load module with spare capacity.
        let mut candidates: Vec<usize> = (0..n).collect();
        candidates
            .sort_by(|&a, &b| p.load[ti][b].partial_cmp(&p.load[ti][a]).unwrap_or(std::cmp::Ordering::Equal));
        let mut placed = false;
        for &ni in &candidates {
            if module_count[ni] < p.max_tasks_per_module {
                mask[ti][ni] = true;
                task_count[ti] += 1;
                module_count[ni] += 1;
                placed = true;
                break;
            }
        }
        if !placed {
            // All modules saturated: evict, from the best candidate module
            // that has one, the weakest assignment whose task keeps ≥ 1
            // module. Feasibility (κ₁·N ≥ T) guarantees such a module
            // exists: saturated modules hold κ₁·N ≥ T assignments while
            // only ≤ T−1 tasks are covered, so some task holds ≥ 2.
            for &ni in &candidates {
                let victim = (0..t).filter(|&tj| mask[tj][ni] && task_count[tj] > 1).min_by(|&a, &b| {
                    p.load[a][ni].partial_cmp(&p.load[b][ni]).unwrap_or(std::cmp::Ordering::Equal)
                });
                if let Some(tv) = victim {
                    mask[tv][ni] = false;
                    task_count[tv] -= 1;
                    mask[ti][ni] = true;
                    task_count[ti] += 1;
                    break;
                }
            }
        }
    }

    // 1-swap local improvement: move an assignment to a better empty slot.
    let mut improved = true;
    while improved {
        improved = false;
        // Indexed loop: the body mutates two `mask[ti]` cells at once.
        #[allow(clippy::needless_range_loop)]
        for ti in 0..t {
            for ni in 0..n {
                if !mask[ti][ni] {
                    continue;
                }
                for nj in 0..n {
                    if mask[ti][nj] || module_count[nj] >= p.max_tasks_per_module {
                        continue;
                    }
                    if p.load[ti][nj] > p.load[ti][ni] {
                        mask[ti][ni] = false;
                        mask[ti][nj] = true;
                        module_count[ni] -= 1;
                        module_count[nj] += 1;
                        improved = true;
                        break;
                    }
                }
            }
        }
    }

    debug_assert!(p.feasible(&mask));
    mask
}

/// Exact solver by depth-first branch-and-bound over entries. Exponential —
/// only for verification on instances with `T·N ≤ ~20`.
pub fn solve_assignment_exact(p: &AssignmentProblem) -> Vec<Vec<bool>> {
    let (t, n) = p.dims();
    assert!(t * n <= 24, "exact solver limited to tiny instances");
    let mut best_mask = vec![vec![false; n]; t];
    let mut best_val = f32::NEG_INFINITY;

    fn covered(mask: &[Vec<bool>]) -> bool {
        mask.iter().all(|row| row.iter().any(|&m| m))
    }

    // Branch-and-bound state is threaded explicitly to keep the recursion allocation-free.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        p: &AssignmentProblem,
        idx: usize,
        t: usize,
        n: usize,
        mask: &mut Vec<Vec<bool>>,
        task_count: &mut Vec<usize>,
        module_count: &mut Vec<usize>,
        val: f32,
        best_val: &mut f32,
        best_mask: &mut Vec<Vec<bool>>,
    ) {
        if idx == t * n {
            if covered(mask) && val > *best_val {
                *best_val = val;
                *best_mask = mask.clone();
            }
            return;
        }
        let (ti, ni) = (idx / n, idx % n);
        // Branch: include if feasible.
        if task_count[ti] < p.max_modules_per_task && module_count[ni] < p.max_tasks_per_module {
            mask[ti][ni] = true;
            task_count[ti] += 1;
            module_count[ni] += 1;
            recurse(
                p,
                idx + 1,
                t,
                n,
                mask,
                task_count,
                module_count,
                val + p.load[ti][ni],
                best_val,
                best_mask,
            );
            mask[ti][ni] = false;
            task_count[ti] -= 1;
            module_count[ni] -= 1;
        }
        // Branch: exclude.
        recurse(p, idx + 1, t, n, mask, task_count, module_count, val, best_val, best_mask);
    }

    let mut mask = vec![vec![false; n]; t];
    let mut tc = vec![0; t];
    let mut mc = vec![0; n];
    recurse(p, 0, t, n, &mut mask, &mut tc, &mut mc, 0.0, &mut best_val, &mut best_mask);
    best_mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn problem(load: Vec<Vec<f32>>, k1: usize, k2: usize) -> AssignmentProblem {
        AssignmentProblem { load, max_tasks_per_module: k1, max_modules_per_task: k2 }
    }

    #[test]
    fn trivially_separable_instance() {
        // Diagonal loads: the obvious assignment is the diagonal.
        let p = problem(vec![vec![0.9, 0.1, 0.0], vec![0.1, 0.8, 0.1], vec![0.0, 0.1, 0.9]], 1, 1);
        let m = solve_assignment(&p);
        assert!(m[0][0] && m[1][1] && m[2][2]);
        assert!(p.feasible(&m));
    }

    #[test]
    fn respects_module_budget() {
        // Every task loves module 0, but κ1 = 1 forces spreading.
        let p = problem(vec![vec![1.0, 0.5, 0.4], vec![1.0, 0.4, 0.5], vec![1.0, 0.3, 0.3]], 1, 1);
        let m = solve_assignment(&p);
        assert!(p.feasible(&m));
        // Each task still covered.
        assert!(m.iter().all(|row| row.iter().any(|&b| b)));
    }

    #[test]
    fn matches_exact_on_small_instances() {
        let p = problem(vec![vec![0.7, 0.2, 0.6], vec![0.3, 0.9, 0.1], vec![0.5, 0.5, 0.8]], 2, 2);
        let greedy = solve_assignment(&p);
        let exact = solve_assignment_exact(&p);
        let g = p.objective(&greedy);
        let e = p.objective(&exact);
        assert!(g >= 0.9 * e, "greedy {g} far below exact {e}");
    }

    #[test]
    fn coverage_repair_kicks_in() {
        // Task 1 has tiny loads everywhere; greedy would starve it when
        // budgets are tight.
        let p = problem(vec![vec![0.9, 0.9], vec![0.01, 0.02]], 1, 2);
        let m = solve_assignment(&p);
        assert!(m[1].iter().any(|&b| b), "sub-task 1 left uncovered");
        assert!(p.feasible(&m));
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn rejects_uncoverable_instance() {
        let p = problem(vec![vec![1.0]; 3], 1, 1); // 3 tasks, 1 module, κ1=1
        p.dims();
    }

    #[test]
    fn zero_loads_get_assigned_only_by_repair() {
        let p = problem(vec![vec![0.0, 0.0], vec![0.5, 0.5]], 2, 2);
        let m = solve_assignment(&p);
        // Task 0 covered via repair despite all-zero loads.
        assert!(m[0].iter().any(|&b| b));
    }

    proptest! {
        #[test]
        fn solver_output_is_always_feasible_and_covering(
            t in 1usize..5,
            n in 2usize..6,
            k1 in 1usize..4,
            k2 in 1usize..4,
            seed in 0u64..1000,
        ) {
            // Skip infeasible combos.
            prop_assume!(k1 * n >= t);
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32) / (u32::MAX as f32)
            };
            let load: Vec<Vec<f32>> = (0..t).map(|_| (0..n).map(|_| next()).collect()).collect();
            let p = AssignmentProblem { load, max_tasks_per_module: k1, max_modules_per_task: k2 };
            let m = solve_assignment(&p);
            prop_assert!(p.feasible(&m));
            prop_assert!(m.iter().all(|row| row.iter().any(|&b| b)), "uncovered sub-task");
        }

        #[test]
        fn greedy_close_to_exact(
            seed in 0u64..300,
        ) {
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32) / (u32::MAX as f32)
            };
            let load: Vec<Vec<f32>> = (0..3).map(|_| (0..4).map(|_| next()).collect()).collect();
            let p = AssignmentProblem { load, max_tasks_per_module: 2, max_modules_per_task: 2 };
            let g = p.objective(&solve_assignment(&p));
            let e = p.objective(&solve_assignment_exact(&p));
            prop_assert!(g >= 0.85 * e, "greedy {} vs exact {}", g, e);
        }
    }
}
