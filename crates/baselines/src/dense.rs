//! The dense (non-modular) reference model with width scaling.
//!
//! Architecture mirrors the modular trunk — stem → residual blocks → head —
//! with each block's hidden width equal to the modular model's *total*
//! module capacity, so FedAvg's "full large cloud model" has comparable
//! capacity to Nebula's full modularized model.
//!
//! **Width scaling**: a block can run using only its first `⌈r·H⌉` hidden
//! units. Parameters are stored at full width; the active slice is a
//! prefix, which makes sub-models *nested* — exactly the structure
//! HeteroFL aggregates over and slimmable branches (AdaptiveNet baseline)
//! switch between.

use nebula_nn::{Layer, Mode};
use nebula_tensor::{Init, NebulaRng, Tensor};

/// A width-scalable residual block: `y = x + W₂[:, :h]·relu(W₁[:h, :]·x + b₁[:h]) + b₂`.
struct ScalableBlock {
    w1: Tensor, // H × d
    b1: Tensor, // H
    w2: Tensor, // d × H
    b2: Tensor, // d
    dw1: Tensor,
    db1: Tensor,
    dw2: Tensor,
    db2: Tensor,
    /// Active hidden units (prefix length).
    active: usize,
    cache: Option<BlockCache>,
}

struct BlockCache {
    x: Tensor,
    /// Hidden pre-activations on the active slice (B × h).
    pre: Tensor,
}

impl ScalableBlock {
    fn new(d: usize, h: usize, rng: &mut NebulaRng) -> Self {
        Self {
            w1: Init::KaimingNormal.weight(h, d, rng),
            b1: Tensor::zeros(&[h]),
            w2: Init::KaimingNormal.weight(d, h, rng),
            b2: Tensor::zeros(&[d]),
            dw1: Tensor::zeros(&[h, d]),
            db1: Tensor::zeros(&[h]),
            dw2: Tensor::zeros(&[d, h]),
            db2: Tensor::zeros(&[d]),
            active: h,
            cache: None,
        }
    }

    fn full_hidden(&self) -> usize {
        self.w1.shape()[0]
    }

    /// Copies the active prefix slices: `(w1[:h, :], b1[:h], w2ᵀ[:h, :])`.
    /// The transpose of the active `w2` columns is materialised so both
    /// GEMMs run on contiguous rows; the copies are `O(h·d)` against
    /// `O(B·h·d)` compute.
    fn active_slices(&self) -> (Tensor, Tensor, Tensor) {
        let h = self.active;
        let d = self.w1.shape()[1];
        let w1a = self.w1.slice_rows(0, h);
        let b1a = Tensor::from_vec(self.b1.data()[..h].to_vec(), &[h]);
        let mut w2t = Tensor::zeros(&[h, d]);
        for jd in 0..d {
            let w2row = self.w2.row(jd);
            for (j, &v) in w2row.iter().enumerate().take(h) {
                *w2t.at_mut(j, jd) = v;
            }
        }
        (w1a, b1a, w2t)
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let h = self.active;
        let (w1a, b1a, w2t) = self.active_slices();
        // pre = x·W1ᵀ + b1 on the active prefix.
        let pre = x.matmul_nt(&w1a).add_row_broadcast(&b1a);
        let act = pre.relu();
        // y = x + scale·(relu(pre)·W2ᵀ + b2); the 1/√r-style rescale keeps
        // output magnitude comparable across widths (slimmable-net trick).
        let scale = (self.full_hidden() as f32 / h as f32).sqrt();
        let mut y = act.matmul(&w2t).add_row_broadcast(&self.b2);
        y.scale_assign(scale);
        y.add_assign(x);
        self.cache = Some(BlockCache { x: x.clone(), pre });
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("block backward before forward");
        let h = self.active;
        let d = dy.cols();
        let scale = (self.full_hidden() as f32 / h as f32).sqrt();
        let (w1a, _, w2t) = self.active_slices();

        let act = cache.pre.relu();

        // db2 += scale·Σ_b dy ; dW2[:, :h] += scale·dyᵀ·relu(pre).
        let mut dy_scaled = dy.clone();
        dy_scaled.scale_assign(scale);
        self.db2.add_assign(&dy_scaled.sum_rows());
        let dw2_slice = dy_scaled.matmul_tn(&act); // d × h
        for jd in 0..d {
            let src = dw2_slice.row(jd);
            let dst = self.dw2.row_mut(jd);
            for j in 0..h {
                dst[j] += src[j];
            }
        }

        // dpre = scale·(dy·W2[:, :h]) ⊙ 1[pre > 0].
        let mut dpre = dy_scaled.matmul_nt(&w2t); // B × h (w2t is h×d)
        for (g, &p) in dpre.data_mut().iter_mut().zip(cache.pre.data()) {
            if p <= 0.0 {
                *g = 0.0;
            }
        }

        // db1[:h], dW1[:h, :], and dx = dy + dpre·W1[:h, :].
        let db1_slice = dpre.sum_rows();
        for j in 0..h {
            self.db1.data_mut()[j] += db1_slice.data()[j];
        }
        let dw1_slice = dpre.matmul_tn(&cache.x); // h × d
        for j in 0..h {
            let src = dw1_slice.row(j);
            let dst = self.dw1.row_mut(j);
            for (dv, &sv) in dst.iter_mut().zip(src) {
                *dv += sv;
            }
        }
        let mut dx = dpre.matmul(&w1a);
        dx.add_assign(dy);
        dx
    }
}

/// Static architecture of a [`DenseModel`]: enough to rebuild an
/// identical (untrained) model elsewhere — the shape a transport job
/// ships to a remote executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DenseDims {
    pub input: usize,
    pub width: usize,
    pub blocks: usize,
    pub block_hidden: usize,
    pub classes: usize,
}

impl DenseDims {
    /// Builds a fresh model of this shape (deterministic seed-0 init;
    /// callers load real parameters on top).
    pub fn build(&self) -> DenseModel {
        DenseModel::new(self.input, self.width, self.blocks, self.block_hidden, self.classes, 0)
    }
}

/// Width-scalable dense residual MLP.
pub struct DenseModel {
    stem_w: Tensor,
    stem_b: Tensor,
    dstem_w: Tensor,
    dstem_b: Tensor,
    blocks: Vec<ScalableBlock>,
    head_w: Tensor,
    head_b: Tensor,
    dhead_w: Tensor,
    dhead_b: Tensor,
    stem_cache: Option<(Tensor, Tensor)>, // (input, post-relu trunk)
    head_cache: Option<Tensor>,
    width_ratio: f32,
}

impl DenseModel {
    /// `input → width` stem, `blocks` residual blocks of hidden `block_hidden`,
    /// `width → classes` head.
    pub fn new(
        input: usize,
        width: usize,
        blocks: usize,
        block_hidden: usize,
        classes: usize,
        seed: u64,
    ) -> Self {
        let mut rng = NebulaRng::seed(seed);
        Self {
            stem_w: Init::KaimingNormal.weight(width, input, &mut rng),
            stem_b: Tensor::zeros(&[width]),
            dstem_w: Tensor::zeros(&[width, input]),
            dstem_b: Tensor::zeros(&[width]),
            blocks: (0..blocks).map(|_| ScalableBlock::new(width, block_hidden, &mut rng)).collect(),
            head_w: Init::XavierUniform.weight(classes, width, &mut rng),
            head_b: Tensor::zeros(&[classes]),
            dhead_w: Tensor::zeros(&[classes, width]),
            dhead_b: Tensor::zeros(&[classes]),
            stem_cache: None,
            head_cache: None,
            width_ratio: 1.0,
        }
    }

    /// Sets the running width ratio `r ∈ (0, 1]`; every block activates its
    /// first `⌈r·H⌉` hidden units.
    pub fn set_width_ratio(&mut self, r: f32) {
        assert!(r > 0.0 && r <= 1.0, "width ratio {r} out of (0, 1]");
        self.width_ratio = r;
        for b in &mut self.blocks {
            let h = ((b.full_hidden() as f32 * r).ceil() as usize).max(1);
            b.active = h.min(b.full_hidden());
        }
    }

    /// The current width ratio.
    pub fn width_ratio(&self) -> f32 {
        self.width_ratio
    }

    /// Boolean mask over the flat parameter vector marking coordinates
    /// active at width ratio `r` (HeteroFL aggregation).
    pub fn mask_for_ratio(&self, r: f32) -> Vec<bool> {
        assert!(r > 0.0 && r <= 1.0);
        let mut mask = Vec::with_capacity(self.param_count());
        // Stem: always active.
        mask.extend(std::iter::repeat_n(true, self.stem_w.len() + self.stem_b.len()));
        for b in &self.blocks {
            let full = b.full_hidden();
            let h = ((full as f32 * r).ceil() as usize).clamp(1, full);
            let d = b.w1.shape()[1];
            // w1 rows 0..h active.
            for j in 0..full {
                mask.extend(std::iter::repeat_n(j < h, d));
            }
            // b1.
            for j in 0..full {
                mask.push(j < h);
            }
            // w2 columns 0..h active (row-major d×H).
            for _ in 0..d {
                for j in 0..full {
                    mask.push(j < h);
                }
            }
            // b2 always active.
            mask.extend(std::iter::repeat_n(true, b.b2.len()));
        }
        mask.extend(std::iter::repeat_n(true, self.head_w.len() + self.head_b.len()));
        debug_assert_eq!(mask.len(), self.param_count());
        mask
    }

    /// Number of parameters active at ratio `r`.
    pub fn active_params(&self, r: f32) -> usize {
        self.mask_for_ratio(r).iter().filter(|&&m| m).count()
    }

    /// The model's static architecture (see [`DenseDims`]).
    pub fn dims(&self) -> DenseDims {
        DenseDims {
            input: self.stem_w.shape()[1],
            width: self.stem_w.shape()[0],
            blocks: self.blocks.len(),
            block_hidden: self.blocks.first().map_or(0, ScalableBlock::full_hidden),
            classes: self.head_w.shape()[0],
        }
    }

    /// Deep copy (parameters only; caches reset).
    pub fn deep_clone(&self) -> DenseModel {
        let mut m = self.dims().build();
        m.load_param_vector(&self.param_vector());
        m.set_width_ratio(self.width_ratio);
        m
    }
}

impl Layer for DenseModel {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let pre = x.matmul_nt(&self.stem_w).add_row_broadcast(&self.stem_b);
        let trunk = pre.relu();
        self.stem_cache = Some((x.clone(), pre));
        let mut u = trunk;
        for b in &mut self.blocks {
            u = b.forward(&u);
        }
        self.head_cache = Some(u.clone());
        u.matmul_nt(&self.head_w).add_row_broadcast(&self.head_b)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let u = self.head_cache.as_ref().expect("backward before forward");
        self.dhead_w.add_assign(&grad.matmul_tn(u));
        self.dhead_b.add_assign(&grad.sum_rows());
        let mut du = grad.matmul(&self.head_w);
        for b in self.blocks.iter_mut().rev() {
            du = b.backward(&du);
        }
        let (x, pre) = self.stem_cache.as_ref().expect("backward before forward");
        // Through stem ReLU.
        let mut dpre = du;
        for (g, &p) in dpre.data_mut().iter_mut().zip(pre.data()) {
            if p <= 0.0 {
                *g = 0.0;
            }
        }
        self.dstem_w.add_assign(&dpre.matmul_tn(x));
        self.dstem_b.add_assign(&dpre.sum_rows());
        dpre.matmul(&self.stem_w)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.stem_w, &mut self.dstem_w);
        f(&mut self.stem_b, &mut self.dstem_b);
        for b in &mut self.blocks {
            f(&mut b.w1, &mut b.dw1);
            f(&mut b.b1, &mut b.db1);
            f(&mut b.w2, &mut b.dw2);
            f(&mut b.b2, &mut b.db2);
        }
        f(&mut self.head_w, &mut self.dhead_w);
        f(&mut self.head_b, &mut self.dhead_b);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.stem_w);
        f(&self.stem_b);
        for b in &self.blocks {
            f(&b.w1);
            f(&b.b1);
            f(&b.w2);
            f(&b.b2);
        }
        f(&self.head_w);
        f(&self.head_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_data::{SynthSpec, Synthesizer};
    use nebula_nn::Sgd;

    fn model() -> DenseModel {
        DenseModel::new(16, 24, 2, 32, 4, 1)
    }

    #[test]
    fn forward_shapes() {
        let mut m = model();
        let x = Tensor::ones(&[5, 16]);
        let y = m.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[5, 4]);
        assert!(y.all_finite());
    }

    #[test]
    fn gradcheck_full_width() {
        // eps 1e-3: at 2e-3 this seed lands a ReLU pre-activation within
        // the probe step of the kink and the fd estimate goes one-sided.
        nebula_nn::gradcheck::check_layer_gradients_with(Box::new(model()), 16, 2, 13, 1e-3, 5e-2);
    }

    #[test]
    fn gradcheck_half_width() {
        let mut m = model();
        m.set_width_ratio(0.5);
        nebula_nn::gradcheck::check_layer_gradients_with(Box::new(m), 16, 2, 14, 1e-3, 5e-2);
    }

    #[test]
    fn width_ratio_changes_output_and_cost() {
        let mut m = model();
        let x = Tensor::ones(&[2, 16]);
        let full = m.forward(&x, Mode::Eval);
        m.set_width_ratio(0.25);
        let narrow = m.forward(&x, Mode::Eval);
        assert_ne!(full.data(), narrow.data());
        assert!(m.active_params(0.25) < m.active_params(1.0));
    }

    #[test]
    fn mask_prefix_nesting() {
        let m = model();
        let small = m.mask_for_ratio(0.25);
        let big = m.mask_for_ratio(0.75);
        // Nested: every coordinate active at 0.25 is active at 0.75.
        for (s, b) in small.iter().zip(&big) {
            assert!(!s || *b, "masks are not nested");
        }
        assert_eq!(m.mask_for_ratio(1.0).iter().filter(|&&v| v).count(), m.param_count());
    }

    #[test]
    fn deep_clone_is_equivalent() {
        let mut m = model();
        let mut c = m.deep_clone();
        let x = Tensor::ones(&[3, 16]);
        nebula_tensor::assert_tensor_close(&m.forward(&x, Mode::Eval), &c.forward(&x, Mode::Eval), 1e-6);
    }

    #[test]
    fn learns_toy_task() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(2);
        let train = synth.sample(400, 0, &mut rng);
        let test = synth.sample(200, 0, &mut rng);
        let mut m = model();
        let mut opt = Sgd::with_momentum(0.03, 0.9);
        nebula_data::train_epochs(
            &mut m,
            &mut opt,
            &train,
            nebula_data::TrainConfig { epochs: 15, batch_size: 16, clip_norm: Some(5.0) },
            &mut rng,
        );
        let acc = nebula_data::evaluate_accuracy(&mut m, &test, 64);
        assert!(acc > 0.7, "dense model accuracy only {acc}");
    }

    #[test]
    fn narrow_width_still_learns() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(3);
        let train = synth.sample(400, 0, &mut rng);
        let test = synth.sample(200, 0, &mut rng);
        let mut m = model();
        m.set_width_ratio(0.25);
        let mut opt = Sgd::with_momentum(0.03, 0.9);
        nebula_data::train_epochs(
            &mut m,
            &mut opt,
            &train,
            nebula_data::TrainConfig { epochs: 15, batch_size: 16, clip_norm: Some(5.0) },
            &mut rng,
        );
        let acc = nebula_data::evaluate_accuracy(&mut m, &test, 64);
        assert!(acc > 0.55, "narrow model accuracy only {acc}");
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn rejects_zero_ratio() {
        model().set_width_ratio(0.0);
    }
}
