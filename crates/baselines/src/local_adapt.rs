//! Local Adaptation (LA): a device fine-tunes a private copy of the
//! pre-trained cloud model on its own fresh data, with no collaboration.
//! (Paper §6.1: 10 local epochs.)

use crate::dense::DenseModel;
use nebula_data::{Dataset, TrainConfig};
use nebula_nn::Sgd;
use nebula_tensor::NebulaRng;

/// Fine-tunes `model` in place on `data`; returns the final mean loss.
pub fn local_adapt(
    model: &mut DenseModel,
    data: &Dataset,
    epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut NebulaRng,
) -> f32 {
    let mut opt = Sgd::with_momentum(lr, 0.9);
    nebula_data::train_epochs(
        model,
        &mut opt,
        data,
        TrainConfig { epochs, batch_size, clip_norm: Some(5.0) },
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_data::{SynthSpec, Synthesizer};
    use nebula_nn::Layer;

    #[test]
    fn adapting_to_a_subtask_beats_the_generic_model_there() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(1);
        // Pre-train on the full task.
        let proxy = synth.sample(400, 0, &mut rng);
        let mut cloud = DenseModel::new(16, 24, 2, 32, 4, 7);
        let mut opt = Sgd::with_momentum(0.03, 0.9);
        nebula_data::train_epochs(
            &mut cloud,
            &mut opt,
            &proxy,
            TrainConfig { epochs: 10, batch_size: 16, clip_norm: Some(5.0) },
            &mut rng,
        );

        // Device sees only classes {0,1} in a shifted context.
        let local = synth.sample_classes(120, &[0, 1], 2, &mut rng);
        let test = synth.sample_classes(150, &[0, 1], 2, &mut rng);
        let mut device = cloud.deep_clone();
        let before = nebula_data::evaluate_accuracy(&mut device, &test, 64);
        local_adapt(&mut device, &local, 10, 16, 0.02, &mut rng);
        let after = nebula_data::evaluate_accuracy(&mut device, &test, 64);
        assert!(after >= before - 0.02, "LA regressed: {before} -> {after}");
        assert!(after > 0.7, "LA accuracy only {after}");
        // Cloud model itself is untouched.
        assert_eq!(cloud.param_vector().len(), device.param_vector().len());
    }

    #[test]
    fn empty_data_is_a_noop() {
        let mut m = DenseModel::new(8, 8, 1, 8, 2, 1);
        let before = m.param_vector();
        let mut rng = NebulaRng::seed(2);
        let empty = Dataset::empty(8, 2);
        local_adapt(&mut m, &empty, 5, 16, 0.1, &mut rng);
        assert_eq!(m.param_vector(), before);
    }
}
