//! AdaptiveNet-style baseline (Wen et al., MobiCom'23): post-deployment
//! architecture adaptation from a cloud-pre-trained multi-branch supernet.
//!
//! Our rendition: the cloud pre-trains the width-scalable [`DenseModel`]
//! at several branch widths (sandwich training, as slimmable supernets
//! do). A device profiles its resources, picks the widest branch that
//! fits, and fine-tunes that branch locally — on-device adaptation with a
//! flexible accuracy–latency tradeoff but **no knowledge sharing across
//! devices**, which is exactly the gap the paper's Table 1 shows.

use crate::dense::DenseModel;
use nebula_data::{Dataset, TrainConfig};
use nebula_nn::{cross_entropy, Layer, Mode, Optimizer, Sgd};
use nebula_tensor::NebulaRng;

/// Branch widths of the supernet.
pub const BRANCH_RATIOS: [f32; 3] = [1.0, 0.5, 0.25];

/// The multi-branch supernet plus branch-selection logic.
pub struct AdaptiveNet {
    supernet: DenseModel,
}

impl AdaptiveNet {
    /// Wraps a (possibly pre-trained) dense model as the supernet.
    pub fn new(supernet: DenseModel) -> Self {
        Self { supernet }
    }

    /// Sandwich pre-training: each batch takes gradient steps at every
    /// branch width so all branches stay functional.
    pub fn pretrain(
        &mut self,
        proxy: &Dataset,
        epochs: usize,
        batch_size: usize,
        lr: f32,
        rng: &mut NebulaRng,
    ) {
        let mut opt = Sgd::with_momentum(lr, 0.9);
        for _ in 0..epochs {
            for (x, y) in proxy.batches(batch_size, rng) {
                for &r in &BRANCH_RATIOS {
                    self.supernet.set_width_ratio(r);
                    self.supernet.zero_grad();
                    let logits = self.supernet.forward(&x, Mode::Train);
                    let (_, grad) = cross_entropy(&logits, &y);
                    self.supernet.backward(&grad);
                    self.supernet.clip_grad_norm(5.0);
                    opt.step(&mut self.supernet);
                }
            }
        }
        self.supernet.set_width_ratio(1.0);
    }

    /// Picks the widest branch whose parameter count fits the budget.
    pub fn select_branch(&self, budget_params: usize) -> f32 {
        for &r in &BRANCH_RATIOS {
            if self.supernet.active_params(r) <= budget_params {
                return r;
            }
        }
        *BRANCH_RATIOS.last().unwrap()
    }

    /// Instantiates a device-side copy running branch `ratio`.
    pub fn branch_model(&self, ratio: f32) -> DenseModel {
        let mut m = self.supernet.deep_clone();
        m.set_width_ratio(ratio);
        m
    }

    /// Like [`AdaptiveNet::branch_model`], but the branch's active slice
    /// travels as a real `nebula-wire` frame on the device's download
    /// channel. Returns the decoded device model and the measured frame
    /// bytes (AdaptiveNet's only communication: branches never upload).
    pub fn branch_model_wire(
        &self,
        ratio: f32,
        device: u64,
        pool: &mut nebula_wire::DensePool,
    ) -> (DenseModel, u64) {
        let params = self.supernet.param_vector();
        let mask = self.supernet.mask_for_ratio(ratio);
        let slice: Vec<f32> = params.iter().zip(&mask).filter_map(|(&v, &m)| m.then_some(v)).collect();
        let mut decoded = Vec::new();
        let bytes =
            pool.send_down(device, &slice, &mut decoded).expect("pristine in-process frame must decode");
        let mut full = params;
        let mut it = decoded.iter();
        for (v, &m) in full.iter_mut().zip(&mask) {
            if m {
                *v = *it.next().expect("decoded slice shorter than mask");
            }
        }
        let mut m = self.supernet.deep_clone();
        m.load_param_vector(&full);
        m.set_width_ratio(ratio);
        (m, bytes)
    }

    /// The underlying supernet.
    pub fn supernet(&self) -> &DenseModel {
        &self.supernet
    }

    /// Mutable supernet access (evaluation requires `&mut`).
    pub fn supernet_mut(&mut self) -> &mut DenseModel {
        &mut self.supernet
    }

    /// Device-local adaptation of a branch copy (returns the adapted model).
    pub fn adapt_on_device(
        &self,
        ratio: f32,
        local_data: &Dataset,
        epochs: usize,
        batch_size: usize,
        lr: f32,
        rng: &mut NebulaRng,
    ) -> DenseModel {
        let mut device = self.branch_model(ratio);
        let mut opt = Sgd::with_momentum(lr, 0.9);
        nebula_data::train_epochs(
            &mut device,
            &mut opt,
            local_data,
            TrainConfig { epochs, batch_size, clip_norm: Some(5.0) },
            rng,
        );
        device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_data::{SynthSpec, Synthesizer};

    #[test]
    fn sandwich_training_keeps_all_branches_usable() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(1);
        let proxy = synth.sample(400, 0, &mut rng);
        let test = synth.sample(200, 0, &mut rng);

        let mut an = AdaptiveNet::new(DenseModel::new(16, 24, 2, 32, 4, 7));
        an.pretrain(&proxy, 8, 16, 0.03, &mut rng);

        for &r in &BRANCH_RATIOS {
            let mut branch = an.branch_model(r);
            let acc = nebula_data::evaluate_accuracy(&mut branch, &test, 64);
            assert!(acc > 0.55, "branch {r} accuracy only {acc}");
        }
    }

    #[test]
    fn branch_selection_respects_budget() {
        let an = AdaptiveNet::new(DenseModel::new(16, 24, 2, 32, 4, 7));
        let full = an.supernet().param_count();
        assert_eq!(an.select_branch(full), 1.0);
        assert_eq!(an.select_branch(0), 0.25);
        let mid = an.supernet().active_params(0.5);
        assert!(an.select_branch(mid) <= 0.5 + 1e-6);
    }

    #[test]
    fn device_adaptation_does_not_touch_supernet() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(2);
        let an = AdaptiveNet::new(DenseModel::new(16, 24, 1, 16, 4, 3));
        let before = an.supernet().param_vector();
        let local = synth.sample(80, 0, &mut rng);
        let _device = an.adapt_on_device(0.5, &local, 3, 16, 0.05, &mut rng);
        assert_eq!(an.supernet().param_vector(), before);
    }
}
