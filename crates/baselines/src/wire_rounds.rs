//! Wire-measured variants of the baseline rounds.
//!
//! [`fedavg_round`](crate::fedavg_round) and
//! [`heterofl_round`](crate::heterofl_round) count bytes analytically
//! (`4 × params`); these variants move the parameters through real
//! `nebula-wire` frames on per-device [`DensePool`] channels, train from
//! the *decoded* payload, average the *decoded* uploads, and return the
//! measured per-direction frame bytes. With the `Raw` codec the decoded
//! values are bit-identical to the originals, so training and averaging
//! match the analytic rounds exactly; with `DeltaFp32`/`QuantInt8` the
//! measured bytes shrink as channels warm up.

use crate::dense::DenseModel;
use crate::fedavg::FedAvgUpdate;
use crate::heterofl::HeteroFlUpdate;
use nebula_data::{Dataset, TrainConfig};
use nebula_nn::{Layer, Sgd};
use nebula_tensor::NebulaRng;
use nebula_wire::DensePool;
use rayon::prelude::*;

/// Measured frame bytes moved in one round, split by direction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireBytes {
    pub down: u64,
    pub up: u64,
}

impl WireBytes {
    pub fn total(&self) -> u64 {
        self.down + self.up
    }
}

/// One FedAvg round over real frames. `device_ids[k]` is the stable
/// channel identity of participant `k` (channels warm up per device, so
/// ids must be stable across rounds for delta codecs to pay off).
#[allow(clippy::too_many_arguments)]
pub fn fedavg_round_wire(
    server: &mut DenseModel,
    device_data: &[&Dataset],
    device_ids: &[u64],
    pool: &mut DensePool,
    local_epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut NebulaRng,
) -> WireBytes {
    assert!(!device_data.is_empty(), "FedAvg round with no participants");
    assert_eq!(device_data.len(), device_ids.len(), "data/id length mismatch");

    let server_params = server.param_vector();
    let mut bytes = WireBytes::default();

    // Downloads are sequential (the pool is one mutable endpoint); each
    // device trains from what it actually decoded.
    let mut downloads: Vec<Vec<f32>> = Vec::with_capacity(device_ids.len());
    for &id in device_ids {
        let mut decoded = Vec::new();
        bytes.down +=
            pool.send_down(id, &server_params, &mut decoded).expect("pristine in-process frame must decode");
        downloads.push(decoded);
    }

    // Fork per-device RNG streams sequentially, then train in parallel
    // (identical results for any thread count).
    let rngs: Vec<NebulaRng> = (0..device_data.len()).map(|k| rng.fork(k as u64)).collect();
    let updates: Vec<FedAvgUpdate> = device_data
        .par_iter()
        .zip(downloads)
        .zip(rngs)
        .map(|((data, decoded), mut drng)| {
            // Keep inner kernels sequential inside the client-parallel
            // section (see nebula_tensor::par).
            nebula_tensor::par::sequential(|| {
                let mut local = server.deep_clone();
                local.load_param_vector(&decoded);
                let mut opt = Sgd::with_momentum(lr, 0.9);
                nebula_data::train_epochs(
                    &mut local,
                    &mut opt,
                    data,
                    TrainConfig { epochs: local_epochs, batch_size, clip_norm: Some(5.0) },
                    &mut drng,
                );
                FedAvgUpdate { params: local.param_vector(), volume: data.len() }
            })
        })
        .collect();

    // Uploads: the server averages what it decoded, not what was sent.
    let len = updates[0].params.len();
    let total: f32 = updates.iter().map(|u| u.volume as f32).sum();
    let mut avg = vec![0.0f32; len];
    let mut decoded_up = Vec::new();
    for (u, &id) in updates.iter().zip(device_ids) {
        assert_eq!(u.params.len(), len);
        bytes.up +=
            pool.send_up(id, &u.params, &mut decoded_up).expect("pristine in-process frame must decode");
        let w = u.volume as f32 / total;
        for (a, &p) in avg.iter_mut().zip(&decoded_up) {
            *a += w * p;
        }
    }
    server.load_param_vector(&avg);
    bytes
}

/// One HeteroFL round over real frames: only the active slice of each
/// device's width level travels, in both directions.
#[allow(clippy::too_many_arguments)]
pub fn heterofl_round_wire(
    server: &mut DenseModel,
    device_data: &[&Dataset],
    device_ratios: &[f32],
    device_ids: &[u64],
    pool: &mut DensePool,
    local_epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut NebulaRng,
) -> WireBytes {
    assert_eq!(device_data.len(), device_ratios.len(), "data/ratio length mismatch");
    assert_eq!(device_data.len(), device_ids.len(), "data/id length mismatch");
    assert!(!device_data.is_empty(), "HeteroFL round with no participants");

    let base = server.param_vector();
    let mut bytes = WireBytes::default();

    // Downloads: ship the active slice, then splice the decoded values
    // into a full-length vector for the local model. A device whose width
    // level changed since last round changes its slice length; the dense
    // channel falls back to a raw (cold) frame transparently.
    let masks: Vec<Vec<bool>> = device_ratios.iter().map(|&r| server.mask_for_ratio(r)).collect();
    let mut downloads: Vec<Vec<f32>> = Vec::with_capacity(device_ids.len());
    let mut decoded = Vec::new();
    for (&id, mask) in device_ids.iter().zip(&masks) {
        let slice: Vec<f32> = base.iter().zip(mask).filter_map(|(&v, &m)| m.then_some(v)).collect();
        bytes.down +=
            pool.send_down(id, &slice, &mut decoded).expect("pristine in-process frame must decode");
        let mut full = base.clone();
        let mut it = decoded.iter();
        for (v, &m) in full.iter_mut().zip(mask) {
            if m {
                *v = *it.next().expect("decoded slice shorter than mask");
            }
        }
        downloads.push(full);
    }

    let rngs: Vec<NebulaRng> = (0..device_data.len()).map(|k| rng.fork(k as u64)).collect();
    let updates: Vec<HeteroFlUpdate> = device_data
        .par_iter()
        .zip(device_ratios.par_iter())
        .zip(downloads)
        .zip(rngs)
        .map(|(((data, &ratio), full), mut drng)| {
            nebula_tensor::par::sequential(|| {
                let mut local = server.deep_clone();
                local.load_param_vector(&full);
                local.set_width_ratio(ratio);
                let mut opt = Sgd::with_momentum(lr, 0.9);
                nebula_data::train_epochs(
                    &mut local,
                    &mut opt,
                    data,
                    TrainConfig { epochs: local_epochs, batch_size, clip_norm: Some(5.0) },
                    &mut drng,
                );
                HeteroFlUpdate { ratio, params: local.param_vector(), volume: data.len() }
            })
        })
        .collect();

    // Uploads: active slice only; the averaged coordinates are the ones
    // the server actually decoded.
    let len = base.len();
    let mut acc = vec![0.0f32; len];
    let mut weight = vec![0.0f32; len];
    for ((u, &id), mask) in updates.iter().zip(device_ids).zip(&masks) {
        let slice: Vec<f32> = u.params.iter().zip(mask).filter_map(|(&v, &m)| m.then_some(v)).collect();
        bytes.up += pool.send_up(id, &slice, &mut decoded).expect("pristine in-process frame must decode");
        let w = u.volume as f32;
        let mut it = decoded.iter();
        for i in 0..len {
            if mask[i] {
                acc[i] += w * it.next().expect("decoded slice shorter than mask");
                weight[i] += w;
            }
        }
    }
    let merged: Vec<f32> =
        (0..len).map(|i| if weight[i] > 0.0 { acc[i] / weight[i] } else { base[i] }).collect();
    server.load_param_vector(&merged);
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fedavg_round, heterofl_round};
    use nebula_data::{SynthSpec, Synthesizer};
    use nebula_wire::CodecKind;

    fn server() -> DenseModel {
        DenseModel::new(16, 24, 2, 32, 4, 7)
    }

    #[test]
    fn raw_wire_round_matches_analytic_fedavg_bitwise() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng_a = NebulaRng::seed(11);
        let mut rng_b = NebulaRng::seed(11);
        let d1 = synth.sample_classes(80, &[0, 1], 0, &mut NebulaRng::seed(5));
        let d2 = synth.sample_classes(80, &[2, 3], 0, &mut NebulaRng::seed(6));

        let mut s_analytic = server();
        let mut s_wire = server();
        let analytic = fedavg_round(&mut s_analytic, &[&d1, &d2], 2, 16, 0.03, &mut rng_a);
        let mut pool = DensePool::raw();
        let wire = fedavg_round_wire(&mut s_wire, &[&d1, &d2], &[0, 1], &mut pool, 2, 16, 0.03, &mut rng_b);
        assert_eq!(s_analytic.param_vector(), s_wire.param_vector());
        // Measured bytes = analytic payload bytes + framing overhead.
        assert!(wire.total() > analytic);
        assert!(wire.total() < analytic + 2 * 2 * 128);
    }

    #[test]
    fn raw_wire_round_matches_analytic_heterofl_bitwise() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng_a = NebulaRng::seed(21);
        let mut rng_b = NebulaRng::seed(21);
        let d1 = synth.sample(80, 0, &mut NebulaRng::seed(7));
        let d2 = synth.sample(80, 0, &mut NebulaRng::seed(8));

        let mut s_analytic = server();
        let mut s_wire = server();
        heterofl_round(&mut s_analytic, &[&d1, &d2], &[1.0, 0.25], 2, 16, 0.03, &mut rng_a);
        let mut pool = DensePool::raw();
        heterofl_round_wire(
            &mut s_wire,
            &[&d1, &d2],
            &[1.0, 0.25],
            &[0, 1],
            &mut pool,
            2,
            16,
            0.03,
            &mut rng_b,
        );
        assert_eq!(s_analytic.param_vector(), s_wire.param_vector());
    }

    #[test]
    fn quantized_rounds_move_fewer_bytes() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let d = synth.sample(60, 0, &mut NebulaRng::seed(9));

        let mut s_raw = server();
        let mut raw_pool = DensePool::raw();
        let raw =
            fedavg_round_wire(&mut s_raw, &[&d], &[0], &mut raw_pool, 1, 16, 0.03, &mut NebulaRng::seed(31));
        let mut s_q8 = server();
        let mut q8_pool = DensePool::new(CodecKind::QuantInt8, 0.0);
        let q8 =
            fedavg_round_wire(&mut s_q8, &[&d], &[0], &mut q8_pool, 1, 16, 0.03, &mut NebulaRng::seed(31));
        assert!(q8.total() * 3 < raw.total(), "int8 bytes {} not well below raw {}", q8.total(), raw.total());
    }

    #[test]
    fn delta_rounds_shrink_once_channels_warm() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let d = synth.sample(60, 0, &mut NebulaRng::seed(10));
        let mut s = server();
        let mut pool = DensePool::new(CodecKind::DeltaFp32, 0.0);
        let mut rng = NebulaRng::seed(41);
        // Zero local epochs: the model does not move, so every warm frame
        // is an empty delta — the measured size must collapse.
        let cold = fedavg_round_wire(&mut s, &[&d], &[0], &mut pool, 0, 16, 0.01, &mut rng);
        let warm = fedavg_round_wire(&mut s, &[&d], &[0], &mut pool, 0, 16, 0.01, &mut rng);
        assert!(
            warm.total() < cold.total() / 4,
            "warm round {} not well below cold {}",
            warm.total(),
            cold.total()
        );
    }
}
