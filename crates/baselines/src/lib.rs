//! # nebula-baselines
//!
//! The comparison systems from the paper's evaluation (§6.1):
//!
//! * **No Adaptation (NA)** — devices run the pre-trained cloud model
//!   untouched ([`DenseModel`] + nothing).
//! * **Local Adaptation (LA)** — each device fine-tunes a private copy of
//!   the cloud model on its own data ([`mod@local_adapt`]).
//! * **AdaptiveNet-style (AN)** — a multi-branch supernet pre-trained on
//!   the cloud; a device picks the widest branch its resources allow and
//!   adapts it locally ([`adaptivenet`]).
//! * **FedAvg (FA)** — classic federated averaging of the full dense
//!   model ([`fedavg`]).
//! * **HeteroFL (HFL)** — resource-aware federated learning over nested
//!   width-scaled sub-models; overlapping coordinates are averaged
//!   ([`heterofl`]).
//!
//! All five share [`DenseModel`], a residual-MLP with *width scaling*:
//! every block can run at a hidden-width ratio `r ∈ (0, 1]` using only the
//! first `⌈r·H⌉` hidden units — the nested-sub-model structure HeteroFL
//! and slimmable/branchy networks rely on.

pub mod adaptivenet;
pub mod dense;
pub mod fedavg;
pub mod heterofl;
pub mod local_adapt;
pub mod transport_rounds;
pub mod wire_rounds;

pub use adaptivenet::{AdaptiveNet, BRANCH_RATIOS};
pub use dense::{DenseDims, DenseModel};
pub use fedavg::{fedavg_round, FedAvgUpdate};
pub use heterofl::{heterofl_round, ratio_for_budget, HeteroFlUpdate, HETEROFL_RATIOS};
pub use local_adapt::local_adapt;
pub use transport_rounds::{
    fedavg_round_transport, heterofl_round_transport, DenseJobRunner, TransportRound,
};
pub use wire_rounds::{fedavg_round_wire, heterofl_round_wire, WireBytes};
