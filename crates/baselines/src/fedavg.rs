//! FedAvg (McMahan et al., AISTATS'17): volume-weighted averaging of
//! full-model parameters after local SGD.

use crate::dense::DenseModel;
use nebula_data::{Dataset, TrainConfig};
use nebula_nn::{Layer, Sgd};
use nebula_tensor::NebulaRng;
use rayon::prelude::*;

/// One device's contribution to a FedAvg round.
pub struct FedAvgUpdate {
    /// Full flat parameter vector after local training.
    pub params: Vec<f32>,
    /// Local data volume.
    pub volume: usize,
}

impl FedAvgUpdate {
    /// Bytes on the wire (edge → cloud).
    pub fn bytes(&self) -> u64 {
        (self.params.len() * 4) as u64
    }
}

/// Runs one FedAvg communication round: each sampled device receives the
/// full model, trains locally, and the server replaces the model with the
/// volume-weighted average. Returns total communication bytes
/// (down + up for every participant).
pub fn fedavg_round(
    server: &mut DenseModel,
    device_data: &[&Dataset],
    local_epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut NebulaRng,
) -> u64 {
    assert!(!device_data.is_empty(), "FedAvg round with no participants");
    let payload_bytes = (server.param_count() * 4) as u64;

    // Per-device RNG streams are forked sequentially so the result is
    // identical for any thread count; local training is then
    // embarrassingly parallel across participants.
    let rngs: Vec<NebulaRng> = (0..device_data.len()).map(|k| rng.fork(k as u64)).collect();
    let updates: Vec<FedAvgUpdate> = device_data
        .par_iter()
        .zip(rngs)
        .map(|(data, mut drng)| {
            // Keep inner kernels sequential inside the client-parallel
            // section (see nebula_tensor::par).
            nebula_tensor::par::sequential(|| {
                let mut local = server.deep_clone();
                let mut opt = Sgd::with_momentum(lr, 0.9);
                nebula_data::train_epochs(
                    &mut local,
                    &mut opt,
                    data,
                    TrainConfig { epochs: local_epochs, batch_size, clip_norm: Some(5.0) },
                    &mut drng,
                );
                FedAvgUpdate { params: local.param_vector(), volume: data.len() }
            })
        })
        .collect();
    let comm: u64 = updates.iter().map(|u| payload_bytes + u.bytes()).sum();

    let total: f32 = updates.iter().map(|u| u.volume as f32).sum();
    let len = updates[0].params.len();
    let mut avg = vec![0.0f32; len];
    for u in &updates {
        assert_eq!(u.params.len(), len);
        let w = u.volume as f32 / total;
        for (a, &p) in avg.iter_mut().zip(&u.params) {
            *a += w * p;
        }
    }
    server.load_param_vector(&avg);
    comm
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_data::{SynthSpec, Synthesizer};

    #[test]
    fn round_improves_global_accuracy() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(1);
        let d1 = synth.sample_classes(150, &[0, 1], 0, &mut rng);
        let d2 = synth.sample_classes(150, &[2, 3], 0, &mut rng);
        let test = synth.sample(200, 0, &mut rng);

        let mut server = DenseModel::new(16, 24, 2, 32, 4, 7);
        let before = nebula_data::evaluate_accuracy(&mut server, &test, 64);
        for _ in 0..8 {
            fedavg_round(&mut server, &[&d1, &d2], 3, 16, 0.03, &mut rng);
        }
        let after = nebula_data::evaluate_accuracy(&mut server, &test, 64);
        assert!(after > before + 0.2, "FedAvg failed to learn: {before} -> {after}");
    }

    #[test]
    fn single_device_round_equals_local_training_average() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(2);
        let d = synth.sample(100, 0, &mut rng);
        let mut server = DenseModel::new(16, 24, 1, 16, 4, 3);
        let before = server.param_vector();
        fedavg_round(&mut server, &[&d], 1, 16, 0.01, &mut rng);
        // With one device, the server simply adopts its parameters.
        assert_ne!(server.param_vector(), before);
    }

    #[test]
    fn comm_counts_up_and_down() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(3);
        let d = synth.sample(50, 0, &mut rng);
        let mut server = DenseModel::new(16, 24, 1, 16, 4, 3);
        let expected = 2 * (server.param_count() * 4) as u64 * 3;
        let comm = fedavg_round(&mut server, &[&d, &d, &d], 1, 16, 0.01, &mut rng);
        assert_eq!(comm, expected);
    }

    #[test]
    fn averaging_weights_follow_volume() {
        // Devices with identical data but different volumes: result is a
        // weighted average — verify the weighting arithmetic via a direct
        // construction.
        let mut server = DenseModel::new(4, 4, 1, 4, 2, 5);
        let base = server.param_vector();
        // Build updates by hand through the public API: zero-epoch local
        // training leaves params unchanged, so instead verify volumes via
        // the exposed FedAvgUpdate math.
        let u1 = FedAvgUpdate { params: base.iter().map(|v| v + 1.0).collect(), volume: 3 };
        let u2 = FedAvgUpdate { params: base.iter().map(|v| v + 5.0).collect(), volume: 1 };
        let total = 4.0f32;
        let avg: Vec<f32> = base.iter().map(|v| v + (3.0 * 1.0 + 1.0 * 5.0) / total).collect();
        let mut manual = vec![0.0f32; base.len()];
        for u in [&u1, &u2] {
            let w = u.volume as f32 / total;
            for (m, &p) in manual.iter_mut().zip(&u.params) {
                *m += w * p;
            }
        }
        for (m, a) in manual.iter().zip(&avg) {
            nebula_tensor::assert_close(*m, *a, 1e-5);
        }
        server.load_param_vector(&manual);
    }
}
