//! Transport-routed variants of the dense baseline rounds, plus the
//! executor that runs dense jobs on the far side.
//!
//! [`fedavg_round_transport`] / [`heterofl_round_transport`] mirror the
//! wire rounds ([`crate::wire_rounds`]) exactly, except the per-device
//! local training is handed to a [`Transport`] instead of an inline
//! rayon loop. All channel state stays coordinator-side — `send_down` /
//! `send_up` still move every frame through the [`DensePool`], so the
//! measured bytes and the decoded values are identical for *every*
//! codec; only the already-decoded parameter vector travels inside the
//! job. With a loopback transport over [`DenseJobRunner`] the result is
//! bit-identical to the wire rounds (test-pinned); with a socket
//! transport the same bits come back from a separate worker process.
//!
//! A job the transport loses (worker crash, deadline) drops that device
//! from the round's average — the same degrade-not-hang semantics the
//! collaborative strategies apply — and is counted in the returned
//! `lost` tally so the caller can record fates.

use crate::dense::{DenseDims, DenseModel};
use crate::fedavg::FedAvgUpdate;
use crate::heterofl::HeteroFlUpdate;
use crate::wire_rounds::WireBytes;
use nebula_core::net::{DispatchJob, JobResult, JobRunner, JobSpec, TrainParams, Transport, TransportError};
use nebula_data::{Dataset, TrainConfig};
use nebula_nn::{Layer, Sgd};
use nebula_tensor::NebulaRng;
use nebula_wire::DensePool;

/// Executes [`JobSpec::Dense`] jobs: rebuild the model from its shipped
/// dimensions, load the decoded parameters, train, return the trained
/// vector. The exact closure body of the wire rounds, relocated behind
/// the [`JobRunner`] seam.
pub struct DenseJobRunner;

impl JobRunner for DenseJobRunner {
    fn run(&self, job: &DispatchJob) -> Result<JobResult, TransportError> {
        let JobSpec::Dense { input, width, blocks, block_hidden, classes, ratio, params } = &job.spec else {
            return Err(TransportError::Rejected("dense runner cannot execute modular jobs".into()));
        };
        let dims = DenseDims {
            input: *input,
            width: *width,
            blocks: *blocks,
            block_hidden: *block_hidden,
            classes: *classes,
        };
        let mut local = dims.build();
        if params.len() != local.param_count() {
            return Err(TransportError::Rejected(format!(
                "dense job ships {} params, model wants {}",
                params.len(),
                local.param_count()
            )));
        }
        let mut rng = NebulaRng::from_state(job.rng_state)
            .ok_or_else(|| TransportError::Rejected("degenerate rng state".into()))?;
        local.load_param_vector(params);
        local.set_width_ratio(*ratio);
        let mut opt = Sgd::with_momentum(job.train.lr, 0.9);
        nebula_data::train_epochs(
            &mut local,
            &mut opt,
            &job.data,
            TrainConfig { epochs: job.train.epochs, batch_size: job.train.batch_size, clip_norm: Some(5.0) },
            &mut rng,
        );
        Ok(JobResult::Params(local.param_vector()))
    }
}

/// What a transport-routed round moved and lost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportRound {
    pub bytes: WireBytes,
    /// Devices whose jobs the transport failed to bring back.
    pub lost: u64,
}

#[allow(clippy::too_many_arguments)]
fn dense_job(
    round: usize,
    device: u64,
    dims: DenseDims,
    ratio: f32,
    params: Vec<f32>,
    rng: &mut NebulaRng,
    stream: u64,
    train: TrainParams,
    data: Dataset,
) -> DispatchJob {
    DispatchJob {
        round,
        device,
        spec: JobSpec::Dense {
            input: dims.input,
            width: dims.width,
            blocks: dims.blocks,
            block_hidden: dims.block_hidden,
            classes: dims.classes,
            ratio,
            params,
        },
        rng_state: rng.fork(stream).state(),
        train,
        data,
    }
}

/// One FedAvg round with training routed through `transport`. Matches
/// [`crate::fedavg_round_wire`] bit-for-bit when every job returns
/// (loopback, healthy workers). `round` is the caller's round counter;
/// it rides in every job so the frames on the wire stay distinguishable
/// across rounds (training itself never reads it).
#[allow(clippy::too_many_arguments)]
pub fn fedavg_round_transport(
    server: &mut DenseModel,
    device_data: &[&Dataset],
    device_ids: &[u64],
    pool: &mut DensePool,
    local_epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut NebulaRng,
    round: usize,
    transport: &mut dyn Transport,
) -> TransportRound {
    assert!(!device_data.is_empty(), "FedAvg round with no participants");
    assert_eq!(device_data.len(), device_ids.len(), "data/id length mismatch");

    let server_params = server.param_vector();
    let dims = server.dims();
    let mut bytes = WireBytes::default();

    // Downloads stay coordinator-side: channel state (delta baselines,
    // quantizer residuals) and measured bytes are codec-faithful, and
    // the *decoded* vector is what ships inside the job.
    let mut downloads: Vec<Vec<f32>> = Vec::with_capacity(device_ids.len());
    for &id in device_ids {
        let mut decoded = Vec::new();
        bytes.down +=
            pool.send_down(id, &server_params, &mut decoded).expect("pristine in-process frame must decode");
        downloads.push(decoded);
    }

    let train = TrainParams { epochs: local_epochs, batch_size, lr };
    let jobs: Vec<DispatchJob> = device_ids
        .iter()
        .zip(device_data)
        .zip(downloads)
        .enumerate()
        // Stream label `k` (participant index), exactly like the wire
        // round's sequential `rng.fork(k)` calls.
        .map(|(k, ((&id, data), decoded))| {
            dense_job(round, id, dims, 1.0, decoded, rng, k as u64, train, (*data).clone())
        })
        .collect();
    let results = transport.round_trip(jobs);

    let mut lost = 0u64;
    let mut updates: Vec<(u64, FedAvgUpdate)> = Vec::with_capacity(results.len());
    for ((res, &id), data) in results.into_iter().zip(device_ids).zip(device_data) {
        match res {
            Ok(JobResult::Params(params)) => updates.push((id, FedAvgUpdate { params, volume: data.len() })),
            Ok(JobResult::Frame(_)) | Err(_) => lost += 1,
        }
    }
    if updates.is_empty() {
        // Every job lost: the round degrades to a no-op instead of
        // averaging nothing (or hanging).
        return TransportRound { bytes, lost };
    }

    let len = updates[0].1.params.len();
    let total: f32 = updates.iter().map(|(_, u)| u.volume as f32).sum();
    let mut avg = vec![0.0f32; len];
    let mut decoded_up = Vec::new();
    for (id, u) in &updates {
        assert_eq!(u.params.len(), len);
        bytes.up +=
            pool.send_up(*id, &u.params, &mut decoded_up).expect("pristine in-process frame must decode");
        let w = u.volume as f32 / total;
        for (a, &p) in avg.iter_mut().zip(&decoded_up) {
            *a += w * p;
        }
    }
    server.load_param_vector(&avg);
    TransportRound { bytes, lost }
}

/// One HeteroFL round with training routed through `transport`. Matches
/// [`crate::heterofl_round_wire`] bit-for-bit when every job returns.
/// `round` tags the dispatched jobs like in [`fedavg_round_transport`].
#[allow(clippy::too_many_arguments)]
pub fn heterofl_round_transport(
    server: &mut DenseModel,
    device_data: &[&Dataset],
    device_ratios: &[f32],
    device_ids: &[u64],
    pool: &mut DensePool,
    local_epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut NebulaRng,
    round: usize,
    transport: &mut dyn Transport,
) -> TransportRound {
    assert_eq!(device_data.len(), device_ratios.len(), "data/ratio length mismatch");
    assert_eq!(device_data.len(), device_ids.len(), "data/id length mismatch");
    assert!(!device_data.is_empty(), "HeteroFL round with no participants");

    let base = server.param_vector();
    let dims = server.dims();
    let mut bytes = WireBytes::default();

    // Downloads: active slice over the device's channel, spliced into a
    // full vector coordinator-side — the job ships the decoded result.
    let masks: Vec<Vec<bool>> = device_ratios.iter().map(|&r| server.mask_for_ratio(r)).collect();
    let mut downloads: Vec<Vec<f32>> = Vec::with_capacity(device_ids.len());
    let mut decoded = Vec::new();
    for (&id, mask) in device_ids.iter().zip(&masks) {
        let slice: Vec<f32> = base.iter().zip(mask).filter_map(|(&v, &m)| m.then_some(v)).collect();
        bytes.down +=
            pool.send_down(id, &slice, &mut decoded).expect("pristine in-process frame must decode");
        let mut full = base.clone();
        let mut it = decoded.iter();
        for (v, &m) in full.iter_mut().zip(mask) {
            if m {
                *v = *it.next().expect("decoded slice shorter than mask");
            }
        }
        downloads.push(full);
    }

    let train = TrainParams { epochs: local_epochs, batch_size, lr };
    let jobs: Vec<DispatchJob> = device_ids
        .iter()
        .zip(device_data)
        .zip(device_ratios)
        .zip(downloads)
        .enumerate()
        .map(|(k, (((&id, data), &ratio), full))| {
            dense_job(round, id, dims, ratio, full, rng, k as u64, train, (*data).clone())
        })
        .collect();
    let results = transport.round_trip(jobs);

    let mut lost = 0u64;
    let mut updates: Vec<(u64, usize, HeteroFlUpdate)> = Vec::with_capacity(results.len());
    for (k, (res, data)) in results.into_iter().zip(device_data).enumerate() {
        match res {
            Ok(JobResult::Params(params)) => updates.push((
                device_ids[k],
                k,
                HeteroFlUpdate { ratio: device_ratios[k], params, volume: data.len() },
            )),
            Ok(JobResult::Frame(_)) | Err(_) => lost += 1,
        }
    }
    if updates.is_empty() {
        return TransportRound { bytes, lost };
    }

    let len = base.len();
    let mut acc = vec![0.0f32; len];
    let mut weight = vec![0.0f32; len];
    for (id, k, u) in &updates {
        let mask = &masks[*k];
        let slice: Vec<f32> = u.params.iter().zip(mask).filter_map(|(&v, &m)| m.then_some(v)).collect();
        bytes.up += pool.send_up(*id, &slice, &mut decoded).expect("pristine in-process frame must decode");
        let w = u.volume as f32;
        let mut it = decoded.iter();
        for i in 0..len {
            if mask[i] {
                acc[i] += w * it.next().expect("decoded slice shorter than mask");
                weight[i] += w;
            }
        }
    }
    let merged: Vec<f32> =
        (0..len).map(|i| if weight[i] > 0.0 { acc[i] / weight[i] } else { base[i] }).collect();
    server.load_param_vector(&merged);
    TransportRound { bytes, lost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire_rounds::{fedavg_round_wire, heterofl_round_wire};
    use nebula_core::net::Loopback;
    use nebula_data::{SynthSpec, Synthesizer};
    use std::sync::Arc;

    fn server() -> DenseModel {
        DenseModel::new(16, 24, 2, 32, 4, 7)
    }

    #[test]
    fn loopback_fedavg_round_matches_wire_round_bitwise() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let d1 = synth.sample_classes(80, &[0, 1], 0, &mut NebulaRng::seed(5));
        let d2 = synth.sample_classes(80, &[2, 3], 0, &mut NebulaRng::seed(6));

        let mut s_wire = server();
        let mut wire_pool = DensePool::raw();
        let wire = fedavg_round_wire(
            &mut s_wire,
            &[&d1, &d2],
            &[0, 1],
            &mut wire_pool,
            2,
            16,
            0.03,
            &mut NebulaRng::seed(11),
        );

        let mut s_t = server();
        let mut t_pool = DensePool::raw();
        let mut transport = Loopback::new(Arc::new(DenseJobRunner));
        // A nonzero round tag must not perturb the trajectory.
        let routed = fedavg_round_transport(
            &mut s_t,
            &[&d1, &d2],
            &[0, 1],
            &mut t_pool,
            2,
            16,
            0.03,
            &mut NebulaRng::seed(11),
            3,
            &mut transport,
        );
        assert_eq!(routed.lost, 0);
        assert_eq!(routed.bytes, wire);
        assert_eq!(s_wire.param_vector(), s_t.param_vector());
    }

    #[test]
    fn loopback_heterofl_round_matches_wire_round_bitwise() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let d1 = synth.sample(80, 0, &mut NebulaRng::seed(7));
        let d2 = synth.sample(80, 0, &mut NebulaRng::seed(8));

        let mut s_wire = server();
        let mut wire_pool = DensePool::raw();
        let wire = heterofl_round_wire(
            &mut s_wire,
            &[&d1, &d2],
            &[1.0, 0.25],
            &[0, 1],
            &mut wire_pool,
            2,
            16,
            0.03,
            &mut NebulaRng::seed(21),
        );

        let mut s_t = server();
        let mut t_pool = DensePool::raw();
        let mut transport = Loopback::new(Arc::new(DenseJobRunner));
        let routed = heterofl_round_transport(
            &mut s_t,
            &[&d1, &d2],
            &[1.0, 0.25],
            &[0, 1],
            &mut t_pool,
            2,
            16,
            0.03,
            &mut NebulaRng::seed(21),
            5,
            &mut transport,
        );
        assert_eq!(routed.lost, 0);
        assert_eq!(routed.bytes, wire);
        assert_eq!(s_wire.param_vector(), s_t.param_vector());
    }

    /// A transport that loses every job: the round must degrade (server
    /// unchanged, lost counted), never hang or panic.
    struct BlackHole;
    impl Transport for BlackHole {
        fn kind(&self) -> &'static str {
            "black-hole"
        }
        fn round_trip(&mut self, jobs: Vec<DispatchJob>) -> Vec<Result<JobResult, TransportError>> {
            jobs.iter().map(|_| Err(TransportError::Closed("worker died".into()))).collect()
        }
    }

    #[test]
    fn lost_jobs_degrade_the_round_instead_of_hanging() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let d = synth.sample(40, 0, &mut NebulaRng::seed(9));
        let mut s = server();
        let before = s.param_vector();
        let mut pool = DensePool::raw();
        let out = fedavg_round_transport(
            &mut s,
            &[&d],
            &[0],
            &mut pool,
            1,
            16,
            0.03,
            &mut NebulaRng::seed(3),
            0,
            &mut BlackHole,
        );
        assert_eq!(out.lost, 1);
        assert_eq!(s.param_vector(), before, "an all-lost round must leave the server untouched");
    }
}
