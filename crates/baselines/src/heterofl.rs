//! HeteroFL (Diao et al., ICLR'21): federated learning over *nested*
//! width-scaled sub-models.
//!
//! Each device trains the prefix sub-model its resources allow
//! (`ratio ∈ HETEROFL_RATIOS`); the server averages every coordinate over
//! the devices whose sub-model contains it, keeping its own value for
//! uncovered coordinates. Communication carries only the active slice.

use crate::dense::DenseModel;
use nebula_data::{Dataset, TrainConfig};
use nebula_nn::{Layer, Sgd};
use nebula_tensor::NebulaRng;
use rayon::prelude::*;

/// The nested width levels HeteroFL assigns to device classes.
pub const HETEROFL_RATIOS: [f32; 4] = [1.0, 0.5, 0.25, 0.125];

/// Picks the widest HeteroFL level whose parameter count fits
/// `budget_params`.
pub fn ratio_for_budget(model: &DenseModel, budget_params: usize) -> f32 {
    for &r in &HETEROFL_RATIOS {
        if model.active_params(r) <= budget_params {
            return r;
        }
    }
    *HETEROFL_RATIOS.last().unwrap()
}

/// One device's contribution to a HeteroFL round.
pub struct HeteroFlUpdate {
    /// The device's width level.
    pub ratio: f32,
    /// Full-length parameter vector (inactive coordinates unchanged from
    /// the server copy — they are excluded by the mask during averaging).
    pub params: Vec<f32>,
    pub volume: usize,
}

impl HeteroFlUpdate {
    /// Bytes on the wire: only the active slice travels.
    pub fn bytes(&self, model: &DenseModel) -> u64 {
        (model.active_params(self.ratio) * 4) as u64
    }
}

/// Runs one HeteroFL round. `device_ratios[k]` is device `k`'s width level.
/// Returns total communication bytes (down + up per participant, active
/// slices only).
pub fn heterofl_round(
    server: &mut DenseModel,
    device_data: &[&Dataset],
    device_ratios: &[f32],
    local_epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut NebulaRng,
) -> u64 {
    assert_eq!(device_data.len(), device_ratios.len(), "data/ratio length mismatch");
    assert!(!device_data.is_empty(), "HeteroFL round with no participants");

    // Fork per-device streams sequentially, then train in parallel
    // (identical results for any thread count).
    let rngs: Vec<NebulaRng> = (0..device_data.len()).map(|k| rng.fork(k as u64)).collect();
    let updates: Vec<HeteroFlUpdate> = device_data
        .par_iter()
        .zip(device_ratios.par_iter())
        .zip(rngs)
        .map(|((data, &ratio), mut drng)| {
            // Keep inner kernels sequential inside the client-parallel
            // section (see nebula_tensor::par).
            nebula_tensor::par::sequential(|| {
                let mut local = server.deep_clone();
                local.set_width_ratio(ratio);
                let mut opt = Sgd::with_momentum(lr, 0.9);
                nebula_data::train_epochs(
                    &mut local,
                    &mut opt,
                    data,
                    TrainConfig { epochs: local_epochs, batch_size, clip_norm: Some(5.0) },
                    &mut drng,
                );
                HeteroFlUpdate { ratio, params: local.param_vector(), volume: data.len() }
            })
        })
        .collect();
    let comm: u64 = updates.iter().map(|u| 2 * (server.active_params(u.ratio) * 4) as u64).sum();

    // Coordinate-wise weighted average over covering devices.
    let base = server.param_vector();
    let len = base.len();
    let mut acc = vec![0.0f32; len];
    let mut weight = vec![0.0f32; len];
    for u in &updates {
        let mask = server.mask_for_ratio(u.ratio);
        let w = u.volume as f32;
        for i in 0..len {
            if mask[i] {
                acc[i] += w * u.params[i];
                weight[i] += w;
            }
        }
    }
    let merged: Vec<f32> =
        (0..len).map(|i| if weight[i] > 0.0 { acc[i] / weight[i] } else { base[i] }).collect();
    server.load_param_vector(&merged);
    comm
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_data::{SynthSpec, Synthesizer};

    fn server() -> DenseModel {
        DenseModel::new(16, 24, 2, 32, 4, 7)
    }

    #[test]
    fn ratio_for_budget_is_monotone() {
        let m = server();
        let full = m.param_count();
        assert_eq!(ratio_for_budget(&m, full), 1.0);
        let r_small = ratio_for_budget(&m, m.active_params(0.25));
        assert!(r_small <= 0.25 + 1e-6);
        // Impossible budget degrades to the smallest level.
        assert_eq!(ratio_for_budget(&m, 0), 0.125);
    }

    #[test]
    fn heterogeneous_round_improves_accuracy() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(1);
        let d1 = synth.sample_classes(150, &[0, 1], 0, &mut rng);
        let d2 = synth.sample_classes(150, &[2, 3], 0, &mut rng);
        let test = synth.sample(200, 0, &mut rng);

        let mut s = server();
        let before = nebula_data::evaluate_accuracy(&mut s, &test, 64);
        for _ in 0..15 {
            heterofl_round(&mut s, &[&d1, &d2], &[1.0, 0.5], 3, 16, 0.03, &mut rng);
        }
        let after = nebula_data::evaluate_accuracy(&mut s, &test, 64);
        // Label-skewed participants make HeteroFL converge slowly (the
        // paper's 1.83× extra rounds) — require progress, not mastery.
        assert!(after > before + 0.1, "HeteroFL failed to learn: {before} -> {after}");
    }

    #[test]
    fn uncovered_coordinates_keep_server_values() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(2);
        let d = synth.sample(60, 0, &mut rng);
        let mut s = server();
        let before = s.param_vector();
        let mask_small = s.mask_for_ratio(0.125);
        heterofl_round(&mut s, &[&d], &[0.125], 2, 16, 0.05, &mut rng);
        let after = s.param_vector();
        for i in 0..before.len() {
            if !mask_small[i] {
                assert_eq!(before[i], after[i], "uncovered coord {i} changed");
            }
        }
        // And some covered coordinate did change.
        assert!(
            before.iter().zip(&after).zip(&mask_small).any(|((b, a), &m)| m && b != a),
            "no covered coordinate moved"
        );
    }

    #[test]
    fn comm_bytes_smaller_for_narrow_devices() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(3);
        let d = synth.sample(50, 0, &mut rng);
        let mut s1 = server();
        let mut s2 = server();
        let full = heterofl_round(&mut s1, &[&d], &[1.0], 1, 16, 0.01, &mut rng);
        let narrow = heterofl_round(&mut s2, &[&d], &[0.125], 1, 16, 0.01, &mut rng);
        assert!(narrow < full / 3, "narrow comm {narrow} vs full {full}");
    }
}
