//! Property tests for the wire subsystem: codec round trips, quantization
//! error bounds, error-feedback decay, corruption rejection, and keyed
//! frame authentication.

use nebula_wire::codec::{self, CodecKind};
use nebula_wire::frame::{FrameBuilder, FrameKind, FrameView, ModuleKey, MAC_LEN, TRAILER_LEN};
use nebula_wire::{crc32, FrameKey};
use proptest::prelude::*;

fn arb_values(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, 1..=max_len)
}

/// Encode one record through a full frame and hand back (frame bytes,
/// decoded payload) — exercises builder, parser, and codec together.
fn frame_round_trip(
    vals: &[f32],
    codec_kind: CodecKind,
    baseline: Option<&[f32]>,
    threshold: f32,
) -> (Vec<u8>, Vec<f32>) {
    let mut buf = Vec::new();
    let mut b = FrameBuilder::begin(&mut buf, FrameKind::Update, codec_kind);
    let key = ModuleKey::module(1, 2);
    let mut used = codec_kind;
    match codec_kind {
        CodecKind::Raw => b.record(key, CodecKind::Raw, 0, vals.len(), |o| codec::encode_raw(vals, o)),
        CodecKind::DeltaFp32 => {
            let base = baseline.expect("delta needs a baseline");
            b.record(key, CodecKind::DeltaFp32, 7, vals.len(), |o| {
                used = codec::encode_delta(vals, base, threshold, o);
            });
        }
        CodecKind::QuantInt8 => {
            let mut residual = Vec::new();
            b.record(key, CodecKind::QuantInt8, 0, vals.len(), |o| {
                codec::encode_q8(vals, &mut residual, o);
            });
        }
    }
    b.finish();

    let view = FrameView::parse(&buf).expect("pristine frame must parse");
    let rec = *view.find(key).expect("record present");
    let mut out = Vec::new();
    match used {
        CodecKind::Raw => codec::decode_raw(rec.payload, rec.elems, &mut out).unwrap(),
        CodecKind::DeltaFp32 => {
            codec::decode_delta(rec.payload, rec.elems, baseline.unwrap(), &mut out).unwrap()
        }
        CodecKind::QuantInt8 => codec::decode_q8(rec.payload, rec.elems, &mut out).unwrap(),
    }
    drop(view);
    (buf, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn raw_round_trip_is_bit_exact(vals in arb_values(512)) {
        let (_, out) = frame_round_trip(&vals, CodecKind::Raw, None, 0.0);
        prop_assert_eq!(out.len(), vals.len());
        for (a, b) in vals.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "raw codec must be bit-exact");
        }
    }

    #[test]
    fn delta_round_trip_is_exact_at_zero_threshold(
        base in arb_values(512),
        noise in arb_values(512),
    ) {
        let n = base.len().min(noise.len());
        let base = &base[..n];
        let vals: Vec<f32> = base.iter().zip(&noise[..n]).map(|(b, d)| b + d * 0.01).collect();
        let (_, out) = frame_round_trip(&vals, CodecKind::DeltaFp32, Some(base), 0.0);
        prop_assert_eq!(out.len(), vals.len());
        for (v, o) in vals.iter().zip(&out) {
            // baseline + (v - baseline) in f32: exact because decode adds
            // back the identical f32 difference.
            prop_assert_eq!(v.to_bits(), o.to_bits(), "delta apply must reproduce values");
        }
    }

    #[test]
    fn delta_threshold_bounds_per_coordinate_error(
        base in arb_values(256),
        threshold in 0.0f32..0.5,
    ) {
        let vals: Vec<f32> = base.iter().map(|b| b * 1.01 + 0.1).collect();
        let (_, out) = frame_round_trip(&vals, CodecKind::DeltaFp32, Some(&base), threshold);
        for (v, o) in vals.iter().zip(&out) {
            prop_assert!((v - o).abs() <= threshold + 1e-6,
                "dropped delta exceeded threshold: |{} - {}| > {}", v, o, threshold);
        }
    }

    #[test]
    fn delta_never_beats_raw_on_size(vals in arb_values(256), base in arb_values(256)) {
        let n = vals.len().min(base.len());
        let mut enc = Vec::new();
        let used = codec::encode_delta(&vals[..n], &base[..n], 0.0, &mut enc);
        // Raw fallback guarantees the payload is at most the raw size.
        prop_assert!(enc.len() <= 4 * n, "payload {} > raw {}", enc.len(), 4 * n);
        if used == CodecKind::DeltaFp32 {
            prop_assert!(enc.len() < 4 * n);
        }
    }

    #[test]
    fn q8_round_trip_respects_quantization_bound(vals in arb_values(512)) {
        let max_abs = vals.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = max_abs / 127.0;
        let (_, out) = frame_round_trip(&vals, CodecKind::QuantInt8, None, 0.0);
        prop_assert_eq!(out.len(), vals.len());
        for (v, o) in vals.iter().zip(&out) {
            // Fresh residual (zero carry): error ≤ scale/2 plus rounding.
            prop_assert!((v - o).abs() <= scale * 0.5 + scale * 1e-3 + 1e-7,
                "|{} - {}| > scale/2 = {}", v, o, scale * 0.5);
        }
    }

    #[test]
    fn q8_error_feedback_shrinks_accumulated_error(vals in arb_values(128), rounds in 2usize..8) {
        // Send the same tensor `rounds` times with error feedback: the
        // accumulated decode must approach `rounds * vals` with total
        // error bounded by a single quantization step, i.e. the average
        // per-round error decays like 1/rounds.
        let mut residual = Vec::new();
        let mut accum = vec![0.0f32; vals.len()];
        let mut first_err = 0.0f32;
        for round in 1..=rounds {
            let mut enc = Vec::new();
            codec::encode_q8(&vals, &mut residual, &mut enc);
            let mut dec = Vec::new();
            codec::decode_q8(&enc, vals.len(), &mut dec).unwrap();
            for (a, d) in accum.iter_mut().zip(&dec) {
                *a += d;
            }
            let avg_err = accum
                .iter()
                .zip(&vals)
                .map(|(a, v)| (a - v * round as f32).abs())
                .fold(0.0f32, f32::max)
                / round as f32;
            if round == 1 {
                first_err = avg_err;
            } else if round == rounds {
                // By the last round the running average error collapsed to
                // at most the single-round error (typically ~1/rounds of it).
                prop_assert!(avg_err <= first_err + 1e-6,
                    "error feedback failed to shrink: round1 {} vs round{} {}",
                    first_err, rounds, avg_err);
                // Residual carry stays bounded by one quantization step.
                let max_abs = vals.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let scale = max_abs / 127.0;
                for r in &residual {
                    prop_assert!(r.abs() <= scale * 0.5 + 1e-6);
                }
            }
        }
    }

    #[test]
    fn any_corruption_is_rejected(vals in arb_values(256), at in 0usize..10_000, bit in 0u8..8) {
        let (frame, _) = frame_round_trip(&vals, CodecKind::Raw, None, 0.0);
        let mut corrupted = frame.clone();
        let idx = at % corrupted.len();
        corrupted[idx] ^= 1 << bit;
        prop_assert!(FrameView::parse(&corrupted).is_err(),
            "byte flip at {} bit {} accepted", idx, bit);
        // And the pristine frame still parses.
        prop_assert!(FrameView::parse(&frame).is_ok());
    }

    #[test]
    fn authed_round_trip_for_any_payload_and_key(
        vals in arb_values(256),
        key_bytes in proptest::collection::vec(0u8..=255u8, 16..=16),
        device in 0u64..1000,
    ) {
        let key_bytes: [u8; 16] = key_bytes.as_slice().try_into().unwrap();
        let key = FrameKey::from_bytes(&key_bytes).derive(device);
        let mut buf = Vec::new();
        let mut b = FrameBuilder::begin(&mut buf, FrameKind::Update, CodecKind::Raw);
        let mk = ModuleKey::module(1, 2);
        b.record(mk, CodecKind::Raw, 0, vals.len(), |o| codec::encode_raw(vals.as_slice(), o));
        b.finish_authed(&key);

        let view = FrameView::parse_keyed(&buf, Some(&key)).expect("authed frame must parse with its key");
        let rec = *view.find(mk).expect("record present");
        let mut out = Vec::new();
        codec::decode_raw(rec.payload, rec.elems, &mut out).unwrap();
        drop(view);
        prop_assert_eq!(out.len(), vals.len());
        for (a, b) in vals.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // An unkeyed parser rejects the authed frame (no downgrade), and a
        // sibling device's key never verifies it.
        prop_assert!(FrameView::parse(&buf).is_err());
        let sibling = FrameKey::from_bytes(&key_bytes).derive(device + 1);
        prop_assert!(FrameView::parse_keyed(&buf, Some(&sibling)).is_err());
    }

    #[test]
    fn mac_rejects_any_tamper_even_with_fixed_crc(
        vals in arb_values(256),
        key_bytes in proptest::collection::vec(0u8..=255u8, 16..=16),
        at in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let key_bytes: [u8; 16] = key_bytes.as_slice().try_into().unwrap();
        let key = FrameKey::from_bytes(&key_bytes).derive(3);
        let mut buf = Vec::new();
        let mut b = FrameBuilder::begin(&mut buf, FrameKind::Update, CodecKind::Raw);
        let mk = ModuleKey::module(0, 0);
        b.record(mk, CodecKind::Raw, 0, vals.len(), |o| codec::encode_raw(vals.as_slice(), o));
        b.finish_authed(&key);

        // Forge: flip one covered byte, then recompute the CRC so only the
        // MAC stands between the forgery and a successful decode.
        let body_end = buf.len() - TRAILER_LEN - MAC_LEN;
        let mut forged = buf.clone();
        let idx = at % body_end;
        forged[idx] ^= 1 << bit;
        let crc = crc32(&forged[..body_end]).to_le_bytes();
        forged[body_end..body_end + TRAILER_LEN].copy_from_slice(&crc);
        prop_assert!(FrameView::parse_keyed(&forged, Some(&key)).is_err(),
            "forged byte {} bit {} accepted", idx, bit);
        // The pristine frame still parses.
        prop_assert!(FrameView::parse_keyed(&buf, Some(&key)).is_ok());
    }

    #[test]
    fn v1_frames_still_decode_without_a_key(vals in arb_values(256)) {
        // Backward compatibility: unauthenticated frames keep parsing via
        // both entry points when no key is supplied.
        let (frame, _) = frame_round_trip(&vals, CodecKind::Raw, None, 0.0);
        prop_assert!(FrameView::parse(&frame).is_ok());
        prop_assert!(FrameView::parse_keyed(&frame, None).is_ok());
        // But a keyed receiver refuses them (downgrade protection).
        let key = FrameKey::from_bytes(&[7u8; 16]).derive(0);
        prop_assert!(FrameView::parse_keyed(&frame, Some(&key)).is_err());
    }

    #[test]
    fn planned_bytes_upper_bounds_measured_payload(vals in arb_values(256)) {
        for kind in [CodecKind::Raw, CodecKind::QuantInt8] {
            let mut enc = Vec::new();
            match kind {
                CodecKind::Raw => codec::encode_raw(&vals, &mut enc),
                CodecKind::QuantInt8 => {
                    let mut residual = Vec::new();
                    codec::encode_q8(&vals, &mut residual, &mut enc);
                }
                CodecKind::DeltaFp32 => unreachable!(),
            }
            prop_assert!(enc.len() as u64 <= kind.planned_bytes(vals.len()),
                "{} measured {} > planned {}", kind.name(), enc.len(),
                kind.planned_bytes(vals.len()));
        }
    }
}
