//! Serving-plane handshake frames: hello / hello-ack.
//!
//! The first frame on every worker connection is a [`Hello`] announcing
//! protocol version, requested codec and executor capacity; the
//! coordinator answers with a [`HelloAck`] carrying the accepted codec
//! and an opaque run-configuration JSON blob (the coordinator side owns
//! its schema — this crate only moves the bytes).
//!
//! Authentication reuses the per-device MAC machinery: when the
//! deployment holds a master [`FrameKey`], both hello and ack are
//! finished under the dedicated handshake subkey ([`hello_key`]), so a
//! connecting worker proves knowledge of the shared secret before any
//! job traffic flows, and [`FrameView::parse_keyed`]'s strict two-way
//! semantics reject both unauthenticated hellos at a keyed coordinator
//! and keyed hellos at an open one.

use crate::codec::CodecKind;
use crate::frame::{FrameBuilder, FrameKind, FrameView, ModuleKey};
use crate::siphash::FrameKey;
use crate::WireError;

/// Handshake protocol revision carried in every [`Hello`].
pub const HELLO_PROTO: u8 = 1;

/// Domain-separation label of the handshake subkey; outside the device
/// id space the simulator uses, so no device key collides with it.
const HELLO_STREAM: u64 = 0x4E42_5748_454C_4C4F; // "NBWHELLO"

/// Control-record slots used by the handshake messages.
const SLOT_HELLO: ModuleKey = ModuleKey { layer: 0xFFFC, module: 0 };
const SLOT_ACK: ModuleKey = ModuleKey { layer: 0xFFFC, module: 1 };

/// Derives the handshake MAC key from a deployment master key.
pub fn hello_key(master: &FrameKey) -> FrameKey {
    master.derive(HELLO_STREAM)
}

/// Worker → coordinator connection announcement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Handshake revision ([`HELLO_PROTO`]); the coordinator rejects
    /// revisions it does not speak.
    pub proto: u8,
    /// Codec the worker proposes for job traffic.
    pub codec: CodecKind,
    /// Executor threads the worker offers (scheduling hint).
    pub threads: u16,
    /// Human-readable worker name (logs/telemetry only).
    pub name: String,
}

/// Coordinator → worker handshake reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HelloAck {
    /// Whether the worker was admitted; when false `reason` says why and
    /// the coordinator closes the connection after writing the ack.
    pub accepted: bool,
    /// Negotiated codec (may differ from the proposal; the coordinator
    /// decides).
    pub codec: CodecKind,
    /// Coordinator-assigned worker id, unique per run.
    pub worker_id: u64,
    /// Rejection reason (empty on accept).
    pub reason: String,
    /// Opaque run-configuration JSON for the worker's executors (model
    /// architecture, wire config, train hyper-parameters).
    pub config_json: String,
}

/// Encodes `hello` into `buf` (cleared) as an authenticated-when-keyed
/// control frame. Returns the frame length.
pub fn encode_hello(buf: &mut Vec<u8>, hello: &Hello, key: Option<&FrameKey>) -> usize {
    let mut b = FrameBuilder::begin(buf, FrameKind::Control, hello.codec);
    b.record(SLOT_HELLO, CodecKind::Raw, 0, 0, |o| {
        o.push(hello.proto);
        o.push(hello.codec.id());
        o.extend_from_slice(&hello.threads.to_le_bytes());
        let name = hello.name.as_bytes();
        o.extend_from_slice(&(name.len().min(u16::MAX as usize) as u16).to_le_bytes());
        o.extend_from_slice(&name[..name.len().min(u16::MAX as usize)]);
    });
    match key {
        Some(k) => b.finish_authed(&hello_key(k)),
        None => b.finish(),
    }
}

/// Decodes a [`Hello`] frame, verifying its MAC when `key` is set
/// (strict in both directions, like all keyed parsing).
pub fn decode_hello(bytes: &[u8], key: Option<&FrameKey>) -> Result<Hello, WireError> {
    let derived = key.map(hello_key);
    let view = FrameView::parse_keyed(bytes, derived.as_ref())?;
    if view.kind != FrameKind::Control {
        return Err(WireError::BadKind(view.kind.id()));
    }
    let rec = view.find(SLOT_HELLO).ok_or(WireError::Truncated { needed: 1, have: 0 })?;
    let p = rec.payload;
    if p.len() < 6 {
        return Err(WireError::Truncated { needed: 6, have: p.len() });
    }
    let proto = p[0];
    let codec = CodecKind::from_id(p[1])?;
    let threads = u16::from_le_bytes([p[2], p[3]]);
    let name_len = u16::from_le_bytes([p[4], p[5]]) as usize;
    if p.len() < 6 + name_len {
        return Err(WireError::Truncated { needed: 6 + name_len, have: p.len() });
    }
    let name = String::from_utf8_lossy(&p[6..6 + name_len]).into_owned();
    Ok(Hello { proto, codec, threads, name })
}

/// Encodes `ack` into `buf` (cleared). Returns the frame length.
pub fn encode_hello_ack(buf: &mut Vec<u8>, ack: &HelloAck, key: Option<&FrameKey>) -> usize {
    let mut b = FrameBuilder::begin(buf, FrameKind::Control, ack.codec);
    b.record(SLOT_ACK, CodecKind::Raw, 0, 0, |o| {
        o.push(ack.accepted as u8);
        o.push(ack.codec.id());
        o.extend_from_slice(&ack.worker_id.to_le_bytes());
        let reason = ack.reason.as_bytes();
        o.extend_from_slice(&(reason.len().min(u16::MAX as usize) as u16).to_le_bytes());
        o.extend_from_slice(&reason[..reason.len().min(u16::MAX as usize)]);
        let json = ack.config_json.as_bytes();
        o.extend_from_slice(&(json.len() as u32).to_le_bytes());
        o.extend_from_slice(json);
    });
    match key {
        Some(k) => b.finish_authed(&hello_key(k)),
        None => b.finish(),
    }
}

/// Decodes a [`HelloAck`] frame, verifying its MAC when `key` is set.
pub fn decode_hello_ack(bytes: &[u8], key: Option<&FrameKey>) -> Result<HelloAck, WireError> {
    let derived = key.map(hello_key);
    let view = FrameView::parse_keyed(bytes, derived.as_ref())?;
    if view.kind != FrameKind::Control {
        return Err(WireError::BadKind(view.kind.id()));
    }
    let rec = view.find(SLOT_ACK).ok_or(WireError::Truncated { needed: 1, have: 0 })?;
    let p = rec.payload;
    if p.len() < 12 {
        return Err(WireError::Truncated { needed: 12, have: p.len() });
    }
    let accepted = p[0] != 0;
    let codec = CodecKind::from_id(p[1])?;
    let worker_id = u64::from_le_bytes(p[2..10].try_into().expect("8 bytes"));
    let reason_len = u16::from_le_bytes([p[10], p[11]]) as usize;
    if p.len() < 12 + reason_len + 4 {
        return Err(WireError::Truncated { needed: 12 + reason_len + 4, have: p.len() });
    }
    let reason = String::from_utf8_lossy(&p[12..12 + reason_len]).into_owned();
    let at = 12 + reason_len;
    let json_len = u32::from_le_bytes(p[at..at + 4].try_into().expect("4 bytes")) as usize;
    if p.len() < at + 4 + json_len {
        return Err(WireError::Truncated { needed: at + 4 + json_len, have: p.len() });
    }
    let config_json = String::from_utf8_lossy(&p[at + 4..at + 4 + json_len]).into_owned();
    Ok(HelloAck { accepted, codec, worker_id, reason, config_json })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello() -> Hello {
        Hello { proto: HELLO_PROTO, codec: CodecKind::Raw, threads: 4, name: "worker-a".into() }
    }

    fn ack() -> HelloAck {
        HelloAck {
            accepted: true,
            codec: CodecKind::Raw,
            worker_id: 3,
            reason: String::new(),
            config_json: "{\"input_dim\":16}".into(),
        }
    }

    #[test]
    fn hello_round_trip_unauthenticated() {
        let mut buf = Vec::new();
        encode_hello(&mut buf, &hello(), None);
        assert_eq!(decode_hello(&buf, None).unwrap(), hello());
        let mut buf = Vec::new();
        encode_hello_ack(&mut buf, &ack(), None);
        assert_eq!(decode_hello_ack(&buf, None).unwrap(), ack());
    }

    #[test]
    fn hello_auth_negotiation_is_strict_both_ways() {
        let master = FrameKey::from_bytes(&[0x3C; 16]);
        let mut buf = Vec::new();
        encode_hello(&mut buf, &hello(), Some(&master));
        // Keyed encode, keyed decode: accepted.
        assert_eq!(decode_hello(&buf, Some(&master)).unwrap(), hello());
        // A coordinator without the key cannot admit a keyed hello...
        assert!(matches!(decode_hello(&buf, None), Err(WireError::AuthMissing)));
        // ...a keyed coordinator rejects open hellos...
        let mut open = Vec::new();
        encode_hello(&mut open, &hello(), None);
        assert!(matches!(decode_hello(&open, Some(&master)), Err(WireError::AuthMissing)));
        // ...and the wrong master key never verifies.
        let wrong = FrameKey::from_bytes(&[0x11; 16]);
        assert!(matches!(decode_hello(&buf, Some(&wrong)), Err(WireError::AuthMismatch { .. })));
    }

    #[test]
    fn ack_carries_rejection_and_config() {
        let rej = HelloAck {
            accepted: false,
            codec: CodecKind::Raw,
            worker_id: 0,
            reason: "codec not supported over sockets".into(),
            config_json: String::new(),
        };
        let mut buf = Vec::new();
        encode_hello_ack(&mut buf, &rej, None);
        let back = decode_hello_ack(&buf, None).unwrap();
        assert!(!back.accepted);
        assert_eq!(back.reason, rej.reason);
    }

    #[test]
    fn non_control_frames_are_rejected() {
        let mut buf = Vec::new();
        let b = FrameBuilder::begin(&mut buf, FrameKind::Update, CodecKind::Raw);
        b.finish();
        assert!(decode_hello(&buf, None).is_err());
        assert!(decode_hello_ack(&buf, None).is_err());
    }
}
