//! Error type shared by framing, codecs, and the baseline registry.

use crate::frame::ModuleKey;
use std::fmt;

/// Everything that can go wrong while parsing or decoding a frame.
///
/// `CrcMismatch` is the variant transit corruption is expected to hit:
/// random byte flips on a frame almost surely break the trailer checksum
/// before they produce a structurally invalid record walk. Callers treat
/// any `WireError` on decode as a failed transfer attempt and route it
/// through their retry path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// First four bytes are not the `NBW1` magic.
    BadMagic,
    /// Protocol version this build does not speak.
    BadVersion(u8),
    /// Unknown frame kind id.
    BadKind(u8),
    /// Unknown codec id in the header or a record.
    UnknownCodec(u8),
    /// Buffer ends before the declared structure does.
    Truncated { needed: usize, have: usize },
    /// A declared length disagrees with the bytes present.
    LengthMismatch { expected: usize, got: usize },
    /// Trailer checksum does not match the frame contents.
    CrcMismatch { expected: u32, got: u32 },
    /// The frame's MAC does not verify under the receiver's key: the
    /// frame was forged or tampered with by someone who could recompute
    /// the CRC but does not hold the key.
    AuthMismatch { expected: u64, got: u64 },
    /// Authentication state disagrees with the receiver's expectation:
    /// either the frame demands a key the receiver does not hold, or the
    /// receiver requires authentication and the frame carries none
    /// (downgrade-stripping protection).
    AuthMissing,
    /// A delta record references a baseline version the decoder no longer
    /// (or does not yet) hold for this module.
    StaleBaseline { key: ModuleKey, version: u64 },
    /// A delta record references a module the decoder has no baseline for
    /// at all.
    MissingBaseline { key: ModuleKey },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::UnknownCodec(c) => write!(f, "unknown codec id {c}"),
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            WireError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
            WireError::CrcMismatch { expected, got } => {
                write!(f, "crc mismatch: expected {expected:#010x}, got {got:#010x}")
            }
            WireError::AuthMismatch { expected, got } => {
                write!(f, "auth mismatch: frame MAC {expected:#018x}, computed {got:#018x}")
            }
            WireError::AuthMissing => {
                write!(f, "authentication required but frame and key disagree")
            }
            WireError::StaleBaseline { key, version } => {
                write!(
                    f,
                    "stale baseline: module ({}, {}) at version {version} is not retained",
                    key.layer, key.module
                )
            }
            WireError::MissingBaseline { key } => {
                write!(f, "missing baseline for module ({}, {})", key.layer, key.module)
            }
        }
    }
}

impl std::error::Error for WireError {}
