//! Dense-blob channel for the flat-model baselines (FedAvg, HeteroFL,
//! AdaptiveNet).
//!
//! Those strategies exchange whole parameter vectors rather than modular
//! records, so the channel abstraction is one sender→receiver link whose
//! shared state (the last-acked baseline) advances only on a successful,
//! CRC-clean decode. A failed decode (transit corruption) leaves the
//! state untouched, so the sender can resend the identical frame and the
//! delta still applies.

use crate::codec::{self, CodecKind};
use crate::frame::{FrameBuilder, FrameKind, FrameView, ModuleKey};
use crate::WireError;

/// One logical point-to-point channel carrying a dense f32 blob.
#[derive(Debug)]
pub struct DenseChannel {
    codec: CodecKind,
    threshold: f32,
    /// Version of `baseline`; bumped on every successful decode.
    version: u64,
    /// What the receiver currently holds (None until the first transfer).
    baseline: Option<Vec<f32>>,
    /// Sender-side error-feedback carry for `QuantInt8`.
    residual: Vec<f32>,
}

impl DenseChannel {
    /// `threshold` only matters for `DeltaFp32` (entries with |delta| ≤
    /// threshold are dropped; 0.0 keeps the channel lossless).
    pub fn new(codec: CodecKind, threshold: f32) -> Self {
        DenseChannel { codec, threshold, version: 0, baseline: None, residual: Vec::new() }
    }

    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Encode `values` into `out` as one dense frame. Returns the frame
    /// length in bytes (the measured on-wire size). Cold channels (no
    /// baseline yet) and shape changes fall back to a raw record.
    pub fn encode(&mut self, values: &[f32], out: &mut Vec<u8>) -> usize {
        let mut b = FrameBuilder::begin(out, FrameKind::Dense, self.codec);
        match self.codec {
            CodecKind::Raw => {
                b.record(ModuleKey::SHARED, CodecKind::Raw, 0, values.len(), |o| {
                    codec::encode_raw(values, o)
                });
            }
            CodecKind::DeltaFp32 => match &self.baseline {
                Some(base) if base.len() == values.len() => {
                    let threshold = self.threshold;
                    let version = self.version;
                    let mut used = CodecKind::Raw;
                    b.record(ModuleKey::SHARED, CodecKind::DeltaFp32, version, values.len(), |o| {
                        used = codec::encode_delta(values, base, threshold, o);
                    });
                    if used == CodecKind::Raw {
                        // Delta came out dense; rebuild as an honest raw
                        // record so the decoder skips the baseline path.
                        b = FrameBuilder::begin(out, FrameKind::Dense, self.codec);
                        b.record(ModuleKey::SHARED, CodecKind::Raw, 0, values.len(), |o| {
                            codec::encode_raw(values, o)
                        });
                    }
                }
                _ => {
                    b.record(ModuleKey::SHARED, CodecKind::Raw, 0, values.len(), |o| {
                        codec::encode_raw(values, o)
                    });
                }
            },
            CodecKind::QuantInt8 => {
                let residual = &mut self.residual;
                b.record(ModuleKey::SHARED, CodecKind::QuantInt8, 0, values.len(), |o| {
                    codec::encode_q8(values, residual, o);
                });
            }
        }
        b.finish()
    }

    /// Decode one frame produced by `encode` into `out`. On success the
    /// channel baseline advances to the decoded values; on any error the
    /// state is untouched and the identical frame can be retried.
    pub fn decode(&mut self, bytes: &[u8], out: &mut Vec<f32>) -> Result<(), WireError> {
        let view = FrameView::parse(bytes)?;
        let rec =
            view.find(ModuleKey::SHARED).ok_or(WireError::MissingBaseline { key: ModuleKey::SHARED })?;
        match rec.codec {
            CodecKind::Raw => codec::decode_raw(rec.payload, rec.elems, out)?,
            CodecKind::DeltaFp32 => {
                let base = self.baseline.as_deref().ok_or(WireError::MissingBaseline { key: rec.key })?;
                if rec.base_version != self.version {
                    return Err(WireError::StaleBaseline { key: rec.key, version: rec.base_version });
                }
                codec::decode_delta(rec.payload, rec.elems, base, out)?;
            }
            CodecKind::QuantInt8 => codec::decode_q8(rec.payload, rec.elems, out)?,
        }
        match &mut self.baseline {
            Some(b) => {
                b.clear();
                b.extend_from_slice(out);
            }
            None => self.baseline = Some(out.clone()),
        }
        self.version += 1;
        Ok(())
    }
}

/// Per-device channel pool for a server exchanging dense blobs with many
/// devices: one download and one upload [`DenseChannel`] per device id,
/// plus a reusable frame buffer so steady-state transfers do not
/// allocate.
#[derive(Debug)]
pub struct DensePool {
    codec: CodecKind,
    threshold: f32,
    down: std::collections::HashMap<u64, DenseChannel>,
    up: std::collections::HashMap<u64, DenseChannel>,
    frame: Vec<u8>,
}

impl DensePool {
    pub fn new(codec: CodecKind, threshold: f32) -> Self {
        DensePool {
            codec,
            threshold,
            down: std::collections::HashMap::new(),
            up: std::collections::HashMap::new(),
            frame: Vec::new(),
        }
    }

    pub fn raw() -> Self {
        Self::new(CodecKind::Raw, 0.0)
    }

    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    fn channel(
        map: &mut std::collections::HashMap<u64, DenseChannel>,
        codec: CodecKind,
        threshold: f32,
        device: u64,
    ) -> &mut DenseChannel {
        map.entry(device).or_insert_with(|| DenseChannel::new(codec, threshold))
    }

    /// Server → device transfer of `values`: encode on the device's
    /// download channel, decode into `out`, return the measured frame
    /// bytes. In-process both ends share the channel state, so a
    /// successful call advances the baseline exactly once.
    pub fn send_down(&mut self, device: u64, values: &[f32], out: &mut Vec<f32>) -> Result<u64, WireError> {
        let ch = Self::channel(&mut self.down, self.codec, self.threshold, device);
        let n = ch.encode(values, &mut self.frame);
        ch.decode(&self.frame, out)?;
        Ok(n as u64)
    }

    /// Device → server transfer of `values` (see [`DensePool::send_down`]).
    pub fn send_up(&mut self, device: u64, values: &[f32], out: &mut Vec<f32>) -> Result<u64, WireError> {
        let ch = Self::channel(&mut self.up, self.codec, self.threshold, device);
        let n = ch.encode(values, &mut self.frame);
        ch.decode(&self.frame, out)?;
        Ok(n as u64)
    }

    /// Drop both channels of a device (crash / re-provision): the next
    /// transfer is encoded cold.
    pub fn forget(&mut self, device: u64) {
        self.down.remove(&device);
        self.up.remove(&device);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_tracks_devices_independently() {
        let mut pool = DensePool::new(CodecKind::DeltaFp32, 0.0);
        let vals: Vec<f32> = (0..200).map(|i| i as f32 * 0.1).collect();
        let mut out = Vec::new();
        let cold_a = pool.send_down(1, &vals, &mut out).unwrap();
        assert_eq!(out, vals);
        // Device 1 is warm, device 2 still cold.
        let warm_a = pool.send_down(1, &vals, &mut out).unwrap();
        let cold_b = pool.send_down(2, &vals, &mut out).unwrap();
        assert!(warm_a < cold_a / 4);
        assert_eq!(cold_b, cold_a);
        pool.forget(1);
        let re_cold = pool.send_down(1, &vals, &mut out).unwrap();
        assert_eq!(re_cold, cold_a);
    }

    #[test]
    fn raw_channel_is_bit_exact() {
        let mut ch = DenseChannel::new(CodecKind::Raw, 0.0);
        let vals: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
        let mut frame = Vec::new();
        let n = ch.encode(&vals, &mut frame);
        assert_eq!(n, frame.len());
        let mut back = Vec::new();
        ch.decode(&frame, &mut back).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn delta_channel_warms_up_and_shrinks() {
        let mut ch = DenseChannel::new(CodecKind::DeltaFp32, 0.0);
        let v0: Vec<f32> = (0..256).map(|i| i as f32 * 0.01).collect();
        let mut frame = Vec::new();
        let cold = ch.encode(&v0, &mut frame);
        let mut back = Vec::new();
        ch.decode(&frame, &mut back).unwrap();
        assert_eq!(back, v0);

        // Second round: only a few coordinates move.
        let mut v1 = v0.clone();
        v1[3] += 1.0;
        v1[200] -= 0.5;
        let warm = ch.encode(&v1, &mut frame);
        assert!(warm < cold / 4, "warm delta frame {warm} not much smaller than cold {cold}");
        ch.decode(&frame, &mut back).unwrap();
        assert_eq!(back, v1);
    }

    #[test]
    fn failed_decode_leaves_channel_retryable() {
        let mut ch = DenseChannel::new(CodecKind::DeltaFp32, 0.0);
        let v0: Vec<f32> = vec![1.0; 128];
        let mut frame = Vec::new();
        let mut back = Vec::new();
        ch.encode(&v0, &mut frame);
        ch.decode(&frame, &mut back).unwrap();

        let v1: Vec<f32> = vec![2.0; 128];
        ch.encode(&v1, &mut frame);
        let mut corrupted = frame.clone();
        corrupted[20] ^= 0xFF;
        assert!(ch.decode(&corrupted, &mut back).is_err());
        // Retry with the pristine frame succeeds against the same baseline.
        ch.decode(&frame, &mut back).unwrap();
        assert_eq!(back, v1);
    }

    #[test]
    fn q8_channel_stays_within_quantization_bound() {
        let mut ch = DenseChannel::new(CodecKind::QuantInt8, 0.0);
        let vals: Vec<f32> = (0..1000).map(|i| ((i * 37) % 100) as f32 / 50.0 - 1.0).collect();
        let max_abs = vals.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = max_abs / 127.0;
        let mut frame = Vec::new();
        let mut back = Vec::new();
        ch.encode(&vals, &mut frame);
        ch.decode(&frame, &mut back).unwrap();
        for (v, d) in vals.iter().zip(&back) {
            assert!((v - d).abs() <= scale * 1.0001 + 1e-7);
        }
        // Frame is about 4x smaller than raw.
        assert!(frame.len() < vals.len() * 4 / 3);
    }
}
