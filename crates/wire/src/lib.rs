//! `nebula-wire` — versioned binary wire protocol for Nebula module
//! traffic.
//!
//! Before this crate, the simulator *counted* bytes analytically; nothing
//! was ever serialized. `nebula-wire` makes module exchange real: every
//! sub-model download and module-update upload becomes a framed byte
//! buffer with per-record codecs and a CRC32 trailer, so communication
//! cost is measured (and fault injection can flip bytes on an actual
//! wire).
//!
//! Layering (no dependencies on the rest of the workspace — this is a
//! leaf crate):
//!
//! * [`crc32`] — table-driven IEEE CRC32 for the frame trailer.
//! * [`codec`] — `Raw` / `DeltaFp32` / `QuantInt8` payload codecs plus
//!   the sender-side [`codec::ResidualStore`] for error feedback.
//! * [`frame`] — the framed format: header, per-module records keyed by
//!   (layer, module), CRC trailer; [`frame::FrameBuilder`] writes into
//!   reusable buffers, [`frame::FrameView`] parses zero-copy.
//! * [`siphash`] — SipHash-2-4 keyed PRF and per-device
//!   [`siphash::FrameKey`] derivation for the optional MAC trailer, so
//!   forged frames (tampering plus a recomputed CRC) are rejected before
//!   decode.
//! * [`registry`] — cloud-side versioned baselines with bounded history
//!   and per-device ack tracking, so deltas decode deterministically and
//!   stale uploads are detected by version.
//! * [`dense`] — a point-to-point channel for the flat-model baselines.
//! * [`stream`] — length-delimited frame I/O over TCP/UDS byte streams,
//!   with a pre-allocation cap on hostile length prefixes.
//! * [`hello`] — the serving-plane handshake (worker hello, coordinator
//!   ack) with auth and codec negotiation.

pub mod codec;
pub mod crc32;
pub mod dense;
mod error;
pub mod frame;
pub mod hello;
pub mod registry;
pub mod siphash;
pub mod stream;

pub use codec::{CodecKind, ResidualStore};
pub use crc32::crc32;
pub use dense::{DenseChannel, DensePool};
pub use error::WireError;
pub use frame::{FrameBuilder, FrameKind, FrameView, ModuleKey, Record};
pub use hello::{Hello, HelloAck};
pub use registry::ModuleRegistry;
pub use siphash::{siphash24, FrameKey};
pub use stream::{read_frame, write_frame, DEFAULT_MAX_FRAME_LEN};
