//! Payload codecs: how one record's f32 tensor becomes bytes.
//!
//! Codecs are deliberately frame-agnostic — they turn a `&[f32]` into
//! bytes appended to a caller-owned buffer and back, so the frame layer
//! can mix codecs per record (e.g. a delta frame that falls back to raw
//! for modules the receiver has no baseline for).
//!
//! * `Raw` — little-endian f32, bit-exact round trip.
//! * `DeltaFp32` — sparse `(u32 index, f32 delta)` pairs versus a
//!   versioned baseline both ends hold; entries with `|delta| <=
//!   threshold` are dropped. The encoder falls back to `Raw` whenever the
//!   sparse form would not actually be smaller, so `DeltaFp32` is never
//!   worse than `Raw` on the wire.
//! * `QuantInt8` — per-tensor symmetric int8: one f32 scale followed by
//!   one signed byte per element. The sender carries an error-feedback
//!   residual so quantization error is re-injected into the next encode
//!   instead of accumulating (1/R average-error decay over R rounds).
//!
//! Non-finite inputs are not laundered: a NaN/Inf tensor yields a NaN
//! scale and decodes to NaNs, which the aggregation sanitize gate rejects
//! exactly like app-level corruption. The residual is zeroed in that case
//! so one poisoned round cannot contaminate later clean rounds.

use crate::frame::ModuleKey;
use crate::WireError;
use std::collections::HashMap;

/// Wire codec identifiers. The `u8` values are the on-wire ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// Little-endian f32, bit-exact.
    Raw,
    /// Sparse delta vs a versioned baseline; raw fallback when dense.
    DeltaFp32,
    /// Symmetric per-tensor int8 with sender-side error feedback.
    QuantInt8,
}

impl CodecKind {
    /// On-wire codec id.
    pub fn id(self) -> u8 {
        match self {
            CodecKind::Raw => 0,
            CodecKind::DeltaFp32 => 1,
            CodecKind::QuantInt8 => 2,
        }
    }

    /// Parse an on-wire codec id.
    pub fn from_id(id: u8) -> Result<Self, WireError> {
        match id {
            0 => Ok(CodecKind::Raw),
            1 => Ok(CodecKind::DeltaFp32),
            2 => Ok(CodecKind::QuantInt8),
            other => Err(WireError::UnknownCodec(other)),
        }
    }

    /// Planning-time payload size for a tensor of `params` elements.
    ///
    /// This is the number `core::derive` budgets against when a comm
    /// budget is expressed in encoded bytes. It is an upper bound on the
    /// measured record payload, not an estimate: `Raw` is exact,
    /// `DeltaFp32` plans at the raw size because the encoder's raw
    /// fallback caps it there (actual deltas are usually far smaller),
    /// and `QuantInt8` is one byte per element plus the f32 scale.
    /// Frame/record header overhead is deliberately *not* charged here so
    /// `Raw` planning stays bit-identical to the historical analytic
    /// `4 * params` accounting.
    pub fn planned_bytes(self, params: usize) -> u64 {
        match self {
            CodecKind::Raw | CodecKind::DeltaFp32 => 4 * params as u64,
            CodecKind::QuantInt8 => params as u64 + 4,
        }
    }

    /// Human-readable name (used in bench JSON and logs).
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::Raw => "raw",
            CodecKind::DeltaFp32 => "delta_fp32",
            CodecKind::QuantInt8 => "quant_int8",
        }
    }
}

/// Append `values` as little-endian f32 bytes.
pub fn encode_raw(values: &[f32], out: &mut Vec<u8>) {
    out.reserve(4 * values.len());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decode a raw payload of exactly `elems` f32s into `out` (cleared first).
pub fn decode_raw(payload: &[u8], elems: usize, out: &mut Vec<f32>) -> Result<(), WireError> {
    if payload.len() != 4 * elems {
        return Err(WireError::LengthMismatch { expected: 4 * elems, got: payload.len() });
    }
    out.clear();
    out.reserve(elems);
    for chunk in payload.chunks_exact(4) {
        out.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    Ok(())
}

/// Encode `values` as a sparse delta against `baseline`, dropping entries
/// with `|delta| <= threshold`. Returns the codec actually written:
/// `DeltaFp32` when the sparse form is smaller, `Raw` otherwise (including
/// a baseline length mismatch, which should not happen with a correct
/// registry but must not corrupt the stream if it does).
pub fn encode_delta(values: &[f32], baseline: &[f32], threshold: f32, out: &mut Vec<u8>) -> CodecKind {
    if baseline.len() != values.len() {
        encode_raw(values, out);
        return CodecKind::Raw;
    }
    let nnz = values.iter().zip(baseline).filter(|(v, b)| !(**v - **b).abs().le(&threshold)).count();
    // 8 bytes per pair vs 4 bytes per dense element.
    if 8 * nnz >= 4 * values.len() {
        encode_raw(values, out);
        return CodecKind::Raw;
    }
    out.reserve(8 * nnz);
    for (i, (v, b)) in values.iter().zip(baseline).enumerate() {
        let d = v - b;
        if !d.abs().le(&threshold) {
            out.extend_from_slice(&(i as u32).to_le_bytes());
            out.extend_from_slice(&d.to_le_bytes());
        }
    }
    CodecKind::DeltaFp32
}

/// Decode a sparse delta payload by applying it to `baseline` into `out`.
/// With the threshold the encoder used, every coordinate of the result is
/// within that threshold of the sender's values (exact when threshold 0).
pub fn decode_delta(
    payload: &[u8],
    elems: usize,
    baseline: &[f32],
    out: &mut Vec<f32>,
) -> Result<(), WireError> {
    if baseline.len() != elems {
        return Err(WireError::LengthMismatch { expected: elems, got: baseline.len() });
    }
    if !payload.len().is_multiple_of(8) {
        return Err(WireError::LengthMismatch { expected: payload.len() / 8 * 8, got: payload.len() });
    }
    out.clear();
    out.extend_from_slice(baseline);
    for pair in payload.chunks_exact(8) {
        let idx = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]) as usize;
        let delta = f32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
        if idx >= elems {
            return Err(WireError::LengthMismatch { expected: elems, got: idx });
        }
        out[idx] += delta;
    }
    Ok(())
}

/// Encode `values` as symmetric int8 with error feedback.
///
/// `residual` is the sender-side carry for this tensor; it is resized to
/// match `values` (zero-filled) and updated in place with the new
/// quantization error. Layout: 4-byte f32 scale, then one i8 per element.
pub fn encode_q8(values: &[f32], residual: &mut Vec<f32>, out: &mut Vec<u8>) -> CodecKind {
    residual.resize(values.len(), 0.0);
    let mut max_abs = 0.0f32;
    for (v, r) in values.iter().zip(residual.iter()) {
        max_abs = max_abs.max((v + r).abs());
    }
    let scale = max_abs / 127.0;
    out.reserve(4 + values.len());
    if !scale.is_finite() {
        // Poisoned input: emit a NaN scale so the decode is visibly
        // non-finite (sanitize gate territory), and drop the residual so
        // the poison does not leak into later rounds.
        out.extend_from_slice(&f32::NAN.to_le_bytes());
        out.extend(std::iter::repeat_n(0u8, values.len()));
        residual.iter_mut().for_each(|r| *r = 0.0);
        return CodecKind::QuantInt8;
    }
    out.extend_from_slice(&scale.to_le_bytes());
    if scale == 0.0 {
        out.extend(std::iter::repeat_n(0u8, values.len()));
        residual.iter_mut().for_each(|r| *r = 0.0);
        return CodecKind::QuantInt8;
    }
    for (v, r) in values.iter().zip(residual.iter_mut()) {
        let c = v + *r;
        let q = (c / scale).round().clamp(-127.0, 127.0) as i8;
        *r = c - q as f32 * scale;
        out.push(q as u8);
    }
    CodecKind::QuantInt8
}

/// Decode a symmetric-int8 payload of `elems` elements into `out`.
pub fn decode_q8(payload: &[u8], elems: usize, out: &mut Vec<f32>) -> Result<(), WireError> {
    if payload.len() != 4 + elems {
        return Err(WireError::LengthMismatch { expected: 4 + elems, got: payload.len() });
    }
    let scale = f32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
    out.clear();
    out.reserve(elems);
    for &b in &payload[4..] {
        out.push((b as i8) as f32 * scale);
    }
    Ok(())
}

/// Sender-side error-feedback residuals, keyed by (sender id, module).
///
/// Residuals belong to the *encoder*: each edge device carries its own
/// upload residuals, the cloud carries per-receiver download residuals.
/// The store resizes entries on demand so module shape changes (sub-model
/// re-derivation) reset the carry rather than mixing shapes.
#[derive(Debug, Default)]
pub struct ResidualStore {
    map: HashMap<(u64, ModuleKey), Vec<f32>>,
}

impl ResidualStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Residual buffer for `(sender, key)`, zero-initialised (or reset)
    /// to `len` elements.
    pub fn residual(&mut self, sender: u64, key: ModuleKey, len: usize) -> &mut Vec<f32> {
        let r = self.map.entry((sender, key)).or_default();
        if r.len() != len {
            r.clear();
            r.resize(len, 0.0);
        }
        r
    }

    /// Drop every residual carried for `sender` (e.g. device crash).
    pub fn clear_sender(&mut self, sender: u64) {
        self.map.retain(|(s, _), _| *s != sender);
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}
