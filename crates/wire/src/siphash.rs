//! SipHash-2-4 keyed PRF and the per-device frame-authentication key.
//!
//! CRC32 catches transit *corruption* but not *forgery*: anyone who can
//! flip bytes can also recompute the checksum. Frame authentication
//! closes that gap with a keyed 64-bit MAC appended after the CRC
//! trailer (see [`crate::frame`]). SipHash-2-4 is the standard choice
//! for short-input keyed hashing — fast on 64-bit targets, no lookup
//! tables, and implementable in a leaf crate with zero dependencies.
//!
//! Keys are never serialized by this crate; the cloud holds one master
//! key and derives a per-device key with [`FrameKey::derive`], so a
//! device that leaks its key can forge only its own traffic.

/// One SipRound (the ARX core permutation).
#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 of `data` under the 128-bit key `(k0, k1)`.
///
/// Matches the reference implementation bit-for-bit (pinned by the
/// published test vectors below), so both ends of the wire agree on MAC
/// values regardless of platform.
pub fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }
    let rem = chunks.remainder();
    let mut b = (data.len() as u64) << 56;
    for (i, &byte) in rem.iter().enumerate() {
        b |= (byte as u64) << (8 * i);
    }
    v[3] ^= b;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= b;
    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// A 128-bit frame-authentication key.
///
/// The cloud holds a master `FrameKey`; each device gets
/// `master.derive(device_id)`. Both sides MAC the frame header+body with
/// [`FrameKey::mac`] and compare the 64-bit tag.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct FrameKey {
    k0: u64,
    k1: u64,
}

impl FrameKey {
    /// Build a key from 16 raw bytes (little-endian halves).
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        let k0 = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let k1 = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        FrameKey { k0, k1 }
    }

    /// Derive the per-device key for `device` from this master key.
    ///
    /// Two PRF evaluations with distinct domain-separation tags produce
    /// the two 64-bit halves, so per-device keys are independent and a
    /// compromised device cannot recover the master or a sibling's key.
    pub fn derive(&self, device: u64) -> FrameKey {
        let mut msg = [0u8; 9];
        msg[..8].copy_from_slice(&device.to_le_bytes());
        msg[8] = 0xD0;
        let k0 = siphash24(self.k0, self.k1, &msg);
        msg[8] = 0xD1;
        let k1 = siphash24(self.k0, self.k1, &msg);
        FrameKey { k0, k1 }
    }

    /// MAC `data` under this key.
    pub fn mac(&self, data: &[u8]) -> u64 {
        siphash24(self.k0, self.k1, data)
    }
}

impl std::fmt::Debug for FrameKey {
    /// Redacted: keys must not leak through logs or panic messages.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FrameKey(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference-implementation key 00 01 .. 0f.
    const K0: u64 = 0x0706_0504_0302_0100;
    const K1: u64 = 0x0f0e_0d0c_0b0a_0908;

    #[test]
    fn reference_vectors() {
        // Published SipHash-2-4 64-bit vectors: input is 00 01 .. (len-1).
        let cases: &[(usize, u64)] = &[
            (0, 0x726f_db47_dd0e_0e31),
            (1, 0x74f8_39c5_93dc_67fd),
            (8, 0x93f5_f579_9a93_2462),
            (15, 0xa129_ca61_49be_45e5),
        ];
        for &(len, want) in cases {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(siphash24(K0, K1, &data), want, "vector len {len}");
        }
    }

    #[test]
    fn derived_keys_differ_per_device() {
        let master = FrameKey::from_bytes(&[7u8; 16]);
        let a = master.derive(1);
        let b = master.derive(2);
        assert_ne!(a, b);
        assert_ne!(a, master);
        // Deterministic.
        assert_eq!(a, master.derive(1));
        // And the MAC actually depends on the key.
        assert_ne!(a.mac(b"hello"), b.mac(b"hello"));
    }

    #[test]
    fn mac_depends_on_every_byte() {
        let key = FrameKey::from_bytes(&[3u8; 16]);
        let msg = b"nebula wire frame".to_vec();
        let tag = key.mac(&msg);
        for i in 0..msg.len() {
            let mut m = msg.clone();
            m[i] ^= 0x01;
            assert_ne!(key.mac(&m), tag, "flip at {i} left MAC unchanged");
        }
    }

    #[test]
    fn debug_redacts_key_material() {
        let key = FrameKey::from_bytes(&[9u8; 16]);
        assert_eq!(format!("{key:?}"), "FrameKey(..)");
    }
}
