//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! The frame trailer checksum. Table-driven, one table built lazily at
//! first use; no external crates, byte-order independent.

/// 256-entry lookup table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `data` (init 0xFFFFFFFF, final xor 0xFFFFFFFF — the common
/// zlib/ethernet convention).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn any_single_byte_flip_changes_the_crc() {
        let data: Vec<u8> = (0u16..256).map(|b| b as u8).collect();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[i] ^= 1 << bit;
                assert_ne!(crc32(&d), base, "flip at byte {i} bit {bit} not detected");
            }
        }
    }
}
