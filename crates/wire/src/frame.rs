//! Framed binary format for module traffic.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     4  magic  b"NBW1"
//!      4     1  wire version (currently 1)
//!      5     1  frame kind   (0 payload, 1 update, 2 dense, 3 control)
//!      6     1  default codec id (hint; records carry their own)
//!      7     1  flags (bit 0: authenticated; rest reserved 0)
//!      8     4  record count            u32 LE
//!     12     4  body length in bytes    u32 LE
//!     16   ...  records (back to back)
//!    end     4  CRC32 (IEEE) over header + body   u32 LE
//!   +opt     8  SipHash-2-4 MAC over header + body   u64 LE
//!                (present iff the auth flag is set)
//!
//! record:
//!      0     2  layer   u16 LE   (0xFFFC..=0xFFFF are sentinels)
//!      2     2  module  u16 LE
//!      4     1  codec id for this record
//!      5     3  reserved (0)
//!      8     8  base version  u64 LE  (0 when codec needs no baseline)
//!     16     4  element count u32 LE  (f32 elements after decode)
//!     20     4  encoded payload length u32 LE
//!     24   ...  encoded payload
//! ```
//!
//! Encoding appends into a caller-owned `Vec<u8>` (the `nn::Workspace`
//! discipline: buffers are reused across rounds, steady-state encode does
//! no allocation). Decoding is zero-copy: `FrameView::parse` validates
//! magic/version/lengths/CRC once and hands out records borrowing the
//! input buffer.

use crate::codec::CodecKind;
use crate::crc32::crc32;
use crate::siphash::FrameKey;
use crate::WireError;

pub const MAGIC: [u8; 4] = *b"NBW1";
pub const WIRE_VERSION: u8 = 1;
pub const HEADER_LEN: usize = 16;
pub const RECORD_HEADER_LEN: usize = 24;
pub const TRAILER_LEN: usize = 4;
/// Length of the optional SipHash-2-4 MAC trailer.
pub const MAC_LEN: usize = 8;
/// Header flag bit (byte 7): frame carries a MAC trailer after the CRC.
pub const FLAG_AUTH: u8 = 0x01;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Cloud → edge sub-model payload (modules + shared params).
    Payload,
    /// Edge → cloud module update (modules + shared + importance + meta).
    Update,
    /// A single dense blob (baseline strategies' full-model exchange).
    Dense,
    /// Serving-plane control traffic (handshake, job dispatch/results,
    /// shutdown). Records use [`ModuleKey::control`] sentinels.
    Control,
}

impl FrameKind {
    pub fn id(self) -> u8 {
        match self {
            FrameKind::Payload => 0,
            FrameKind::Update => 1,
            FrameKind::Dense => 2,
            FrameKind::Control => 3,
        }
    }

    pub fn from_id(id: u8) -> Result<Self, WireError> {
        match id {
            0 => Ok(FrameKind::Payload),
            1 => Ok(FrameKind::Update),
            2 => Ok(FrameKind::Dense),
            3 => Ok(FrameKind::Control),
            other => Err(WireError::BadKind(other)),
        }
    }
}

/// Addresses one tensor inside a frame: a (layer, module) pair for real
/// modules, or one of the sentinel keys for everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleKey {
    pub layer: u16,
    pub module: u16,
}

impl ModuleKey {
    /// Shared (non-modular) parameters, or the whole blob in dense frames.
    pub const SHARED: ModuleKey = ModuleKey { layer: 0xFFFF, module: 0xFFFF };
    /// Update metadata record (currently: data volume as u64 LE, elems 0).
    pub const META: ModuleKey = ModuleKey { layer: 0xFFFD, module: 0 };

    /// A real module at (layer, module).
    pub fn module(layer: usize, module: usize) -> Self {
        debug_assert!(layer < 0xFFFC && module < 0xFFFC, "index collides with sentinel space");
        ModuleKey { layer: layer as u16, module: module as u16 }
    }

    /// Per-layer importance row; the module field carries the layer index.
    pub fn importance(layer: usize) -> Self {
        debug_assert!(layer < 0xFFFC);
        ModuleKey { layer: 0xFFFE, module: layer as u16 }
    }

    /// Serving-plane control record `slot` inside a [`FrameKind::Control`]
    /// frame (slot 0 is the message header by convention; higher slots
    /// carry opaque binary sections).
    pub fn control(slot: usize) -> Self {
        debug_assert!(slot < 0xFFFC);
        ModuleKey { layer: 0xFFFC, module: slot as u16 }
    }

    pub fn is_shared(self) -> bool {
        self == Self::SHARED
    }

    pub fn is_importance(self) -> bool {
        self.layer == 0xFFFE
    }

    pub fn is_meta(self) -> bool {
        self.layer == 0xFFFD
    }

    pub fn is_control(self) -> bool {
        self.layer == 0xFFFC
    }

    pub fn is_module(self) -> bool {
        self.layer < 0xFFFC
    }
}

/// One parsed record, borrowing the frame buffer.
#[derive(Debug, Clone, Copy)]
pub struct Record<'a> {
    pub key: ModuleKey,
    pub codec: CodecKind,
    pub base_version: u64,
    pub elems: usize,
    pub payload: &'a [u8],
}

/// Incremental frame writer appending into a caller-owned buffer.
///
/// The buffer is cleared on `begin`; `finish` backpatches the count and
/// body length and appends the CRC trailer. Dropping a builder without
/// calling `finish` leaves an unterminated frame in the buffer — callers
/// own that invariant (the type is linear in practice).
pub struct FrameBuilder<'a> {
    buf: &'a mut Vec<u8>,
    count: u32,
}

impl<'a> FrameBuilder<'a> {
    /// Start a frame of `kind` in `buf` (cleared first). `codec` is the
    /// frame-level default codec hint; individual records may differ.
    pub fn begin(buf: &'a mut Vec<u8>, kind: FrameKind, codec: CodecKind) -> Self {
        buf.clear();
        buf.extend_from_slice(&MAGIC);
        buf.push(WIRE_VERSION);
        buf.push(kind.id());
        buf.push(codec.id());
        buf.push(0);
        buf.extend_from_slice(&0u32.to_le_bytes()); // count, backpatched
        buf.extend_from_slice(&0u32.to_le_bytes()); // body_len, backpatched
        FrameBuilder { buf, count: 0 }
    }

    /// Append one record. `write` appends the encoded payload to the
    /// buffer; its length is measured and backpatched, so codecs whose
    /// output size is data-dependent (delta) need no pre-pass.
    pub fn record(
        &mut self,
        key: ModuleKey,
        codec: CodecKind,
        base_version: u64,
        elems: usize,
        write: impl FnOnce(&mut Vec<u8>),
    ) {
        self.buf.extend_from_slice(&key.layer.to_le_bytes());
        self.buf.extend_from_slice(&key.module.to_le_bytes());
        self.buf.push(codec.id());
        self.buf.extend_from_slice(&[0u8; 3]);
        self.buf.extend_from_slice(&base_version.to_le_bytes());
        self.buf.extend_from_slice(&(elems as u32).to_le_bytes());
        let len_at = self.buf.len();
        self.buf.extend_from_slice(&0u32.to_le_bytes()); // enc_len, backpatched
        let payload_start = self.buf.len();
        write(self.buf);
        let enc_len = (self.buf.len() - payload_start) as u32;
        self.buf[len_at..len_at + 4].copy_from_slice(&enc_len.to_le_bytes());
        self.count += 1;
    }

    /// Terminate the frame: backpatch header fields, append CRC. Returns
    /// the total frame length in bytes (what goes on the wire).
    pub fn finish(self) -> usize {
        let body_len = (self.buf.len() - HEADER_LEN) as u32;
        self.buf[8..12].copy_from_slice(&self.count.to_le_bytes());
        self.buf[12..16].copy_from_slice(&body_len.to_le_bytes());
        let crc = crc32(self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf.len()
    }

    /// Terminate an *authenticated* frame: set the auth flag, backpatch
    /// header fields, then append the CRC trailer followed by a
    /// SipHash-2-4 MAC over header+body under `key`. The flag byte is
    /// covered by both CRC and MAC, so neither can be stripped or forged
    /// without the key being caught.
    pub fn finish_authed(self, key: &FrameKey) -> usize {
        self.buf[7] |= FLAG_AUTH;
        let body_len = (self.buf.len() - HEADER_LEN) as u32;
        self.buf[8..12].copy_from_slice(&self.count.to_le_bytes());
        self.buf[12..16].copy_from_slice(&body_len.to_le_bytes());
        let mac = key.mac(self.buf);
        let crc = crc32(self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf.extend_from_slice(&mac.to_le_bytes());
        self.buf.len()
    }
}

/// A validated, parsed frame borrowing the input bytes.
pub struct FrameView<'a> {
    pub kind: FrameKind,
    pub codec: CodecKind,
    records: Vec<Record<'a>>,
}

impl<'a> FrameView<'a> {
    /// Validate and index `bytes` as one unauthenticated (v1) frame.
    /// Equivalent to [`FrameView::parse_keyed`] with no key: frames
    /// carrying the auth flag are rejected because the MAC cannot be
    /// verified.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, WireError> {
        Self::parse_keyed(bytes, None)
    }

    /// Validate and index `bytes` as one frame. Checks, in order: minimum
    /// length, magic, version, kind, codec ids, declared body length vs
    /// actual, MAC (authenticated frames only), CRC, then walks every
    /// record checking bounds. Any byte flip that survives all structural
    /// checks is caught by the CRC; any rewrite with a fixed-up CRC is
    /// caught by the MAC.
    ///
    /// Key semantics are strict in both directions: a key-holding
    /// receiver rejects unauthenticated frames (stripping the flag is not
    /// a downgrade path), and an authenticated frame is useless to a
    /// receiver without the key. The MAC is verified *before* the CRC so
    /// forgery surfaces as [`WireError::AuthMismatch`] even when the
    /// attacker recomputed the checksum.
    pub fn parse_keyed(bytes: &'a [u8], key: Option<&FrameKey>) -> Result<Self, WireError> {
        let min = HEADER_LEN + TRAILER_LEN;
        if bytes.len() < min {
            return Err(WireError::Truncated { needed: min, have: bytes.len() });
        }
        if bytes[0..4] != MAGIC {
            return Err(WireError::BadMagic);
        }
        if bytes[4] != WIRE_VERSION {
            return Err(WireError::BadVersion(bytes[4]));
        }
        let kind = FrameKind::from_id(bytes[5])?;
        let codec = CodecKind::from_id(bytes[6])?;
        let authed = bytes[7] & FLAG_AUTH != 0;
        let count = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        let body_len = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
        let trailer = TRAILER_LEN + if authed { MAC_LEN } else { 0 };
        let expected_total = HEADER_LEN + body_len + trailer;
        if bytes.len() != expected_total {
            return Err(WireError::LengthMismatch { expected: expected_total, got: bytes.len() });
        }
        let crc_at = HEADER_LEN + body_len;
        if authed {
            let Some(key) = key else { return Err(WireError::AuthMissing) };
            let mac_at = crc_at + TRAILER_LEN;
            let stored =
                u64::from_le_bytes(bytes[mac_at..mac_at + MAC_LEN].try_into().expect("MAC_LEN bytes"));
            let actual = key.mac(&bytes[..crc_at]);
            if stored != actual {
                return Err(WireError::AuthMismatch { expected: stored, got: actual });
            }
        } else if key.is_some() {
            return Err(WireError::AuthMissing);
        }
        let stored =
            u32::from_le_bytes([bytes[crc_at], bytes[crc_at + 1], bytes[crc_at + 2], bytes[crc_at + 3]]);
        let actual = crc32(&bytes[..crc_at]);
        if stored != actual {
            return Err(WireError::CrcMismatch { expected: stored, got: actual });
        }
        // Bound the record-index allocation by what the body can actually
        // hold: a hostile count field (u32) with a small body would
        // otherwise reserve gigabytes before the per-record bounds checks
        // ever ran.
        if count > body_len / RECORD_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: count.saturating_mul(RECORD_HEADER_LEN),
                have: body_len,
            });
        }
        let mut records = Vec::with_capacity(count);
        let mut at = HEADER_LEN;
        for _ in 0..count {
            if crc_at - at < RECORD_HEADER_LEN {
                return Err(WireError::Truncated { needed: RECORD_HEADER_LEN, have: crc_at - at });
            }
            let h = &bytes[at..at + RECORD_HEADER_LEN];
            let key = ModuleKey {
                layer: u16::from_le_bytes([h[0], h[1]]),
                module: u16::from_le_bytes([h[2], h[3]]),
            };
            let rec_codec = CodecKind::from_id(h[4])?;
            let base_version = u64::from_le_bytes([h[8], h[9], h[10], h[11], h[12], h[13], h[14], h[15]]);
            let elems = u32::from_le_bytes([h[16], h[17], h[18], h[19]]) as usize;
            let enc_len = u32::from_le_bytes([h[20], h[21], h[22], h[23]]) as usize;
            at += RECORD_HEADER_LEN;
            if crc_at - at < enc_len {
                return Err(WireError::Truncated { needed: enc_len, have: crc_at - at });
            }
            records.push(Record {
                key,
                codec: rec_codec,
                base_version,
                elems,
                payload: &bytes[at..at + enc_len],
            });
            at += enc_len;
        }
        if at != crc_at {
            return Err(WireError::LengthMismatch { expected: crc_at, got: at });
        }
        Ok(FrameView { kind, codec, records })
    }

    pub fn records(&self) -> impl Iterator<Item = &Record<'a>> {
        self.records.iter()
    }

    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Find a record by key (frames are small; linear scan).
    pub fn find(&self, key: ModuleKey) -> Option<&Record<'a>> {
        self.records.iter().find(|r| r.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;

    #[test]
    fn build_parse_round_trip() {
        let mut buf = Vec::new();
        let mut b = FrameBuilder::begin(&mut buf, FrameKind::Update, CodecKind::Raw);
        let vals = [1.0f32, -2.5, 3.25];
        b.record(ModuleKey::module(0, 3), CodecKind::Raw, 0, vals.len(), |out| codec::encode_raw(&vals, out));
        b.record(ModuleKey::META, CodecKind::Raw, 0, 0, |out| out.extend_from_slice(&42u64.to_le_bytes()));
        let total = b.finish();
        assert_eq!(total, buf.len());

        let view = FrameView::parse(&buf).unwrap();
        assert_eq!(view.kind, FrameKind::Update);
        assert_eq!(view.record_count(), 2);
        let r = view.find(ModuleKey::module(0, 3)).unwrap();
        assert_eq!(r.elems, 3);
        let mut back = Vec::new();
        codec::decode_raw(r.payload, r.elems, &mut back).unwrap();
        assert_eq!(back, vals);
        let meta = view.find(ModuleKey::META).unwrap();
        assert_eq!(meta.payload, 42u64.to_le_bytes());
    }

    #[test]
    fn every_byte_flip_is_rejected() {
        let mut buf = Vec::new();
        let mut b = FrameBuilder::begin(&mut buf, FrameKind::Dense, CodecKind::Raw);
        let vals: Vec<f32> = (0..17).map(|i| i as f32 * 0.5).collect();
        b.record(ModuleKey::SHARED, CodecKind::Raw, 0, vals.len(), |out| codec::encode_raw(&vals, out));
        b.finish();
        assert!(FrameView::parse(&buf).is_ok());
        for i in 0..buf.len() {
            let mut corrupted = buf.clone();
            corrupted[i] ^= 0x40;
            assert!(FrameView::parse(&corrupted).is_err(), "flip at byte {i} not rejected");
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let mut buf = Vec::new();
        let mut b = FrameBuilder::begin(&mut buf, FrameKind::Dense, CodecKind::Raw);
        b.record(ModuleKey::SHARED, CodecKind::Raw, 0, 2, |out| codec::encode_raw(&[1.0, 2.0], out));
        b.finish();
        for cut in 0..buf.len() {
            assert!(FrameView::parse(&buf[..cut]).is_err(), "truncation to {cut} accepted");
        }
    }

    fn test_key() -> FrameKey {
        FrameKey::from_bytes(&[0xA5; 16]).derive(7)
    }

    fn authed_frame() -> Vec<u8> {
        let mut buf = Vec::new();
        let mut b = FrameBuilder::begin(&mut buf, FrameKind::Update, CodecKind::Raw);
        let vals: Vec<f32> = (0..9).map(|i| i as f32 - 4.0).collect();
        b.record(ModuleKey::module(1, 2), CodecKind::Raw, 0, vals.len(), |out| codec::encode_raw(&vals, out));
        b.finish_authed(&test_key());
        buf
    }

    #[test]
    fn authed_round_trip_and_key_checks() {
        let buf = authed_frame();
        let view = FrameView::parse_keyed(&buf, Some(&test_key())).unwrap();
        assert_eq!(view.record_count(), 1);
        // Wrong key: MAC fails.
        let wrong = FrameKey::from_bytes(&[0x5A; 16]).derive(7);
        assert!(matches!(FrameView::parse_keyed(&buf, Some(&wrong)), Err(WireError::AuthMismatch { .. })));
        // Sibling device's key fails too.
        let sibling = FrameKey::from_bytes(&[0xA5; 16]).derive(8);
        assert!(matches!(FrameView::parse_keyed(&buf, Some(&sibling)), Err(WireError::AuthMismatch { .. })));
        // No key: cannot verify, must not decode.
        assert_eq!(FrameView::parse(&buf).err(), Some(WireError::AuthMissing));
    }

    #[test]
    fn authed_every_byte_flip_is_rejected() {
        let buf = authed_frame();
        let key = test_key();
        for i in 0..buf.len() {
            let mut corrupted = buf.clone();
            corrupted[i] ^= 0x40;
            assert!(FrameView::parse_keyed(&corrupted, Some(&key)).is_err(), "flip at byte {i} not rejected");
        }
        // Flips under the MAC's coverage (header+body) surface as auth
        // mismatches, before the CRC is even consulted.
        let mut corrupted = buf.clone();
        corrupted[HEADER_LEN] ^= 0x40;
        assert!(matches!(
            FrameView::parse_keyed(&corrupted, Some(&key)),
            Err(WireError::AuthMismatch { .. })
        ));
    }

    #[test]
    fn crc_fixup_forgery_is_caught_only_with_auth() {
        // The attack frame auth exists for: tamper with a body byte and
        // recompute the CRC. An unauthenticated frame decodes silently.
        let mut buf = Vec::new();
        let mut b = FrameBuilder::begin(&mut buf, FrameKind::Update, CodecKind::Raw);
        b.record(ModuleKey::SHARED, CodecKind::Raw, 0, 2, |out| codec::encode_raw(&[1.0, 2.0], out));
        b.finish();
        let mut forged = buf.clone();
        forged[HEADER_LEN + RECORD_HEADER_LEN] ^= 0x80; // flip a payload sign bit
        let crc_at = forged.len() - TRAILER_LEN;
        let crc = crc32(&forged[..crc_at]);
        forged[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert!(FrameView::parse(&forged).is_ok(), "CRC alone cannot detect forgery");

        // The same forgery against an authenticated frame is rejected.
        let mut abuf = Vec::new();
        let mut b = FrameBuilder::begin(&mut abuf, FrameKind::Update, CodecKind::Raw);
        b.record(ModuleKey::SHARED, CodecKind::Raw, 0, 2, |out| codec::encode_raw(&[1.0, 2.0], out));
        b.finish_authed(&test_key());
        let mut forged = abuf.clone();
        forged[HEADER_LEN + RECORD_HEADER_LEN] ^= 0x80;
        let crc_at = forged.len() - TRAILER_LEN - MAC_LEN;
        let crc = crc32(&forged[..crc_at]);
        forged[crc_at..crc_at + TRAILER_LEN].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            FrameView::parse_keyed(&forged, Some(&test_key())),
            Err(WireError::AuthMismatch { .. })
        ));
    }

    #[test]
    fn stripping_the_auth_flag_is_rejected() {
        // Downgrade attack: clear the flag, drop the MAC, fix the CRC.
        // A key-holding receiver must still refuse the frame.
        let buf = authed_frame();
        let mut stripped = buf[..buf.len() - MAC_LEN].to_vec();
        stripped[7] &= !FLAG_AUTH;
        let crc_at = stripped.len() - TRAILER_LEN;
        let crc = crc32(&stripped[..crc_at]);
        stripped[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert!(FrameView::parse(&stripped).is_ok(), "stripped frame is a valid v1 frame");
        assert_eq!(FrameView::parse_keyed(&stripped, Some(&test_key())).err(), Some(WireError::AuthMissing));
    }

    #[test]
    fn sentinel_keys_do_not_collide() {
        assert!(ModuleKey::SHARED.is_shared());
        assert!(ModuleKey::importance(7).is_importance());
        assert!(ModuleKey::META.is_meta());
        assert!(ModuleKey::module(3, 11).is_module());
        assert!(ModuleKey::control(2).is_control());
        assert!(!ModuleKey::control(2).is_module());
        assert_ne!(ModuleKey::SHARED, ModuleKey::importance(0xFFF));
        assert_ne!(ModuleKey::META, ModuleKey::module(0, 0));
        assert_ne!(ModuleKey::control(0), ModuleKey::META);
    }

    #[test]
    fn control_frame_round_trip() {
        let mut buf = Vec::new();
        let mut b = FrameBuilder::begin(&mut buf, FrameKind::Control, CodecKind::Raw);
        b.record(ModuleKey::control(0), CodecKind::Raw, 0, 0, |o| o.extend_from_slice(b"{\"k\":1}"));
        b.record(ModuleKey::control(1), CodecKind::Raw, 0, 0, |o| o.extend_from_slice(&[9, 8, 7]));
        b.finish();
        let view = FrameView::parse(&buf).unwrap();
        assert_eq!(view.kind, FrameKind::Control);
        assert_eq!(view.find(ModuleKey::control(0)).unwrap().payload, b"{\"k\":1}");
        assert_eq!(view.find(ModuleKey::control(1)).unwrap().payload, &[9, 8, 7]);
    }

    /// Regression: a crafted frame declaring ~4 billion records over a
    /// tiny body (CRC fixed up, so every structural check before the
    /// record walk passes) must be rejected *before* the record index is
    /// allocated. Previously `Vec::with_capacity(count)` ran first — a
    /// hostile length field on a stream drove an unbounded allocation.
    #[test]
    fn hostile_record_count_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        let b = FrameBuilder::begin(&mut buf, FrameKind::Update, CodecKind::Raw);
        b.finish();
        // Forge the record count and restore CRC validity.
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let crc_at = buf.len() - TRAILER_LEN;
        let crc = crc32(&buf[..crc_at]);
        buf[crc_at..].copy_from_slice(&crc.to_le_bytes());
        let err = FrameView::parse(&buf).err().expect("hostile record count must be rejected");
        assert!(matches!(err, WireError::Truncated { .. }), "unexpected error: {err:?}");
    }
}
