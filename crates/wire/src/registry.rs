//! Cloud-side registry of versioned module baselines.
//!
//! Delta decoding needs both ends to agree on the exact baseline a delta
//! was computed against. The registry gives every commit a globally
//! monotonic version, keeps a bounded history per module so slightly
//! stale uploads still decode, and tracks which version each device last
//! acknowledged so downloads to warm devices can be deltas while cold
//! devices transparently get raw records.

use crate::frame::ModuleKey;
use crate::WireError;
use std::collections::{HashMap, VecDeque};

/// Versioned per-module baseline store with per-device ack tracking.
#[derive(Debug)]
pub struct ModuleRegistry {
    version: u64,
    keep: usize,
    history: HashMap<ModuleKey, VecDeque<(u64, Vec<f32>)>>,
    acked: HashMap<u64, HashMap<ModuleKey, u64>>,
}

impl ModuleRegistry {
    /// `keep` is the number of versions retained per module (≥ 1). Four
    /// covers the deepest staleness the round loop's retry/straggler
    /// machinery can produce today with room to spare.
    pub fn new(keep: usize) -> Self {
        ModuleRegistry { version: 0, keep: keep.max(1), history: HashMap::new(), acked: HashMap::new() }
    }

    /// Current (latest committed) global version; 0 before any commit.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Open a new global version for the baselines about to be recorded
    /// and return it. Typically called once per round after aggregation.
    pub fn begin_version(&mut self) -> u64 {
        self.version += 1;
        self.version
    }

    /// Record `values` as the baseline of `key` at `version`, evicting
    /// history beyond the retention bound.
    pub fn put(&mut self, key: ModuleKey, version: u64, values: &[f32]) {
        let h = self.history.entry(key).or_default();
        h.push_back((version, values.to_vec()));
        while h.len() > self.keep {
            h.pop_front();
        }
    }

    /// Baseline of `key` at exactly `version`. `MissingBaseline` when the
    /// module was never recorded, `StaleBaseline` when that version has
    /// been evicted (or never existed): the caller falls back to raw.
    pub fn baseline(&self, key: ModuleKey, version: u64) -> Result<&[f32], WireError> {
        let h = self.history.get(&key).ok_or(WireError::MissingBaseline { key })?;
        h.iter()
            .find(|(v, _)| *v == version)
            .map(|(_, vals)| vals.as_slice())
            .ok_or(WireError::StaleBaseline { key, version })
    }

    /// Latest recorded baseline of `key`, if any.
    pub fn latest(&self, key: ModuleKey) -> Option<(u64, &[f32])> {
        self.history.get(&key).and_then(|h| h.back()).map(|(v, vals)| (*v, vals.as_slice()))
    }

    /// Mark that `device` now holds `key` at `version` (successful,
    /// CRC-clean decode on the device side).
    pub fn ack(&mut self, device: u64, key: ModuleKey, version: u64) {
        self.acked.entry(device).or_default().insert(key, version);
    }

    /// Version `device` last acknowledged for `key`, if any.
    pub fn acked_version(&self, device: u64, key: ModuleKey) -> Option<u64> {
        self.acked.get(&device).and_then(|m| m.get(&key)).copied()
    }

    /// Forget everything a device acknowledged (crash / re-provision).
    pub fn clear_acks(&mut self, device: u64) {
        self.acked.remove(&device);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versioned_lookup_and_eviction() {
        let mut reg = ModuleRegistry::new(2);
        let key = ModuleKey::module(1, 2);
        for round in 0..4 {
            let v = reg.begin_version();
            reg.put(key, v, &[round as f32]);
        }
        assert_eq!(reg.version(), 4);
        assert_eq!(reg.baseline(key, 4).unwrap(), &[3.0]);
        assert_eq!(reg.baseline(key, 3).unwrap(), &[2.0]);
        assert_eq!(reg.baseline(key, 1), Err(WireError::StaleBaseline { key, version: 1 }));
        let other = ModuleKey::module(9, 9);
        assert_eq!(reg.baseline(other, 4), Err(WireError::MissingBaseline { key: other }));
    }

    #[test]
    fn ack_tracking() {
        let mut reg = ModuleRegistry::new(4);
        let key = ModuleKey::module(0, 0);
        assert_eq!(reg.acked_version(7, key), None);
        reg.ack(7, key, 3);
        assert_eq!(reg.acked_version(7, key), Some(3));
        reg.clear_acks(7);
        assert_eq!(reg.acked_version(7, key), None);
    }
}
