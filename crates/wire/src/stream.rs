//! Length-delimited frame I/O over byte streams.
//!
//! Frames ([`crate::frame`]) are self-describing in memory but a TCP or
//! Unix-domain stream has no message boundaries, so the serving plane
//! prefixes every frame with its length:
//!
//! ```text
//! offset  size  field
//! ------  ----  ------------------------------
//!      0     4  frame length `n`   u32 LE
//!      4     n  one complete wire frame
//! ```
//!
//! The reader enforces a configurable maximum *before* any allocation:
//! a hostile or corrupt length prefix (the stream equivalent of a frame
//! whose declared payload length lies) is rejected with
//! `InvalidData` instead of driving an unbounded `Vec` reservation. The
//! same discipline continues inside [`crate::FrameView::parse_keyed`],
//! which bounds its record allocation by the declared body length.

use std::io::{self, Read, Write};

/// Default cap on one length-delimited frame: 64 MiB. Generous for
/// module traffic (full VGG16-class payloads are ~50 MB raw) while
/// keeping a lying length prefix from reserving gigabytes.
pub const DEFAULT_MAX_FRAME_LEN: usize = 64 << 20;

/// Writes `frame` to `w` with a `u32` little-endian length prefix and
/// flushes. Frames longer than `u32::MAX` are refused (they cannot be
/// represented on the stream).
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    let len = u32::try_from(frame.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length prefix"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(frame)?;
    w.flush()
}

/// Reads one length-delimited frame from `r` into `buf` (cleared first).
///
/// Returns `Ok(true)` when a frame was read, `Ok(false)` on a clean EOF
/// at a frame boundary (the peer closed between frames). An EOF inside a
/// prefix or body is `UnexpectedEof`; a declared length above `max_len`
/// is `InvalidData` and nothing is allocated or consumed past the prefix.
pub fn read_frame(r: &mut impl Read, max_len: usize, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut prefix = [0u8; 4];
    let mut at = 0;
    while at < prefix.len() {
        match r.read(&mut prefix[at..]) {
            Ok(0) => {
                if at == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF inside frame length prefix"));
            }
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds cap {max_len}"),
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_preserves_frames() {
        let frames: [&[u8]; 3] = [b"hello", b"", b"a longer frame body \x00\xff"];
        let mut wire = Vec::new();
        for f in frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = Cursor::new(wire);
        let mut buf = Vec::new();
        for f in frames {
            assert!(read_frame(&mut r, DEFAULT_MAX_FRAME_LEN, &mut buf).unwrap());
            assert_eq!(buf, f);
        }
        assert!(!read_frame(&mut r, DEFAULT_MAX_FRAME_LEN, &mut buf).unwrap(), "clean EOF expected");
    }

    /// Regression: a hostile length prefix must be rejected before any
    /// buffer is reserved — previously unbounded-allocation shaped bugs
    /// surface as OOM aborts, not as an `Err`.
    #[test]
    fn hostile_length_prefix_is_rejected_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(b"tiny");
        let mut buf = Vec::new();
        let err = read_frame(&mut Cursor::new(wire), 1 << 20, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(buf.capacity(), 0, "no allocation may happen for a rejected length");
    }

    #[test]
    fn truncated_body_is_unexpected_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"full frame").unwrap();
        wire.truncate(wire.len() - 3);
        let mut buf = Vec::new();
        let err = read_frame(&mut Cursor::new(wire), 1 << 20, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_prefix_is_unexpected_eof() {
        let mut buf = Vec::new();
        let err = read_frame(&mut Cursor::new(vec![1u8, 0]), 1 << 20, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
