//! Property-based tests of module-wise aggregation (§5.2): idempotence,
//! convexity and isolation must hold for arbitrary update sets.

use nebula_core::{
    aggregate_module_wise, aggregate_module_wise_refs, aggregate_module_wise_robust, ModuleUpdate,
    RobustAggregator, StreamingAccumulator,
};
use nebula_modular::{ModularConfig, ModularModel, SubModelSpec};
use nebula_nn::Layer;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn cloud(seed: u64) -> ModularModel {
    let mut cfg = ModularConfig::toy(8, 3);
    cfg.gate_noise_std = 0.0;
    cfg.residual_module = false; // every module has parameters
    ModularModel::new(cfg, seed)
}

/// Builds an update whose module params are the cloud's plus `offset`,
/// with the given per-module importance value.
fn offset_update(
    cloud: &ModularModel,
    spec: &SubModelSpec,
    offset: f32,
    importance: f32,
    volume: usize,
) -> ModuleUpdate {
    let mut module_params = BTreeMap::new();
    for (l, layer) in spec.layers().iter().enumerate() {
        for &i in layer {
            let p: Vec<f32> = cloud.module_param_vector(l, i).iter().map(|v| v + offset).collect();
            module_params.insert((l, i), p);
        }
    }
    let shared: Vec<f32> = cloud.shared_param_vector().iter().map(|v| v + offset).collect();
    let n = cloud.config().modules_per_layer;
    ModuleUpdate {
        spec: spec.clone(),
        module_params,
        shared_params: shared,
        importance: vec![vec![importance; n]; cloud.num_layers()],
        data_volume: volume,
    }
}

/// A random valid spec over 2 layers × 4 modules.
fn arb_spec() -> impl Strategy<Value = SubModelSpec> {
    proptest::collection::vec(proptest::collection::btree_set(0usize..4, 1..=4), 2..=2)
        .prop_map(|layers| SubModelSpec::new(layers.into_iter().map(|s| s.into_iter().collect()).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn identical_updates_are_idempotent(
        spec in arb_spec(), k in 1usize..5, offset in -2.0f32..2.0, seed in 0u64..100
    ) {
        // k copies of the same update must land exactly on that update.
        let mut c = cloud(seed);
        let u = offset_update(&c, &spec, offset, 0.7, 100);
        let updates: Vec<ModuleUpdate> = (0..k).map(|_| u.clone()).collect();
        aggregate_module_wise(&mut c, &updates);
        for (l, layer) in spec.layers().iter().enumerate() {
            for &i in layer {
                let got = c.module_param_vector(l, i);
                let want = &u.module_params[&(l, i)];
                for (g, w) in got.iter().zip(want) {
                    prop_assert!((g - w).abs() < 1e-4, "{g} vs {w}");
                }
            }
        }
    }

    #[test]
    fn aggregate_lies_in_the_convex_hull(
        spec in arb_spec(), o1 in -2.0f32..2.0, o2 in -2.0f32..2.0,
        w1 in 0.1f32..5.0, w2 in 0.1f32..5.0, seed in 0u64..100
    ) {
        let mut c = cloud(seed);
        let before = |c: &ModularModel, l: usize, i: usize| c.module_param_vector(l, i);
        let u1 = offset_update(&c, &spec, o1, w1, 50);
        let u2 = offset_update(&c, &spec, o2, w2, 150);
        let originals: Vec<Vec<f32>> = spec
            .layers()
            .iter()
            .enumerate()
            .flat_map(|(l, layer)| layer.iter().map(move |&i| (l, i)))
            .map(|(l, i)| before(&c, l, i))
            .collect();
        aggregate_module_wise(&mut c, &[u1, u2]);
        let (lo, hi) = (o1.min(o2), o1.max(o2));
        let mut idx = 0;
        for (l, layer) in spec.layers().iter().enumerate() {
            for &i in layer {
                let got = c.module_param_vector(l, i);
                for (g, orig) in got.iter().zip(&originals[idx]) {
                    let delta = g - orig;
                    prop_assert!(
                        delta >= lo - 1e-4 && delta <= hi + 1e-4,
                        "aggregate left the convex hull: delta {delta}, hull [{lo}, {hi}]"
                    );
                }
                idx += 1;
            }
        }
    }

    #[test]
    fn modules_outside_every_spec_never_move(
        spec in arb_spec(), offset in -2.0f32..2.0, seed in 0u64..100
    ) {
        let mut c = cloud(seed);
        let u = offset_update(&c, &spec, offset, 1.0, 100);
        // Record untouched modules.
        let mut untouched = Vec::new();
        for l in 0..2 {
            for i in 0..4 {
                if !spec.contains(l, i) {
                    untouched.push(((l, i), c.module_param_vector(l, i)));
                }
            }
        }
        aggregate_module_wise(&mut c, &[u]);
        for ((l, i), before) in untouched {
            prop_assert_eq!(c.module_param_vector(l, i), before, "untouched module ({}, {}) moved", l, i);
        }
    }

    #[test]
    fn robust_aggregators_are_permutation_invariant(
        spec in arb_spec(),
        offsets in proptest::collection::vec(-3.0f32..3.0, 3..=7),
        rot in 0usize..7,
        seed in 0u64..100,
    ) {
        // The combine rule must not care which device reported first: any
        // rotation + reversal of the update list lands on identical params.
        let c = cloud(seed);
        let ups: Vec<ModuleUpdate> = offsets
            .iter()
            .enumerate()
            .map(|(k, &o)| offset_update(&c, &spec, o, 0.5 + k as f32, 10 + k))
            .collect();
        let mut shuffled = ups.clone();
        let rot = rot % shuffled.len();
        shuffled.rotate_left(rot);
        shuffled.reverse();
        for agg in [
            RobustAggregator::CoordinateMedian,
            RobustAggregator::TrimmedMean { frac: 0.25 },
            RobustAggregator::Krum { f: 1 },
        ] {
            let mut a = cloud(seed);
            let mut b = cloud(seed);
            let ra: Vec<&ModuleUpdate> = ups.iter().collect();
            let rb: Vec<&ModuleUpdate> = shuffled.iter().collect();
            aggregate_module_wise_robust(&mut a, &ra, agg, true);
            aggregate_module_wise_robust(&mut b, &rb, agg, true);
            prop_assert_eq!(
                a.param_vector(), b.param_vector(),
                "{} changed under permutation", agg
            );
        }
    }

    #[test]
    fn breakdown_point_keeps_median_inside_honest_envelope(
        spec in arb_spec(),
        f in 1usize..4,
        honest in proptest::collection::vec(-1.0f32..1.0, 8),
        evil_scale in 10.0f32..1e4,
        seed in 0u64..100,
    ) {
        // 2f+1 contributions, f of them adversarial and arbitrarily far
        // out: every aggregated coordinate must stay within the honest
        // coordinate envelope [min honest offset, max honest offset].
        let c = cloud(seed);
        let honest = &honest[..f + 1];
        let mut ups: Vec<ModuleUpdate> =
            honest.iter().map(|&o| offset_update(&c, &spec, o, 1.0, 10)).collect();
        for k in 0..f {
            // Adversaries also claim enormous importance and volume.
            ups.push(offset_update(
                &c,
                &spec,
                evil_scale * if k % 2 == 0 { 1.0 } else { -1.0 },
                1e6,
                1_000_000,
            ));
        }
        let (lo, hi) = honest
            .iter()
            .fold((f32::MAX, f32::MIN), |(lo, hi), &o| (lo.min(o), hi.max(o)));
        for agg in [
            RobustAggregator::CoordinateMedian,
            RobustAggregator::TrimmedMean { frac: f as f32 / ups.len() as f32 },
        ] {
            let mut after = cloud(seed);
            let refs: Vec<&ModuleUpdate> = ups.iter().collect();
            aggregate_module_wise_robust(&mut after, &refs, agg, true);
            for (l, layer) in spec.layers().iter().enumerate() {
                for &i in layer {
                    let got = after.module_param_vector(l, i);
                    let orig = c.module_param_vector(l, i);
                    for (g, o) in got.iter().zip(&orig) {
                        let delta = g - o;
                        prop_assert!(
                            delta >= lo - 1e-3 && delta <= hi + 1e-3,
                            "{agg}: coordinate left honest envelope: {delta} outside [{lo}, {hi}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_mean_matches_reference_bit_for_bit(
        spec in arb_spec(),
        offsets in proptest::collection::vec(-3.0f32..3.0, 1..=6),
        seed in 0u64..100,
    ) {
        // RobustAggregator::WeightedMean is a pure delegation: bit-identical
        // params and identical touched count for arbitrary update sets.
        let c = cloud(seed);
        let ups: Vec<ModuleUpdate> = offsets
            .iter()
            .enumerate()
            .map(|(k, &o)| offset_update(&c, &spec, o, 0.1 + k as f32, 5 + 3 * k))
            .collect();
        let refs: Vec<&ModuleUpdate> = ups.iter().collect();
        let mut a = cloud(seed);
        let mut b = cloud(seed);
        let ta = aggregate_module_wise_refs(&mut a, &refs, true);
        let tb = aggregate_module_wise_robust(&mut b, &refs, RobustAggregator::WeightedMean, true);
        prop_assert_eq!(ta, tb);
        let (pa, pb) = (a.param_vector(), b.param_vector());
        prop_assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(&pb) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "WeightedMean diverged from reference");
        }
    }

    #[test]
    fn streaming_fold_matches_materialized_bit_for_bit(
        spec in arb_spec(),
        offsets in proptest::collection::vec(-3.0f32..3.0, 1..=8),
        seed in 0u64..100,
    ) {
        // The constant-memory streaming path must be indistinguishable —
        // not just close — from materializing the whole cohort: same
        // touched count, bit-identical parameters, for arbitrary specs,
        // importance values and volumes.
        let c = cloud(seed);
        let ups: Vec<ModuleUpdate> = offsets
            .iter()
            .enumerate()
            .map(|(k, &o)| offset_update(&c, &spec, o, 0.1 + 0.9 * k as f32, 5 + 7 * k))
            .collect();
        let refs: Vec<&ModuleUpdate> = ups.iter().collect();
        let mut materialized = cloud(seed);
        let tm = aggregate_module_wise_refs(&mut materialized, &refs, true);
        let mut streamed = cloud(seed);
        let mut acc = StreamingAccumulator::new(true);
        for u in &ups {
            acc.fold(u);
        }
        let ts = acc.apply(&mut streamed);
        prop_assert_eq!(tm, ts, "touched counts diverged");
        for (x, y) in materialized.param_vector().iter().zip(&streamed.param_vector()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "streaming diverged from materialized");
        }
    }

    #[test]
    fn merged_shard_accumulators_stay_close_to_single_fold(
        spec in arb_spec(),
        offsets in proptest::collection::vec(-3.0f32..3.0, 2..=9),
        cut in 1usize..8,
        seed in 0u64..100,
    ) {
        // Shard-merge equivalence: folding the cohort in two shard
        // accumulators and merging is the same sum in a different
        // association order, so results agree to fp tolerance (the
        // PerCell fold plan exists precisely to make this *bit*-stable).
        let c = cloud(seed);
        let ups: Vec<ModuleUpdate> = offsets
            .iter()
            .enumerate()
            .map(|(k, &o)| offset_update(&c, &spec, o, 0.3 + k as f32, 10 + k))
            .collect();
        let cut = cut.min(ups.len() - 1).max(1);
        let mut single = StreamingAccumulator::new(true);
        for u in &ups {
            single.fold(u);
        }
        let (mut left, mut right) = (StreamingAccumulator::new(true), StreamingAccumulator::new(true));
        for u in &ups[..cut] {
            left.fold(u);
        }
        for u in &ups[cut..] {
            right.fold(u);
        }
        left.merge(&right);
        let mut a = cloud(seed);
        let mut b = cloud(seed);
        prop_assert_eq!(single.apply(&mut a), left.apply(&mut b));
        for (x, y) in a.param_vector().iter().zip(&b.param_vector()) {
            prop_assert!((x - y).abs() <= 1e-4 * x.abs().max(1.0), "merge drifted: {x} vs {y}");
        }
    }

    #[test]
    fn higher_importance_pulls_harder(
        spec in arb_spec(), seed in 0u64..100
    ) {
        // Update A (offset +1, importance wa) vs B (offset −1, importance
        // wb): the aggregate's sign must follow the heavier importance.
        let mut c = cloud(seed);
        let ua = offset_update(&c, &spec, 1.0, 3.0, 100);
        let ub = offset_update(&c, &spec, -1.0, 1.0, 100);
        let l = 0;
        let i = spec.layer(0)[0];
        let before = c.module_param_vector(l, i);
        aggregate_module_wise(&mut c, &[ua, ub]);
        let after = c.module_param_vector(l, i);
        // Expected delta: (3·1 + 1·(−1))/4 = 0.5.
        for (a, b) in after.iter().zip(&before) {
            prop_assert!((a - b - 0.5).abs() < 1e-4, "delta {} != 0.5", a - b);
        }
    }
}
