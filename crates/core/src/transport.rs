//! Module transport: turning [`SubModelPayload`] / [`ModuleUpdate`]
//! messages into real `nebula-wire` frames and back.
//!
//! The cloud owns one [`WireContext`]. Every download is encoded against
//! the registry of committed module baselines (so warm devices receive
//! deltas and cold devices transparently receive raw records), every
//! upload is decoded against the exact baseline version the device
//! acknowledged, and the returned frame lengths are the *measured* bytes
//! the simulator's `CommTracker` records.
//!
//! Codec semantics per direction:
//!
//! * downloads are **lossless** for `Raw`/`DeltaFp32` (delta threshold is
//!   forced to 0 so a warm download reconstructs the cloud parameters
//!   bit-exactly) and lossy for `QuantInt8` (per-receiver error feedback);
//! * uploads apply the configured delta threshold (sparsification) or
//!   int8 quantization with per-device error feedback.
//!
//! Frame layout notes: payload frames carry one record per module
//! (residual modules ship empty payloads), a `SHARED` record, and a
//! `META` record holding the registry version the payload was cut from —
//! the version a successful decode acknowledges. Update frames carry
//! module records, `SHARED`, one importance row per layer, and `META`
//! holding the device's data volume.

use crate::aggregate::ModuleUpdate;
use crate::cloud::SubModelPayload;
use nebula_modular::{ModularModel, SubModelSpec};
use nebula_telemetry::Telemetry;
use nebula_wire::codec::{self, CodecKind};
use nebula_wire::frame::{FrameBuilder, FrameKind, FrameView, ModuleKey, Record};
use nebula_wire::{FrameKey, ModuleRegistry, ResidualStore, WireError};
use std::collections::BTreeMap;

/// Transport configuration, chosen per strategy/config.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireConfig {
    /// Codec for module traffic in both directions.
    pub codec: CodecKind,
    /// Upload sparsification threshold for `DeltaFp32` (|delta| ≤
    /// threshold is dropped). Downloads always use 0 (exact).
    pub delta_threshold: f32,
    /// Master key for frame authentication. When set, every frame is cut
    /// with a per-device SipHash-2-4 MAC and every decode verifies it
    /// before the CRC; `None` speaks the v1 unauthenticated format.
    pub auth_key: Option<[u8; 16]>,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig { codec: CodecKind::Raw, delta_threshold: 0.0, auth_key: None }
    }
}

impl WireConfig {
    pub fn raw() -> Self {
        Self::default()
    }

    pub fn delta(threshold: f32) -> Self {
        WireConfig { codec: CodecKind::DeltaFp32, delta_threshold: threshold, auth_key: None }
    }

    pub fn int8() -> Self {
        WireConfig { codec: CodecKind::QuantInt8, delta_threshold: 0.0, auth_key: None }
    }

    /// Enable authenticated frames under `key` (shared cloud-side master;
    /// per-device keys are derived from it).
    pub fn with_auth(mut self, key: [u8; 16]) -> Self {
        self.auth_key = Some(key);
        self
    }
}

/// Cloud-side transport state: the baseline registry plus error-feedback
/// residual stores for both directions.
pub struct WireContext {
    cfg: WireConfig,
    registry: ModuleRegistry,
    /// Upload error feedback, keyed by the sending device.
    up_residuals: ResidualStore,
    /// Download error feedback, keyed by the receiving device.
    down_residuals: ResidualStore,
    /// Master MAC key when frame auth is enabled.
    master_key: Option<FrameKey>,
    /// Frame/byte/CRC-reject accounting; off by default.
    telemetry: Telemetry,
}

impl WireContext {
    /// Four retained baseline versions cover the round loop's maximum
    /// staleness (retry depth + one straggler round) with slack.
    pub fn new(cfg: WireConfig) -> Self {
        WireContext {
            cfg,
            registry: ModuleRegistry::new(4),
            up_residuals: ResidualStore::new(),
            down_residuals: ResidualStore::new(),
            master_key: cfg.auth_key.as_ref().map(FrameKey::from_bytes),
            telemetry: Telemetry::off(),
        }
    }

    /// The per-device MAC key, or `None` when auth is disabled.
    fn key_for(&self, device: u64) -> Option<FrameKey> {
        self.master_key.as_ref().map(|m| m.derive(device))
    }

    /// Attaches a telemetry handle; every encode/decode from here on
    /// counts frames, bytes and CRC rejects (`wire.*` metrics).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    pub fn config(&self) -> WireConfig {
        self.cfg
    }

    pub fn registry(&self) -> &ModuleRegistry {
        &self.registry
    }

    /// Commit the cloud model's current parameters as the baselines for
    /// this round's traffic. Call once per round, after aggregation (or
    /// rollback) settles and before the first dispatch. Returns the new
    /// registry version. `Raw`/`QuantInt8` never read baselines, so the
    /// commit is skipped entirely for them.
    pub fn commit_model(&mut self, model: &ModularModel) -> u64 {
        if self.cfg.codec != CodecKind::DeltaFp32 {
            return self.registry.version();
        }
        let v = self.registry.begin_version();
        let modules_per_layer = model.config().modules_per_layer;
        for l in 0..model.num_layers() {
            for i in 0..modules_per_layer {
                self.registry.put(ModuleKey::module(l, i), v, &model.module_param_vector(l, i));
            }
        }
        self.registry.put(ModuleKey::SHARED, v, &model.shared_param_vector());
        v
    }

    /// Drop all per-device transport state (crash / re-provisioning): the
    /// next download to this device is encoded cold.
    pub fn forget_device(&mut self, device: u64) {
        self.registry.clear_acks(device);
        self.up_residuals.clear_sender(device);
        self.down_residuals.clear_sender(device);
    }

    /// Encode one record's values with the configured codec, falling back
    /// to raw when no usable baseline exists for a delta.
    #[allow(clippy::too_many_arguments)]
    fn encode_record(
        builder: &mut FrameBuilder<'_>,
        cfg: WireConfig,
        registry: &ModuleRegistry,
        residuals: &mut ResidualStore,
        residual_owner: u64,
        acked: Option<u64>,
        threshold: f32,
        key: ModuleKey,
        values: &[f32],
    ) {
        match cfg.codec {
            CodecKind::Raw => {
                builder.record(key, CodecKind::Raw, 0, values.len(), |o| codec::encode_raw(values, o));
            }
            CodecKind::DeltaFp32 => {
                let base = acked.and_then(|v| registry.baseline(key, v).ok().map(|b| (v, b)));
                match base {
                    Some((v, base)) if base.len() == values.len() => {
                        // The codec may still fall back to raw when the
                        // delta comes out dense; re-encode honestly so the
                        // record header matches the payload.
                        let mut probe = Vec::new();
                        let used = codec::encode_delta(values, base, threshold, &mut probe);
                        match used {
                            CodecKind::DeltaFp32 => {
                                builder.record(key, CodecKind::DeltaFp32, v, values.len(), |o| {
                                    o.extend_from_slice(&probe)
                                });
                            }
                            _ => builder.record(key, CodecKind::Raw, 0, values.len(), |o| {
                                o.extend_from_slice(&probe)
                            }),
                        }
                    }
                    _ => {
                        builder.record(key, CodecKind::Raw, 0, values.len(), |o| codec::encode_raw(values, o))
                    }
                }
            }
            CodecKind::QuantInt8 => {
                if values.is_empty() {
                    // Residual modules: nothing to quantize, skip the
                    // 4-byte scale and ship an empty raw record.
                    builder.record(key, CodecKind::Raw, 0, 0, |_| {});
                } else {
                    let r = residuals.residual(residual_owner, key, values.len());
                    builder.record(key, CodecKind::QuantInt8, 0, values.len(), |o| {
                        codec::encode_q8(values, r, o);
                    });
                }
            }
        }
    }

    /// Decode one record back to f32s, resolving delta baselines against
    /// the registry.
    fn decode_record(registry: &ModuleRegistry, rec: &Record<'_>) -> Result<Vec<f32>, WireError> {
        let mut out = Vec::new();
        match rec.codec {
            CodecKind::Raw => codec::decode_raw(rec.payload, rec.elems, &mut out)?,
            CodecKind::DeltaFp32 => {
                let base = registry.baseline(rec.key, rec.base_version)?;
                codec::decode_delta(rec.payload, rec.elems, base, &mut out)?;
            }
            CodecKind::QuantInt8 => codec::decode_q8(rec.payload, rec.elems, &mut out)?,
        }
        Ok(out)
    }

    /// Encode a cloud → device payload into `out` (cleared). Returns the
    /// frame length — the measured download size.
    pub fn encode_payload(&mut self, device: u64, payload: &SubModelPayload, out: &mut Vec<u8>) -> usize {
        let mut b = FrameBuilder::begin(out, FrameKind::Payload, self.cfg.codec);
        // Deterministic record order: modules sorted by (layer, module).
        let mut keys: Vec<(usize, usize)> = payload.module_params.keys().copied().collect();
        keys.sort_unstable();
        for (l, i) in keys {
            let key = ModuleKey::module(l, i);
            Self::encode_record(
                &mut b,
                self.cfg,
                &self.registry,
                &mut self.down_residuals,
                device,
                self.registry.acked_version(device, key),
                0.0, // downloads are exact under delta
                key,
                &payload.module_params[&(l, i)],
            );
        }
        let key = ModuleKey::SHARED;
        Self::encode_record(
            &mut b,
            self.cfg,
            &self.registry,
            &mut self.down_residuals,
            device,
            self.registry.acked_version(device, key),
            0.0,
            key,
            &payload.shared_params,
        );
        // Registry version this payload was cut from; acked on decode.
        let version = self.registry.version();
        b.record(ModuleKey::META, CodecKind::Raw, 0, 0, |o| o.extend_from_slice(&version.to_le_bytes()));
        let n = match self.key_for(device) {
            Some(key) => b.finish_authed(&key),
            None => b.finish(),
        };
        self.note_frame("down", device, n);
        n
    }

    /// Decode a payload frame on behalf of `device`. On success the
    /// device's holdings are acknowledged at the payload's registry
    /// version, so the next download can be a delta. Any error leaves the
    /// ack state untouched (the sender retries the identical frame).
    pub fn decode_payload(&mut self, device: u64, bytes: &[u8]) -> Result<SubModelPayload, WireError> {
        let res = self.decode_payload_impl(device, bytes);
        if let Err(e) = &res {
            self.note_decode_error("down", device, e);
        }
        res
    }

    fn decode_payload_impl(&mut self, device: u64, bytes: &[u8]) -> Result<SubModelPayload, WireError> {
        let view = FrameView::parse_keyed(bytes, self.key_for(device).as_ref())?;
        let mut module_params: BTreeMap<(usize, usize), Vec<f32>> = BTreeMap::new();
        let mut shared_params = Vec::new();
        let mut version = 0u64;
        for rec in view.records() {
            if rec.key.is_module() {
                let vals = Self::decode_record(&self.registry, rec)?;
                module_params.insert((rec.key.layer as usize, rec.key.module as usize), vals);
            } else if rec.key.is_shared() {
                shared_params = Self::decode_record(&self.registry, rec)?;
            } else if rec.key.is_meta() {
                if rec.payload.len() != 8 {
                    return Err(WireError::LengthMismatch { expected: 8, got: rec.payload.len() });
                }
                version = u64::from_le_bytes(rec.payload.try_into().unwrap());
            }
        }
        let spec = spec_from_keys(module_params.keys().copied());
        if version > 0 {
            for &(l, i) in module_params.keys() {
                self.registry.ack(device, ModuleKey::module(l, i), version);
            }
            self.registry.ack(device, ModuleKey::SHARED, version);
        }
        Ok(SubModelPayload { spec, module_params, shared_params })
    }

    /// Encode a device → cloud update into `out` (cleared). Returns the
    /// frame length — the measured upload size.
    pub fn encode_update(&mut self, device: u64, update: &ModuleUpdate, out: &mut Vec<u8>) -> usize {
        let mut b = FrameBuilder::begin(out, FrameKind::Update, self.cfg.codec);
        let mut keys: Vec<(usize, usize)> = update.module_params.keys().copied().collect();
        keys.sort_unstable();
        for (l, i) in keys {
            let key = ModuleKey::module(l, i);
            Self::encode_record(
                &mut b,
                self.cfg,
                &self.registry,
                &mut self.up_residuals,
                device,
                self.registry.acked_version(device, key),
                self.cfg.delta_threshold,
                key,
                &update.module_params[&(l, i)],
            );
        }
        let key = ModuleKey::SHARED;
        Self::encode_record(
            &mut b,
            self.cfg,
            &self.registry,
            &mut self.up_residuals,
            device,
            self.registry.acked_version(device, key),
            self.cfg.delta_threshold,
            key,
            &update.shared_params,
        );
        // Importance rows and metadata are tiny: always raw.
        for (l, row) in update.importance.iter().enumerate() {
            b.record(ModuleKey::importance(l), CodecKind::Raw, 0, row.len(), |o| codec::encode_raw(row, o));
        }
        let volume = update.data_volume as u64;
        b.record(ModuleKey::META, CodecKind::Raw, 0, 0, |o| o.extend_from_slice(&volume.to_le_bytes()));
        let n = match self.key_for(device) {
            Some(key) => b.finish_authed(&key),
            None => b.finish(),
        };
        self.note_frame("up", device, n);
        n
    }

    /// Decode an update frame on the cloud with no sender attribution.
    /// Only valid while auth is disabled: with a key configured every
    /// upload is MAC'd per device, so this path rejects with
    /// [`WireError::AuthMissing`] — use [`Self::decode_update_from`].
    pub fn decode_update(&mut self, bytes: &[u8]) -> Result<ModuleUpdate, WireError> {
        let res = self.decode_update_impl(None, bytes);
        if let Err(e) = &res {
            self.note_decode_error("up", 0, e);
        }
        res
    }

    /// Decode an update frame attributed to `device`, verifying its MAC
    /// under the device's derived key when auth is enabled. Stale delta
    /// uploads (baseline version already evicted) surface as
    /// [`WireError::StaleBaseline`].
    pub fn decode_update_from(&mut self, device: u64, bytes: &[u8]) -> Result<ModuleUpdate, WireError> {
        let key = self.key_for(device);
        let res = self.decode_update_impl(key.as_ref(), bytes);
        if let Err(e) = &res {
            self.note_decode_error("up", device, e);
        }
        res
    }

    fn decode_update_impl(
        &mut self,
        key: Option<&FrameKey>,
        bytes: &[u8],
    ) -> Result<ModuleUpdate, WireError> {
        let view = FrameView::parse_keyed(bytes, key)?;
        let mut module_params: BTreeMap<(usize, usize), Vec<f32>> = BTreeMap::new();
        let mut shared_params = Vec::new();
        let mut importance_rows: Vec<(usize, Vec<f32>)> = Vec::new();
        let mut data_volume = 0usize;
        for rec in view.records() {
            if rec.key.is_module() {
                let vals = Self::decode_record(&self.registry, rec)?;
                module_params.insert((rec.key.layer as usize, rec.key.module as usize), vals);
            } else if rec.key.is_shared() {
                shared_params = Self::decode_record(&self.registry, rec)?;
            } else if rec.key.is_importance() {
                let mut row = Vec::new();
                codec::decode_raw(rec.payload, rec.elems, &mut row)?;
                importance_rows.push((rec.key.module as usize, row));
            } else if rec.key.is_meta() {
                if rec.payload.len() != 8 {
                    return Err(WireError::LengthMismatch { expected: 8, got: rec.payload.len() });
                }
                data_volume = u64::from_le_bytes(rec.payload.try_into().unwrap()) as usize;
            }
        }
        importance_rows.sort_unstable_by_key(|(l, _)| *l);
        let importance: Vec<Vec<f32>> = importance_rows.into_iter().map(|(_, r)| r).collect();
        let spec = spec_from_keys(module_params.keys().copied());
        Ok(ModuleUpdate { spec, module_params, shared_params, importance, data_volume })
    }

    /// Telemetry for one encoded frame: per-direction frame/byte counters,
    /// a frame-size histogram, and a `kind = "wire"` trace event.
    fn note_frame(&self, dir: &'static str, device: u64, bytes: usize) {
        if !self.telemetry.enabled() {
            return;
        }
        self.telemetry.counter_add(&format!("wire.frames_{dir}"), 1);
        self.telemetry.counter_add(&format!("wire.bytes_{dir}"), bytes as u64);
        self.telemetry.observe(&format!("wire.frame_bytes_{dir}"), bytes as f64);
        self.telemetry.emit("wire", |e| {
            e.text.insert("dir".into(), dir.into());
            e.ints.insert("device".into(), device);
            e.ints.insert("bytes".into(), bytes as u64);
        });
    }

    /// Telemetry for a failed decode, classifying CRC rejects (transit
    /// corruption) and MAC rejects (forgery / downgrade) apart from
    /// structural/baseline errors.
    fn note_decode_error(&self, dir: &'static str, device: u64, err: &WireError) {
        if !self.telemetry.enabled() {
            return;
        }
        let class = match err {
            WireError::CrcMismatch { .. } => "crc",
            WireError::AuthMismatch { .. } | WireError::AuthMissing => "auth",
            _ => "decode",
        };
        self.telemetry.counter_add(&format!("wire.rejects_{class}"), 1);
        self.telemetry.emit("wire", |e| {
            e.text.insert("dir".into(), dir.into());
            e.text.insert("reject".into(), class.into());
            e.ints.insert("device".into(), device);
        });
    }
}

/// Rebuild a [`SubModelSpec`] from the module keys present in a frame.
/// Valid because derivation guarantees at least one module per layer and
/// dispatch ships every spec module (residuals as empty records).
fn spec_from_keys(keys: impl Iterator<Item = (usize, usize)>) -> SubModelSpec {
    let mut layers: Vec<Vec<usize>> = Vec::new();
    for (l, i) in keys {
        if layers.len() <= l {
            layers.resize_with(l + 1, Vec::new);
        }
        layers[l].push(i);
    }
    SubModelSpec::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::{NebulaCloud, NebulaParams};
    use crate::edge::EdgeClient;
    use nebula_data::{SynthSpec, Synthesizer};
    use nebula_tensor::NebulaRng;

    fn cloud() -> NebulaCloud {
        let mut cfg = nebula_modular::ModularConfig::toy(16, 4);
        cfg.gate_noise_std = 0.2;
        NebulaCloud::new(cfg, NebulaParams::default(), 11)
    }

    fn spec() -> SubModelSpec {
        SubModelSpec::new(vec![vec![0, 2, 3], vec![1]])
    }

    #[test]
    fn raw_payload_round_trip_is_bit_exact() {
        let c = cloud();
        let mut wire = WireContext::new(WireConfig::raw());
        let payload = c.dispatch(&spec());
        let mut frame = Vec::new();
        let n = wire.encode_payload(7, &payload, &mut frame);
        assert_eq!(n, frame.len());
        let back = wire.decode_payload(7, &frame).unwrap();
        assert_eq!(back.spec, payload.spec);
        assert_eq!(back.shared_params, payload.shared_params);
        for (k, v) in &payload.module_params {
            assert_eq!(&back.module_params[k], v, "module {k:?} not bit-exact");
        }
    }

    #[test]
    fn raw_update_round_trip_is_bit_exact() {
        let c = cloud();
        let mut wire = WireContext::new(WireConfig::raw());
        let payload = c.dispatch(&spec());
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(3);
        let local = synth.sample(30, 0, &mut rng);
        let mut client = EdgeClient::from_payload(c.model().config().clone(), &payload);
        client.adapt(&local, 1, 16, 0.05, &mut rng);
        let update = client.make_update(&local);

        let mut frame = Vec::new();
        wire.encode_update(7, &update, &mut frame);
        let back = wire.decode_update(&frame).unwrap();
        assert_eq!(back.spec, update.spec);
        assert_eq!(back.shared_params, update.shared_params);
        assert_eq!(back.importance, update.importance);
        assert_eq!(back.data_volume, update.data_volume);
        for (k, v) in &update.module_params {
            assert_eq!(&back.module_params[k], v);
        }
    }

    #[test]
    fn delta_downloads_shrink_once_warm() {
        let c = cloud();
        let mut wire = WireContext::new(WireConfig::delta(0.0));
        wire.commit_model(c.model());
        let payload = c.dispatch(&spec());
        let mut frame = Vec::new();
        let cold = wire.encode_payload(7, &payload, &mut frame);
        let back = wire.decode_payload(7, &frame).unwrap();
        assert_eq!(back.shared_params, payload.shared_params);

        // Same parameters again: every delta is empty.
        wire.commit_model(c.model());
        let warm = wire.encode_payload(7, &payload, &mut frame);
        assert!(warm < cold / 4, "warm {warm} vs cold {cold}");
        let back = wire.decode_payload(7, &frame).unwrap();
        assert_eq!(back.shared_params, payload.shared_params);
        for (k, v) in &payload.module_params {
            assert_eq!(&back.module_params[k], v, "warm delta download must stay exact");
        }
    }

    #[test]
    fn delta_upload_against_acked_baseline() {
        let c = cloud();
        let mut wire = WireContext::new(WireConfig::delta(0.0));
        wire.commit_model(c.model());
        let payload = c.dispatch(&spec());
        let mut frame = Vec::new();
        wire.encode_payload(7, &payload, &mut frame);
        wire.decode_payload(7, &frame).unwrap();

        // Device nudges a couple of parameters and uploads.
        let mut update = ModuleUpdate {
            spec: payload.spec.clone(),
            module_params: payload.module_params.clone(),
            shared_params: payload.shared_params.clone(),
            importance: vec![vec![0.25; 4]; 2],
            data_volume: 12,
        };
        update.shared_params[0] += 1.0;
        if let Some(m) = update.module_params.get_mut(&(0, 0)) {
            m[0] += 0.5;
        }
        let raw_size: usize =
            4 * (update.shared_params.len() + update.module_params.values().map(Vec::len).sum::<usize>());
        let n = wire.encode_update(7, &update, &mut frame);
        assert!(n < raw_size / 2, "delta upload {n} not smaller than raw {raw_size}");
        let back = wire.decode_update(&frame).unwrap();
        assert_eq!(back.shared_params, update.shared_params);
        assert_eq!(back.module_params[&(0, 0)], update.module_params[&(0, 0)]);
        assert_eq!(back.data_volume, 12);
    }

    #[test]
    fn q8_round_trip_is_bounded_and_small() {
        let c = cloud();
        let mut wire = WireContext::new(WireConfig::int8());
        let payload = c.dispatch(&spec());
        let mut frame = Vec::new();
        let n = wire.encode_payload(7, &payload, &mut frame);
        let raw_size: usize =
            4 * (payload.shared_params.len() + payload.module_params.values().map(Vec::len).sum::<usize>());
        assert!(n < raw_size / 2, "q8 payload {n} not ≥2x smaller than raw {raw_size}");
        let back = wire.decode_payload(7, &frame).unwrap();
        for (k, v) in &payload.module_params {
            let max_abs = v.iter().fold(0.0f32, |m, x| m.max(x.abs()));
            let scale = max_abs / 127.0;
            for (a, b) in v.iter().zip(&back.module_params[k]) {
                assert!((a - b).abs() <= scale * 0.5 + 1e-6, "module {k:?} out of bound");
            }
        }
    }

    #[test]
    fn corrupted_frames_are_rejected_not_misdecoded() {
        let c = cloud();
        let mut wire = WireContext::new(WireConfig::raw());
        let payload = c.dispatch(&spec());
        let mut frame = Vec::new();
        wire.encode_payload(7, &payload, &mut frame);
        for at in [0usize, 10, frame.len() / 2, frame.len() - 1] {
            let mut bad = frame.clone();
            bad[at] ^= 0x20;
            assert!(wire.decode_payload(7, &bad).is_err());
        }
        // Pristine frame still decodes after the failed attempts.
        assert!(wire.decode_payload(7, &frame).is_ok());
    }

    #[test]
    fn telemetry_counts_frames_bytes_and_crc_rejects() {
        use nebula_telemetry::{MemorySink, Telemetry};
        use std::sync::Arc;
        let c = cloud();
        let mut wire = WireContext::new(WireConfig::raw());
        let mem = Arc::new(MemorySink::new());
        let t = Telemetry::new(mem.clone());
        wire.set_telemetry(t.clone());

        let payload = c.dispatch(&spec());
        let mut frame = Vec::new();
        let n = wire.encode_payload(7, &payload, &mut frame) as u64;
        let mut bad = frame.clone();
        bad[frame.len() / 2] ^= 0xFF;
        assert!(wire.decode_payload(7, &bad).is_err());
        assert!(wire.decode_payload(7, &frame).is_ok());

        let m = t.metrics().expect("telemetry on");
        assert_eq!(m.counters["wire.frames_down"], 1);
        assert_eq!(m.counters["wire.bytes_down"], n);
        assert_eq!(m.counters["wire.rejects_crc"], 1);
        assert_eq!(m.histograms["wire.frame_bytes_down"].count, 1);
        let wire_events: Vec<_> = mem.events().into_iter().filter(|e| e.kind == "wire").collect();
        assert_eq!(wire_events.len(), 2, "one frame event + one reject event");
        assert_eq!(wire_events[1].text["reject"], "crc");
    }

    #[test]
    fn authed_round_trip_and_cross_device_rejection() {
        let c = cloud();
        let key = [0x42u8; 16];
        let mut wire = WireContext::new(WireConfig::raw().with_auth(key));
        let payload = c.dispatch(&spec());
        let mut frame = Vec::new();
        wire.encode_payload(7, &payload, &mut frame);
        let back = wire.decode_payload(7, &frame).unwrap();
        assert_eq!(back.shared_params, payload.shared_params);
        // The MAC is per-device: device 8 cannot decode device 7's frame.
        assert!(matches!(wire.decode_payload(8, &frame), Err(WireError::AuthMismatch { .. })));
        // A v1 (unauthenticated) context rejects the authed frame too.
        let mut v1 = WireContext::new(WireConfig::raw());
        assert!(matches!(v1.decode_payload(7, &frame), Err(WireError::AuthMissing)));
    }

    #[test]
    fn forged_update_with_fixed_crc_is_rejected_before_decode() {
        use nebula_telemetry::{MemorySink, Telemetry};
        use std::sync::Arc;
        let c = cloud();
        let mut wire = WireContext::new(WireConfig::raw().with_auth([0x17u8; 16]));
        let mem = Arc::new(MemorySink::new());
        let t = Telemetry::new(mem.clone());
        wire.set_telemetry(t.clone());

        let payload = c.dispatch(&spec());
        let update = ModuleUpdate {
            spec: payload.spec.clone(),
            module_params: payload.module_params.clone(),
            shared_params: payload.shared_params.clone(),
            importance: vec![vec![0.25; 4]; 2],
            data_volume: 12,
        };
        let mut frame = Vec::new();
        wire.encode_update(7, &update, &mut frame);
        assert!(wire.decode_update_from(7, &frame).is_ok());

        // Forge: flip a body byte and recompute the CRC over everything
        // before the trailer, exactly what a CRC-only check would accept.
        let mut forged = frame.clone();
        let body_end = forged.len() - nebula_wire::frame::TRAILER_LEN - nebula_wire::frame::MAC_LEN;
        forged[body_end / 2] ^= 0x01;
        let crc = nebula_wire::crc32(&forged[..body_end]).to_le_bytes();
        forged[body_end..body_end + 4].copy_from_slice(&crc);
        assert!(matches!(wire.decode_update_from(7, &forged), Err(WireError::AuthMismatch { .. })));

        let m = t.metrics().expect("telemetry on");
        assert_eq!(m.counters["wire.rejects_auth"], 1);
        assert!(!m.counters.contains_key("wire.rejects_crc"));
    }

    #[test]
    fn unauth_upload_into_keyed_cloud_is_rejected() {
        let c = cloud();
        let mut sender = WireContext::new(WireConfig::raw());
        let mut keyed = WireContext::new(WireConfig::raw().with_auth([9u8; 16]));
        let payload = c.dispatch(&spec());
        let update = ModuleUpdate {
            spec: payload.spec.clone(),
            module_params: payload.module_params.clone(),
            shared_params: payload.shared_params.clone(),
            importance: vec![vec![0.25; 4]; 2],
            data_volume: 5,
        };
        let mut frame = Vec::new();
        sender.encode_update(7, &update, &mut frame);
        // Downgrade protection: a keyed cloud never accepts v1 frames.
        assert!(matches!(keyed.decode_update_from(7, &frame), Err(WireError::AuthMissing)));
        // And the device-less decode path refuses authed configs outright.
        let mut authed_frame = Vec::new();
        keyed.encode_update(7, &update, &mut authed_frame);
        assert!(matches!(keyed.decode_update(&authed_frame), Err(WireError::AuthMissing)));
    }

    #[test]
    fn forget_device_goes_cold_again() {
        let c = cloud();
        let mut wire = WireContext::new(WireConfig::delta(0.0));
        wire.commit_model(c.model());
        let payload = c.dispatch(&spec());
        let mut frame = Vec::new();
        let cold = wire.encode_payload(7, &payload, &mut frame);
        wire.decode_payload(7, &frame).unwrap();
        wire.commit_model(c.model());
        let warm = wire.encode_payload(7, &payload, &mut frame);
        wire.decode_payload(7, &frame).unwrap();
        assert!(warm < cold);
        wire.forget_device(7);
        wire.commit_model(c.model());
        let re_cold = wire.encode_payload(7, &payload, &mut frame);
        assert!(re_cold > warm, "forgotten device must be re-sent raw");
    }
}
