//! Personalized sub-model derivation (§5.1).
//!
//! Given per-module importance scores (mean gate probability over the
//! device's local data) and the device's resource profile, select the
//! modules forming the best sub-model:
//!
//! 1. the shared parts (stem, head, selector) are mandatory — their cost
//!    is charged against the limits first;
//! 2. the most important module of each layer is selected unconditionally
//!    ("to avoid the situation where no module is selected for a certain
//!    module layer");
//! 3. the remaining candidates go into a multi-dimensional knapsack
//!    (Eq. 2) over {communication, computation, memory}.

use crate::profile::ResourceProfile;
use nebula_modular::cost::CostModel;
use nebula_modular::SubModelSpec;
use nebula_opt::{solve_mdkp_greedy, MdkpInstance};
use nebula_wire::CodecKind;

/// Result of a derivation: the sub-model plus diagnostics.
#[derive(Clone, Debug)]
pub struct DeriveOutcome {
    /// The derived sub-model.
    pub spec: SubModelSpec,
    /// Total importance captured by the selection.
    pub captured_importance: f32,
    /// True when the resource limits could not even fit the mandatory
    /// parts (shared + one module per layer); the minimal sub-model is
    /// returned anyway — the device runs it best-effort, as a real system
    /// must.
    pub over_budget: bool,
}

/// Derives a personalized sub-model.
///
/// * `importance[l][i]` — device-local module importance (§5.1);
/// * `profile` — the device's Eq. 2 limits;
/// * `extra_module_cap` — optional hard cap on modules per layer
///   (the paper's "maximum sub-model size ratio" sensitivity knob);
///   `None` leaves the knapsack fully in charge.
pub fn derive_submodel(
    cost: &CostModel,
    importance: &[Vec<f32>],
    profile: &ResourceProfile,
    extra_module_cap: Option<usize>,
) -> DeriveOutcome {
    // Raw planned bytes equal the analytic `4 × params` exactly, so this
    // wrapper is bit-identical to the historical derivation.
    derive_submodel_with_codec(cost, importance, profile, extra_module_cap, CodecKind::Raw)
}

/// [`derive_submodel`] with the communication dimension charged at the
/// *encoded* sub-model size of `codec` ([`CodecKind::planned_bytes`])
/// instead of the fp32 parameter count. A device whose `comm_bytes`
/// budget fits only a sliver of the model raw can fit ~4× the modules
/// under `QuantInt8`; the knapsack should know that.
pub fn derive_submodel_with_codec(
    cost: &CostModel,
    importance: &[Vec<f32>],
    profile: &ResourceProfile,
    extra_module_cap: Option<usize>,
    codec: CodecKind,
) -> DeriveOutcome {
    let layers = importance.len();
    assert!(layers > 0, "importance for zero layers");
    let n = importance[0].len();
    assert!(importance.iter().all(|row| row.len() == n), "ragged importance");

    // Budget after the mandatory shared parts. Memory uses the cost
    // model's exact training-memory decomposition (parameter state plus
    // activation cache) so Σ(module costs) + base equals
    // `CostModel::submodel(spec).training_mem_bytes` — a derived
    // sub-model is guaranteed to fit the budget under the same accounting
    // the simulator's profiles are built from.
    let shared = cost.shared();
    let mut rem_comm = profile.comm_bytes as i128 - codec.planned_bytes(shared.params as usize) as i128;
    let mut rem_flops = profile.flops as i128 - shared.flops as i128;
    let mut rem_mem = profile.mem_bytes as i128 - cost.base_training_mem_bytes(layers) as i128;

    // Step 1: mandatory most-important module per layer.
    let mut chosen: Vec<Vec<usize>> = Vec::with_capacity(layers);
    let mut captured = 0.0f32;
    let mut over_budget = false;
    for (l, imp) in importance.iter().enumerate() {
        let best = imp
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .expect("non-empty layer");
        let c = cost.module(l, best);
        rem_comm -= codec.planned_bytes(c.params as usize) as i128;
        rem_flops -= c.flops as i128;
        rem_mem -= cost.module_training_mem_bytes(l, best) as i128;
        captured += imp[best];
        chosen.push(vec![best]);
    }
    if rem_comm < 0 || rem_flops < 0 || rem_mem < 0 {
        over_budget = true;
        rem_comm = rem_comm.max(0);
        rem_flops = rem_flops.max(0);
        rem_mem = rem_mem.max(0);
    }

    // Step 2: knapsack over the remaining candidates.
    let mut items: Vec<(usize, usize)> = Vec::new(); // (layer, module)
    let mut values = Vec::new();
    let mut costs = Vec::new();
    for (l, imp) in importance.iter().enumerate() {
        let cap = extra_module_cap.unwrap_or(n);
        if cap <= 1 {
            continue; // mandatory module already fills the cap
        }
        for (i, &v) in imp.iter().enumerate() {
            if chosen[l][0] == i {
                continue;
            }
            let c = cost.module(l, i);
            items.push((l, i));
            values.push(v);
            costs.push(vec![
                codec.planned_bytes(c.params as usize) as f32,
                c.flops as f32,
                cost.module_training_mem_bytes(l, i) as f32,
            ]);
        }
    }

    if !items.is_empty() && !over_budget {
        let inst =
            MdkpInstance { values, costs, limits: vec![rem_comm as f32, rem_flops as f32, rem_mem as f32] };
        let mut selected = solve_mdkp_greedy(&inst);

        // Honour the per-layer cap: keep the highest-importance winners.
        if let Some(cap) = extra_module_cap {
            for l in 0..layers {
                let mut winners: Vec<usize> = items
                    .iter()
                    .enumerate()
                    .filter(|(idx, &(il, _))| selected[*idx] && il == l)
                    .map(|(idx, _)| idx)
                    .collect();
                if winners.len() + 1 > cap {
                    winners.sort_by(|&a, &b| {
                        inst.values[b].partial_cmp(&inst.values[a]).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    for &drop in winners.iter().skip(cap.saturating_sub(1)) {
                        selected[drop] = false;
                    }
                }
            }
        }

        for (idx, &(l, i)) in items.iter().enumerate() {
            if selected[idx] {
                chosen[l].push(i);
                captured += inst.values[idx];
            }
        }
    }

    DeriveOutcome { spec: SubModelSpec::new(chosen), captured_importance: captured, over_budget }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_modular::ModularConfig;

    fn cost_model() -> CostModel {
        CostModel::new(ModularConfig::toy(16, 4))
    }

    fn uniform_importance(layers: usize, n: usize) -> Vec<Vec<f32>> {
        vec![vec![1.0 / n as f32; n]; layers]
    }

    #[test]
    fn unconstrained_derivation_takes_everything() {
        let cm = cost_model();
        let imp = uniform_importance(2, 4);
        let out = derive_submodel(&cm, &imp, &ResourceProfile::unconstrained(), None);
        assert_eq!(out.spec.total_modules(), 8);
        assert!(!out.over_budget);
    }

    #[test]
    fn every_layer_keeps_at_least_one_module() {
        let cm = cost_model();
        let imp = uniform_importance(2, 4);
        // Tiny budget: still one module per layer.
        let tiny = ResourceProfile { mem_bytes: 1, flops: 1, comm_bytes: 1 };
        let out = derive_submodel(&cm, &imp, &tiny, None);
        assert!(out.over_budget);
        for l in 0..2 {
            assert_eq!(out.spec.layer(l).len(), 1);
        }
    }

    #[test]
    fn picks_most_important_module_first() {
        let cm = cost_model();
        let mut imp = uniform_importance(2, 4);
        imp[0] = vec![0.05, 0.8, 0.1, 0.05];
        imp[1] = vec![0.7, 0.1, 0.1, 0.1];
        let tiny = ResourceProfile { mem_bytes: 1, flops: 1, comm_bytes: 1 };
        let out = derive_submodel(&cm, &imp, &tiny, None);
        assert_eq!(out.spec.layer(0), &[1]);
        assert_eq!(out.spec.layer(1), &[0]);
    }

    #[test]
    fn budget_monotonicity() {
        let cm = cost_model();
        let imp = uniform_importance(2, 4);
        let full = cm.full_model();
        let small = ResourceProfile {
            mem_bytes: full.training_mem_bytes / 2,
            flops: full.flops / 2,
            comm_bytes: full.comm_bytes / 2,
        };
        let large = ResourceProfile {
            mem_bytes: full.training_mem_bytes * 2,
            flops: full.flops * 2,
            comm_bytes: full.comm_bytes * 2,
        };
        let out_s = derive_submodel(&cm, &imp, &small, None);
        let out_l = derive_submodel(&cm, &imp, &large, None);
        assert!(out_l.spec.total_modules() >= out_s.spec.total_modules());
        assert!(out_l.captured_importance >= out_s.captured_importance);
    }

    #[test]
    fn module_cap_limits_layer_width() {
        let cm = cost_model();
        let imp = uniform_importance(2, 4);
        let out = derive_submodel(&cm, &imp, &ResourceProfile::unconstrained(), Some(2));
        for l in 0..2 {
            assert!(out.spec.layer(l).len() <= 2, "layer {l} has {:?}", out.spec.layer(l));
        }
    }

    #[test]
    fn derived_submodel_fits_budget() {
        let cm = cost_model();
        let imp = uniform_importance(2, 4);
        let full = cm.full_model();
        let budget = ResourceProfile {
            mem_bytes: full.training_mem_bytes * 6 / 10,
            flops: full.flops * 6 / 10,
            comm_bytes: full.comm_bytes * 6 / 10,
        };
        let out = derive_submodel(&cm, &imp, &budget, None);
        assert!(!out.over_budget);
        let c = cm.submodel(&out.spec);
        assert!(c.comm_bytes <= budget.comm_bytes, "comm {} > {}", c.comm_bytes, budget.comm_bytes);
        assert!(c.flops <= budget.flops);
        assert!(
            c.training_mem_bytes <= budget.mem_bytes,
            "training mem {} > budget {}",
            c.training_mem_bytes,
            budget.mem_bytes
        );
    }

    #[test]
    fn codec_aware_budget_uses_encoded_size_not_param_count() {
        // Regression for the wire integration: a comm budget that fits
        // only the mandatory modules raw must fit more modules when the
        // knapsack charges the int8-encoded size (≈¼ of fp32), and the
        // selection must respect the encoded budget exactly.
        let cm = cost_model();
        let imp = uniform_importance(2, 4);
        // Generous in every dimension except communication.
        let full = cm.full_model();
        let comm_budget = full.comm_bytes * 4 / 10; // 40% of raw full model
        let profile = ResourceProfile {
            mem_bytes: full.training_mem_bytes * 4,
            flops: full.flops * 4,
            comm_bytes: comm_budget,
        };
        let raw = derive_submodel_with_codec(&cm, &imp, &profile, None, nebula_wire::CodecKind::Raw);
        let q8 = derive_submodel_with_codec(&cm, &imp, &profile, None, nebula_wire::CodecKind::QuantInt8);
        assert_eq!(
            raw.spec,
            derive_submodel(&cm, &imp, &profile, None).spec,
            "raw codec must reproduce the analytic derivation bit-for-bit"
        );
        assert!(
            q8.spec.total_modules() > raw.spec.total_modules(),
            "int8 budget fits {} modules vs raw {} — codec not reaching the knapsack",
            q8.spec.total_modules(),
            raw.spec.total_modules()
        );
        // Both selections respect their own encoded budget.
        for (out, codec) in [(&raw, nebula_wire::CodecKind::Raw), (&q8, nebula_wire::CodecKind::QuantInt8)] {
            let mut encoded = codec.planned_bytes(cm.shared().params as usize);
            for (l, layer) in out.spec.layers().iter().enumerate() {
                for &i in layer {
                    encoded += codec.planned_bytes(cm.module(l, i).params as usize);
                }
            }
            assert!(!out.over_budget);
            assert!(
                encoded <= comm_budget,
                "{} selection encodes to {} > budget {}",
                codec.name(),
                encoded,
                comm_budget
            );
        }
    }

    #[test]
    fn derive_mem_accounting_matches_cost_model_exactly() {
        // The per-module increments plus the base must reproduce
        // CostModel::submodel(...).training_mem_bytes for any spec.
        let cm = cost_model();
        let imp = uniform_importance(2, 4);
        let out = derive_submodel(&cm, &imp, &ResourceProfile::unconstrained(), None);
        let mut total = cm.base_training_mem_bytes(out.spec.num_layers());
        for (l, layer) in out.spec.layers().iter().enumerate() {
            for &i in layer {
                total += cm.module_training_mem_bytes(l, i);
            }
        }
        assert_eq!(total, cm.submodel(&out.spec).training_mem_bytes);
    }
}
