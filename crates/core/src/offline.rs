//! Offline stage: end-to-end pre-training and module ability-enhancing
//! training (§4.3).
//!
//! 1. **Vanilla end-to-end training** — the `ModularModel` already folds
//!    the load-balancing loss and noisy top-k into its forward/backward,
//!    so pre-training is a plain cross-entropy loop over proxy data.
//! 2. **Ability enhancing**:
//!    - define sub-tasks (groups of samples — e.g. co-occurring class
//!      groups under label skew, subjects under feature skew);
//!    - compute the load matrix `H[t][n]` = mean gate probability of
//!      module `n` over sub-task `t`'s samples, per layer;
//!    - solve Eq. 1 for the mask `M`; the target mapping is
//!      `P = normalize_rows(H ⊙ M)`;
//!    - fine-tune with `CE + λ·KL(g_label ‖ gate)` where each sample's
//!      `g_label` row is `P[t]` for its sub-task.

use nebula_data::{Dataset, TrainConfig};
use nebula_modular::ModularModel;
use nebula_nn::{cross_entropy, Layer, Mode, Optimizer, Sgd};
use nebula_opt::{solve_assignment, AssignmentProblem};
use nebula_tensor::{NebulaRng, Tensor};

/// Hyper-parameters of the end-to-end pre-training stage.
#[derive(Clone, Copy, Debug)]
pub struct PretrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub momentum: f32,
    pub clip_norm: f32,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self { epochs: 20, batch_size: 32, lr: 0.05, momentum: 0.9, clip_norm: 5.0 }
    }
}

/// End-to-end pre-training on the cloud's proxy dataset. Returns the mean
/// loss of the final epoch.
pub fn pretrain(model: &mut ModularModel, proxy: &Dataset, cfg: PretrainConfig, rng: &mut NebulaRng) -> f32 {
    let mut opt = Sgd::with_momentum(cfg.lr, cfg.momentum);
    nebula_data::train_epochs(
        model,
        &mut opt,
        proxy,
        TrainConfig { epochs: cfg.epochs, batch_size: cfg.batch_size, clip_norm: Some(cfg.clip_norm) },
        rng,
    )
}

/// Computes the per-layer sub-task load matrices `H_l[t][n]` from the
/// current selector: for each sub-task dataset, the mean gate probability
/// of each module.
pub fn subtask_load_matrices(model: &mut ModularModel, subtasks: &[Dataset]) -> Vec<Vec<Vec<f32>>> {
    assert!(!subtasks.is_empty(), "need at least one sub-task");
    let layers = model.num_layers();
    let mut h = vec![Vec::with_capacity(subtasks.len()); layers];
    for st in subtasks {
        assert!(!st.is_empty(), "empty sub-task dataset");
        let imp = model.importance(st.features());
        for (l, row) in imp.into_iter().enumerate() {
            h[l].push(row);
        }
    }
    h
}

/// Hyper-parameters of the ability-enhancing fine-tuning stage.
#[derive(Clone, Copy, Debug)]
pub struct EnhanceConfig {
    /// κ₁ — max sub-tasks per module (Eq. 1, first constraint).
    pub max_tasks_per_module: usize,
    /// κ₂ — max modules per sub-task (Eq. 1, second constraint).
    pub max_modules_per_task: usize,
    /// Fine-tuning epochs.
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    /// λ of the KL term.
    pub kl_weight: f32,
}

impl Default for EnhanceConfig {
    fn default() -> Self {
        Self {
            max_tasks_per_module: 2,
            max_modules_per_task: 4,
            epochs: 5,
            batch_size: 32,
            lr: 0.02,
            kl_weight: 1.0,
        }
    }
}

/// Result of the ability-enhancing stage: the target mapping `P_l[t][n]`
/// per layer (row-normalised `H ⊙ M`).
pub struct EnhanceOutcome {
    /// `layers × sub-tasks × modules` recommended activation distributions.
    pub target_mapping: Vec<Vec<Vec<f32>>>,
    /// Final fine-tuning loss (CE component).
    pub final_loss: f32,
}

/// Module ability-enhancing training (§4.3, steps 1–3).
///
/// `subtasks[t]` holds the samples of sub-task `t`. Each fine-tuning batch
/// mixes samples from all sub-tasks; every sample carries its sub-task's
/// recommended gate distribution as the KL target.
pub fn enhance_module_abilities(
    model: &mut ModularModel,
    subtasks: &[Dataset],
    cfg: EnhanceConfig,
    rng: &mut NebulaRng,
) -> EnhanceOutcome {
    let layers = model.num_layers();
    let n_modules = model.config().modules_per_layer;
    let t_tasks = subtasks.len();

    // Step 2: identify modules' targeted sub-tasks per layer.
    let h = subtask_load_matrices(model, subtasks);
    let mut target_mapping: Vec<Vec<Vec<f32>>> = Vec::with_capacity(layers);
    for h_l in &h {
        let problem = AssignmentProblem {
            load: h_l.clone(),
            max_tasks_per_module: cfg.max_tasks_per_module,
            max_modules_per_task: cfg.max_modules_per_task,
        };
        let mask = solve_assignment(&problem);
        // P = row-normalised H ⊙ M.
        let p: Vec<Vec<f32>> = h_l
            .iter()
            .zip(&mask)
            .map(|(hrow, mrow)| {
                let mut prow: Vec<f32> =
                    hrow.iter().zip(mrow).map(|(&hv, &mv)| if mv { hv.max(1e-6) } else { 0.0 }).collect();
                let sum: f32 = prow.iter().sum();
                if sum > 0.0 {
                    prow.iter_mut().for_each(|v| *v /= sum);
                } else {
                    prow = vec![1.0 / n_modules as f32; n_modules];
                }
                prow
            })
            .collect();
        target_mapping.push(p);
    }

    // Step 3: fine-tune with CE + λ·KL toward the recommended mapping.
    // Build a pooled dataset remembering each sample's sub-task.
    let mut pooled: Option<Dataset> = None;
    let mut sample_task: Vec<usize> = Vec::new();
    for (t, st) in subtasks.iter().enumerate() {
        sample_task.extend(std::iter::repeat_n(t, st.len()));
        pooled = Some(match pooled {
            None => st.clone(),
            Some(acc) => acc.concat(st),
        });
    }
    let pooled = pooled.expect("non-empty subtasks");

    let mut opt = Sgd::with_momentum(cfg.lr, 0.9);
    let mut final_loss = 0.0;
    for _ in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..pooled.len()).collect();
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0f64;
        let mut seen = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let batch = pooled.subset(chunk);
            // Per-sample KL targets from each sample's sub-task.
            let targets: Vec<Tensor> = (0..layers)
                .map(|l| {
                    let mut t = Tensor::zeros(&[chunk.len(), n_modules]);
                    for (row, &si) in chunk.iter().enumerate() {
                        let task = sample_task[si];
                        debug_assert!(task < t_tasks);
                        t.row_mut(row).copy_from_slice(&target_mapping[l][task]);
                    }
                    t
                })
                .collect();

            model.zero_grad();
            model.set_gate_kl_target(Some((targets, cfg.kl_weight)));
            let logits = model.forward(batch.features(), Mode::Train);
            let (loss, grad) = cross_entropy(&logits, batch.labels());
            model.backward(&grad);
            model.clip_grad_norm(5.0);
            opt.step(model);
            epoch_loss += loss as f64 * chunk.len() as f64;
            seen += chunk.len();
        }
        final_loss = (epoch_loss / seen.max(1) as f64) as f32;
    }
    model.set_gate_kl_target(None);

    EnhanceOutcome { target_mapping, final_loss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_data::{SynthSpec, Synthesizer};
    use nebula_modular::ModularConfig;

    fn setup() -> (ModularModel, Synthesizer, NebulaRng) {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut cfg = ModularConfig::toy(16, 4);
        cfg.gate_noise_std = 0.3;
        let model = ModularModel::new(cfg, 5);
        (model, synth, NebulaRng::seed(7))
    }

    fn subtask_datasets(synth: &Synthesizer, rng: &mut NebulaRng) -> Vec<Dataset> {
        // Two sub-tasks: classes {0,1} and {2,3}.
        vec![synth.sample_classes(120, &[0, 1], 0, rng), synth.sample_classes(120, &[2, 3], 0, rng)]
    }

    #[test]
    fn pretrain_learns_the_proxy_task() {
        let (mut model, synth, mut rng) = setup();
        let proxy = synth.sample(400, 0, &mut rng);
        let test = synth.sample(200, 0, &mut rng);
        let cfg = PretrainConfig { epochs: 15, batch_size: 16, lr: 0.05, momentum: 0.9, clip_norm: 5.0 };
        pretrain(&mut model, &proxy, cfg, &mut rng);
        let acc = nebula_data::evaluate_accuracy(&mut model, &test, 64);
        assert!(acc > 0.65, "pre-trained accuracy only {acc}");
    }

    #[test]
    fn load_matrices_are_row_stochastic() {
        let (mut model, synth, mut rng) = setup();
        let subtasks = subtask_datasets(&synth, &mut rng);
        let h = subtask_load_matrices(&mut model, &subtasks);
        assert_eq!(h.len(), 2); // layers
        for h_l in &h {
            assert_eq!(h_l.len(), 2); // sub-tasks
            for row in h_l {
                assert_eq!(row.len(), 4); // modules
                nebula_tensor::assert_close(row.iter().sum::<f32>(), 1.0, 1e-4);
            }
        }
    }

    #[test]
    fn enhance_produces_sparse_normalised_targets() {
        let (mut model, synth, mut rng) = setup();
        let proxy = synth.sample(300, 0, &mut rng);
        pretrain(&mut model, &proxy, PretrainConfig { epochs: 5, ..Default::default() }, &mut rng);
        let subtasks = subtask_datasets(&synth, &mut rng);
        let cfg = EnhanceConfig { max_modules_per_task: 2, epochs: 2, ..Default::default() };
        let out = enhance_module_abilities(&mut model, &subtasks, cfg, &mut rng);
        for layer_map in &out.target_mapping {
            for row in layer_map {
                let nonzero = row.iter().filter(|&&v| v > 0.0).count();
                assert!((1..=2).contains(&nonzero), "target row violates κ2: {row:?}");
                nebula_tensor::assert_close(row.iter().sum::<f32>(), 1.0, 1e-4);
            }
        }
    }

    #[test]
    fn enhance_concentrates_gate_on_recommended_modules() {
        let (mut model, synth, mut rng) = setup();
        let proxy = synth.sample(300, 0, &mut rng);
        pretrain(&mut model, &proxy, PretrainConfig { epochs: 8, ..Default::default() }, &mut rng);
        let subtasks = subtask_datasets(&synth, &mut rng);
        let cfg = EnhanceConfig { max_modules_per_task: 2, epochs: 6, kl_weight: 2.0, ..Default::default() };
        let out = enhance_module_abilities(&mut model, &subtasks, cfg, &mut rng);

        // After fine-tuning, sub-task 0's gate mass on its recommended
        // modules should dominate.
        let h_after = subtask_load_matrices(&mut model, &subtasks);
        for (l, layer_map) in out.target_mapping.iter().enumerate() {
            let recommended: Vec<usize> =
                layer_map[0].iter().enumerate().filter_map(|(i, &p)| (p > 0.0).then_some(i)).collect();
            let mass: f32 = recommended.iter().map(|&i| h_after[l][0][i]).sum();
            assert!(
                mass > 0.5,
                "layer {l}: sub-task 0 gate mass on recommended modules only {mass} ({recommended:?})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one sub-task")]
    fn load_matrix_rejects_empty_subtask_list() {
        let (mut model, _, _) = setup();
        subtask_load_matrices(&mut model, &[]);
    }
}
