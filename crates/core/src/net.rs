//! The dispatch transport: how a round's training jobs reach their
//! executors.
//!
//! Historically every strategy trained its cohort in-process with a
//! rayon `par_iter` inlined into the round loop. The serving plane
//! generalizes that into a [`Transport`]: the coordinator hands a batch
//! of [`DispatchJob`]s to the transport and gets back one
//! [`JobResult`] (or [`TransportError`]) per job, order-preserving.
//!
//! Two families of implementation exist:
//!
//! * [`Loopback`] — in-process execution over a [`JobRunner`], the
//!   refactoring of the historical inline loop. Bit-identical to the
//!   pre-transport round paths (test-pinned).
//! * `Socket` (in `nebula-serve`) — the same jobs serialized as wire
//!   control frames to separate worker processes over TCP or
//!   Unix-domain sockets.
//!
//! A [`DispatchJob`] is *self-contained*: it carries the encoded
//! sub-model frame (or dense parameter vector), the device's local
//! dataset shard, the training hyper-parameters and the exact RNG
//! state the device would have used in-process. That is what makes a
//! remote worker reproduce the loopback trajectory bit-for-bit under
//! the `Raw` codec: a fresh decoder has no state to diverge on.

use crate::edge::{EdgeClient, EdgeUpdate};
use crate::transport::{WireConfig, WireContext};
use nebula_data::Dataset;
use nebula_modular::ModularConfig;
use nebula_tensor::NebulaRng;
use rayon::prelude::*;
use std::fmt;
use std::sync::Arc;

/// Why a dispatched job failed to come back.
#[derive(Clone, Debug, PartialEq)]
pub enum TransportError {
    /// The executor's connection closed (worker crash / clean shutdown
    /// mid-round). The round treats the device like a dropped link.
    Closed(String),
    /// The job missed the transport's wall-clock deadline.
    Timeout {
        /// How long the coordinator waited, milliseconds.
        waited_ms: u64,
    },
    /// Socket-level I/O failure.
    Io(String),
    /// The frame came back undecodable (CRC/MAC/codec error).
    Wire(String),
    /// The executor refused the job (unsupported spec, codec, proto).
    Rejected(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed(why) => write!(f, "connection closed: {why}"),
            TransportError::Timeout { waited_ms } => write!(f, "deadline missed after {waited_ms} ms"),
            TransportError::Io(why) => write!(f, "io error: {why}"),
            TransportError::Wire(why) => write!(f, "wire error: {why}"),
            TransportError::Rejected(why) => write!(f, "job rejected: {why}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Local-training hyper-parameters shipped with every job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainParams {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
}

/// What kind of model the job trains. Kept free of `nebula-baselines`
/// types on purpose: dense jobs describe their architecture with plain
/// dimensions so the executor (which does depend on the baselines
/// crate) can rebuild the model.
#[derive(Clone, Debug)]
pub enum JobSpec {
    /// A Nebula modular job: the encoded sub-model payload frame,
    /// exactly the bytes the cloud's [`WireContext::encode_payload`]
    /// produced for this device.
    Modular { frame: Vec<u8> },
    /// A dense-baseline job (FedAvg / HeteroFL): full architecture plus
    /// the already-decoded parameter vector for the device's width
    /// ratio. Channel state (delta baselines, quantizer residuals)
    /// stays coordinator-side, which is what keeps every dense codec
    /// transport-invariant.
    Dense {
        input: usize,
        width: usize,
        blocks: usize,
        block_hidden: usize,
        classes: usize,
        /// HeteroFL width ratio (1.0 = full model / FedAvg).
        ratio: f32,
        params: Vec<f32>,
    },
}

/// One device's training assignment for a round.
#[derive(Clone, Debug)]
pub struct DispatchJob {
    pub round: usize,
    /// Device id — the MAC-key derivation label and telemetry key.
    pub device: u64,
    pub spec: JobSpec,
    /// Captured [`NebulaRng`] state for the device's training stream;
    /// the executor restores it so remote training consumes the exact
    /// random sequence in-process training would have.
    pub rng_state: [u64; 4],
    pub train: TrainParams,
    /// The device's local shard.
    pub data: Dataset,
}

/// What comes back from an executor.
#[derive(Clone, Debug)]
pub enum JobResult {
    /// Encoded module-update frame (modular jobs).
    Frame(Vec<u8>),
    /// Trained parameter vector (dense jobs).
    Params(Vec<f32>),
}

impl JobResult {
    /// The update bytes, panicking on a dense result (strategy paths
    /// know which family they dispatched).
    pub fn into_frame(self) -> Vec<u8> {
        match self {
            JobResult::Frame(f) => f,
            JobResult::Params(_) => panic!("expected a frame result, got dense params"),
        }
    }

    /// The dense parameters, panicking on a frame result.
    pub fn into_params(self) -> Vec<f32> {
        match self {
            JobResult::Params(p) => p,
            JobResult::Frame(_) => panic!("expected dense params, got a frame result"),
        }
    }
}

/// Executes one job. Implementations must be callable from many threads
/// at once — both [`Loopback`] and the serve worker pool fan jobs out.
pub trait JobRunner: Send + Sync {
    fn run(&self, job: &DispatchJob) -> Result<JobResult, TransportError>;
}

/// Moves a round's jobs to executors and returns their results in job
/// order. `round_trip` is a *barrier*: it returns when every job has
/// either a result or an error (deadline expiry counts as an error, so
/// a dead worker degrades the round instead of hanging it).
pub trait Transport: Send {
    /// Short label for telemetry/benchmarks ("loopback", "uds", "tcp").
    fn kind(&self) -> &'static str;

    fn round_trip(&mut self, jobs: Vec<DispatchJob>) -> Vec<Result<JobResult, TransportError>>;
}

/// The modular-job executor: decode payload → adapt → encode update,
/// using a *fresh* [`WireContext`] per job.
///
/// Freshness is the point, not an optimization shortcut: a remote
/// worker cannot share the cloud's context, so the executor here uses
/// the same stateless setup the worker would, and the loopback/socket
/// bit-identity tests pin that equivalence. It is only sound for the
/// stateless `Raw` codec (delta and int8 need cloud-side registry or
/// residual state); [`ModularRunner::new`] enforces that.
pub struct ModularRunner {
    modular: ModularConfig,
    wire: WireConfig,
}

impl ModularRunner {
    /// Builds the executor. Panics on a stateful codec — socket/loopback
    /// job execution is `Raw`-only (the handshake rejects others too).
    pub fn new(modular: ModularConfig, wire: WireConfig) -> Self {
        assert!(
            wire.codec == nebula_wire::CodecKind::Raw,
            "transport job execution requires the stateless Raw codec, got {:?}",
            wire.codec
        );
        ModularRunner { modular, wire }
    }

    pub fn modular_config(&self) -> &ModularConfig {
        &self.modular
    }

    pub fn wire_config(&self) -> WireConfig {
        self.wire
    }
}

impl JobRunner for ModularRunner {
    fn run(&self, job: &DispatchJob) -> Result<JobResult, TransportError> {
        let frame = match &job.spec {
            JobSpec::Modular { frame } => frame,
            JobSpec::Dense { .. } => {
                return Err(TransportError::Rejected("modular runner cannot execute dense jobs".into()))
            }
        };
        let mut wire = WireContext::new(self.wire);
        let payload =
            wire.decode_payload(job.device, frame).map_err(|e| TransportError::Wire(e.to_string()))?;
        let mut rng = NebulaRng::from_state(job.rng_state)
            .ok_or_else(|| TransportError::Rejected("degenerate rng state".into()))?;
        let mut client = EdgeClient::from_payload(self.modular.clone(), &payload);
        client.adapt(&job.data, job.train.epochs, job.train.batch_size, job.train.lr, &mut rng);
        let update: EdgeUpdate = client.make_update(&job.data);
        let mut out = Vec::new();
        wire.encode_update(job.device, &update, &mut out);
        Ok(JobResult::Frame(out))
    }
}

/// In-process transport: run every job on the local rayon pool, exactly
/// like the historical inline training loop (client-level parallelism
/// outside, sequential tensor kernels inside).
pub struct Loopback {
    runner: Arc<dyn JobRunner>,
}

impl Loopback {
    pub fn new(runner: Arc<dyn JobRunner>) -> Self {
        Loopback { runner }
    }
}

impl Transport for Loopback {
    fn kind(&self) -> &'static str {
        "loopback"
    }

    fn round_trip(&mut self, jobs: Vec<DispatchJob>) -> Vec<Result<JobResult, TransportError>> {
        let runner = &self.runner;
        jobs.into_par_iter()
            .map(|job| {
                // Client-level parallelism owns the pool here; keep the
                // inner tensor kernels sequential so per-device training
                // does not nest-fork (see nebula_tensor::par).
                nebula_tensor::par::sequential(|| runner.run(&job))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::{NebulaCloud, NebulaParams};
    use nebula_data::{SynthSpec, Synthesizer};
    use nebula_modular::SubModelSpec;

    fn cloud() -> NebulaCloud {
        let cfg = ModularConfig::toy(16, 4);
        NebulaCloud::new(cfg, NebulaParams::default(), 11)
    }

    fn spec() -> SubModelSpec {
        SubModelSpec::new(vec![vec![0, 2, 3], vec![1]])
    }

    fn tiny_dataset(seed: u64) -> Dataset {
        let synth = Synthesizer::new(SynthSpec::toy(), seed);
        let mut rng = NebulaRng::seed(seed ^ 0x5EED);
        synth.sample(24, 0, &mut rng)
    }

    fn job_for(c: &NebulaCloud, wire_cfg: WireConfig, device: u64) -> DispatchJob {
        let mut rng = NebulaRng::seed(7);
        let payload = c.dispatch(&spec());
        let mut wire = WireContext::new(wire_cfg);
        let mut frame = Vec::new();
        wire.encode_payload(device, &payload, &mut frame);
        DispatchJob {
            round: 0,
            device,
            spec: JobSpec::Modular { frame },
            rng_state: rng.fork(device ^ 0xEB).state(),
            train: TrainParams { epochs: 1, batch_size: 8, lr: 0.05 },
            data: tiny_dataset(device),
        }
    }

    #[test]
    fn loopback_runs_modular_jobs_deterministically() {
        let c = cloud();
        let cfg = c.model().config().clone();
        let wire_cfg = WireConfig::raw();
        let runner = Arc::new(ModularRunner::new(cfg, wire_cfg));
        let mut t1 = Loopback::new(runner.clone());
        let mut t2 = Loopback::new(runner);
        let jobs: Vec<DispatchJob> = (0..3).map(|d| job_for(&c, wire_cfg, d)).collect();
        let a = t1.round_trip(jobs.clone());
        let b = t2.round_trip(jobs);
        assert_eq!(a.len(), 3);
        for (ra, rb) in a.into_iter().zip(b) {
            let fa = ra.expect("job runs").into_frame();
            let fb = rb.expect("job runs").into_frame();
            assert!(!fa.is_empty());
            assert_eq!(fa, fb, "loopback execution must be deterministic");
        }
    }

    #[test]
    fn fresh_context_matches_shared_context_under_raw() {
        // The invariant the whole remote path rests on: decoding and
        // re-encoding through a fresh WireContext yields the exact bytes
        // a shared cloud-side context produces, for Raw (± auth).
        for wire_cfg in [WireConfig::raw(), WireConfig::raw().with_auth([9u8; 16])] {
            let c = cloud();
            let cfg = c.model().config().clone();
            let job = job_for(&c, wire_cfg, 5);
            let runner = ModularRunner::new(cfg.clone(), wire_cfg);
            let remote = runner.run(&job).expect("runs").into_frame();

            // Shared-context path: same decode/train/encode through one
            // long-lived context.
            let mut shared = WireContext::new(wire_cfg);
            let frame = match &job.spec {
                JobSpec::Modular { frame } => frame,
                _ => unreachable!(),
            };
            let payload = shared.decode_payload(job.device, frame).unwrap();
            let mut rng = NebulaRng::from_state(job.rng_state).unwrap();
            let mut client = EdgeClient::from_payload(cfg, &payload);
            client.adapt(&job.data, job.train.epochs, job.train.batch_size, job.train.lr, &mut rng);
            let update = client.make_update(&job.data);
            let mut out = Vec::new();
            shared.encode_update(job.device, &update, &mut out);
            assert_eq!(remote, out, "fresh context must be bit-identical under Raw");
        }
    }

    #[test]
    fn modular_runner_rejects_dense_jobs_and_stateful_codecs() {
        let c = cloud();
        let cfg = c.model().config().clone();
        let runner = ModularRunner::new(cfg, WireConfig::raw());
        let mut job = job_for(&c, WireConfig::raw(), 1);
        job.spec = JobSpec::Dense {
            input: 8,
            width: 4,
            blocks: 1,
            block_hidden: 4,
            classes: 3,
            ratio: 1.0,
            params: vec![0.0; 8],
        };
        assert!(matches!(runner.run(&job), Err(TransportError::Rejected(_))));
        assert!(std::panic::catch_unwind(|| {
            ModularRunner::new(ModularConfig::toy(16, 4), WireConfig::delta(0.01));
        })
        .is_err());
    }
}
