//! # nebula-core
//!
//! The Nebula framework proper, built on the modularized model:
//!
//! **Offline stage — on-cloud model prototyping and training (§4):**
//! * [`offline`] — end-to-end pre-training (cross-entropy +
//!   load-balancing, noisy top-k) and the **module ability-enhancing
//!   training**: build the sub-task load matrix `H`, solve the Eq. 1
//!   assignment for the mask `M`, fine-tune with a KL pull toward
//!   `P = H ⊙ M`.
//!
//! **Online stage — edge-cloud collaborative adaptation (§5):**
//! * [`mod@derive`] — personalized sub-model derivation: mandatory
//!   most-important module per layer, then the Eq. 2 multi-dimensional
//!   knapsack under the device's resource profile.
//! * [`aggregate`] — module-wise weighted aggregation with normalised
//!   importance weights (§5.2).
//! * [`cloud`] / [`edge`] — the cloud orchestrator and the edge client,
//!   exchanging [`cloud::SubModelPayload`] and [`edge::EdgeUpdate`]
//!   messages whose byte sizes drive the communication accounting.
//! * [`profile`] — the resource-constraint triple (memory, compute,
//!   bandwidth) produced by a local profiler.
//! * [`presets`] — per-task modular configurations mirroring the paper's
//!   settings (1×16 modules for MLP, 4×16 for ResNet18, 3×32 for
//!   VGG16/ResNet34).

pub mod aggregate;
pub mod checkpoint;
pub mod cloud;
pub mod derive;
pub mod edge;
pub mod journal;
pub mod net;
pub mod offline;
pub mod presets;
pub mod profile;
pub mod retry;
pub mod stats;
pub mod transport;

pub use aggregate::{
    aggregate_module_wise, aggregate_module_wise_refs, aggregate_module_wise_robust,
    aggregate_module_wise_with, discount_staleness, sanitize_updates, update_is_finite, EdgeAccumulator,
    EdgePartial, ModuleUpdate, RobustAggregator, SanitizePolicy, SanitizeReport, StreamingAccumulator,
};
pub use checkpoint::{restore, snapshot, Checkpoint, CheckpointError};
pub use cloud::{AggregateOutcome, GuardedOutcome, NebulaCloud, NebulaParams, SubModelPayload};
pub use derive::{derive_submodel, derive_submodel_with_codec, DeriveOutcome};
pub use edge::{EdgeClient, EdgeClientState, EdgeServer, EdgeUpdate};
pub use journal::{
    read_journal, write_atomic, DurabilityError, JournalContents, JournalWriter, LoadedSnapshot,
    SnapshotStore,
};
pub use net::{
    DispatchJob, JobResult, JobRunner, JobSpec, Loopback, ModularRunner, TrainParams, Transport,
    TransportError,
};
pub use offline::{enhance_module_abilities, pretrain, subtask_load_matrices, EnhanceConfig, PretrainConfig};
pub use presets::{modular_config_for, modular_config_for_sequence};
pub use profile::ResourceProfile;
pub use retry::{backoff_ms, plan_corrupt_resend, plan_upload, round_deadline_ms, RetryPolicy, UploadPlan};
pub use stats::{CommTracker, RoundReport, RoundStats};
pub use transport::{WireConfig, WireContext};
