//! Per-task modular configurations mirroring the paper's §6.1 settings.

use nebula_data::TaskPreset;
use nebula_modular::config::ConvStemConfig;
use nebula_modular::ModularConfig;

/// The paper's modularization settings for each task/model pair:
///
/// | Task | Model | Module layers | Modules/layer |
/// |---|---|---|---|
/// | HAR | MLP | 1 | 16 |
/// | CIFAR-10 | ResNet18 | 4 | 16 |
/// | CIFAR-100 | VGG16 | 3 (last blocks) | 32 |
/// | Speech | ResNet34 | 3 (last blocks) | 32 |
///
/// Trunk widths are scaled to our synthetic feature dims (substitution
/// documented in DESIGN.md); the layer/module counts — the quantities the
/// paper's sensitivity analysis varies — match exactly.
pub fn modular_config_for(task: TaskPreset) -> ModularConfig {
    let spec = task.synth_spec();
    match task {
        TaskPreset::Har => ModularConfig {
            input_dim: spec.feature_dim,
            classes: spec.classes,
            width: 64,
            num_layers: 1,
            modules_per_layer: 16,
            module_hidden: 24,
            residual_module: true,
            top_k: 4,
            selector_embed: 32,
            gate_noise_std: 0.3,
            load_balance_weight: 0.02,
            conv_stem: None,
        },
        TaskPreset::Cifar10 => ModularConfig {
            input_dim: spec.feature_dim,
            classes: spec.classes,
            width: 96,
            num_layers: 4,
            modules_per_layer: 16,
            module_hidden: 24,
            residual_module: true,
            top_k: 4,
            selector_embed: 48,
            gate_noise_std: 0.3,
            load_balance_weight: 0.02,
            conv_stem: None,
        },
        TaskPreset::Cifar100 => ModularConfig {
            input_dim: spec.feature_dim,
            classes: spec.classes,
            width: 160,
            num_layers: 3,
            modules_per_layer: 32,
            module_hidden: 32,
            residual_module: true,
            top_k: 6,
            selector_embed: 64,
            gate_noise_std: 0.3,
            load_balance_weight: 0.02,
            conv_stem: None,
        },
        TaskPreset::SpeechCommands => ModularConfig {
            input_dim: spec.feature_dim,
            classes: spec.classes,
            width: 128,
            num_layers: 3,
            modules_per_layer: 32,
            module_hidden: 28,
            residual_module: true,
            top_k: 6,
            selector_embed: 48,
            gate_noise_std: 0.3,
            load_balance_weight: 0.02,
            conv_stem: None,
        },
    }
}

/// Sequence-native variant of [`modular_config_for`] for the two tasks
/// whose raw inputs are time series (HAR accelerometer windows, speech
/// frames): the dense stem is replaced by a convolutional one
/// (`Conv1d → ReLU → MaxPool1d → Linear`), treating the synthetic feature
/// vector as `channels × length`. Returns `None` for the image tasks.
pub fn modular_config_for_sequence(task: TaskPreset) -> Option<ModularConfig> {
    let mut cfg = modular_config_for(task);
    let conv = match task {
        // HAR: 64 features as 4 sensor channels × 16 time steps.
        TaskPreset::Har => ConvStemConfig { in_channels: 4, in_len: 16, out_channels: 8, kernel: 3, pool: 2 },
        // Speech: 128 features as 4 frequency bands × 32 frames.
        TaskPreset::SpeechCommands => {
            ConvStemConfig { in_channels: 4, in_len: 32, out_channels: 8, kernel: 5, pool: 2 }
        }
        TaskPreset::Cifar10 | TaskPreset::Cifar100 => return None,
    };
    cfg.conv_stem = Some(conv);
    Some(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for t in TaskPreset::all() {
            modular_config_for(t).validate();
        }
    }

    #[test]
    fn layer_and_module_counts_match_paper() {
        let har = modular_config_for(TaskPreset::Har);
        assert_eq!((har.num_layers, har.modules_per_layer), (1, 16));
        let c10 = modular_config_for(TaskPreset::Cifar10);
        assert_eq!((c10.num_layers, c10.modules_per_layer), (4, 16));
        let c100 = modular_config_for(TaskPreset::Cifar100);
        assert_eq!((c100.num_layers, c100.modules_per_layer), (3, 32));
        let sp = modular_config_for(TaskPreset::SpeechCommands);
        assert_eq!((sp.num_layers, sp.modules_per_layer), (3, 32));
    }

    #[test]
    fn sequence_presets_validate_and_train() {
        use nebula_data::Synthesizer;
        use nebula_modular::ModularModel;
        use nebula_tensor::NebulaRng;

        for task in [TaskPreset::Har, TaskPreset::SpeechCommands] {
            let cfg = modular_config_for_sequence(task).expect("sequence task");
            cfg.validate();
            // A couple of training steps must run and stay finite.
            let mut model = ModularModel::new(cfg, 3);
            let synth = Synthesizer::new(task.synth_spec(), 1);
            let mut rng = NebulaRng::seed(2);
            let data = synth.sample(64, 0, &mut rng);
            let mut opt = nebula_nn::Sgd::with_momentum(0.05, 0.9);
            let loss = nebula_data::train_epochs(
                &mut model,
                &mut opt,
                &data,
                nebula_data::TrainConfig { epochs: 2, batch_size: 16, clip_norm: Some(5.0) },
                &mut rng,
            );
            assert!(loss.is_finite(), "{task:?} conv-stem training diverged");
        }
        assert!(modular_config_for_sequence(TaskPreset::Cifar10).is_none());
    }

    #[test]
    fn input_dims_match_synth_specs() {
        for t in TaskPreset::all() {
            assert_eq!(modular_config_for(t).input_dim, t.synth_spec().feature_dim);
            assert_eq!(modular_config_for(t).classes, t.classes());
        }
    }
}
