//! The Nebula cloud orchestrator.
//!
//! Owns the modularized cloud model and drives both stages: offline
//! pre-training + ability enhancing, and the online loop of deriving
//! sub-models for devices, dispatching them, and aggregating updates
//! module-wise. Payload byte sizes are exposed so the simulator can
//! account communication exactly (paper Fig. 7).

use crate::aggregate::{
    aggregate_module_wise, aggregate_module_wise_robust, sanitize_updates, EdgePartial, ModuleUpdate,
    RobustAggregator, SanitizePolicy, SanitizeReport, StreamingAccumulator,
};
use crate::checkpoint::{self, Checkpoint, CheckpointError};
use crate::derive::{derive_submodel, DeriveOutcome};
use crate::offline::{enhance_module_abilities, pretrain, EnhanceConfig, EnhanceOutcome, PretrainConfig};
use crate::profile::ResourceProfile;
use nebula_data::Dataset;
use nebula_modular::cost::CostModel;
use nebula_modular::{ModularConfig, ModularModel, SubModelSpec};
use nebula_tensor::NebulaRng;
use std::collections::BTreeMap;

/// Framework hyper-parameters (paper §6.1 defaults).
#[derive(Clone, Copy, Debug)]
pub struct NebulaParams {
    pub pretrain: PretrainConfig,
    pub enhance: EnhanceConfig,
    /// Local epochs per collaborative round (paper: 3).
    pub local_epochs: usize,
    /// Local batch size (paper: 16).
    pub batch_size: usize,
    /// Local learning rate.
    pub local_lr: f32,
}

impl Default for NebulaParams {
    fn default() -> Self {
        Self {
            pretrain: PretrainConfig::default(),
            enhance: EnhanceConfig::default(),
            local_epochs: 3,
            batch_size: 16,
            local_lr: 0.02,
        }
    }
}

/// The sub-model package the cloud ships to a device: selected module
/// parameters plus the shared parts.
#[derive(Clone, Debug)]
pub struct SubModelPayload {
    /// The sub-model structure.
    pub spec: SubModelSpec,
    /// Parameters of each included module (residuals ship empty vectors),
    /// in deterministic `(layer, index)` order.
    pub module_params: BTreeMap<(usize, usize), Vec<f32>>,
    /// Shared stem/head/selector parameters.
    pub shared_params: Vec<f32>,
}

impl SubModelPayload {
    /// Bytes on the wire (f32 parameters).
    pub fn bytes(&self) -> u64 {
        let module: usize = self.module_params.values().map(Vec::len).sum();
        ((module + self.shared_params.len()) * 4) as u64
    }
}

/// The cloud side of Nebula.
pub struct NebulaCloud {
    model: ModularModel,
    cost: CostModel,
    params: NebulaParams,
}

impl NebulaCloud {
    /// Builds a cloud with a fresh modularized model.
    pub fn new(cfg: ModularConfig, params: NebulaParams, seed: u64) -> Self {
        let cost = CostModel::new(cfg.clone());
        Self { model: ModularModel::new(cfg, seed), cost, params }
    }

    /// Framework hyper-parameters.
    pub fn params(&self) -> &NebulaParams {
        &self.params
    }

    /// The cloud model (read access).
    pub fn model(&self) -> &ModularModel {
        &self.model
    }

    /// The cloud model (mutable access — evaluation needs `&mut` for
    /// forward caches).
    pub fn model_mut(&mut self) -> &mut ModularModel {
        &mut self.model
    }

    /// The module/sub-model cost calculator.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Offline stage step 1: end-to-end pre-training on proxy data.
    pub fn pretrain(&mut self, proxy: &Dataset, rng: &mut NebulaRng) -> f32 {
        pretrain(&mut self.model, proxy, self.params.pretrain, rng)
    }

    /// Offline stage step 2: module ability-enhancing training over the
    /// application-defined sub-tasks.
    pub fn enhance(&mut self, subtasks: &[Dataset], rng: &mut NebulaRng) -> EnhanceOutcome {
        enhance_module_abilities(&mut self.model, subtasks, self.params.enhance, rng)
    }

    /// Online: derive a personalized sub-model for a device from its local
    /// data sample and resource profile.
    pub fn derive_for_data(
        &mut self,
        local_data: &Dataset,
        profile: &ResourceProfile,
        module_cap: Option<usize>,
    ) -> DeriveOutcome {
        assert!(!local_data.is_empty(), "cannot derive from empty local data");
        let importance = self.model.importance(local_data.features());
        derive_submodel(&self.cost, &importance, profile, module_cap)
    }

    /// Online: derive directly from an importance matrix (devices can score
    /// importance locally with the decoupled selector).
    pub fn derive_for_importance(
        &self,
        importance: &[Vec<f32>],
        profile: &ResourceProfile,
        module_cap: Option<usize>,
    ) -> DeriveOutcome {
        derive_submodel(&self.cost, importance, profile, module_cap)
    }

    /// Packages a sub-model for shipping to a device.
    pub fn dispatch(&self, spec: &SubModelSpec) -> SubModelPayload {
        spec.validate(self.model.num_layers(), self.model.config().modules_per_layer);
        let mut module_params = BTreeMap::new();
        for (l, layer) in spec.layers().iter().enumerate() {
            for &i in layer {
                module_params.insert((l, i), self.model.module_param_vector(l, i));
            }
        }
        SubModelPayload { spec: spec.clone(), module_params, shared_params: self.model.shared_param_vector() }
    }

    /// Aggregates a round of device updates module-wise (§5.2). Returns
    /// the number of modules updated.
    pub fn aggregate(&mut self, updates: &[ModuleUpdate]) -> usize {
        aggregate_module_wise(&mut self.model, updates)
    }

    /// Aggregates a round behind the sanitize gate: non-finite and
    /// norm-outlier updates are rejected before they can touch the model.
    /// With nothing to reject this is exactly [`NebulaCloud::aggregate`].
    pub fn aggregate_robust(
        &mut self,
        updates: &[ModuleUpdate],
        policy: &SanitizePolicy,
    ) -> AggregateOutcome {
        self.aggregate_robust_with(updates, policy, RobustAggregator::WeightedMean)
    }

    /// [`NebulaCloud::aggregate_robust`] with a selectable combine rule:
    /// the sanitize gate filters first, then `aggregator` merges the
    /// survivors module-wise. `WeightedMean` reproduces the unparameterized
    /// method bit-for-bit.
    pub fn aggregate_robust_with(
        &mut self,
        updates: &[ModuleUpdate],
        policy: &SanitizePolicy,
        aggregator: RobustAggregator,
    ) -> AggregateOutcome {
        let (kept, sanitize) = sanitize_updates(updates, policy);
        let refs: Vec<&ModuleUpdate> = kept.iter().map(|&i| &updates[i]).collect();
        let touched = aggregate_module_wise_robust(&mut self.model, &refs, aggregator, true);
        AggregateOutcome { touched, sanitize }
    }

    /// Applies a streamed accumulator to the cloud model. Returns the
    /// number of modules touched. Callers that need the sanitize gate
    /// should have applied its per-update checks at fold time (see
    /// [`crate::aggregate::EdgeAccumulator`]).
    pub fn apply_accumulator(&mut self, acc: &StreamingAccumulator) -> usize {
        acc.apply(&mut self.model)
    }

    /// Hierarchical aggregation: merges edge partials into the cloud
    /// model, in the order given.
    ///
    /// Streamed groups (WeightedMean) are merged left-to-right across all
    /// partials — callers pass partials in shard order, so group order is
    /// the canonical cell order and the result does not depend on how
    /// cells were assigned to shards. Buffered updates (robust combine
    /// rules) are concatenated in the same order and pushed through the
    /// full sanitize gate + robust rule, exactly as a flat round would.
    pub fn absorb_partials(
        &mut self,
        partials: &[EdgePartial],
        policy: &SanitizePolicy,
        aggregator: RobustAggregator,
    ) -> AggregateOutcome {
        let mut sanitize = SanitizeReport::default();
        let mut merged: Option<StreamingAccumulator> = None;
        for p in partials {
            sanitize.accepted += p.report.accepted;
            sanitize.rejected_non_finite += p.report.rejected_non_finite;
            sanitize.rejected_outlier += p.report.rejected_outlier;
            sanitize.outlier_check_skipped += p.report.outlier_check_skipped;
            for (_, group) in &p.groups {
                match &mut merged {
                    None => merged = Some(group.clone()),
                    Some(m) => m.merge(group),
                }
            }
        }
        let mut touched = match &merged {
            Some(m) => m.apply(&mut self.model),
            None => 0,
        };
        let buffered: Vec<&ModuleUpdate> = partials.iter().flat_map(|p| p.buffered.iter()).collect();
        if !buffered.is_empty() {
            let (kept, report) = sanitize_updates(&buffered, policy);
            let refs: Vec<&ModuleUpdate> = kept.iter().map(|&i| buffered[i]).collect();
            touched += aggregate_module_wise_robust(&mut self.model, &refs, aggregator, true);
            sanitize.accepted += report.accepted;
            sanitize.rejected_non_finite += report.rejected_non_finite;
            sanitize.rejected_outlier += report.rejected_outlier;
            sanitize.outlier_check_skipped += report.outlier_check_skipped;
        }
        AggregateOutcome { touched, sanitize }
    }

    /// [`NebulaCloud::absorb_partials`] under the checkpoint-rollback
    /// guard (same contract as [`NebulaCloud::aggregate_guarded_with`]).
    pub fn absorb_partials_guarded(
        &mut self,
        partials: &[EdgePartial],
        policy: &SanitizePolicy,
        aggregator: RobustAggregator,
        mut probe: impl FnMut(&mut ModularModel) -> f32,
        max_drop: f32,
    ) -> GuardedOutcome {
        let ckpt = checkpoint::snapshot(&self.model);
        let acc_before = probe(&mut self.model);
        let out = self.absorb_partials(partials, policy, aggregator);
        let acc_after = probe(&mut self.model);
        let rolled_back = !acc_after.is_finite() || acc_after < acc_before - max_drop;
        if rolled_back {
            checkpoint::restore(&mut self.model, &ckpt)
                .expect("a snapshot of the same model always restores");
        }
        GuardedOutcome { touched: out.touched, sanitize: out.sanitize, rolled_back, acc_before, acc_after }
    }

    /// In-memory checkpoint of the cloud model (for the rollback guard).
    pub fn snapshot(&self) -> Checkpoint {
        checkpoint::snapshot(&self.model)
    }

    /// Restores the cloud model from a snapshot taken earlier.
    // The mismatch variant carries both configs for diagnostics; rollback is rare.
    #[allow(clippy::result_large_err)]
    pub fn rollback(&mut self, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
        checkpoint::restore(&mut self.model, ckpt)
    }

    /// [`NebulaCloud::aggregate_robust`] under a checkpoint guard: the
    /// model is snapshotted, `probe` measures accuracy before and after
    /// aggregation, and if the drop exceeds `max_drop` the aggregation is
    /// rolled back (updates that slipped past the sanitize gate but still
    /// wrecked the model). `probe` takes `&mut` because evaluation uses
    /// the model's forward caches.
    pub fn aggregate_guarded(
        &mut self,
        updates: &[ModuleUpdate],
        policy: &SanitizePolicy,
        probe: impl FnMut(&mut ModularModel) -> f32,
        max_drop: f32,
    ) -> GuardedOutcome {
        self.aggregate_guarded_with(updates, policy, RobustAggregator::WeightedMean, probe, max_drop)
    }

    /// [`NebulaCloud::aggregate_guarded`] with a selectable combine rule.
    pub fn aggregate_guarded_with(
        &mut self,
        updates: &[ModuleUpdate],
        policy: &SanitizePolicy,
        aggregator: RobustAggregator,
        mut probe: impl FnMut(&mut ModularModel) -> f32,
        max_drop: f32,
    ) -> GuardedOutcome {
        let ckpt = checkpoint::snapshot(&self.model);
        let acc_before = probe(&mut self.model);
        let out = self.aggregate_robust_with(updates, policy, aggregator);
        let acc_after = probe(&mut self.model);
        let rolled_back = !acc_after.is_finite() || acc_after < acc_before - max_drop;
        if rolled_back {
            checkpoint::restore(&mut self.model, &ckpt)
                .expect("a snapshot of the same model always restores");
        }
        GuardedOutcome { touched: out.touched, sanitize: out.sanitize, rolled_back, acc_before, acc_after }
    }
}

/// What [`NebulaCloud::aggregate_robust`] did.
#[derive(Clone, Copy, Debug, Default)]
pub struct AggregateOutcome {
    /// Modules that received at least one accepted update.
    pub touched: usize,
    /// Sanitize-gate accounting.
    pub sanitize: SanitizeReport,
}

/// What [`NebulaCloud::aggregate_guarded`] did.
#[derive(Clone, Copy, Debug)]
pub struct GuardedOutcome {
    pub touched: usize,
    pub sanitize: SanitizeReport,
    /// Whether the aggregation was undone.
    pub rolled_back: bool,
    /// Probe accuracy before/after aggregation (pre-rollback).
    pub acc_before: f32,
    pub acc_after: f32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_data::{SynthSpec, Synthesizer};
    use nebula_nn::Layer;

    fn cloud() -> NebulaCloud {
        let mut cfg = nebula_modular::ModularConfig::toy(16, 4);
        cfg.gate_noise_std = 0.2;
        NebulaCloud::new(cfg, NebulaParams::default(), 11)
    }

    #[test]
    fn dispatch_round_trips_module_params() {
        let c = cloud();
        let spec = SubModelSpec::new(vec![vec![0, 2], vec![1]]);
        let payload = c.dispatch(&spec);
        assert_eq!(payload.module_params.len(), 3);
        assert_eq!(payload.module_params[&(0, 2)], c.model().module_param_vector(0, 2));
        assert!(payload.bytes() > 0);
    }

    #[test]
    fn payload_bytes_scale_with_spec_size() {
        let c = cloud();
        let small = c.dispatch(&SubModelSpec::new(vec![vec![0], vec![0]]));
        let large = c.dispatch(&SubModelSpec::full(2, 4));
        assert!(large.bytes() > small.bytes());
    }

    #[test]
    fn derive_for_data_produces_valid_spec() {
        let mut c = cloud();
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(2);
        let data = synth.sample_classes(60, &[0, 1], 0, &mut rng);
        let out = c.derive_for_data(&data, &ResourceProfile::unconstrained(), Some(2));
        out.spec.validate(2, 4);
        for l in 0..2 {
            assert!(out.spec.layer(l).len() <= 2);
        }
    }

    fn honest_update(c: &NebulaCloud, offset: f32) -> ModuleUpdate {
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let mut module_params = BTreeMap::new();
        for (l, layer) in spec.layers().iter().enumerate() {
            for &i in layer {
                let p: Vec<f32> = c.model().module_param_vector(l, i).iter().map(|v| v + offset).collect();
                module_params.insert((l, i), p);
            }
        }
        let shared_params: Vec<f32> = c.model().shared_param_vector().iter().map(|v| v + offset).collect();
        ModuleUpdate {
            spec,
            module_params,
            shared_params,
            importance: vec![vec![1.0; 4]; 2],
            data_volume: 10,
        }
    }

    #[test]
    fn robust_aggregate_rejects_poison_and_applies_the_rest() {
        let mut c = cloud();
        let good = honest_update(&c, 0.5);
        let mut bad = honest_update(&c, 0.5);
        bad.shared_params[0] = f32::NAN;
        let out = c.aggregate_robust(&[good, bad], &SanitizePolicy::default());
        assert_eq!(out.sanitize.rejected_non_finite, 1);
        assert_eq!(out.sanitize.accepted, 1);
        assert!(out.touched > 0);
        assert!(c.model().param_vector().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn guarded_aggregate_rolls_back_on_regression() {
        let mut c = cloud();
        let before = c.model().param_vector();
        let u = honest_update(&c, 1.0);
        // Probe reports a collapse after aggregation → rollback.
        let mut calls = 0;
        let out = c.aggregate_guarded(
            &[u],
            &SanitizePolicy::default(),
            |_m| {
                calls += 1;
                if calls == 1 {
                    0.8
                } else {
                    0.1
                }
            },
            0.2,
        );
        assert!(out.rolled_back);
        assert_eq!(c.model().param_vector(), before, "rollback must restore the snapshot");
    }

    #[test]
    fn guarded_aggregate_keeps_benign_rounds() {
        let mut c = cloud();
        let before = c.model().param_vector();
        let u = honest_update(&c, 1.0);
        let out = c.aggregate_guarded(&[u], &SanitizePolicy::default(), |_m| 0.8, 0.2);
        assert!(!out.rolled_back);
        assert_ne!(c.model().param_vector(), before, "benign aggregation must stick");
    }

    #[test]
    fn full_offline_online_smoke() {
        let mut c = cloud();
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(3);
        let proxy = synth.sample(300, 0, &mut rng);
        c.params.pretrain.epochs = 6;
        let loss = c.pretrain(&proxy, &mut rng);
        assert!(loss.is_finite());

        let subtasks = vec![
            synth.sample_classes(80, &[0, 1], 0, &mut rng),
            synth.sample_classes(80, &[2, 3], 0, &mut rng),
        ];
        c.params.enhance.epochs = 2;
        let out = c.enhance(&subtasks, &mut rng);
        assert!(out.final_loss.is_finite());
    }
}
