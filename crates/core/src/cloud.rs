//! The Nebula cloud orchestrator.
//!
//! Owns the modularized cloud model and drives both stages: offline
//! pre-training + ability enhancing, and the online loop of deriving
//! sub-models for devices, dispatching them, and aggregating updates
//! module-wise. Payload byte sizes are exposed so the simulator can
//! account communication exactly (paper Fig. 7).

use crate::aggregate::{aggregate_module_wise, ModuleUpdate};
use crate::derive::{derive_submodel, DeriveOutcome};
use crate::offline::{enhance_module_abilities, pretrain, EnhanceConfig, EnhanceOutcome, PretrainConfig};
use crate::profile::ResourceProfile;
use nebula_data::Dataset;
use nebula_modular::cost::CostModel;
use nebula_modular::{ModularConfig, ModularModel, SubModelSpec};
use nebula_tensor::NebulaRng;
use std::collections::HashMap;

/// Framework hyper-parameters (paper §6.1 defaults).
#[derive(Clone, Copy, Debug)]
pub struct NebulaParams {
    pub pretrain: PretrainConfig,
    pub enhance: EnhanceConfig,
    /// Local epochs per collaborative round (paper: 3).
    pub local_epochs: usize,
    /// Local batch size (paper: 16).
    pub batch_size: usize,
    /// Local learning rate.
    pub local_lr: f32,
}

impl Default for NebulaParams {
    fn default() -> Self {
        Self {
            pretrain: PretrainConfig::default(),
            enhance: EnhanceConfig::default(),
            local_epochs: 3,
            batch_size: 16,
            local_lr: 0.02,
        }
    }
}

/// The sub-model package the cloud ships to a device: selected module
/// parameters plus the shared parts.
#[derive(Clone, Debug)]
pub struct SubModelPayload {
    /// The sub-model structure.
    pub spec: SubModelSpec,
    /// Parameters of each included module (residuals ship empty vectors).
    pub module_params: HashMap<(usize, usize), Vec<f32>>,
    /// Shared stem/head/selector parameters.
    pub shared_params: Vec<f32>,
}

impl SubModelPayload {
    /// Bytes on the wire (f32 parameters).
    pub fn bytes(&self) -> u64 {
        let module: usize = self.module_params.values().map(Vec::len).sum();
        ((module + self.shared_params.len()) * 4) as u64
    }
}

/// The cloud side of Nebula.
pub struct NebulaCloud {
    model: ModularModel,
    cost: CostModel,
    params: NebulaParams,
}

impl NebulaCloud {
    /// Builds a cloud with a fresh modularized model.
    pub fn new(cfg: ModularConfig, params: NebulaParams, seed: u64) -> Self {
        let cost = CostModel::new(cfg.clone());
        Self { model: ModularModel::new(cfg, seed), cost, params }
    }

    /// Framework hyper-parameters.
    pub fn params(&self) -> &NebulaParams {
        &self.params
    }

    /// The cloud model (read access).
    pub fn model(&self) -> &ModularModel {
        &self.model
    }

    /// The cloud model (mutable access — evaluation needs `&mut` for
    /// forward caches).
    pub fn model_mut(&mut self) -> &mut ModularModel {
        &mut self.model
    }

    /// The module/sub-model cost calculator.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Offline stage step 1: end-to-end pre-training on proxy data.
    pub fn pretrain(&mut self, proxy: &Dataset, rng: &mut NebulaRng) -> f32 {
        pretrain(&mut self.model, proxy, self.params.pretrain, rng)
    }

    /// Offline stage step 2: module ability-enhancing training over the
    /// application-defined sub-tasks.
    pub fn enhance(&mut self, subtasks: &[Dataset], rng: &mut NebulaRng) -> EnhanceOutcome {
        enhance_module_abilities(&mut self.model, subtasks, self.params.enhance, rng)
    }

    /// Online: derive a personalized sub-model for a device from its local
    /// data sample and resource profile.
    pub fn derive_for_data(
        &mut self,
        local_data: &Dataset,
        profile: &ResourceProfile,
        module_cap: Option<usize>,
    ) -> DeriveOutcome {
        assert!(!local_data.is_empty(), "cannot derive from empty local data");
        let importance = self.model.importance(local_data.features());
        derive_submodel(&self.cost, &importance, profile, module_cap)
    }

    /// Online: derive directly from an importance matrix (devices can score
    /// importance locally with the decoupled selector).
    pub fn derive_for_importance(
        &self,
        importance: &[Vec<f32>],
        profile: &ResourceProfile,
        module_cap: Option<usize>,
    ) -> DeriveOutcome {
        derive_submodel(&self.cost, importance, profile, module_cap)
    }

    /// Packages a sub-model for shipping to a device.
    pub fn dispatch(&self, spec: &SubModelSpec) -> SubModelPayload {
        spec.validate(self.model.num_layers(), self.model.config().modules_per_layer);
        let mut module_params = HashMap::new();
        for (l, layer) in spec.layers().iter().enumerate() {
            for &i in layer {
                module_params.insert((l, i), self.model.module_param_vector(l, i));
            }
        }
        SubModelPayload { spec: spec.clone(), module_params, shared_params: self.model.shared_param_vector() }
    }

    /// Aggregates a round of device updates module-wise (§5.2). Returns
    /// the number of modules updated.
    pub fn aggregate(&mut self, updates: &[ModuleUpdate]) -> usize {
        aggregate_module_wise(&mut self.model, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_data::{SynthSpec, Synthesizer};

    fn cloud() -> NebulaCloud {
        let mut cfg = nebula_modular::ModularConfig::toy(16, 4);
        cfg.gate_noise_std = 0.2;
        NebulaCloud::new(cfg, NebulaParams::default(), 11)
    }

    #[test]
    fn dispatch_round_trips_module_params() {
        let c = cloud();
        let spec = SubModelSpec::new(vec![vec![0, 2], vec![1]]);
        let payload = c.dispatch(&spec);
        assert_eq!(payload.module_params.len(), 3);
        assert_eq!(payload.module_params[&(0, 2)], c.model().module_param_vector(0, 2));
        assert!(payload.bytes() > 0);
    }

    #[test]
    fn payload_bytes_scale_with_spec_size() {
        let c = cloud();
        let small = c.dispatch(&SubModelSpec::new(vec![vec![0], vec![0]]));
        let large = c.dispatch(&SubModelSpec::full(2, 4));
        assert!(large.bytes() > small.bytes());
    }

    #[test]
    fn derive_for_data_produces_valid_spec() {
        let mut c = cloud();
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(2);
        let data = synth.sample_classes(60, &[0, 1], 0, &mut rng);
        let out = c.derive_for_data(&data, &ResourceProfile::unconstrained(), Some(2));
        out.spec.validate(2, 4);
        for l in 0..2 {
            assert!(out.spec.layer(l).len() <= 2);
        }
    }

    #[test]
    fn full_offline_online_smoke() {
        let mut c = cloud();
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(3);
        let proxy = synth.sample(300, 0, &mut rng);
        c.params.pretrain.epochs = 6;
        let loss = c.pretrain(&proxy, &mut rng);
        assert!(loss.is_finite());

        let subtasks = vec![
            synth.sample_classes(80, &[0, 1], 0, &mut rng),
            synth.sample_classes(80, &[2, 3], 0, &mut rng),
        ];
        c.params.enhance.epochs = 2;
        let out = c.enhance(&subtasks, &mut rng);
        assert!(out.final_loss.is_finite());
    }
}
