//! Cloud-model checkpointing.
//!
//! A deployed Nebula cloud periodically snapshots its modularized model so
//! it can restart (or roll back a bad aggregation round) without
//! re-running the offline stage. The checkpoint carries the architecture
//! configuration plus the flat parameter vector; loading validates that
//! the architecture matches before touching any weights.

use nebula_modular::{ModularConfig, ModularModel};
use nebula_nn::Layer;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// A serialisable snapshot of a modularized model.
#[derive(Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version (bumped on layout changes).
    pub version: u32,
    /// Architecture at save time.
    pub config: CheckpointConfig,
    /// Flat parameters in `visit_params` order.
    pub params: Vec<f32>,
}

/// The architecture fields that must match at load time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    pub input_dim: usize,
    pub classes: usize,
    pub width: usize,
    pub num_layers: usize,
    pub modules_per_layer: usize,
    pub module_hidden: usize,
    pub residual_module: bool,
    pub selector_embed: usize,
}

impl From<&ModularConfig> for CheckpointConfig {
    fn from(c: &ModularConfig) -> Self {
        Self {
            input_dim: c.input_dim,
            classes: c.classes,
            width: c.width,
            num_layers: c.num_layers,
            modules_per_layer: c.modules_per_layer,
            module_hidden: c.module_hidden,
            residual_module: c.residual_module,
            selector_embed: c.selector_embed,
        }
    }
}

/// The current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Snapshots a model into a [`Checkpoint`].
pub fn snapshot(model: &ModularModel) -> Checkpoint {
    Checkpoint {
        version: CHECKPOINT_VERSION,
        config: CheckpointConfig::from(model.config()),
        params: model.param_vector(),
    }
}

/// Restores a checkpoint into `model`. Fails if the architecture or
/// parameter count differs.
pub fn restore(model: &mut ModularModel, ckpt: &Checkpoint) -> Result<(), String> {
    if ckpt.version != CHECKPOINT_VERSION {
        return Err(format!("unsupported checkpoint version {}", ckpt.version));
    }
    let expect = CheckpointConfig::from(model.config());
    if ckpt.config != expect {
        return Err(format!("architecture mismatch: checkpoint {:?} vs model {:?}", ckpt.config, expect));
    }
    if ckpt.params.len() != model.param_count() {
        return Err(format!(
            "parameter count mismatch: checkpoint {} vs model {}",
            ckpt.params.len(),
            model.param_count()
        ));
    }
    model.load_param_vector(&ckpt.params);
    Ok(())
}

/// Saves a checkpoint as JSON (human-inspectable; ~9 bytes per
/// parameter). Use [`save_binary`] for the compact format.
pub fn save_to_file(model: &ModularModel, path: &Path) -> io::Result<()> {
    let ckpt = snapshot(model);
    let json = serde_json::to_string(&ckpt).map_err(io::Error::other)?;
    std::fs::write(path, json)
}

/// Loads a JSON checkpoint file into `model`.
pub fn load_from_file(model: &mut ModularModel, path: &Path) -> io::Result<()> {
    let json = std::fs::read_to_string(path)?;
    let ckpt: Checkpoint = serde_json::from_str(&json).map_err(io::Error::other)?;
    restore(model, &ckpt).map_err(io::Error::other)
}

/// Magic prefix of the binary checkpoint format.
const BINARY_MAGIC: &[u8; 4] = b"NBLA";

/// Encodes a checkpoint in the compact binary format:
/// `magic ‖ u32 version ‖ u32 json-header-len ‖ json header ‖ f32 params (LE)`.
/// Exactly 4 bytes per parameter plus a small header.
pub fn encode_binary(ckpt: &Checkpoint) -> Vec<u8> {
    use bytes::BufMut;
    let header = serde_json::to_vec(&ckpt.config).expect("config serialises");
    let mut buf = Vec::with_capacity(16 + header.len() + ckpt.params.len() * 4);
    buf.put_slice(BINARY_MAGIC);
    buf.put_u32_le(ckpt.version);
    buf.put_u32_le(header.len() as u32);
    buf.put_slice(&header);
    for &p in &ckpt.params {
        buf.put_f32_le(p);
    }
    buf
}

/// Decodes the binary checkpoint format.
pub fn decode_binary(data: &[u8]) -> Result<Checkpoint, String> {
    use bytes::Buf;
    let mut buf = data;
    if buf.remaining() < 12 || &buf[..4] != BINARY_MAGIC {
        return Err("not a Nebula binary checkpoint".into());
    }
    buf.advance(4);
    let version = buf.get_u32_le();
    let header_len = buf.get_u32_le() as usize;
    if buf.remaining() < header_len {
        return Err("truncated checkpoint header".into());
    }
    let config: CheckpointConfig =
        serde_json::from_slice(&buf[..header_len]).map_err(|e| format!("bad header: {e}"))?;
    buf.advance(header_len);
    if buf.remaining() % 4 != 0 {
        return Err("truncated parameter payload".into());
    }
    let mut params = Vec::with_capacity(buf.remaining() / 4);
    while buf.has_remaining() {
        params.push(buf.get_f32_le());
    }
    Ok(Checkpoint { version, config, params })
}

/// Saves the compact binary checkpoint.
pub fn save_binary(model: &ModularModel, path: &Path) -> io::Result<()> {
    std::fs::write(path, encode_binary(&snapshot(model)))
}

/// Loads a binary checkpoint file into `model`.
pub fn load_binary(model: &mut ModularModel, path: &Path) -> io::Result<()> {
    let data = std::fs::read(path)?;
    let ckpt = decode_binary(&data).map_err(io::Error::other)?;
    restore(model, &ckpt).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_modular::ModularConfig;
    use nebula_nn::Mode;
    use nebula_tensor::Tensor;

    fn model(seed: u64) -> ModularModel {
        let mut cfg = ModularConfig::toy(8, 3);
        cfg.gate_noise_std = 0.0;
        ModularModel::new(cfg, seed)
    }

    #[test]
    fn snapshot_restore_roundtrip_preserves_outputs() {
        let mut a = model(1);
        let ckpt = snapshot(&a);
        let mut b = model(2); // different init
        restore(&mut b, &ckpt).unwrap();
        let x = Tensor::ones(&[2, 8]);
        assert_eq!(a.forward(&x, Mode::Eval).data(), b.forward(&x, Mode::Eval).data());
    }

    #[test]
    fn restore_rejects_architecture_mismatch() {
        let a = model(1);
        let ckpt = snapshot(&a);
        let mut cfg = ModularConfig::toy(8, 3);
        cfg.modules_per_layer = 3;
        cfg.top_k = 2;
        let mut other = ModularModel::new(cfg, 1);
        let err = restore(&mut other, &ckpt).unwrap_err();
        assert!(err.contains("architecture mismatch"), "{err}");
    }

    #[test]
    fn restore_rejects_wrong_version() {
        let a = model(1);
        let mut ckpt = snapshot(&a);
        ckpt.version = 999;
        let mut b = model(1);
        assert!(restore(&mut b, &ckpt).unwrap_err().contains("version"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("nebula-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let mut a = model(3);
        save_to_file(&a, &path).unwrap();
        let mut b = model(4);
        load_from_file(&mut b, &path).unwrap();
        let x = Tensor::ones(&[1, 8]);
        assert_eq!(a.forward(&x, Mode::Eval).data(), b.forward(&x, Mode::Eval).data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_roundtrip_is_bit_exact() {
        let a = model(5);
        let ckpt = snapshot(&a);
        let encoded = encode_binary(&ckpt);
        let decoded = decode_binary(&encoded).unwrap();
        assert_eq!(decoded.version, ckpt.version);
        assert_eq!(decoded.config, ckpt.config);
        assert_eq!(decoded.params, ckpt.params);
        // Compact: 4 bytes/param + small header.
        assert!(encoded.len() < ckpt.params.len() * 4 + 1024);
    }

    #[test]
    fn binary_file_roundtrip_restores_model() {
        let dir = std::env::temp_dir().join("nebula-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.nbla");
        let mut a = model(6);
        save_binary(&a, &path).unwrap();
        let mut b = model(7);
        load_binary(&mut b, &path).unwrap();
        let x = Tensor::ones(&[1, 8]);
        assert_eq!(a.forward(&x, Mode::Eval).data(), b.forward(&x, Mode::Eval).data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_decoder_rejects_garbage_and_truncation() {
        assert!(decode_binary(b"nope").is_err());
        let ckpt = snapshot(&model(8));
        let mut encoded = encode_binary(&ckpt);
        encoded.truncate(encoded.len() - 2); // break f32 alignment
        assert!(decode_binary(&encoded).is_err());
        encoded.truncate(6); // inside the fixed header
        assert!(decode_binary(&encoded).is_err());
    }

    #[test]
    fn corrupt_file_is_an_error_not_a_panic() {
        let dir = std::env::temp_dir().join("nebula-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        let mut m = model(1);
        assert!(load_from_file(&mut m, &path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
