//! Cloud-model checkpointing.
//!
//! A deployed Nebula cloud periodically snapshots its modularized model so
//! it can restart (or roll back a bad aggregation round) without
//! re-running the offline stage. The checkpoint carries the architecture
//! configuration plus the flat parameter vector; loading validates that
//! the architecture matches — and that every weight is finite — before
//! touching the model. All failure modes are reported through
//! [`CheckpointError`]; no input, however corrupted, panics the loader.

use nebula_modular::{ModularConfig, ModularModel};
use nebula_nn::Layer;
use nebula_wire::crc32;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::Path;

/// A serialisable snapshot of a modularized model.
#[derive(Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version (bumped on layout changes).
    pub version: u32,
    /// Architecture at save time.
    pub config: CheckpointConfig,
    /// Flat parameters in `visit_params` order.
    pub params: Vec<f32>,
}

/// The architecture fields that must match at load time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    pub input_dim: usize,
    pub classes: usize,
    pub width: usize,
    pub num_layers: usize,
    pub modules_per_layer: usize,
    pub module_hidden: usize,
    pub residual_module: bool,
    pub selector_embed: usize,
}

impl From<&ModularConfig> for CheckpointConfig {
    fn from(c: &ModularConfig) -> Self {
        Self {
            input_dim: c.input_dim,
            classes: c.classes,
            width: c.width,
            num_layers: c.num_layers,
            modules_per_layer: c.modules_per_layer,
            module_hidden: c.module_hidden,
            residual_module: c.residual_module,
            selector_embed: c.selector_embed,
        }
    }
}

/// Why a checkpoint could not be decoded or restored.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The payload does not start with the `NBLA` magic / is too short
    /// to hold the fixed header.
    NotACheckpoint,
    /// Format version is not [`CHECKPOINT_VERSION`].
    UnsupportedVersion(u32),
    /// The payload ends before the declared header or parameter data.
    Truncated { expected: usize, available: usize },
    /// The JSON header (or a JSON checkpoint file) failed to parse.
    MalformedHeader(String),
    /// Checkpoint architecture differs from the target model's.
    ArchitectureMismatch { checkpoint: CheckpointConfig, model: CheckpointConfig },
    /// Parameter vector length differs from the model's count.
    ParamCountMismatch { checkpoint: usize, model: usize },
    /// A stored weight is NaN or infinite; restoring it would poison
    /// every subsequent forward pass.
    NonFiniteParam { index: usize, value: f32 },
    /// The CRC32 trailer does not match the file contents — a flipped
    /// bit, a torn write, or any other in-place corruption.
    ChecksumMismatch { stored: u32, computed: u32 },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotACheckpoint => write!(f, "not a Nebula binary checkpoint"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            Self::Truncated { expected, available } => {
                write!(f, "truncated checkpoint: expected {expected} more bytes, found {available}")
            }
            Self::MalformedHeader(e) => write!(f, "malformed checkpoint header: {e}"),
            Self::ArchitectureMismatch { checkpoint, model } => {
                write!(f, "architecture mismatch: checkpoint {checkpoint:?} vs model {model:?}")
            }
            Self::ParamCountMismatch { checkpoint, model } => {
                write!(f, "parameter count mismatch: checkpoint {checkpoint} vs model {model}")
            }
            Self::NonFiniteParam { index, value } => {
                write!(f, "non-finite parameter at index {index}: {value}")
            }
            Self::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CheckpointError> for io::Error {
    fn from(e: CheckpointError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// The current checkpoint format version. Version 2 adds a declared
/// parameter count (explicit truncation detection) and a CRC32 trailer
/// (bit-flip detection); version 1 files remain loadable.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Oldest format version the loader still accepts.
pub const MIN_CHECKPOINT_VERSION: u32 = 1;

/// Snapshots a model into a [`Checkpoint`].
pub fn snapshot(model: &ModularModel) -> Checkpoint {
    Checkpoint {
        version: CHECKPOINT_VERSION,
        config: CheckpointConfig::from(model.config()),
        params: model.param_vector(),
    }
}

/// Restores a checkpoint into `model`. Fails if the version,
/// architecture, or parameter count differs, or any weight is
/// non-finite; on failure the model is left untouched.
// The mismatch variant carries both configs for diagnostics; restore is not hot.
#[allow(clippy::result_large_err)]
pub fn restore(model: &mut ModularModel, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    if !(MIN_CHECKPOINT_VERSION..=CHECKPOINT_VERSION).contains(&ckpt.version) {
        return Err(CheckpointError::UnsupportedVersion(ckpt.version));
    }
    let expect = CheckpointConfig::from(model.config());
    if ckpt.config != expect {
        return Err(CheckpointError::ArchitectureMismatch { checkpoint: ckpt.config.clone(), model: expect });
    }
    if ckpt.params.len() != model.param_count() {
        return Err(CheckpointError::ParamCountMismatch {
            checkpoint: ckpt.params.len(),
            model: model.param_count(),
        });
    }
    if let Some((index, &value)) = ckpt.params.iter().enumerate().find(|(_, p)| !p.is_finite()) {
        return Err(CheckpointError::NonFiniteParam { index, value });
    }
    model.load_param_vector(&ckpt.params);
    Ok(())
}

/// Saves a checkpoint as JSON (human-inspectable; ~9 bytes per
/// parameter). Use [`save_binary`] for the compact format.
pub fn save_to_file(model: &ModularModel, path: &Path) -> io::Result<()> {
    let ckpt = snapshot(model);
    let json = serde_json::to_string(&ckpt).map_err(io::Error::other)?;
    std::fs::write(path, json)
}

/// Loads a JSON checkpoint file into `model`.
pub fn load_from_file(model: &mut ModularModel, path: &Path) -> io::Result<()> {
    let json = std::fs::read_to_string(path)?;
    let ckpt: Checkpoint =
        serde_json::from_str(&json).map_err(|e| CheckpointError::MalformedHeader(e.to_string()))?;
    restore(model, &ckpt).map_err(io::Error::from)
}

/// Magic prefix of the binary checkpoint format.
const BINARY_MAGIC: &[u8; 4] = b"NBLA";

/// Encodes a checkpoint in the compact binary format (version 2):
/// `magic ‖ u32 version ‖ u32 json-header-len ‖ u32 param-count ‖
/// json header ‖ f32 params (LE) ‖ u32 crc32` — 4 bytes per parameter
/// plus a small header and an integrity trailer over everything before
/// it. The declared count makes truncation detectable before the CRC is
/// even consulted; the CRC catches bit flips and torn rewrites.
pub fn encode_binary(ckpt: &Checkpoint) -> Vec<u8> {
    let header = serde_json::to_vec(&ckpt.config).expect("config serialises");
    let mut buf = Vec::with_capacity(20 + header.len() + ckpt.params.len() * 4);
    buf.extend_from_slice(BINARY_MAGIC);
    buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(header.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(ckpt.params.len() as u32).to_le_bytes());
    buf.extend_from_slice(&header);
    for &p in &ckpt.params {
        buf.extend_from_slice(&p.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Decodes the binary checkpoint format (versions 1 and 2). Any
/// malformed input — wrong magic, truncation anywhere, flipped bytes
/// (v2), garbage header — returns an error; nothing panics and nothing
/// corrupt decodes silently.
// The mismatch variant carries both configs for diagnostics; decoding is not hot.
#[allow(clippy::result_large_err)]
pub fn decode_binary(data: &[u8]) -> Result<Checkpoint, CheckpointError> {
    if data.len() < 12 || &data[..4] != BINARY_MAGIC {
        return Err(CheckpointError::NotACheckpoint);
    }
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    match version {
        1 => decode_v1(data),
        2 => decode_v2(data),
        other => Err(CheckpointError::UnsupportedVersion(other)),
    }
}

/// Version-1 layout: `magic ‖ ver ‖ header-len ‖ header ‖ params`.
/// No declared count and no trailer, so only structural truncation is
/// detectable — kept verbatim so pre-existing checkpoints still load.
#[allow(clippy::result_large_err)]
fn decode_v1(data: &[u8]) -> Result<Checkpoint, CheckpointError> {
    let header_len = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) as usize;
    let rest = &data[12..];
    if rest.len() < header_len {
        return Err(CheckpointError::Truncated { expected: header_len, available: rest.len() });
    }
    let config: CheckpointConfig = serde_json::from_slice(&rest[..header_len])
        .map_err(|e| CheckpointError::MalformedHeader(e.to_string()))?;
    let payload = &rest[header_len..];
    if !payload.len().is_multiple_of(4) {
        return Err(CheckpointError::Truncated { expected: 4 - payload.len() % 4, available: 0 });
    }
    let params =
        payload.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes"))).collect();
    Ok(Checkpoint { version: 1, config, params })
}

/// Version-2 layout (see [`encode_binary`]). The CRC is verified over
/// the whole body before the JSON header is parsed, so corruption is
/// reported as [`CheckpointError::ChecksumMismatch`] rather than as a
/// confusing downstream parse error.
#[allow(clippy::result_large_err)]
fn decode_v2(data: &[u8]) -> Result<Checkpoint, CheckpointError> {
    const FIXED: usize = 16; // magic + version + header-len + param-count
    if data.len() < FIXED {
        return Err(CheckpointError::Truncated { expected: FIXED - data.len(), available: data.len() });
    }
    let header_len = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) as usize;
    let param_count = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes")) as usize;
    let expected_total = FIXED + header_len + param_count * 4 + 4;
    if data.len() < expected_total {
        return Err(CheckpointError::Truncated {
            expected: expected_total - data.len(),
            available: data.len(),
        });
    }
    let body = &data[..expected_total - 4];
    let stored = u32::from_le_bytes(data[expected_total - 4..expected_total].try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    let config: CheckpointConfig = serde_json::from_slice(&body[FIXED..FIXED + header_len])
        .map_err(|e| CheckpointError::MalformedHeader(e.to_string()))?;
    let params = body[FIXED + header_len..]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    Ok(Checkpoint { version: 2, config, params })
}

/// Saves the compact binary checkpoint.
pub fn save_binary(model: &ModularModel, path: &Path) -> io::Result<()> {
    std::fs::write(path, encode_binary(&snapshot(model)))
}

/// Loads a binary checkpoint file into `model`.
pub fn load_binary(model: &mut ModularModel, path: &Path) -> io::Result<()> {
    let data = std::fs::read(path)?;
    let ckpt = decode_binary(&data)?;
    restore(model, &ckpt).map_err(io::Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_modular::ModularConfig;
    use nebula_nn::Mode;
    use nebula_tensor::Tensor;

    fn model(seed: u64) -> ModularModel {
        let mut cfg = ModularConfig::toy(8, 3);
        cfg.gate_noise_std = 0.0;
        ModularModel::new(cfg, seed)
    }

    #[test]
    fn snapshot_restore_roundtrip_preserves_outputs() {
        let mut a = model(1);
        let ckpt = snapshot(&a);
        let mut b = model(2); // different init
        restore(&mut b, &ckpt).unwrap();
        let x = Tensor::ones(&[2, 8]);
        assert_eq!(a.forward(&x, Mode::Eval).data(), b.forward(&x, Mode::Eval).data());
    }

    #[test]
    fn restore_rejects_architecture_mismatch() {
        let a = model(1);
        let ckpt = snapshot(&a);
        let mut cfg = ModularConfig::toy(8, 3);
        cfg.modules_per_layer = 3;
        cfg.top_k = 2;
        let mut other = ModularModel::new(cfg, 1);
        let err = restore(&mut other, &ckpt).unwrap_err();
        assert!(matches!(err, CheckpointError::ArchitectureMismatch { .. }), "{err}");
    }

    #[test]
    fn restore_rejects_wrong_version() {
        let a = model(1);
        let mut ckpt = snapshot(&a);
        ckpt.version = 999;
        let mut b = model(1);
        assert_eq!(restore(&mut b, &ckpt).unwrap_err(), CheckpointError::UnsupportedVersion(999));
    }

    #[test]
    fn restore_rejects_non_finite_params_and_leaves_model_untouched() {
        let a = model(1);
        let mut ckpt = snapshot(&a);
        ckpt.params[3] = f32::NAN;
        let mut b = model(2);
        let before = b.param_vector();
        let err = restore(&mut b, &ckpt).unwrap_err();
        assert!(matches!(err, CheckpointError::NonFiniteParam { index: 3, .. }), "{err}");
        assert_eq!(b.param_vector(), before, "failed restore must not modify the model");

        ckpt.params[3] = f32::NEG_INFINITY;
        assert!(matches!(
            restore(&mut b, &ckpt).unwrap_err(),
            CheckpointError::NonFiniteParam { index: 3, .. }
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("nebula-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let mut a = model(3);
        save_to_file(&a, &path).unwrap();
        let mut b = model(4);
        load_from_file(&mut b, &path).unwrap();
        let x = Tensor::ones(&[1, 8]);
        assert_eq!(a.forward(&x, Mode::Eval).data(), b.forward(&x, Mode::Eval).data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_roundtrip_is_bit_exact() {
        let a = model(5);
        let ckpt = snapshot(&a);
        let encoded = encode_binary(&ckpt);
        let decoded = decode_binary(&encoded).unwrap();
        assert_eq!(decoded.version, ckpt.version);
        assert_eq!(decoded.config, ckpt.config);
        assert_eq!(decoded.params, ckpt.params);
        // Compact: 4 bytes/param + small header.
        assert!(encoded.len() < ckpt.params.len() * 4 + 1024);
    }

    #[test]
    fn binary_file_roundtrip_restores_model() {
        let dir = std::env::temp_dir().join("nebula-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.nbla");
        let mut a = model(6);
        save_binary(&a, &path).unwrap();
        let mut b = model(7);
        load_binary(&mut b, &path).unwrap();
        let x = Tensor::ones(&[1, 8]);
        assert_eq!(a.forward(&x, Mode::Eval).data(), b.forward(&x, Mode::Eval).data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_decoder_rejects_garbage_and_truncation() {
        assert_eq!(decode_binary(b"nope").unwrap_err(), CheckpointError::NotACheckpoint);
        let ckpt = snapshot(&model(8));
        let mut encoded = encode_binary(&ckpt);
        encoded.truncate(encoded.len() - 2); // break f32 alignment
        assert!(matches!(decode_binary(&encoded).unwrap_err(), CheckpointError::Truncated { .. }));
        encoded.truncate(6); // inside the fixed header
        assert_eq!(decode_binary(&encoded).unwrap_err(), CheckpointError::NotACheckpoint);
    }

    #[test]
    fn decoder_survives_arbitrary_garbage_bytes() {
        // Deterministic pseudo-garbage at every length 0..64, plus
        // adversarial variants of a valid checkpoint: every decode must
        // return (not panic), and truncations must error.
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut garbage = Vec::new();
        for len in 0..64usize {
            garbage.clear();
            for _ in 0..len {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                garbage.push((s >> 56) as u8);
            }
            let _ = decode_binary(&garbage);
        }

        let valid = encode_binary(&snapshot(&model(9)));
        for cut in 0..valid.len().min(40) {
            assert!(decode_binary(&valid[..cut]).is_err(), "prefix of {cut} bytes must not decode");
        }
        // Header length field pointing past the end of the payload.
        let mut oversized = valid.clone();
        oversized[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_binary(&oversized).unwrap_err(), CheckpointError::Truncated { .. }));
        // Corrupted JSON header bytes: the CRC is verified before the
        // header parses, so this surfaces as a checksum failure.
        let mut bad_header = valid.clone();
        for b in &mut bad_header[16..24] {
            *b = 0xff;
        }
        assert!(matches!(decode_binary(&bad_header).unwrap_err(), CheckpointError::ChecksumMismatch { .. }));
    }

    /// Builds a version-1 file (no param count, no CRC trailer) the way
    /// the pre-v2 encoder did.
    fn encode_v1(ckpt: &Checkpoint) -> Vec<u8> {
        let header = serde_json::to_vec(&ckpt.config).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(b"NBLA");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(header.len() as u32).to_le_bytes());
        buf.extend_from_slice(&header);
        for &p in &ckpt.params {
            buf.extend_from_slice(&p.to_le_bytes());
        }
        buf
    }

    #[test]
    fn v1_files_still_load() {
        let a = model(10);
        let encoded = encode_v1(&snapshot(&a));
        let decoded = decode_binary(&encoded).unwrap();
        assert_eq!(decoded.version, 1);
        let mut b = model(11);
        restore(&mut b, &decoded).unwrap();
        assert_eq!(b.param_vector(), a.param_vector());
    }

    #[test]
    fn binary_version_skew_is_rejected() {
        let mut encoded = encode_binary(&snapshot(&model(12)));
        encoded[4..8].copy_from_slice(&3u32.to_le_bytes());
        assert_eq!(decode_binary(&encoded).unwrap_err(), CheckpointError::UnsupportedVersion(3));
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let ckpt = snapshot(&model(13));
        let valid = encode_binary(&ckpt);
        // Flip one bit in every byte position; no variant may decode to
        // the original content, and the parameter region must always
        // fail the checksum.
        for pos in 0..valid.len() {
            let mut flipped = valid.clone();
            flipped[pos] ^= 0x10;
            match decode_binary(&flipped) {
                Ok(decoded) => {
                    // A trailer/length flip can only "succeed" if the
                    // decode reproduces a self-consistent file — which a
                    // single bit flip never does.
                    panic!("flip at {pos} decoded: version {}", decoded.version);
                }
                Err(
                    CheckpointError::ChecksumMismatch { .. }
                    | CheckpointError::Truncated { .. }
                    | CheckpointError::NotACheckpoint
                    | CheckpointError::UnsupportedVersion(_)
                    | CheckpointError::MalformedHeader(_),
                ) => {}
                Err(e) => panic!("flip at {pos}: unexpected error {e}"),
            }
        }
        // A flip in the parameter region specifically is a checksum error.
        let mut flipped = valid.clone();
        let param_pos = valid.len() - 8; // inside the last parameter
        flipped[param_pos] ^= 0x01;
        assert!(matches!(decode_binary(&flipped).unwrap_err(), CheckpointError::ChecksumMismatch { .. }));
    }

    #[test]
    fn truncation_reports_missing_bytes() {
        let valid = encode_binary(&snapshot(&model(14)));
        let cut = &valid[..valid.len() - 10];
        match decode_binary(cut).unwrap_err() {
            CheckpointError::Truncated { expected, available } => {
                assert_eq!(expected, 10);
                assert_eq!(available, cut.len());
            }
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn corrupt_file_is_an_error_not_a_panic() {
        let dir = std::env::temp_dir().join("nebula-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        let mut m = model(1);
        assert!(load_from_file(&mut m, &path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
