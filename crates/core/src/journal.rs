//! Crash-safe persistence primitives: atomic run snapshots and an
//! append-only, CRC-framed write-ahead round journal.
//!
//! These are the byte-level building blocks of the durability layer
//! (DESIGN.md §11). The orchestration logic — what goes *into* a
//! snapshot, how a journal tail is replayed — lives in
//! `nebula-sim::durability`; this module only guarantees that whatever
//! bytes are handed to it either come back intact or fail loudly:
//!
//! * [`SnapshotStore`] writes sequence-numbered snapshot files with
//!   write-temp-then-rename atomicity and a CRC32 trailer, and at load
//!   time selects the **newest valid** snapshot, skipping torn, flipped,
//!   or foreign files without panicking.
//! * [`JournalWriter`] appends one CRC-framed record per completed
//!   round. A crash mid-append leaves a torn tail; reopening truncates
//!   the file back to its longest valid prefix so the journal is always
//!   a clean sequence of intact records.
//!
//! Every failure mode is a [`DurabilityError`]; no input, however
//! corrupted, panics a reader.

use nebula_wire::crc32;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Why a snapshot or journal could not be written, read, or trusted.
#[derive(Debug, Clone, PartialEq)]
pub enum DurabilityError {
    /// Underlying filesystem error (message-only so the error stays
    /// `Clone`/`PartialEq` for tests).
    Io(String),
    /// The file does not start with the snapshot magic.
    NotASnapshot,
    /// The file does not start with the journal magic.
    NotAJournal,
    /// Format version this build does not understand.
    UnsupportedVersion(u32),
    /// The file ends before its declared contents do.
    Truncated { expected: usize, available: usize },
    /// CRC32 trailer mismatch — a flipped bit or a torn write.
    ChecksumMismatch { stored: u32, computed: u32 },
    /// Structurally valid container holding an inconsistent payload
    /// (e.g. a journal bound to a different run).
    Malformed(String),
    /// No snapshot file in the directory survived validation.
    NoValidSnapshot,
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "durability I/O error: {e}"),
            Self::NotASnapshot => write!(f, "not a Nebula run snapshot"),
            Self::NotAJournal => write!(f, "not a Nebula round journal"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported durability format version {v}"),
            Self::Truncated { expected, available } => {
                write!(f, "truncated file: expected {expected} more bytes, found {available}")
            }
            Self::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            Self::Malformed(e) => write!(f, "malformed durability payload: {e}"),
            Self::NoValidSnapshot => write!(f, "no valid snapshot found"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// Current snapshot container format version.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;

const SNAPSHOT_MAGIC: &[u8; 4] = b"NBRS";
const JOURNAL_MAGIC: &[u8; 4] = b"NBLJ";
/// Snapshot fixed header: magic + version + u64 seq + u32 payload len.
const SNAPSHOT_FIXED: usize = 4 + 4 + 8 + 4;
/// Journal file header: magic + version + u64 run id.
const JOURNAL_HEADER: usize = 4 + 4 + 8;
/// Per-record framing: u32 payload len before, u32 CRC after.
const RECORD_OVERHEAD: usize = 8;

/// Writes `bytes` to `path` atomically: the data lands in a same-directory
/// temp file first, is fsynced, and only then renamed over the target, so
/// a crash at any instant leaves either the old file or the new one —
/// never a half-written hybrid under the final name.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), DurabilityError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself. Directory fsync is best-effort: not
    // every platform allows opening a directory for sync.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Encodes a snapshot container:
/// `NBRS ‖ u32 version ‖ u64 seq ‖ u32 payload-len ‖ payload ‖ u32 crc32`.
pub fn encode_snapshot(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(SNAPSHOT_FIXED + payload.len() + 4);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Decodes a snapshot container, returning `(seq, payload)`. The CRC is
/// verified over the whole body before the payload is handed out.
pub fn decode_snapshot(data: &[u8]) -> Result<(u64, Vec<u8>), DurabilityError> {
    if data.len() < SNAPSHOT_FIXED || &data[..4] != SNAPSHOT_MAGIC {
        return Err(DurabilityError::NotASnapshot);
    }
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(DurabilityError::UnsupportedVersion(version));
    }
    let seq = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(data[16..20].try_into().expect("4 bytes")) as usize;
    let expected_total = SNAPSHOT_FIXED + payload_len + 4;
    if data.len() < expected_total {
        return Err(DurabilityError::Truncated {
            expected: expected_total - data.len(),
            available: data.len(),
        });
    }
    let body = &data[..expected_total - 4];
    let stored = u32::from_le_bytes(data[expected_total - 4..expected_total].try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored != computed {
        return Err(DurabilityError::ChecksumMismatch { stored, computed });
    }
    Ok((seq, body[SNAPSHOT_FIXED..].to_vec()))
}

/// A snapshot that survived validation, plus the files that did not.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// Sequence number (monotone per run; the round index in practice).
    pub seq: u64,
    /// The application payload stored at save time.
    pub payload: Vec<u8>,
    /// Files that were present but rejected, with the reason — surfaced
    /// so callers can log/report corruption instead of silently skipping.
    pub rejected: Vec<(PathBuf, DurabilityError)>,
}

/// Directory of sequence-numbered snapshot files (`snap-<seq>.nbrs`).
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot directory.
    pub fn open(dir: &Path) -> Result<Self, DurabilityError> {
        fs::create_dir_all(dir)?;
        Ok(Self { dir: dir.to_path_buf() })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the snapshot file for sequence number `seq`.
    pub fn path_for(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snap-{seq:012}.nbrs"))
    }

    /// Atomically writes the snapshot for `seq`.
    pub fn save(&self, seq: u64, payload: &[u8]) -> Result<(), DurabilityError> {
        write_atomic(&self.path_for(seq), &encode_snapshot(seq, payload))
    }

    /// All snapshot sequence numbers present on disk (sorted ascending),
    /// judged by file name only — validity is checked at load.
    pub fn list(&self) -> Result<Vec<u64>, DurabilityError> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_prefix("snap-").and_then(|s| s.strip_suffix(".nbrs")) {
                if let Ok(seq) = stem.parse::<u64>() {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Loads the newest snapshot that passes validation, skipping (and
    /// reporting) torn or corrupted files. A snapshot whose in-file
    /// sequence number disagrees with its file name is treated as
    /// corrupt too. Errors with [`DurabilityError::NoValidSnapshot`] if
    /// nothing survives.
    pub fn load_newest_valid(&self) -> Result<LoadedSnapshot, DurabilityError> {
        let mut rejected = Vec::new();
        for seq in self.list()?.into_iter().rev() {
            let path = self.path_for(seq);
            let data = match fs::read(&path) {
                Ok(d) => d,
                Err(e) => {
                    rejected.push((path, DurabilityError::from(e)));
                    continue;
                }
            };
            match decode_snapshot(&data) {
                Ok((stored_seq, payload)) if stored_seq == seq => {
                    return Ok(LoadedSnapshot { seq, payload, rejected });
                }
                Ok((stored_seq, _)) => {
                    let why = format!("file named seq {seq} holds seq {stored_seq}");
                    rejected.push((path, DurabilityError::Malformed(why)));
                }
                Err(e) => rejected.push((path, e)),
            }
        }
        Err(DurabilityError::NoValidSnapshot)
    }

    /// Deletes all but the `keep` newest snapshot files. Called after a
    /// successful save, so the newest file is known-valid; `keep >= 2`
    /// preserves a fallback in case the newest is later corrupted.
    pub fn prune(&self, keep: usize) -> Result<(), DurabilityError> {
        let seqs = self.list()?;
        if seqs.len() <= keep {
            return Ok(());
        }
        for &seq in &seqs[..seqs.len() - keep] {
            fs::remove_file(self.path_for(seq))?;
        }
        Ok(())
    }
}

/// Fully parsed journal contents.
#[derive(Debug)]
pub struct JournalContents {
    /// Run identity stamped into the header at create time.
    pub run_id: u64,
    /// Every intact record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// True when trailing bytes after the last intact record had to be
    /// ignored — the signature of a crash mid-append.
    pub torn_tail: bool,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_len: u64,
}

/// Parses journal bytes, stopping at the first record that is torn or
/// fails its CRC. Corruption *before* the tail cannot be distinguished
/// from a torn append by a prefix scan, and both are handled the same
/// way: the valid prefix wins, the rest is reported via `torn_tail`.
pub fn parse_journal(data: &[u8]) -> Result<JournalContents, DurabilityError> {
    if data.len() < JOURNAL_HEADER || &data[..4] != JOURNAL_MAGIC {
        return Err(DurabilityError::NotAJournal);
    }
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if version != JOURNAL_VERSION {
        return Err(DurabilityError::UnsupportedVersion(version));
    }
    let run_id = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
    let mut records = Vec::new();
    let mut pos = JOURNAL_HEADER;
    loop {
        let rest = &data[pos..];
        if rest.is_empty() {
            return Ok(JournalContents { run_id, records, torn_tail: false, valid_len: pos as u64 });
        }
        if rest.len() < 4 {
            break; // torn length prefix
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if rest.len() < RECORD_OVERHEAD + len {
            break; // torn payload or trailer
        }
        let stored = u32::from_le_bytes(rest[4 + len..8 + len].try_into().expect("4 bytes"));
        if stored != crc32(&rest[..4 + len]) {
            break; // flipped bits in this record
        }
        records.push(rest[4..4 + len].to_vec());
        pos += RECORD_OVERHEAD + len;
    }
    Ok(JournalContents { run_id, records, torn_tail: true, valid_len: pos as u64 })
}

/// Reads and parses a journal file.
pub fn read_journal(path: &Path) -> Result<JournalContents, DurabilityError> {
    let data = fs::read(path)?;
    parse_journal(&data)
}

/// Append-only writer for the round journal. Records are CRC-framed
/// (`u32 len ‖ payload ‖ u32 crc32(len ‖ payload)`) and fsynced per
/// append, so a completed round is durable the moment `append` returns.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Creates (truncating any previous file) a fresh journal bound to
    /// `run_id`.
    pub fn create(path: &Path, run_id: u64) -> Result<Self, DurabilityError> {
        let mut file = File::create(path)?;
        file.write_all(JOURNAL_MAGIC)?;
        file.write_all(&JOURNAL_VERSION.to_le_bytes())?;
        file.write_all(&run_id.to_le_bytes())?;
        file.sync_all()?;
        Ok(Self { file })
    }

    /// Reopens an existing journal for appending. The file is scanned,
    /// any torn tail is truncated away, and the run identity must match
    /// `run_id` — appending this run's rounds to another run's journal
    /// would poison a later replay. Returns the writer plus the intact
    /// records found.
    pub fn open_append(path: &Path, run_id: u64) -> Result<(Self, JournalContents), DurabilityError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        let contents = parse_journal(&data)?;
        if contents.run_id != run_id {
            return Err(DurabilityError::Malformed(format!(
                "journal belongs to run {:#018x}, expected {:#018x}",
                contents.run_id, run_id
            )));
        }
        if contents.torn_tail {
            file.set_len(contents.valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(contents.valid_len))?;
        Ok((Self { file }, contents))
    }

    /// Appends one record and fsyncs it to disk.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), DurabilityError> {
        let mut rec = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(payload);
        let crc = crc32(&rec);
        rec.extend_from_slice(&crc.to_le_bytes());
        self.file.write_all(&rec)?;
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nebula-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_roundtrip() {
        let payload = b"round state".to_vec();
        let encoded = encode_snapshot(17, &payload);
        let (seq, decoded) = decode_snapshot(&encoded).unwrap();
        assert_eq!(seq, 17);
        assert_eq!(decoded, payload);
    }

    #[test]
    fn snapshot_rejects_corruption_and_truncation() {
        let encoded = encode_snapshot(3, b"abcdefgh");
        for cut in 0..encoded.len() {
            assert!(decode_snapshot(&encoded[..cut]).is_err(), "prefix {cut} must not decode");
        }
        for pos in 0..encoded.len() {
            let mut flipped = encoded.clone();
            flipped[pos] ^= 0x20;
            assert!(decode_snapshot(&flipped).is_err(), "flip at {pos} must not decode");
        }
        assert_eq!(decode_snapshot(b"what").unwrap_err(), DurabilityError::NotASnapshot);
    }

    #[test]
    fn store_selects_newest_valid_and_reports_rejects() {
        let dir = tmp_dir("newest");
        let store = SnapshotStore::open(&dir).unwrap();
        store.save(1, b"one").unwrap();
        store.save(2, b"two").unwrap();
        store.save(3, b"three").unwrap();
        // Corrupt the newest file in place.
        let newest = store.path_for(3);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&newest, &bytes).unwrap();

        let loaded = store.load_newest_valid().unwrap();
        assert_eq!(loaded.seq, 2);
        assert_eq!(loaded.payload, b"two");
        assert_eq!(loaded.rejected.len(), 1);
        assert!(matches!(loaded.rejected[0].1, DurabilityError::ChecksumMismatch { .. }));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_errors_when_nothing_valid() {
        let dir = tmp_dir("none");
        let store = SnapshotStore::open(&dir).unwrap();
        assert_eq!(store.load_newest_valid().unwrap_err(), DurabilityError::NoValidSnapshot);
        fs::write(store.path_for(5), b"garbage that is not a snapshot").unwrap();
        assert_eq!(store.load_newest_valid().unwrap_err(), DurabilityError::NoValidSnapshot);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_rejects_renamed_snapshot() {
        // A valid snapshot file copied under a different sequence name
        // must not be trusted as that sequence.
        let dir = tmp_dir("renamed");
        let store = SnapshotStore::open(&dir).unwrap();
        store.save(1, b"one").unwrap();
        fs::copy(store.path_for(1), store.path_for(9)).unwrap();
        let loaded = store.load_newest_valid().unwrap();
        assert_eq!(loaded.seq, 1);
        assert!(matches!(loaded.rejected[0].1, DurabilityError::Malformed(_)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp_dir("prune");
        let store = SnapshotStore::open(&dir).unwrap();
        for seq in 0..5 {
            store.save(seq, b"x").unwrap();
        }
        store.prune(2).unwrap();
        assert_eq!(store.list().unwrap(), vec![3, 4]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_roundtrip_and_reopen() {
        let dir = tmp_dir("journal");
        let path = dir.join("rounds.nblj");
        let mut w = JournalWriter::create(&path, 0xABCD).unwrap();
        w.append(b"round 0").unwrap();
        w.append(b"round 1").unwrap();
        drop(w);

        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.run_id, 0xABCD);
        assert_eq!(contents.records, vec![b"round 0".to_vec(), b"round 1".to_vec()]);
        assert!(!contents.torn_tail);

        let (mut w, contents) = JournalWriter::open_append(&path, 0xABCD).unwrap();
        assert_eq!(contents.records.len(), 2);
        w.append(b"round 2").unwrap();
        drop(w);
        assert_eq!(read_journal(&path).unwrap().records.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_truncates_torn_tail_on_reopen() {
        let dir = tmp_dir("torn");
        let path = dir.join("rounds.nblj");
        let mut w = JournalWriter::create(&path, 7).unwrap();
        w.append(b"complete record").unwrap();
        drop(w);
        // Simulate a crash mid-append: half a record at the tail.
        let mut bytes = fs::read(&path).unwrap();
        let full = bytes.len();
        bytes.extend_from_slice(&(100u32).to_le_bytes());
        bytes.extend_from_slice(b"only part of the payl");
        fs::write(&path, &bytes).unwrap();

        let contents = read_journal(&path).unwrap();
        assert!(contents.torn_tail);
        assert_eq!(contents.records.len(), 1);
        assert_eq!(contents.valid_len, full as u64);

        let (mut w, _) = JournalWriter::open_append(&path, 7).unwrap();
        w.append(b"next").unwrap();
        drop(w);
        let contents = read_journal(&path).unwrap();
        assert!(!contents.torn_tail);
        assert_eq!(contents.records, vec![b"complete record".to_vec(), b"next".to_vec()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_rejects_bit_flips_and_wrong_run() {
        let dir = tmp_dir("flips");
        let path = dir.join("rounds.nblj");
        let mut w = JournalWriter::create(&path, 1).unwrap();
        w.append(b"payload bytes here").unwrap();
        drop(w);

        let clean = fs::read(&path).unwrap();
        // Flip every byte of the record region: the record must drop out.
        for pos in JOURNAL_HEADER..clean.len() {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x40;
            let contents = parse_journal(&bytes).unwrap();
            assert!(contents.torn_tail, "flip at {pos} must mark the tail torn");
            assert!(contents.records.is_empty());
        }
        // Wrong run id on reopen.
        assert!(matches!(JournalWriter::open_append(&path, 2).unwrap_err(), DurabilityError::Malformed(_)));
        // Garbage header.
        assert_eq!(parse_journal(b"????????????????").unwrap_err(), DurabilityError::NotAJournal);
        fs::remove_dir_all(&dir).ok();
    }
}
