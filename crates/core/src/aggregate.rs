//! Module-wise weighted sub-model aggregation (§5.2).
//!
//! Each module's parameters are replaced by the importance-weighted
//! average of that module's copies across the sub-models that contain it:
//!
//! ```text
//! ω_i' = Σ_{k ∈ U_i} Importance(ω_i | D_k)·ω_i^k / Σ_{k ∈ U_i} Importance(ω_i | D_k)
//! ```
//!
//! Modules updated by no sub-model keep the cloud's parameters. Shared
//! parts (stem/head/selector), which every sub-model carries, are averaged
//! with data-volume weights (FedAvg-style).

use nebula_modular::{ModularModel, SubModelSpec};
use std::collections::HashMap;

/// One device's contribution to a round of aggregation.
#[derive(Clone, Debug)]
pub struct ModuleUpdate {
    /// Which modules the device trained.
    pub spec: SubModelSpec,
    /// Updated parameters of each trained module, keyed by `(layer, index)`.
    pub module_params: HashMap<(usize, usize), Vec<f32>>,
    /// Updated shared-part parameters.
    pub shared_params: Vec<f32>,
    /// Device-local module importance `importance[layer][module]`.
    pub importance: Vec<Vec<f32>>,
    /// Local data volume (shared-part weighting).
    pub data_volume: usize,
}

/// Applies module-wise weighted aggregation to the cloud model in place.
///
/// Returns the number of modules that received at least one update.
pub fn aggregate_module_wise(cloud: &mut ModularModel, updates: &[ModuleUpdate]) -> usize {
    aggregate_module_wise_with(cloud, updates, true)
}

/// [`aggregate_module_wise`] with a switch for the importance weighting —
/// `use_importance = false` falls back to a plain mean over contributing
/// sub-models (the ablation in DESIGN.md §5.2).
pub fn aggregate_module_wise_with(
    cloud: &mut ModularModel,
    updates: &[ModuleUpdate],
    use_importance: bool,
) -> usize {
    if updates.is_empty() {
        return 0;
    }
    let layers = cloud.num_layers();
    let n = cloud.config().modules_per_layer;
    let mut touched = 0usize;

    for l in 0..layers {
        for i in 0..n {
            // Gather contributions with positive importance.
            let mut acc: Option<Vec<f32>> = None;
            let mut weight_sum = 0.0f32;
            for u in updates {
                if !u.spec.contains(l, i) {
                    continue;
                }
                let Some(params) = u.module_params.get(&(l, i)) else {
                    continue;
                };
                if params.is_empty() {
                    continue; // residual module: nothing to aggregate
                }
                let w = if use_importance { u.importance[l][i].max(1e-8) } else { 1.0 };
                match &mut acc {
                    None => {
                        acc = Some(params.iter().map(|&p| p * w).collect());
                    }
                    Some(a) => {
                        assert_eq!(a.len(), params.len(), "module param size mismatch at ({l},{i})");
                        for (av, &pv) in a.iter_mut().zip(params) {
                            *av += w * pv;
                        }
                    }
                }
                weight_sum += w;
            }
            if let Some(mut a) = acc {
                if weight_sum > 0.0 {
                    a.iter_mut().for_each(|v| *v /= weight_sum);
                    cloud.load_module_param_vector(l, i, &a);
                    touched += 1;
                }
            }
        }
    }

    // Shared parts: volume-weighted average over all participants.
    let total_volume: f32 = updates.iter().map(|u| u.data_volume as f32).sum();
    if total_volume > 0.0 {
        let len = updates[0].shared_params.len();
        let mut shared = vec![0.0f32; len];
        for u in updates {
            assert_eq!(u.shared_params.len(), len, "shared param size mismatch");
            let w = u.data_volume as f32 / total_volume;
            for (s, &p) in shared.iter_mut().zip(&u.shared_params) {
                *s += w * p;
            }
        }
        cloud.load_shared_param_vector(&shared);
    }

    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_modular::ModularConfig;

    fn cloud() -> ModularModel {
        let mut cfg = ModularConfig::toy(8, 3);
        cfg.gate_noise_std = 0.0;
        cfg.residual_module = false;
        ModularModel::new(cfg, 3)
    }

    fn update_for(
        cloud: &ModularModel,
        spec: SubModelSpec,
        importance: Vec<Vec<f32>>,
        offset: f32,
        volume: usize,
    ) -> ModuleUpdate {
        let mut module_params = HashMap::new();
        for (l, layer) in spec.layers().iter().enumerate() {
            for &i in layer {
                let p: Vec<f32> = cloud.module_param_vector(l, i).iter().map(|v| v + offset).collect();
                module_params.insert((l, i), p);
            }
        }
        let shared_params: Vec<f32> = cloud.shared_param_vector().iter().map(|v| v + offset).collect();
        ModuleUpdate { spec, module_params, shared_params, importance, data_volume: volume }
    }

    #[test]
    fn single_update_replaces_module() {
        let mut c = cloud();
        let before = c.module_param_vector(0, 0);
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let imp = vec![vec![1.0, 0.0, 0.0, 0.0], vec![1.0, 0.0, 0.0, 0.0]];
        let u = update_for(&c, spec, imp, 1.0, 100);
        let touched = aggregate_module_wise(&mut c, &[u]);
        assert_eq!(touched, 2);
        let after = c.module_param_vector(0, 0);
        for (b, a) in before.iter().zip(&after) {
            nebula_tensor::assert_close(a - b, 1.0, 1e-5);
        }
        // Untouched module unchanged... except via shared params which are
        // separate: check module (0,1) kept its values.
    }

    #[test]
    fn untouched_modules_keep_cloud_params() {
        let mut c = cloud();
        let before = c.module_param_vector(0, 2);
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let imp = vec![vec![1.0; 4]; 2];
        let u = update_for(&c, spec, imp, 5.0, 10);
        aggregate_module_wise(&mut c, &[u]);
        assert_eq!(c.module_param_vector(0, 2), before);
    }

    #[test]
    fn importance_weights_balance_contributions() {
        let mut c = cloud();
        let base = c.module_param_vector(0, 0);
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        // Device A: importance 3, offset +1; device B: importance 1, offset +5.
        let ua = update_for(&c, spec.clone(), vec![vec![3.0, 0.0, 0.0, 0.0]; 2], 1.0, 10);
        let ub = update_for(&c, spec, vec![vec![1.0, 0.0, 0.0, 0.0]; 2], 5.0, 10);
        aggregate_module_wise(&mut c, &[ua, ub]);
        let after = c.module_param_vector(0, 0);
        // Weighted offset: (3·1 + 1·5)/4 = 2.
        for (b, a) in base.iter().zip(&after) {
            nebula_tensor::assert_close(a - b, 2.0, 1e-4);
        }
    }

    #[test]
    fn shared_parts_use_volume_weights() {
        let mut c = cloud();
        let base = c.shared_param_vector();
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let ua = update_for(&c, spec.clone(), vec![vec![1.0; 4]; 2], 1.0, 30);
        let ub = update_for(&c, spec, vec![vec![1.0; 4]; 2], 5.0, 10);
        aggregate_module_wise(&mut c, &[ua, ub]);
        let after = c.shared_param_vector();
        // (30·1 + 10·5)/40 = 2.
        for (b, a) in base.iter().zip(&after) {
            nebula_tensor::assert_close(a - b, 2.0, 1e-4);
        }
    }

    #[test]
    fn empty_update_list_is_noop() {
        let mut c = cloud();
        let before = c.param_vector();
        assert_eq!(aggregate_module_wise(&mut c, &[]), 0);
        assert_eq!(c.param_vector(), before);
    }

    use nebula_nn::Layer;
}
