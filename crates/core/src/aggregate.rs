//! Module-wise weighted sub-model aggregation (§5.2).
//!
//! Each module's parameters are replaced by the importance-weighted
//! average of that module's copies across the sub-models that contain it:
//!
//! ```text
//! ω_i' = Σ_{k ∈ U_i} Importance(ω_i | D_k)·ω_i^k / Σ_{k ∈ U_i} Importance(ω_i | D_k)
//! ```
//!
//! Modules updated by no sub-model keep the cloud's parameters. Shared
//! parts (stem/head/selector), which every sub-model carries, are averaged
//! with data-volume weights (FedAvg-style).

use nebula_modular::{ModularModel, SubModelSpec};
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// One device's contribution to a round of aggregation.
///
/// `module_params` is a `BTreeMap` so every walk over an update's modules
/// is in `(layer, index)` order — aggregation, sanitize norms, and
/// shard-merge order can never depend on hasher state.
#[derive(Clone, Debug)]
pub struct ModuleUpdate {
    /// Which modules the device trained.
    pub spec: SubModelSpec,
    /// Updated parameters of each trained module, keyed by `(layer, index)`.
    pub module_params: BTreeMap<(usize, usize), Vec<f32>>,
    /// Updated shared-part parameters.
    pub shared_params: Vec<f32>,
    /// Device-local module importance `importance[layer][module]`.
    pub importance: Vec<Vec<f32>>,
    /// Local data volume (shared-part weighting).
    pub data_volume: usize,
}

/// Applies module-wise weighted aggregation to the cloud model in place.
///
/// Returns the number of modules that received at least one update.
pub fn aggregate_module_wise(cloud: &mut ModularModel, updates: &[ModuleUpdate]) -> usize {
    aggregate_module_wise_with(cloud, updates, true)
}

/// [`aggregate_module_wise`] with a switch for the importance weighting —
/// `use_importance = false` falls back to a plain mean over contributing
/// sub-models (the ablation in DESIGN.md §5.2).
pub fn aggregate_module_wise_with(
    cloud: &mut ModularModel,
    updates: &[ModuleUpdate],
    use_importance: bool,
) -> usize {
    aggregate_module_wise_impl(cloud, updates, use_importance)
}

/// [`aggregate_module_wise_with`] over update references — the form the
/// robust round loop uses after the sanitize gate filtered out rejected
/// updates without cloning the survivors.
pub fn aggregate_module_wise_refs(
    cloud: &mut ModularModel,
    updates: &[&ModuleUpdate],
    use_importance: bool,
) -> usize {
    aggregate_module_wise_impl(cloud, updates, use_importance)
}

/// The materialized reference path, generic over owned or borrowed update
/// slices so neither entry point re-collects a `Vec<&ModuleUpdate>`. One
/// accumulator buffer is reused across every module.
///
/// Per coordinate the fold is `Σ w_k·p_k / Σ w_k` with contributions taken
/// in update order; [`StreamingAccumulator`] performs the same operations
/// in the same order, which is what keeps the two paths bit-identical
/// (test-pinned).
fn aggregate_module_wise_impl<U: Borrow<ModuleUpdate>>(
    cloud: &mut ModularModel,
    updates: &[U],
    use_importance: bool,
) -> usize {
    if updates.is_empty() {
        return 0;
    }
    let layers = cloud.num_layers();
    let n = cloud.config().modules_per_layer;
    let mut touched = 0usize;
    let mut acc: Vec<f32> = Vec::new();

    for l in 0..layers {
        for i in 0..n {
            // Gather contributions with positive importance.
            acc.clear();
            let mut weight_sum = 0.0f32;
            for u in updates {
                let u = u.borrow();
                if !u.spec.contains(l, i) {
                    continue;
                }
                let Some(params) = u.module_params.get(&(l, i)) else {
                    continue;
                };
                if params.is_empty() {
                    continue; // residual module: nothing to aggregate
                }
                let w = if use_importance { u.importance[l][i].max(1e-8) } else { 1.0 };
                if acc.is_empty() {
                    acc.extend(params.iter().map(|&p| p * w));
                } else {
                    assert_eq!(acc.len(), params.len(), "module param size mismatch at ({l},{i})");
                    for (av, &pv) in acc.iter_mut().zip(params) {
                        *av += w * pv;
                    }
                }
                weight_sum += w;
            }
            if !acc.is_empty() && weight_sum > 0.0 {
                acc.iter_mut().for_each(|v| *v /= weight_sum);
                cloud.load_module_param_vector(l, i, &acc);
                touched += 1;
            }
        }
    }

    // Shared parts: volume-weighted average over all participants. The
    // volume weights are applied unnormalized (`Σ vol_k·p_k / Σ vol_k`,
    // one division at the end) so a single forward pass — the streaming
    // accumulator — can reproduce the result bit-for-bit.
    let total_volume: f32 = updates.iter().map(|u| u.borrow().data_volume as f32).sum();
    if total_volume > 0.0 {
        let len = updates[0].borrow().shared_params.len();
        let mut shared = vec![0.0f32; len];
        for u in updates {
            let u = u.borrow();
            assert_eq!(u.shared_params.len(), len, "shared param size mismatch");
            let w = u.data_volume as f32;
            for (s, &p) in shared.iter_mut().zip(&u.shared_params) {
                *s += w * p;
            }
        }
        shared.iter_mut().for_each(|v| *v /= total_volume);
        cloud.load_shared_param_vector(&shared);
    }

    touched
}

// ---------------------------------------------------------------------------
// Streaming aggregation (constant-memory weighted mean)
// ---------------------------------------------------------------------------

/// Running weighted sum for one module.
#[derive(Clone, Debug)]
struct ModuleSum {
    sum: Vec<f32>,
    weight: f32,
}

/// Constant-memory module-wise aggregation: folds each arriving
/// [`ModuleUpdate`] into importance-weighted sums instead of holding the
/// round's updates until aggregation time.
///
/// Memory is bounded by the union of module vectors contributed so far
/// (≤ one full model) regardless of how many updates fold in — the
/// property that lets a round scale to 10^5–10^6 devices. Folding updates
/// in the same order the materialized path iterates them reproduces
/// [`aggregate_module_wise_refs`] bit-for-bit (test-pinned): per
/// coordinate both paths compute `p_1·w_1 + w_2·p_2 + …` then divide by
/// the same weight sum.
///
/// Accumulators [`merge`](Self::merge) associatively *in value* but not
/// in f32 bits: `fold(a);fold(b)` and `merge(fold(a), fold(b))` sum in a
/// different association. Callers that need bit-stable results across
/// shard counts must merge partials at a canonical granularity that does
/// not depend on the shard count (see `nebula-sim`'s cell-level fold
/// plan).
#[derive(Clone, Debug)]
pub struct StreamingAccumulator {
    use_importance: bool,
    folded: usize,
    modules: BTreeMap<(usize, usize), ModuleSum>,
    shared_sum: Vec<f32>,
    volume_sum: f32,
}

impl StreamingAccumulator {
    /// An empty accumulator. `use_importance = false` is the plain-mean
    /// ablation, mirroring [`aggregate_module_wise_with`].
    pub fn new(use_importance: bool) -> Self {
        Self { use_importance, folded: 0, modules: BTreeMap::new(), shared_sum: Vec::new(), volume_sum: 0.0 }
    }

    /// Updates folded in (directly or via merge).
    pub fn folded(&self) -> usize {
        self.folded
    }

    /// True if nothing has been folded in.
    pub fn is_empty(&self) -> bool {
        self.folded == 0
    }

    /// Folds one update into the running sums. Skip rules match the
    /// materialized path exactly: a module contributes iff the spec
    /// contains it and its parameter vector is present and non-empty.
    pub fn fold(&mut self, u: &ModuleUpdate) {
        for (l, layer) in u.spec.layers().iter().enumerate() {
            for &i in layer {
                let Some(params) = u.module_params.get(&(l, i)) else {
                    continue;
                };
                if params.is_empty() {
                    continue; // residual module: nothing to aggregate
                }
                let w = if self.use_importance { u.importance[l][i].max(1e-8) } else { 1.0 };
                match self.modules.get_mut(&(l, i)) {
                    None => {
                        self.modules.insert(
                            (l, i),
                            ModuleSum { sum: params.iter().map(|&p| p * w).collect(), weight: w },
                        );
                    }
                    Some(m) => {
                        assert_eq!(m.sum.len(), params.len(), "module param size mismatch at ({l},{i})");
                        for (av, &pv) in m.sum.iter_mut().zip(params) {
                            *av += w * pv;
                        }
                        m.weight += w;
                    }
                }
            }
        }
        if self.folded == 0 {
            self.shared_sum = vec![0.0; u.shared_params.len()];
        }
        assert_eq!(self.shared_sum.len(), u.shared_params.len(), "shared param size mismatch");
        let w = u.data_volume as f32;
        for (s, &p) in self.shared_sum.iter_mut().zip(&u.shared_params) {
            *s += w * p;
        }
        self.volume_sum += w;
        self.folded += 1;
    }

    /// Adds another accumulator's sums into this one (shard/cell partial
    /// merge). Element-wise addition, so the merged value equals folding
    /// both partials' updates into one accumulator — up to f32
    /// association (see the type docs).
    pub fn merge(&mut self, other: &StreamingAccumulator) {
        assert_eq!(self.use_importance, other.use_importance, "accumulator weighting modes differ");
        if other.folded == 0 {
            return;
        }
        if self.folded == 0 {
            *self = other.clone();
            return;
        }
        for (k, om) in &other.modules {
            match self.modules.get_mut(k) {
                None => {
                    self.modules.insert(*k, om.clone());
                }
                Some(m) => {
                    assert_eq!(m.sum.len(), om.sum.len(), "module param size mismatch at {k:?}");
                    for (av, &ov) in m.sum.iter_mut().zip(&om.sum) {
                        *av += ov;
                    }
                    m.weight += om.weight;
                }
            }
        }
        assert_eq!(self.shared_sum.len(), other.shared_sum.len(), "shared param size mismatch");
        for (s, &o) in self.shared_sum.iter_mut().zip(&other.shared_sum) {
            *s += o;
        }
        self.volume_sum += other.volume_sum;
        self.folded += other.folded;
    }

    /// Divides the sums and loads them into the cloud model, in
    /// `(layer, index)` order. Returns the number of modules touched.
    pub fn apply(&self, cloud: &mut ModularModel) -> usize {
        let mut touched = 0usize;
        let mut buf: Vec<f32> = Vec::new();
        for (&(l, i), m) in &self.modules {
            if m.weight <= 0.0 {
                continue;
            }
            buf.clear();
            buf.extend(m.sum.iter().map(|&v| v / m.weight));
            cloud.load_module_param_vector(l, i, &buf);
            touched += 1;
        }
        if self.volume_sum > 0.0 {
            buf.clear();
            buf.extend(self.shared_sum.iter().map(|&v| v / self.volume_sum));
            cloud.load_shared_param_vector(&buf);
        }
        touched
    }

    /// Bytes an edge→cloud upload of this partial costs on the wire
    /// (f32 sums + one weight per module + shared sums + volume).
    pub fn wire_bytes(&self) -> u64 {
        let sums: usize = self.modules.values().map(|m| m.sum.len() + 1).sum();
        ((sums + self.shared_sum.len() + 1) * 4) as u64
    }
}

/// One edge server's contribution to a hierarchical round: either
/// streamed constant-memory partials (WeightedMean) or the buffered
/// updates a robust combine rule needs, plus the edge-side sanitize
/// accounting.
#[derive(Clone, Debug, Default)]
pub struct EdgePartial {
    /// Sealed accumulator groups in canonical `(group, sums)` order.
    /// Groups are the unit the cloud merges in — per shard for lowest
    /// memory, per cell for shard-count-invariant bits.
    pub groups: Vec<(u64, StreamingAccumulator)>,
    /// Updates buffered for a robust combine rule (empty when streaming).
    pub buffered: Vec<ModuleUpdate>,
    /// Edge-side sanitize accounting (streaming mode only; buffered
    /// updates run the full gate at the cloud).
    pub report: SanitizeReport,
    /// Devices that reported to this edge.
    pub devices: usize,
}

impl EdgePartial {
    /// Bytes the edge→cloud upload costs.
    pub fn wire_bytes(&self) -> u64 {
        let streamed: u64 = self.groups.iter().map(|(_, a)| a.wire_bytes()).sum();
        let buffered: u64 = self.buffered.iter().map(update_wire_bytes).sum();
        streamed + buffered
    }
}

fn update_wire_bytes(u: &ModuleUpdate) -> u64 {
    let module: usize = u.module_params.values().map(Vec::len).sum();
    ((module + u.shared_params.len()) * 4) as u64
}

/// The aggregation half of an edge server: ingests device updates as they
/// arrive and emits an [`EdgePartial`] for the cloud.
///
/// In `WeightedMean` mode updates are folded immediately (constant
/// memory); the edge applies the sanitize gate's non-finite check at fold
/// time, but the cross-cohort norm-outlier check is unavailable — it
/// needs the whole cohort's norms *before* any fold, and a fold cannot be
/// undone bit-exactly. Robust rules (median/trimmed-mean/Krum) buffer
/// updates instead and leave the full sanitize gate to the cloud: that is
/// the documented memory/robustness trade-off.
#[derive(Clone, Debug)]
pub struct EdgeAccumulator {
    aggregator: RobustAggregator,
    policy: SanitizePolicy,
    use_importance: bool,
    acc: StreamingAccumulator,
    partial: EdgePartial,
}

impl EdgeAccumulator {
    pub fn new(aggregator: RobustAggregator, policy: SanitizePolicy, use_importance: bool) -> Self {
        Self {
            aggregator,
            policy,
            use_importance,
            acc: StreamingAccumulator::new(use_importance),
            partial: EdgePartial::default(),
        }
    }

    /// Whether this edge streams (WeightedMean) or buffers (robust rules).
    pub fn streaming(&self) -> bool {
        self.aggregator == RobustAggregator::WeightedMean
    }

    /// Ingests one device update. Returns false if the edge rejected it
    /// (streaming mode, non-finite parameters).
    pub fn ingest(&mut self, u: ModuleUpdate) -> bool {
        self.partial.devices += 1;
        if self.streaming() {
            if self.policy.reject_non_finite && !update_is_finite(&u) {
                self.partial.report.rejected_non_finite += 1;
                return false;
            }
            self.partial.report.accepted += 1;
            if self.policy.norm_outlier_ratio.is_finite() {
                self.partial.report.outlier_check_skipped += 1;
            }
            self.acc.fold(&u);
        } else {
            self.partial.buffered.push(u);
        }
        true
    }

    /// Seals the open accumulator as canonical group `group`. Call once
    /// per cell for shard-count-invariant bits; never call mid-round for
    /// one group per shard (lowest memory).
    pub fn seal(&mut self, group: u64) {
        if self.acc.is_empty() {
            return;
        }
        let sealed = std::mem::replace(&mut self.acc, StreamingAccumulator::new(self.use_importance));
        self.partial.groups.push((group, sealed));
    }

    /// Finishes the round: seals any open accumulator under `group` and
    /// returns the partial for the cloud.
    pub fn finish(mut self, group: u64) -> EdgePartial {
        self.seal(group);
        self.partial
    }
}

// ---------------------------------------------------------------------------
// Byzantine-robust aggregators
// ---------------------------------------------------------------------------

/// How one round of surviving updates is combined into the cloud model.
///
/// `WeightedMean` is Nebula's §5.2 importance-weighted average and stays
/// bit-identical to [`aggregate_module_wise_refs`] (test-pinned). The
/// robust alternatives deliberately ignore importance and data-volume
/// weights — both are attacker-controlled inputs (gate-load gaming
/// inflates importance to capture a module's average), so robust modes
/// treat every contribution as one unweighted vote per coordinate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum RobustAggregator {
    /// Importance-weighted mean (the paper's aggregation; not robust).
    #[default]
    WeightedMean,
    /// Coordinate-wise median over contributing updates. Breakdown point
    /// 1/2: with ≤ f of 2f+1 adversarial contributions each coordinate
    /// stays inside the honest envelope.
    CoordinateMedian,
    /// Coordinate-wise trimmed mean: drop the `ceil(frac·n)` largest and
    /// smallest values per coordinate, average the rest. Falls back to
    /// the median when trimming would consume every value.
    TrimmedMean { frac: f32 },
    /// Multi-Krum selection with `f` suspected Byzantine contributors:
    /// pick the single update whose summed squared distance to its
    /// `n − f − 2` nearest neighbours is smallest. Requires `n ≥ 2f + 3`
    /// for its guarantee; below that it falls back to the coordinate
    /// median.
    Krum { f: usize },
}

impl fmt::Display for RobustAggregator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RobustAggregator::WeightedMean => write!(f, "weighted_mean"),
            RobustAggregator::CoordinateMedian => write!(f, "coord_median"),
            RobustAggregator::TrimmedMean { frac } => write!(f, "trimmed_mean_{frac}"),
            RobustAggregator::Krum { f: byz } => write!(f, "krum_{byz}"),
        }
    }
}

/// Module-wise aggregation under a selectable combine rule.
///
/// `RobustAggregator::WeightedMean` delegates verbatim to
/// [`aggregate_module_wise_refs`], so existing trajectories are
/// unchanged. The robust rules gather, per module, the parameter vectors
/// of every contributing update (same skip conditions as the weighted
/// path: module in spec, params present and non-empty) and combine them
/// coordinate-wise; shared parameters get the same treatment across all
/// participants. Returns the number of modules touched.
pub fn aggregate_module_wise_robust(
    cloud: &mut ModularModel,
    updates: &[&ModuleUpdate],
    aggregator: RobustAggregator,
    use_importance: bool,
) -> usize {
    if aggregator == RobustAggregator::WeightedMean {
        return aggregate_module_wise_refs(cloud, updates, use_importance);
    }
    if updates.is_empty() {
        return 0;
    }
    let layers = cloud.num_layers();
    let n = cloud.config().modules_per_layer;
    let mut touched = 0usize;
    let mut combined = Vec::new();

    for l in 0..layers {
        for i in 0..n {
            let mut contribs: Vec<&[f32]> = Vec::new();
            for u in updates {
                if !u.spec.contains(l, i) {
                    continue;
                }
                let Some(params) = u.module_params.get(&(l, i)) else {
                    continue;
                };
                if params.is_empty() {
                    continue; // residual module: nothing to aggregate
                }
                if let Some(first) = contribs.first() {
                    assert_eq!(first.len(), params.len(), "module param size mismatch at ({l},{i})");
                }
                contribs.push(params);
            }
            if contribs.is_empty() {
                continue;
            }
            combine_robust(&contribs, aggregator, &mut combined);
            cloud.load_module_param_vector(l, i, &combined);
            touched += 1;
        }
    }

    let shared: Vec<&[f32]> = updates.iter().map(|u| u.shared_params.as_slice()).collect();
    if !shared.is_empty() && !shared[0].is_empty() {
        let len = shared[0].len();
        for s in &shared {
            assert_eq!(s.len(), len, "shared param size mismatch");
        }
        combine_robust(&shared, aggregator, &mut combined);
        cloud.load_shared_param_vector(&combined);
    }

    touched
}

/// Combine equal-length vectors under a robust rule into `out`.
fn combine_robust(vectors: &[&[f32]], aggregator: RobustAggregator, out: &mut Vec<f32>) {
    match aggregator {
        RobustAggregator::WeightedMean => unreachable!("weighted mean uses the reference path"),
        RobustAggregator::CoordinateMedian => coordinate_trimmed(vectors, usize::MAX, out),
        RobustAggregator::TrimmedMean { frac } => {
            let n = vectors.len();
            let trim = (frac.clamp(0.0, 0.5) * n as f32).ceil() as usize;
            coordinate_trimmed(vectors, trim, out);
        }
        RobustAggregator::Krum { f } => match krum_index(vectors, f) {
            Some(idx) => {
                out.clear();
                out.extend_from_slice(vectors[idx]);
            }
            None => coordinate_trimmed(vectors, usize::MAX, out),
        },
    }
}

/// Coordinate-wise trimmed mean, trimming `trim` values from each end of
/// every sorted coordinate column. When trimming consumes the whole
/// column (including `trim == usize::MAX`, the median request) the
/// median of the column is used instead.
fn coordinate_trimmed(vectors: &[&[f32]], trim: usize, out: &mut Vec<f32>) {
    let n = vectors.len();
    let dim = vectors[0].len();
    out.clear();
    out.reserve(dim);
    let mut col: Vec<f32> = Vec::with_capacity(n);
    for j in 0..dim {
        col.clear();
        col.extend(vectors.iter().map(|v| v[j]));
        col.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
        let v = if trim >= n.div_ceil(2) {
            // All (or more than all) values would be trimmed: median.
            if n % 2 == 1 {
                col[n / 2]
            } else {
                0.5 * (col[n / 2 - 1] + col[n / 2])
            }
        } else {
            let kept = &col[trim..n - trim];
            kept.iter().sum::<f32>() / kept.len() as f32
        };
        out.push(v);
    }
}

fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum()
}

/// Lexicographic order on parameter vectors — the deterministic,
/// permutation-invariant Krum tie-break.
fn lex_less(a: &[f32], b: &[f32]) -> bool {
    for (&x, &y) in a.iter().zip(b) {
        match x.partial_cmp(&y).unwrap_or(Ordering::Equal) {
            Ordering::Less => return true,
            Ordering::Greater => return false,
            Ordering::Equal => {}
        }
    }
    false
}

/// The Krum winner among `vectors` assuming at most `f` Byzantine
/// contributors, or `None` when `n < 2f + 3` (guarantee unavailable).
fn krum_index(vectors: &[&[f32]], f: usize) -> Option<usize> {
    let n = vectors.len();
    if n < 2 * f + 3 {
        return None;
    }
    let neighbours = n - f - 2;
    let mut best: Option<(f64, usize)> = None;
    let mut dists: Vec<f64> = Vec::with_capacity(n - 1);
    for a in 0..n {
        dists.clear();
        dists.extend((0..n).filter(|&b| b != a).map(|b| sq_dist(vectors[a], vectors[b])));
        dists.sort_by(|x, y| x.partial_cmp(y).unwrap_or(Ordering::Equal));
        let score: f64 = dists[..neighbours].iter().sum();
        let better = match best {
            None => true,
            Some((s, i)) => score < s || (score == s && lex_less(vectors[a], vectors[i])),
        };
        if better {
            best = Some((score, a));
        }
    }
    best.map(|(_, i)| i)
}

// ---------------------------------------------------------------------------
// Sanitize gate & staleness discounting (robust rounds)
// ---------------------------------------------------------------------------

/// What the cloud refuses to aggregate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SanitizePolicy {
    /// Reject updates carrying any non-finite parameter or importance.
    pub reject_non_finite: bool,
    /// Reject updates whose RMS parameter norm exceeds this multiple of
    /// the round's median RMS norm (needs ≥ 3 finite updates to have a
    /// trustworthy median). RMS — not raw L2 — so devices with different
    /// sub-model sizes are comparable.
    ///
    /// The check needs every cohort norm *before* any fold, so streaming
    /// paths ([`EdgeAccumulator`] under `WeightedMean` — `edge_groups`,
    /// `ShardedWorld`) cannot run it: finite updates fold in unchecked.
    /// That is not silent — every accept that bypassed an enabled check
    /// is counted in [`SanitizeReport::outlier_check_skipped`].
    pub norm_outlier_ratio: f32,
}

impl Default for SanitizePolicy {
    fn default() -> Self {
        Self { reject_non_finite: true, norm_outlier_ratio: 10.0 }
    }
}

/// What the sanitize gate did to one round of updates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    pub accepted: usize,
    pub rejected_non_finite: usize,
    pub rejected_outlier: usize,
    /// Accepted updates that never faced an *enabled* norm-outlier check
    /// — folded at a streaming edge, or part of a cohort too small for a
    /// trustworthy median. Zero whenever `norm_outlier_ratio` is
    /// infinite (check disabled) or the full gate ran. Non-zero means
    /// `rejected_outlier == 0` is absence of evidence, not evidence of
    /// absence.
    pub outlier_check_skipped: usize,
}

impl SanitizeReport {
    /// Total rejections, any cause.
    pub fn rejected(&self) -> usize {
        self.rejected_non_finite + self.rejected_outlier
    }
}

/// Whether every parameter and importance weight the update carries is
/// finite — the sanitize check an edge can run per update at fold time,
/// without buffering the cohort.
pub fn update_is_finite(u: &ModuleUpdate) -> bool {
    u.module_params.values().all(|p| p.iter().all(|v| v.is_finite()))
        && u.shared_params.iter().all(|v| v.is_finite())
        && u.importance.iter().all(|row| row.iter().all(|v| v.is_finite()))
}

/// RMS norm over every parameter the update carries (0.0 if empty).
fn update_rms_norm(u: &ModuleUpdate) -> f32 {
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for p in u.module_params.values() {
        sum += p.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
        n += p.len();
    }
    sum += u.shared_params.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
    n += u.shared_params.len();
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).sqrt() as f32
    }
}

/// The sanitize gate: validates a round of updates against `policy` and
/// returns the indices that may be aggregated plus an accounting report.
///
/// Two checks, in order: (1) every parameter and importance weight must
/// be finite; (2) among the finite updates, RMS-norm outliers beyond
/// `norm_outlier_ratio` × the median are rejected (exploding-weight
/// uploads that are still finite). A permissive policy that accepts
/// everything returns the identity, so fault-free rounds aggregate
/// exactly as before.
pub fn sanitize_updates<U: Borrow<ModuleUpdate>>(
    updates: &[U],
    policy: &SanitizePolicy,
) -> (Vec<usize>, SanitizeReport) {
    let mut report = SanitizeReport::default();
    let mut finite: Vec<usize> = Vec::with_capacity(updates.len());
    for (i, u) in updates.iter().enumerate() {
        if policy.reject_non_finite && !update_is_finite(u.borrow()) {
            report.rejected_non_finite += 1;
        } else {
            finite.push(i);
        }
    }

    let kept: Vec<usize> = if finite.len() >= 3 && policy.norm_outlier_ratio.is_finite() {
        let mut norms: Vec<f32> = finite.iter().map(|&i| update_rms_norm(updates[i].borrow())).collect();
        let mut sorted = norms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite norms"));
        let median = sorted[sorted.len() / 2];
        let cutoff = median * policy.norm_outlier_ratio;
        let mut kept = Vec::with_capacity(finite.len());
        for (&i, norm) in finite.iter().zip(norms.drain(..)) {
            if median > 0.0 && norm > cutoff {
                report.rejected_outlier += 1;
            } else {
                kept.push(i);
            }
        }
        kept
    } else {
        if policy.norm_outlier_ratio.is_finite() {
            // The check was enabled but the cohort is too small for a
            // trustworthy median — these accepts went unchecked.
            report.outlier_check_skipped = finite.len();
        }
        finite
    };

    report.accepted = kept.len();
    (kept, report)
}

/// Discounts a late (straggler) update's influence: importance weights
/// and the shared-part data-volume weight are both scaled by `discount`,
/// so a stale update still contributes but no longer dominates fresher
/// ones (§5.2's weighting, staleness-aware).
pub fn discount_staleness(update: &mut ModuleUpdate, discount: f32) {
    let d = discount.clamp(0.0, 1.0);
    for row in &mut update.importance {
        for w in row.iter_mut() {
            *w *= d;
        }
    }
    update.data_volume = (((update.data_volume as f32) * d).round() as usize).max(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_modular::ModularConfig;

    fn cloud() -> ModularModel {
        let mut cfg = ModularConfig::toy(8, 3);
        cfg.gate_noise_std = 0.0;
        cfg.residual_module = false;
        ModularModel::new(cfg, 3)
    }

    fn update_for(
        cloud: &ModularModel,
        spec: SubModelSpec,
        importance: Vec<Vec<f32>>,
        offset: f32,
        volume: usize,
    ) -> ModuleUpdate {
        let mut module_params = BTreeMap::new();
        for (l, layer) in spec.layers().iter().enumerate() {
            for &i in layer {
                let p: Vec<f32> = cloud.module_param_vector(l, i).iter().map(|v| v + offset).collect();
                module_params.insert((l, i), p);
            }
        }
        let shared_params: Vec<f32> = cloud.shared_param_vector().iter().map(|v| v + offset).collect();
        ModuleUpdate { spec, module_params, shared_params, importance, data_volume: volume }
    }

    #[test]
    fn single_update_replaces_module() {
        let mut c = cloud();
        let before = c.module_param_vector(0, 0);
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let imp = vec![vec![1.0, 0.0, 0.0, 0.0], vec![1.0, 0.0, 0.0, 0.0]];
        let u = update_for(&c, spec, imp, 1.0, 100);
        let touched = aggregate_module_wise(&mut c, &[u]);
        assert_eq!(touched, 2);
        let after = c.module_param_vector(0, 0);
        for (b, a) in before.iter().zip(&after) {
            nebula_tensor::assert_close(a - b, 1.0, 1e-5);
        }
        // Untouched module unchanged... except via shared params which are
        // separate: check module (0,1) kept its values.
    }

    #[test]
    fn untouched_modules_keep_cloud_params() {
        let mut c = cloud();
        let before = c.module_param_vector(0, 2);
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let imp = vec![vec![1.0; 4]; 2];
        let u = update_for(&c, spec, imp, 5.0, 10);
        aggregate_module_wise(&mut c, &[u]);
        assert_eq!(c.module_param_vector(0, 2), before);
    }

    #[test]
    fn importance_weights_balance_contributions() {
        let mut c = cloud();
        let base = c.module_param_vector(0, 0);
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        // Device A: importance 3, offset +1; device B: importance 1, offset +5.
        let ua = update_for(&c, spec.clone(), vec![vec![3.0, 0.0, 0.0, 0.0]; 2], 1.0, 10);
        let ub = update_for(&c, spec, vec![vec![1.0, 0.0, 0.0, 0.0]; 2], 5.0, 10);
        aggregate_module_wise(&mut c, &[ua, ub]);
        let after = c.module_param_vector(0, 0);
        // Weighted offset: (3·1 + 1·5)/4 = 2.
        for (b, a) in base.iter().zip(&after) {
            nebula_tensor::assert_close(a - b, 2.0, 1e-4);
        }
    }

    #[test]
    fn shared_parts_use_volume_weights() {
        let mut c = cloud();
        let base = c.shared_param_vector();
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let ua = update_for(&c, spec.clone(), vec![vec![1.0; 4]; 2], 1.0, 30);
        let ub = update_for(&c, spec, vec![vec![1.0; 4]; 2], 5.0, 10);
        aggregate_module_wise(&mut c, &[ua, ub]);
        let after = c.shared_param_vector();
        // (30·1 + 10·5)/40 = 2.
        for (b, a) in base.iter().zip(&after) {
            nebula_tensor::assert_close(a - b, 2.0, 1e-4);
        }
    }

    #[test]
    fn empty_update_list_is_noop() {
        let mut c = cloud();
        let before = c.param_vector();
        assert_eq!(aggregate_module_wise(&mut c, &[]), 0);
        assert_eq!(c.param_vector(), before);
    }

    // --- partial participation -------------------------------------------

    #[test]
    fn empty_layer_contribution_leaves_layer_untouched() {
        // A partial upload: the spec names a layer-1 module but the update
        // carries no parameters for it (empty vec, as residual modules
        // ship, or the entry missing entirely, as a torn upload leaves).
        let c = cloud();
        let before_l1: Vec<Vec<f32>> = (0..4).map(|i| c.module_param_vector(1, i)).collect();
        let spec = SubModelSpec::new(vec![vec![0], vec![1]]);
        let imp = vec![vec![1.0; 4]; 2];
        let mut u = update_for(&c, spec.clone(), imp.clone(), 2.0, 50);
        u.module_params.insert((1, 1), Vec::new());
        let mut missing = update_for(&c, spec, imp, 2.0, 50);
        missing.module_params.remove(&(1, 1));
        for u in [u, missing] {
            let mut c2 = cloud();
            let touched = aggregate_module_wise(&mut c2, &[u]);
            assert_eq!(touched, 1, "only the layer-0 module moved");
            for (i, before) in before_l1.iter().enumerate() {
                assert_eq!(&c2.module_param_vector(1, i), before, "layer-1 module {i} moved");
            }
        }
    }

    #[test]
    fn single_surviving_update_round_trips() {
        // A round where every other device failed: one update must fully
        // determine the touched modules and shared parts.
        let mut c = cloud();
        let spec = SubModelSpec::new(vec![vec![1], vec![2]]);
        let imp = vec![vec![0.5; 4]; 2];
        let u = update_for(&c, spec, imp, 3.0, 5);
        let expect_module = u.module_params[&(0, 1)].clone();
        let expect_shared = u.shared_params.clone();
        let touched = aggregate_module_wise(&mut c, &[u]);
        assert_eq!(touched, 2);
        for (got, want) in c.module_param_vector(0, 1).iter().zip(&expect_module) {
            nebula_tensor::assert_close(*got, *want, 1e-5);
        }
        for (got, want) in c.shared_param_vector().iter().zip(&expect_shared) {
            nebula_tensor::assert_close(*got, *want, 1e-5);
        }
    }

    // --- robust aggregators -----------------------------------------------

    /// Five updates on module (0,0): four honest near +1, one scaled ×40.
    fn attacked_round(c: &ModularModel) -> Vec<ModuleUpdate> {
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let mut ups: Vec<ModuleUpdate> = (0..4)
            .map(|k| update_for(c, spec.clone(), vec![vec![1.0; 4]; 2], 1.0 + 0.01 * k as f32, 10))
            .collect();
        let mut evil = update_for(c, spec, vec![vec![50.0; 4]; 2], 0.0, 10_000);
        for p in evil.module_params.values_mut() {
            for v in p.iter_mut() {
                *v *= 40.0;
            }
        }
        for v in evil.shared_params.iter_mut() {
            *v *= 40.0;
        }
        ups.push(evil);
        ups
    }

    /// Aggregate `ups` into a fresh `cloud()` under `agg`, returning the
    /// resulting (0,0) module parameters.
    fn robust_after(ups: &[ModuleUpdate], agg: RobustAggregator) -> Vec<f32> {
        let mut c2 = cloud();
        let refs: Vec<&ModuleUpdate> = ups.iter().collect();
        aggregate_module_wise_robust(&mut c2, &refs, agg, true);
        c2.module_param_vector(0, 0)
    }

    #[test]
    fn median_and_trimmed_resist_scaled_outlier() {
        let c = cloud();
        let base = c.module_param_vector(0, 0);
        let ups = attacked_round(&c);
        for agg in [
            RobustAggregator::CoordinateMedian,
            RobustAggregator::TrimmedMean { frac: 0.2 },
            RobustAggregator::Krum { f: 1 },
        ] {
            let after = robust_after(&ups, agg);
            for (b, a) in base.iter().zip(&after) {
                assert!((a - b - 1.0).abs() < 0.1, "{agg}: offset {} strayed from honest +1", a - b);
            }
        }
        // The weighted mean, by contrast, is dragged by the attacker's
        // inflated importance: (4·1·~1 + 50·40·p) / 54 is nowhere near +1.
        let after = robust_after(&ups, RobustAggregator::WeightedMean);
        let drift: f32 =
            base.iter().zip(&after).map(|(b, a)| (a - b - 1.0).abs()).sum::<f32>() / base.len() as f32;
        assert!(drift > 1.0, "weighted mean should collapse under the scaled update, drift {drift}");
    }

    #[test]
    fn weighted_mean_is_bit_identical_to_reference_path() {
        let c = cloud();
        let spec = SubModelSpec::new(vec![vec![0, 1], vec![0, 2]]);
        let ups: Vec<ModuleUpdate> = (0..3)
            .map(|k| update_for(&c, spec.clone(), vec![vec![0.3 + k as f32; 4]; 2], 0.7 * k as f32, 10 + k))
            .collect();
        let refs: Vec<&ModuleUpdate> = ups.iter().collect();
        let mut a = cloud();
        let mut b = cloud();
        let ta = aggregate_module_wise_refs(&mut a, &refs, true);
        let tb = aggregate_module_wise_robust(&mut b, &refs, RobustAggregator::WeightedMean, true);
        assert_eq!(ta, tb);
        assert_eq!(a.param_vector(), b.param_vector(), "WeightedMean must stay bit-identical");
    }

    #[test]
    fn krum_below_quorum_falls_back_to_median() {
        // 4 updates with f = 1 → n < 2f+3, so Krum must behave like the
        // coordinate median rather than trusting its scoring.
        let c = cloud();
        let mut ups = attacked_round(&c);
        ups.pop(); // drop the attacker, leaving 4 honest
        let km = robust_after(&ups, RobustAggregator::Krum { f: 1 });
        let med = robust_after(&ups, RobustAggregator::CoordinateMedian);
        assert_eq!(km, med);
    }

    #[test]
    fn aggregator_labels_are_stable() {
        assert_eq!(RobustAggregator::WeightedMean.to_string(), "weighted_mean");
        assert_eq!(RobustAggregator::CoordinateMedian.to_string(), "coord_median");
        assert_eq!(RobustAggregator::TrimmedMean { frac: 0.2 }.to_string(), "trimmed_mean_0.2");
        assert_eq!(RobustAggregator::Krum { f: 2 }.to_string(), "krum_2");
    }

    // --- sanitize gate ----------------------------------------------------

    fn poisoned(c: &ModularModel, offset: f32) -> ModuleUpdate {
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let mut u = update_for(c, spec, vec![vec![1.0; 4]; 2], offset, 10);
        u.module_params.get_mut(&(0, 0)).unwrap()[0] = f32::NAN;
        u
    }

    #[test]
    fn sanitize_rejects_non_finite_updates() {
        let c = cloud();
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let good = update_for(&c, spec, vec![vec![1.0; 4]; 2], 1.0, 10);
        let bad = poisoned(&c, 1.0);
        let mut inf = poisoned(&c, 1.0);
        inf.module_params.get_mut(&(0, 0)).unwrap()[0] = f32::INFINITY;
        let (kept, report) = sanitize_updates(&[good, bad, inf], &SanitizePolicy::default());
        assert_eq!(kept, vec![0]);
        assert_eq!(report.rejected_non_finite, 2);
        assert_eq!(report.accepted, 1);
    }

    #[test]
    fn sanitize_rejects_norm_outliers() {
        let c = cloud();
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let mk = |offset| update_for(&c, spec.clone(), vec![vec![1.0; 4]; 2], offset, 10);
        let mut exploded = mk(0.0);
        for p in exploded.module_params.values_mut() {
            for v in p.iter_mut() {
                *v *= 1e6;
            }
        }
        for v in exploded.shared_params.iter_mut() {
            *v *= 1e6;
        }
        let (kept, report) =
            sanitize_updates(&[mk(0.1), exploded, mk(0.2), mk(0.3)], &SanitizePolicy::default());
        assert_eq!(kept, vec![0, 2, 3]);
        assert_eq!(report.rejected_outlier, 1);
        assert_eq!(report.rejected(), 1);
        assert_eq!(report.outlier_check_skipped, 0, "the check ran; nothing was skipped");
    }

    #[test]
    fn sanitize_skips_outlier_check_below_three_updates() {
        // With one honest and one exploded update there is no trustworthy
        // median; both finite updates pass.
        let c = cloud();
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let mut big = update_for(&c, spec.clone(), vec![vec![1.0; 4]; 2], 0.0, 10);
        for v in big.shared_params.iter_mut() {
            *v *= 1e6;
        }
        let small = update_for(&c, spec, vec![vec![1.0; 4]; 2], 0.1, 10);
        let (kept, report) = sanitize_updates(&[small.clone(), big.clone()], &SanitizePolicy::default());
        assert_eq!(kept.len(), 2);
        assert_eq!(report.rejected(), 0);
        assert_eq!(report.outlier_check_skipped, 2, "the bypassed check must be accounted");
        // With the check disabled outright, nothing counts as skipped.
        let permissive = SanitizePolicy { norm_outlier_ratio: f32::INFINITY, ..SanitizePolicy::default() };
        let (_, report) = sanitize_updates(&[small, big], &permissive);
        assert_eq!(report.outlier_check_skipped, 0);
    }

    #[test]
    fn all_rejected_round_leaves_cloud_unchanged_and_finite() {
        let mut c = cloud();
        let before = c.param_vector();
        let bad: Vec<ModuleUpdate> = (0..3).map(|i| poisoned(&c, i as f32)).collect();
        let (kept, report) = sanitize_updates(&bad, &SanitizePolicy::default());
        assert!(kept.is_empty());
        assert_eq!(report.rejected_non_finite, 3);
        let refs: Vec<&ModuleUpdate> = kept.iter().map(|&i| &bad[i]).collect();
        assert_eq!(aggregate_module_wise_refs(&mut c, &refs, true), 0);
        let after = c.param_vector();
        assert_eq!(after, before, "all-rejected round must be a no-op");
        assert!(after.iter().all(|v| v.is_finite()));
    }

    // --- streaming accumulator --------------------------------------------

    /// A mixed cohort: overlapping specs, varying importance/volumes, one
    /// residual (empty) module, one missing entry.
    fn mixed_cohort(c: &ModularModel) -> Vec<ModuleUpdate> {
        let mut ups = Vec::new();
        for k in 0..5usize {
            let spec = if k % 2 == 0 {
                SubModelSpec::new(vec![vec![0, 1], vec![k % 3]])
            } else {
                SubModelSpec::new(vec![vec![k % 3], vec![0, 2]])
            };
            let imp = vec![vec![0.1 + 0.3 * k as f32; 4]; 2];
            let mut u = update_for(c, spec, imp, 0.4 * k as f32 - 0.7, 5 + 7 * k);
            if k == 2 {
                u.module_params.insert((1, 2), Vec::new()); // residual
            }
            if k == 3 {
                u.module_params.remove(&(1, 0)); // torn upload
            }
            ups.push(u);
        }
        ups
    }

    #[test]
    fn streaming_fold_matches_materialized_bitwise() {
        for use_importance in [true, false] {
            let c = cloud();
            let ups = mixed_cohort(&c);
            let mut reference = cloud();
            let touched_ref = aggregate_module_wise_with(&mut reference, &ups, use_importance);

            let mut acc = StreamingAccumulator::new(use_importance);
            for u in &ups {
                acc.fold(u);
            }
            let mut streamed = cloud();
            let touched_stream = acc.apply(&mut streamed);
            assert_eq!(touched_ref, touched_stream);
            assert_eq!(
                reference.param_vector(),
                streamed.param_vector(),
                "streaming fold must be bit-identical (use_importance={use_importance})"
            );
        }
    }

    #[test]
    fn merged_partials_equal_single_fold_within_tolerance() {
        let c = cloud();
        let ups = mixed_cohort(&c);
        let mut whole = StreamingAccumulator::new(true);
        for u in &ups {
            whole.fold(u);
        }
        let mut left = StreamingAccumulator::new(true);
        let mut right = StreamingAccumulator::new(true);
        for u in &ups[..2] {
            left.fold(u);
        }
        for u in &ups[2..] {
            right.fold(u);
        }
        left.merge(&right);
        assert_eq!(left.folded(), whole.folded());
        let mut a = cloud();
        let mut b = cloud();
        whole.apply(&mut a);
        left.apply(&mut b);
        for (x, y) in a.param_vector().iter().zip(b.param_vector()) {
            nebula_tensor::assert_close(*x, y, 1e-5);
        }
    }

    #[test]
    fn empty_accumulator_is_a_noop() {
        let mut c = cloud();
        let before = c.param_vector();
        let acc = StreamingAccumulator::new(true);
        assert!(acc.is_empty());
        assert_eq!(acc.apply(&mut c), 0);
        assert_eq!(c.param_vector(), before);
    }

    #[test]
    fn edge_accumulator_streams_and_rejects_non_finite() {
        let c = cloud();
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let good = update_for(&c, spec.clone(), vec![vec![1.0; 4]; 2], 1.0, 10);
        let bad = poisoned(&c, 1.0);
        let mut edge = EdgeAccumulator::new(RobustAggregator::WeightedMean, SanitizePolicy::default(), true);
        assert!(edge.streaming());
        assert!(edge.ingest(good.clone()));
        assert!(!edge.ingest(bad));
        let partial = edge.finish(0);
        assert_eq!(partial.devices, 2);
        assert_eq!(partial.report.rejected_non_finite, 1);
        assert_eq!(partial.report.accepted, 1);
        // Default policy enables the norm-outlier check, which a
        // streaming fold cannot run — the accept must count as skipped.
        assert_eq!(partial.report.outlier_check_skipped, 1);
        assert_eq!(partial.groups.len(), 1);
        assert!(partial.buffered.is_empty());
        assert!(partial.wire_bytes() > 0);

        // The streamed partial equals aggregating the surviving update.
        let mut reference = cloud();
        aggregate_module_wise_with(&mut reference, &[good], true);
        let mut streamed = cloud();
        partial.groups[0].1.apply(&mut streamed);
        assert_eq!(reference.param_vector(), streamed.param_vector());
    }

    #[test]
    fn edge_accumulator_buffers_for_robust_rules() {
        let c = cloud();
        let ups = attacked_round(&c);
        let mut edge =
            EdgeAccumulator::new(RobustAggregator::CoordinateMedian, SanitizePolicy::default(), true);
        assert!(!edge.streaming());
        for u in &ups {
            assert!(edge.ingest(u.clone()));
        }
        let partial = edge.finish(0);
        assert_eq!(partial.buffered.len(), ups.len());
        assert!(partial.groups.is_empty(), "robust mode must not fold");
    }

    #[test]
    fn sealed_groups_preserve_cell_order() {
        let c = cloud();
        let ups = mixed_cohort(&c);
        let mut edge = EdgeAccumulator::new(RobustAggregator::WeightedMean, SanitizePolicy::default(), true);
        for (k, u) in ups.iter().enumerate() {
            edge.ingest(u.clone());
            edge.seal(k as u64); // one group per update
        }
        let partial = edge.finish(99);
        let groups: Vec<u64> = partial.groups.iter().map(|(g, _)| *g).collect();
        assert_eq!(groups, vec![0, 1, 2, 3, 4], "seal order must be the ingest order");
    }

    #[test]
    fn staleness_discount_halves_influence() {
        let c = cloud();
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        let mut u = update_for(&c, spec, vec![vec![2.0; 4]; 2], 1.0, 100);
        discount_staleness(&mut u, 0.5);
        assert!(u.importance.iter().all(|row| row.iter().all(|&w| (w - 1.0).abs() < 1e-6)));
        assert_eq!(u.data_volume, 50);
        // Volume never reaches zero: a stale update still counts.
        let mut tiny = u.clone();
        tiny.data_volume = 1;
        discount_staleness(&mut tiny, 0.1);
        assert_eq!(tiny.data_volume, 1);
    }

    use nebula_nn::Layer;
}
