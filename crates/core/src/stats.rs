//! Shared per-round accounting: communication, fault outcomes, and the
//! consolidated [`RoundStats`] every driver and sink consumes.
//!
//! These types used to live in `nebula-sim` (`network::CommTracker`,
//! `faults::RoundReport`) and were duplicated field-by-field across
//! `StepReport` / `RoundOutcome` / bench bins. They are hoisted here —
//! field names unchanged, so serialized `RunState` / `RoundRecord`
//! payloads from earlier versions still decode — and re-exported from the
//! sim crate for compatibility.

use serde::{Deserialize, Serialize};

/// Byte-level communication tracker for one strategy run.
///
/// All counters use saturating arithmetic: a long-running (or
/// fault-amplified) simulation clamps at `u64::MAX` instead of
/// panicking in debug builds or silently wrapping in release.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommTracker {
    /// Cloud → edge bytes.
    pub down_bytes: u64,
    /// Edge → cloud bytes.
    pub up_bytes: u64,
    /// Number of cloud→edge payloads.
    pub downloads: u64,
    /// Number of edge→cloud updates.
    pub uploads: u64,
    /// Completed communication rounds.
    pub rounds: u64,
    /// Extra transfer attempts over flaky links.
    pub retries: u64,
    /// Bytes re-sent by those retries (wasted traffic).
    pub retry_bytes: u64,
}

impl CommTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a cloud → edge payload.
    pub fn record_download(&mut self, bytes: u64) {
        self.down_bytes = self.down_bytes.saturating_add(bytes);
        self.downloads = self.downloads.saturating_add(1);
    }

    /// Records an edge → cloud update.
    pub fn record_upload(&mut self, bytes: u64) {
        self.up_bytes = self.up_bytes.saturating_add(bytes);
        self.uploads = self.uploads.saturating_add(1);
    }

    /// Records one failed transfer attempt that re-sent `bytes`.
    pub fn record_retry(&mut self, bytes: u64) {
        self.retry_bytes = self.retry_bytes.saturating_add(bytes);
        self.retries = self.retries.saturating_add(1);
    }

    /// Marks the end of a communication round.
    pub fn end_round(&mut self) {
        self.rounds = self.rounds.saturating_add(1);
    }

    /// Total bytes on the wire, including retry re-sends.
    pub fn total_bytes(&self) -> u64 {
        self.down_bytes.saturating_add(self.up_bytes).saturating_add(self.retry_bytes)
    }

    /// Total in mebibytes (Fig. 7's unit for HAR) .
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Total in gibibytes (Fig. 7's unit for the CNN tasks).
    pub fn total_gib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Merges another tracker into this one.
    pub fn merge(&mut self, other: &CommTracker) {
        self.down_bytes = self.down_bytes.saturating_add(other.down_bytes);
        self.up_bytes = self.up_bytes.saturating_add(other.up_bytes);
        self.downloads = self.downloads.saturating_add(other.downloads);
        self.uploads = self.uploads.saturating_add(other.uploads);
        self.rounds = self.rounds.saturating_add(other.rounds);
        self.retries = self.retries.saturating_add(other.retries);
        self.retry_bytes = self.retry_bytes.saturating_add(other.retry_bytes);
    }
}

/// Per-round robustness accounting, summed over a step/run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Devices the server sampled.
    pub sampled: u64,
    /// Updates that arrived (before the sanitize gate).
    pub participated: u64,
    /// Never started (dropout).
    pub dropped: u64,
    /// Trained but crashed before uploading.
    pub crashed: u64,
    /// Dropped by the round deadline.
    pub deadline_dropped: u64,
    /// Dropped after exhausting link retries.
    pub link_dropped: u64,
    /// Updates rejected by the sanitize gate.
    pub rejected: u64,
    /// Extra transfer attempts (retries) over flaky links.
    pub retried: u64,
    /// Late arrivals accepted with discounted importance.
    pub stale: u64,
    /// Aggregations undone by the checkpoint guard.
    pub rolled_back: u64,
    /// Frames rejected by the wire CRC check (transit corruption).
    pub corrupt_frames: u64,
}

impl RoundReport {
    /// Sums another report into this one (saturating).
    pub fn merge(&mut self, other: &RoundReport) {
        self.sampled = self.sampled.saturating_add(other.sampled);
        self.participated = self.participated.saturating_add(other.participated);
        self.dropped = self.dropped.saturating_add(other.dropped);
        self.crashed = self.crashed.saturating_add(other.crashed);
        self.deadline_dropped = self.deadline_dropped.saturating_add(other.deadline_dropped);
        self.link_dropped = self.link_dropped.saturating_add(other.link_dropped);
        self.rejected = self.rejected.saturating_add(other.rejected);
        self.retried = self.retried.saturating_add(other.retried);
        self.stale = self.stale.saturating_add(other.stale);
        self.rolled_back = self.rolled_back.saturating_add(other.rolled_back);
        self.corrupt_frames = self.corrupt_frames.saturating_add(other.corrupt_frames);
    }

    /// All devices that missed the round, whatever the cause.
    pub fn lost(&self) -> u64 {
        self.dropped + self.crashed + self.deadline_dropped + self.link_dropped
    }
}

/// Everything one adaptation step / collaborative round cost — the single
/// shape bench bins, telemetry sinks and the [`RoundStats::merge`]-based
/// accumulators consume. (Formerly duplicated as `StepReport` in the sim
/// crate; that name survives as a deprecated alias.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Communication during the step (including retry re-sends).
    pub comm: CommTracker,
    /// Mean wall-clock of the on-device part per tracked device, ms.
    pub adapt_time_ms: f64,
    /// Robustness accounting summed over the step's rounds.
    pub faults: RoundReport,
}

impl RoundStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds another step's stats into this accumulator: counters merge,
    /// adaptation times add (callers average where a mean is reported).
    pub fn merge(&mut self, other: &RoundStats) {
        self.comm.merge(&other.comm);
        self.faults.merge(&other.faults);
        self.adapt_time_ms += other.adapt_time_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut t = CommTracker::new();
        t.record_download(100);
        t.record_upload(40);
        t.record_upload(60);
        t.end_round();
        assert_eq!(t.total_bytes(), 200);
        assert_eq!(t.downloads, 1);
        assert_eq!(t.uploads, 2);
        assert_eq!(t.rounds, 1);
    }

    #[test]
    fn unit_conversions() {
        let t = CommTracker { down_bytes: 1024 * 1024, up_bytes: 0, ..Default::default() };
        assert!((t.total_mib() - 1.0).abs() < 1e-9);
        assert!((t.total_gib() - 1.0 / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CommTracker {
            down_bytes: 1,
            up_bytes: 2,
            downloads: 1,
            uploads: 1,
            rounds: 1,
            ..Default::default()
        };
        let b = CommTracker {
            down_bytes: 10,
            up_bytes: 20,
            downloads: 2,
            uploads: 3,
            rounds: 4,
            retries: 2,
            retry_bytes: 7,
        };
        a.merge(&b);
        assert_eq!(a.down_bytes, 11);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.retries, 2);
        assert_eq!(a.retry_bytes, 7);
    }

    #[test]
    fn retries_count_as_wasted_traffic() {
        let mut t = CommTracker::new();
        t.record_download(100);
        t.record_retry(100);
        t.record_retry(100);
        assert_eq!(t.retries, 2);
        assert_eq!(t.retry_bytes, 200);
        assert_eq!(t.total_bytes(), 300);
        // Retries are not successful exchanges.
        assert_eq!(t.downloads, 1);
        assert_eq!(t.uploads, 0);
    }

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let mut t = CommTracker { down_bytes: u64::MAX - 1, downloads: u64::MAX, ..Default::default() };
        t.record_download(1000);
        assert_eq!(t.down_bytes, u64::MAX);
        assert_eq!(t.downloads, u64::MAX);
        let big = CommTracker { up_bytes: u64::MAX, retry_bytes: u64::MAX, ..Default::default() };
        t.merge(&big);
        assert_eq!(t.up_bytes, u64::MAX);
        assert_eq!(t.total_bytes(), u64::MAX);
        t.end_round();
        t.record_retry(u64::MAX);
        t.record_upload(u64::MAX);
        assert_eq!(t.retry_bytes, u64::MAX);
        assert_eq!(t.up_bytes, u64::MAX);
    }

    #[test]
    fn report_merge_and_lost() {
        let mut a =
            RoundReport { sampled: 10, participated: 7, dropped: 2, crashed: 1, ..Default::default() };
        let b =
            RoundReport { sampled: 10, participated: 9, link_dropped: 1, retried: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.sampled, 20);
        assert_eq!(a.participated, 16);
        assert_eq!(a.retried, 3);
        assert_eq!(a.lost(), 4);
    }

    #[test]
    fn round_stats_merge_folds_all_counters() {
        let mut acc = RoundStats::new();
        let step = RoundStats {
            comm: CommTracker { down_bytes: 100, downloads: 1, ..Default::default() },
            adapt_time_ms: 2.5,
            faults: RoundReport { sampled: 4, dropped: 1, ..Default::default() },
        };
        acc.merge(&step);
        acc.merge(&step);
        assert_eq!(acc.comm.down_bytes, 200);
        assert_eq!(acc.faults.sampled, 8);
        assert!((acc.adapt_time_ms - 5.0).abs() < 1e-12);
    }

    #[test]
    fn round_stats_serde_round_trip() {
        let s = RoundStats {
            comm: CommTracker { up_bytes: 7, uploads: 1, ..Default::default() },
            adapt_time_ms: 1.25,
            faults: RoundReport { sampled: 3, corrupt_frames: 1, ..Default::default() },
        };
        let back: RoundStats = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
