//! The edge side of Nebula: a device running a derived sub-model.
//!
//! The client instantiates the cloud architecture, loads the payload's
//! parameters, and masks routing to the sub-model's modules. Locally it
//! (i) serves inference, (ii) fine-tunes on fresh data, (iii) scores
//! module importance with the decoupled selector, and (iv) emits a
//! [`EdgeUpdate`] carrying only the sub-model's parameters back to the
//! cloud.

use crate::aggregate::{EdgeAccumulator, EdgePartial, ModuleUpdate, RobustAggregator, SanitizePolicy};
use crate::cloud::{NebulaCloud, SubModelPayload};
use crate::derive::{derive_submodel, DeriveOutcome};
use crate::profile::ResourceProfile;
use nebula_data::{Dataset, TrainConfig};
use nebula_modular::cost::CostModel;
use nebula_modular::{ModularConfig, ModularModel, SubModelSpec};
use nebula_nn::{Layer, Sgd};
use nebula_tensor::NebulaRng;
use std::collections::BTreeMap;

/// Alias clarifying direction: an update travelling edge → cloud.
pub type EdgeUpdate = ModuleUpdate;

/// Bytes on the wire for an edge → cloud update (f32 parameters).
pub fn update_bytes(update: &EdgeUpdate) -> u64 {
    let module: usize = update.module_params.values().map(Vec::len).sum();
    ((module + update.shared_params.len()) * 4) as u64
}

/// An edge device's local runtime.
///
/// The client distinguishes the *installed* sub-model (every module the
/// last payload shipped — what sits on the device's disk) from the
/// *active* sub-model (the modules currently routed to — what occupies
/// RAM/compute). On-device module scheduling moves the active set within
/// the installed set without any cloud round-trip (§5.1: "devices can
/// adjust local modules to flexibly scale their local model sizes for
/// resource fluctuations").
pub struct EdgeClient {
    model: ModularModel,
    /// Modules currently active (⊆ installed).
    spec: SubModelSpec,
    /// Modules shipped by the last payload.
    installed: SubModelSpec,
}

impl EdgeClient {
    /// Instantiates a client from the cloud architecture and a payload.
    pub fn from_payload(cfg: ModularConfig, payload: &SubModelPayload) -> Self {
        let mut model = ModularModel::new(cfg, 0);
        for (&(l, i), params) in &payload.module_params {
            model.load_module_param_vector(l, i, params);
        }
        model.load_shared_param_vector(&payload.shared_params);
        model.set_submodel(Some(&payload.spec));
        Self { model, spec: payload.spec.clone(), installed: payload.spec.clone() }
    }

    /// The sub-model this client currently runs (the active set).
    pub fn spec(&self) -> &SubModelSpec {
        &self.spec
    }

    /// Every module the device holds locally (the installed set).
    pub fn installed_spec(&self) -> &SubModelSpec {
        &self.installed
    }

    /// Swaps in a new sub-model payload (e.g. after querying the cloud in
    /// a new environment) without rebuilding the client.
    pub fn install(&mut self, payload: &SubModelPayload) {
        for (&(l, i), params) in &payload.module_params {
            self.model.load_module_param_vector(l, i, params);
        }
        self.model.load_shared_param_vector(&payload.shared_params);
        self.model.set_submodel(Some(&payload.spec));
        self.spec = payload.spec.clone();
        self.installed = payload.spec.clone();
    }

    /// On-device module scheduling: activates the `keep` most important
    /// installed modules per layer (importance scored on `local_data`
    /// with the decoupled selector). Shrinking and later re-growing needs
    /// no cloud round-trip because scheduling always draws from the
    /// installed set.
    pub fn schedule_modules(&mut self, keep: usize, local_data: &Dataset) {
        assert!(keep >= 1, "must keep at least one module per layer");
        let importance = self.model.importance(local_data.features());
        let new_spec = SubModelSpec::new(
            self.installed
                .layers()
                .iter()
                .enumerate()
                .map(|(l, mods)| {
                    let mut sorted: Vec<usize> = mods.to_vec();
                    sorted.sort_by(|&a, &b| {
                        importance[l][b].partial_cmp(&importance[l][a]).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    sorted.truncate(keep.min(sorted.len()));
                    sorted
                })
                .collect(),
        );
        self.model.set_submodel(Some(&new_spec));
        self.spec = new_spec;
    }

    /// Back-compat alias for [`EdgeClient::schedule_modules`].
    pub fn shrink_to(&mut self, keep: usize, local_data: &Dataset) {
        self.schedule_modules(keep, local_data);
    }

    /// Re-activates the full installed sub-model (resources recovered).
    pub fn restore_installed(&mut self) {
        self.model.set_submodel(Some(&self.installed.clone()));
        self.spec = self.installed.clone();
    }

    /// Local fine-tuning on fresh data; returns the final mean loss.
    pub fn adapt(
        &mut self,
        data: &Dataset,
        epochs: usize,
        batch: usize,
        lr: f32,
        rng: &mut NebulaRng,
    ) -> f32 {
        let mut opt = Sgd::with_momentum(lr, 0.9);
        nebula_data::train_epochs(
            &mut self.model,
            &mut opt,
            data,
            TrainConfig { epochs, batch_size: batch, clip_norm: Some(5.0) },
            rng,
        )
    }

    /// Top-1 accuracy on a local test set.
    pub fn accuracy(&mut self, test: &Dataset) -> f32 {
        nebula_data::evaluate_accuracy(&mut self.model, test, 64)
    }

    /// Device-local module importance over `data` (decoupled selector).
    pub fn importance(&mut self, data: &Dataset) -> Vec<Vec<f32>> {
        self.model.importance(data.features())
    }

    /// Builds the edge → cloud update from the current parameters.
    pub fn make_update(&mut self, local_data: &Dataset) -> EdgeUpdate {
        let mut module_params = BTreeMap::new();
        for (l, layer) in self.spec.layers().iter().enumerate() {
            for &i in layer {
                module_params.insert((l, i), self.model.module_param_vector(l, i));
            }
        }
        EdgeUpdate {
            spec: self.spec.clone(),
            module_params,
            shared_params: self.model.shared_param_vector(),
            importance: self.model.importance(local_data.features()),
            data_volume: local_data.len(),
        }
    }

    /// Read access to the underlying model (tests, diagnostics).
    pub fn model_mut(&mut self) -> &mut ModularModel {
        &mut self.model
    }

    /// Captures the client's full mutable state (parameters + active and
    /// installed sub-model specs) for a run snapshot.
    pub fn export_state(&self) -> EdgeClientState {
        EdgeClientState {
            params: self.model.param_vector(),
            active: self.spec.layers().to_vec(),
            installed: self.installed.layers().to_vec(),
        }
    }

    /// Rebuilds a client from state captured by [`Self::export_state`].
    /// Validates the parameter count and spec structure against `cfg`
    /// before constructing anything, so corrupted or mismatched state is
    /// an error rather than a panic.
    pub fn from_state(cfg: ModularConfig, state: &EdgeClientState) -> Result<Self, String> {
        let check_spec = |name: &str, layers: &[Vec<usize>]| -> Result<(), String> {
            if layers.len() != cfg.num_layers {
                return Err(format!("{name} spec has {} layers, model has {}", layers.len(), cfg.num_layers));
            }
            for (l, mods) in layers.iter().enumerate() {
                if mods.is_empty() {
                    return Err(format!("{name} spec layer {l} is empty"));
                }
                if let Some(&bad) = mods.iter().find(|&&m| m >= cfg.modules_per_layer) {
                    return Err(format!(
                        "{name} spec layer {l} references module {bad} of {}",
                        cfg.modules_per_layer
                    ));
                }
            }
            Ok(())
        };
        check_spec("active", &state.active)?;
        check_spec("installed", &state.installed)?;
        let mut model = ModularModel::new(cfg, 0);
        if state.params.len() != model.param_count() {
            return Err(format!(
                "client state has {} params, model wants {}",
                state.params.len(),
                model.param_count()
            ));
        }
        if let Some((i, &v)) = state.params.iter().enumerate().find(|(_, p)| !p.is_finite()) {
            return Err(format!("client state param {i} is non-finite ({v})"));
        }
        model.load_param_vector(&state.params);
        let spec = SubModelSpec::new(state.active.clone());
        let installed = SubModelSpec::new(state.installed.clone());
        model.set_submodel(Some(&spec));
        Ok(Self { model, spec, installed })
    }
}

/// The middle tier of hierarchical cloud→edge→device aggregation: an
/// edge server holding a per-round replica of the cloud model.
///
/// Each round the server refreshes its replica from the cloud (one
/// model-sized download per edge), then handles its shard of devices
/// locally — importance scoring, sub-model derivation, payload dispatch,
/// and update ingestion into an [`EdgeAccumulator`] — and finally ships
/// one [`EdgePartial`] upstream. The cloud thus touches `S` partials per
/// round instead of every sampled device's update: per-round cloud-ingress
/// cost is O(sampled/shard).
///
/// Derivation on the replica is exact: module importance uses the
/// noise-free deterministic gate, so every edge's replica scores
/// identically to the cloud model it was refreshed from.
pub struct EdgeServer {
    model: ModularModel,
    cost: CostModel,
    acc: EdgeAccumulator,
    download_bytes: u64,
    ingest_bytes: u64,
}

impl EdgeServer {
    /// Builds an edge server with a fresh replica of `cloud`'s model.
    /// Construction *is* the per-round refresh; the returned server
    /// already accounts the replica download.
    pub fn new(cloud: &NebulaCloud, aggregator: RobustAggregator, policy: SanitizePolicy) -> Self {
        let model = cloud.model().deep_clone();
        let cost = CostModel::new(model.config().clone());
        let download_bytes = (model.param_count() * 4) as u64;
        Self {
            model,
            cost,
            acc: EdgeAccumulator::new(aggregator, policy, true),
            download_bytes,
            ingest_bytes: 0,
        }
    }

    /// Derives a personalized sub-model for one of this edge's devices
    /// from its local data sample and resource profile (replica-local;
    /// no cloud round-trip).
    pub fn derive_for_data(
        &mut self,
        local_data: &Dataset,
        profile: &ResourceProfile,
        module_cap: Option<usize>,
    ) -> DeriveOutcome {
        assert!(!local_data.is_empty(), "cannot derive from empty local data");
        let importance = self.model.importance(local_data.features());
        derive_submodel(&self.cost, &importance, profile, module_cap)
    }

    /// Derives directly from an importance matrix (devices that score
    /// importance locally, or synthetic-load benchmarking).
    pub fn derive_for_importance(
        &self,
        importance: &[Vec<f32>],
        profile: &ResourceProfile,
        module_cap: Option<usize>,
    ) -> DeriveOutcome {
        derive_submodel(&self.cost, importance, profile, module_cap)
    }

    /// Packages a sub-model for a device from the replica's parameters.
    pub fn dispatch(&self, spec: &SubModelSpec) -> SubModelPayload {
        spec.validate(self.model.num_layers(), self.model.config().modules_per_layer);
        let mut module_params = BTreeMap::new();
        for (l, layer) in spec.layers().iter().enumerate() {
            for &i in layer {
                module_params.insert((l, i), self.model.module_param_vector(l, i));
            }
        }
        SubModelPayload { spec: spec.clone(), module_params, shared_params: self.model.shared_param_vector() }
    }

    /// The replica's cost model (device resource profiles).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Ingests one device update (see [`EdgeAccumulator::ingest`]).
    /// Returns false if the edge rejected it at fold time.
    pub fn ingest(&mut self, update: EdgeUpdate) -> bool {
        self.ingest_bytes += update_bytes(&update);
        self.acc.ingest(update)
    }

    /// Seals the open accumulator as canonical group `group` (cell-level
    /// fold plan; see [`EdgeAccumulator::seal`]).
    pub fn seal(&mut self, group: u64) {
        self.acc.seal(group);
    }

    /// Bytes downloaded from the cloud for the replica refresh.
    pub fn download_bytes(&self) -> u64 {
        self.download_bytes
    }

    /// Bytes devices uploaded to this edge so far this round.
    pub fn ingest_bytes(&self) -> u64 {
        self.ingest_bytes
    }

    /// Finishes the round, emitting the partial for the cloud. Remaining
    /// folded state is sealed under `group`.
    pub fn finish(self, group: u64) -> EdgePartial {
        self.acc.finish(group)
    }
}

/// Serializable snapshot of an [`EdgeClient`]'s mutable state.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeClientState {
    /// Flat parameters of the full local model instance.
    pub params: Vec<f32>,
    /// Active sub-model (module indices per layer).
    pub active: Vec<Vec<usize>>,
    /// Installed sub-model (what the last payload shipped).
    pub installed: Vec<Vec<usize>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::{NebulaCloud, NebulaParams};
    use nebula_data::{SynthSpec, Synthesizer};

    fn setup() -> (NebulaCloud, Synthesizer, NebulaRng) {
        let mut cfg = nebula_modular::ModularConfig::toy(16, 4);
        cfg.gate_noise_std = 0.2;
        let cloud = NebulaCloud::new(cfg, NebulaParams::default(), 11);
        (cloud, Synthesizer::new(SynthSpec::toy(), 1), NebulaRng::seed(5))
    }

    #[test]
    fn client_reproduces_cloud_outputs_for_same_submodel() {
        let (mut cloud, synth, mut rng) = setup();
        let data = synth.sample(40, 0, &mut rng);
        let spec = SubModelSpec::full(2, 4);
        let payload = cloud.dispatch(&spec);
        let mut client = EdgeClient::from_payload(cloud.model().config().clone(), &payload);

        let a = client.accuracy(&data);
        cloud.model_mut().set_submodel(Some(&spec));
        let b = nebula_data::evaluate_accuracy(cloud.model_mut(), &data, 64);
        assert_eq!(a, b, "client and cloud disagree on identical params");
    }

    #[test]
    fn adaptation_improves_local_accuracy() {
        let (mut cloud, synth, mut rng) = setup();
        let proxy = synth.sample(300, 0, &mut rng);
        cloud.pretrain(&proxy, &mut rng);

        let local = synth.sample_classes(150, &[0, 1], 1, &mut rng);
        let test = synth.sample_classes(100, &[0, 1], 1, &mut rng);
        let out = cloud.derive_for_data(&local, &crate::profile::ResourceProfile::unconstrained(), Some(3));
        let payload = cloud.dispatch(&out.spec);
        let mut client = EdgeClient::from_payload(cloud.model().config().clone(), &payload);

        let before = client.accuracy(&test);
        client.adapt(&local, 10, 16, 0.03, &mut rng);
        let after = client.accuracy(&test);
        // The pre-trained model may already be near-perfect on an easy
        // 2-class sub-task; require adaptation not to destroy it.
        assert!(after >= before - 0.05, "local adaptation hurt: {before} -> {after}");
        assert!(after > 0.8, "adapted accuracy only {after}");
    }

    #[test]
    fn update_carries_only_submodel_modules() {
        let (cloud, synth, mut rng) = setup();
        let spec = SubModelSpec::new(vec![vec![1], vec![0, 2]]);
        let payload = cloud.dispatch(&spec);
        let mut client = EdgeClient::from_payload(cloud.model().config().clone(), &payload);
        let local = synth.sample(30, 0, &mut rng);
        let update = client.make_update(&local);
        assert_eq!(update.module_params.len(), 3);
        assert!(update.module_params.contains_key(&(0, 1)));
        assert!(!update.module_params.contains_key(&(0, 0)));
        assert_eq!(update.data_volume, 30);
        assert!(update_bytes(&update) > 0);
    }

    #[test]
    fn update_bytes_smaller_than_full_model() {
        let (cloud, synth, mut rng) = setup();
        let small = cloud.dispatch(&SubModelSpec::new(vec![vec![0], vec![0]]));
        let full = cloud.dispatch(&SubModelSpec::full(2, 4));
        let mut c_small = EdgeClient::from_payload(cloud.model().config().clone(), &small);
        let mut c_full = EdgeClient::from_payload(cloud.model().config().clone(), &full);
        let local = synth.sample(20, 0, &mut rng);
        assert!(update_bytes(&c_small.make_update(&local)) < update_bytes(&c_full.make_update(&local)));
    }

    #[test]
    fn shrink_to_reduces_active_modules() {
        let (cloud, synth, mut rng) = setup();
        let payload = cloud.dispatch(&SubModelSpec::full(2, 4));
        let mut client = EdgeClient::from_payload(cloud.model().config().clone(), &payload);
        let local = synth.sample(30, 0, &mut rng);
        client.shrink_to(2, &local);
        for l in 0..2 {
            assert_eq!(client.spec().layer(l).len(), 2);
        }
        // Still serves inference.
        assert!(client.accuracy(&local) >= 0.0);
    }

    #[test]
    fn schedule_then_restore_round_trips_without_cloud() {
        let (cloud, synth, mut rng) = setup();
        let installed = SubModelSpec::new(vec![vec![0, 1, 2], vec![0, 1, 3]]);
        let payload = cloud.dispatch(&installed);
        let mut client = EdgeClient::from_payload(cloud.model().config().clone(), &payload);
        let local = synth.sample(30, 0, &mut rng);

        // Contention spike: shrink; recovery: grow back — twice, to prove
        // scheduling always draws from the installed set, not the current
        // active one.
        client.schedule_modules(1, &local);
        assert!(client.spec().layers().iter().all(|l| l.len() == 1));
        client.schedule_modules(2, &local);
        assert!(client.spec().layers().iter().all(|l| l.len() == 2));
        client.restore_installed();
        assert_eq!(client.spec(), &installed);
        assert_eq!(client.installed_spec(), &installed);
        // Scheduling never activates modules outside the installed set.
        client.schedule_modules(3, &local);
        for (l, mods) in client.spec().layers().iter().enumerate() {
            for &m in mods {
                assert!(installed.contains(l, m));
            }
        }
    }

    #[test]
    fn residual_module_round_trips_through_payload_and_update() {
        // Module index 3 of the toy config is the parameter-free bypass:
        // dispatch ships it as an empty vector and aggregation must not
        // choke on it.
        let (mut cloud, synth, mut rng) = setup();
        let spec = SubModelSpec::new(vec![vec![0, 3], vec![3]]);
        let payload = cloud.dispatch(&spec);
        assert!(payload.module_params[&(0, 3)].is_empty());
        assert!(payload.module_params[&(1, 3)].is_empty());

        let mut client = EdgeClient::from_payload(cloud.model().config().clone(), &payload);
        let local = synth.sample(40, 0, &mut rng);
        client.adapt(&local, 2, 16, 0.05, &mut rng);
        let update = client.make_update(&local);
        let touched = cloud.aggregate(&[update]);
        // Only module (0,0) and the shared parts carry parameters.
        assert_eq!(touched, 1);
    }

    #[test]
    fn install_swaps_submodel() {
        let (cloud, _, _) = setup();
        let p1 = cloud.dispatch(&SubModelSpec::new(vec![vec![0], vec![0]]));
        let p2 = cloud.dispatch(&SubModelSpec::new(vec![vec![1, 2], vec![3]]));
        let mut client = EdgeClient::from_payload(cloud.model().config().clone(), &p1);
        client.install(&p2);
        assert_eq!(client.spec(), &p2.spec);
    }
}
