//! Shared retry / backoff / deadline arithmetic for round orchestration.
//!
//! Every collaborative strategy used to duplicate the same three blocks:
//! exponential backoff accumulation for flaky-link re-sends, the
//! retries-exhausted drop, and the one-clean-resend path for
//! CRC-rejected transit-corrupt frames. The socket serving plane needs
//! the identical arithmetic for its send/receive retries, so the logic
//! lives here once and both the in-process rounds and the coordinator's
//! worker scheduling consume it.
//!
//! The helpers are *pure accounting*: they decide how many re-sends are
//! billed and how much simulated backoff wait accrues, in exactly the
//! order the strategies did it, so refactored call sites stay
//! bit-identical (the backoff sum is accumulated lowest attempt first —
//! f64 addition order matters).

/// Retry budget and backoff base shared by round paths and socket
/// transports. A strategy builds one from the world's `RoundPolicy`; the
/// serving plane from its own configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Re-sends before the sender gives the destination up.
    pub max_retries: u32,
    /// Base of the exponential backoff, milliseconds.
    pub backoff_base_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Mirrors the simulator's default `RoundPolicy`.
        Self { max_retries: 2, backoff_base_ms: 50.0 }
    }
}

/// Exponential backoff before retry `attempt` (0-based): `base · 2^attempt`.
/// The exponent saturates at 16 so pathological attempt counts cannot
/// overflow the double.
pub fn backoff_ms(base_ms: f64, attempt: u32) -> f64 {
    base_ms * 2f64.powi(attempt.min(16) as i32)
}

/// What one device's upload costs under a retry policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UploadPlan {
    /// Whether the transfer lands at all. False means the retry budget
    /// was exhausted: the device never joins the round.
    pub delivered: bool,
    /// Billed re-sends (each one frame's worth of retry bytes).
    pub resends: u32,
    /// Total backoff wait accrued across the re-sends, ms. Zero when the
    /// transfer is abandoned (the sender stops waiting once the budget
    /// is spent).
    pub backoff_ms: f64,
}

/// Plans a transfer that needs `upload_attempts` tries on a link that is
/// flaky when `flaky_link` is set.
///
/// Reproduces the strategies' shared block exactly: a flaky link whose
/// attempt count exceeds `1 + max_retries` is abandoned after billing
/// `max_retries` re-sends and no backoff; otherwise every extra attempt
/// is billed one re-send plus `backoff_ms(base, attempt)` wait, summed
/// lowest attempt first.
pub fn plan_upload(upload_attempts: u32, flaky_link: bool, policy: RetryPolicy) -> UploadPlan {
    let extra = upload_attempts.saturating_sub(1);
    if flaky_link && extra > policy.max_retries {
        return UploadPlan { delivered: false, resends: policy.max_retries, backoff_ms: 0.0 };
    }
    let mut backoff = 0.0;
    for attempt in 0..extra {
        backoff += backoff_ms(policy.backoff_base_ms, attempt);
    }
    UploadPlan { delivered: true, resends: extra, backoff_ms: backoff }
}

/// Plans the clean resend after a CRC/MAC-rejected transit-corrupt
/// frame. `prior_resends` is how many re-sends the transfer already
/// billed (the resend's backoff slot continues the same exponential
/// schedule). Returns the added backoff, or `None` when the policy has
/// no retry budget — the device is lost.
pub fn plan_corrupt_resend(prior_resends: u32, policy: RetryPolicy) -> Option<f64> {
    (policy.max_retries > 0).then(|| backoff_ms(policy.backoff_base_ms, prior_resends))
}

/// Deadline for a round: `deadline_factor` × the median predicted
/// participant time. `None` when no factor is set or nobody started the
/// round (the seed behaviour: wait forever).
pub fn round_deadline_ms(deadline_factor: Option<f64>, times: &[f64]) -> Option<f64> {
    let f = deadline_factor?;
    if times.is_empty() {
        return None;
    }
    let mut sorted = times.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite participant times"));
    Some(f * sorted[sorted.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: RetryPolicy = RetryPolicy { max_retries: 2, backoff_base_ms: 50.0 };

    #[test]
    fn backoff_doubles_and_saturates() {
        assert_eq!(backoff_ms(50.0, 0), 50.0);
        assert_eq!(backoff_ms(50.0, 1), 100.0);
        assert_eq!(backoff_ms(50.0, 4), 800.0);
        // Saturation: attempts past 16 stop growing.
        assert_eq!(backoff_ms(1.0, 16), backoff_ms(1.0, 40));
    }

    #[test]
    fn clean_link_plans_no_retries() {
        let p = plan_upload(1, false, POLICY);
        assert_eq!(p, UploadPlan { delivered: true, resends: 0, backoff_ms: 0.0 });
    }

    #[test]
    fn flaky_link_within_budget_accrues_exponential_backoff() {
        let p = plan_upload(3, true, POLICY);
        assert!(p.delivered);
        assert_eq!(p.resends, 2);
        // attempts 0 and 1: 50 + 100.
        assert_eq!(p.backoff_ms, 150.0);
    }

    #[test]
    fn flaky_link_past_budget_is_abandoned() {
        let p = plan_upload(4, true, POLICY);
        assert_eq!(p, UploadPlan { delivered: false, resends: 2, backoff_ms: 0.0 });
    }

    #[test]
    fn non_flaky_attempts_never_trigger_abandonment() {
        // The exhaustion drop is a flaky-link behaviour; a non-flaky
        // transfer bills every extra attempt (legacy semantics preserved
        // bit-for-bit).
        let p = plan_upload(5, false, POLICY);
        assert!(p.delivered);
        assert_eq!(p.resends, 4);
        assert_eq!(p.backoff_ms, 50.0 + 100.0 + 200.0 + 400.0);
    }

    #[test]
    fn corrupt_resend_continues_the_backoff_schedule() {
        assert_eq!(plan_corrupt_resend(0, POLICY), Some(50.0));
        assert_eq!(plan_corrupt_resend(2, POLICY), Some(200.0));
        assert_eq!(plan_corrupt_resend(0, RetryPolicy { max_retries: 0, backoff_base_ms: 50.0 }), None);
    }

    #[test]
    fn deadline_is_factor_times_median() {
        assert_eq!(round_deadline_ms(None, &[1.0, 2.0]), None);
        assert_eq!(round_deadline_ms(Some(2.0), &[]), None);
        assert_eq!(round_deadline_ms(Some(2.0), &[3.0]), Some(6.0));
        // Median of an even count picks the upper middle (index len/2).
        assert_eq!(round_deadline_ms(Some(1.5), &[4.0, 1.0, 3.0, 2.0]), Some(4.5));
    }
}
