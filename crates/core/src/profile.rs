//! Device resource profiles (§5.1's "local resource profiler" output).
//!
//! ## Planning vs measured communication
//!
//! `comm_bytes` here is a **planning** input: the budget `derive` charges
//! candidate modules against, using [`nebula_wire::CodecKind::planned_bytes`]
//! (an upper bound on the encoded record payload — exactly `4 × params`
//! for `Raw`, `params + 4` for `QuantInt8`). The bytes the simulator
//! *accounts* (`CommTracker::record_download` / `record_upload`) are the
//! **measured** lengths of the encoded `nebula-wire` frames actually
//! exchanged, which include framing overhead and, for `DeltaFp32`, are
//! usually far below plan. Planning stays analytic so derivation is
//! deterministic and cheap; accounting is measured so reported comm cost
//! is real.

use serde::{Deserialize, Serialize};

/// Resource constraints captured by a device's local profiler — the `L_j`
/// of Eq. 2. All three dimensions bound the *sub-model*, so the shared
/// parts (stem/head/selector) are charged against them before the module
/// knapsack runs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceProfile {
    /// Available memory for model training, in bytes.
    pub mem_bytes: u64,
    /// Compute budget per sample, in forward multiply-accumulates
    /// (a device-normalised latency budget).
    pub flops: u64,
    /// Communication budget per exchange, in bytes.
    pub comm_bytes: u64,
}

impl ResourceProfile {
    /// A profile large enough to never constrain derivation (used to get
    /// the accuracy-optimal sub-model).
    pub fn unconstrained() -> Self {
        Self { mem_bytes: u64::MAX / 4, flops: u64::MAX / 4, comm_bytes: u64::MAX / 4 }
    }

    /// Scales every dimension by `f` (resource-fluctuation modelling).
    pub fn scaled(self, f: f64) -> Self {
        assert!(f >= 0.0, "negative scale");
        let s = |v: u64| ((v as f64) * f) as u64;
        Self { mem_bytes: s(self.mem_bytes), flops: s(self.flops), comm_bytes: s(self.comm_bytes) }
    }

    /// Component-wise minimum of two profiles.
    pub fn min(self, other: ResourceProfile) -> Self {
        Self {
            mem_bytes: self.mem_bytes.min(other.mem_bytes),
            flops: self.flops.min(other.flops),
            comm_bytes: self.comm_bytes.min(other.comm_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_halves() {
        let p = ResourceProfile { mem_bytes: 100, flops: 50, comm_bytes: 10 };
        let h = p.scaled(0.5);
        assert_eq!(h, ResourceProfile { mem_bytes: 50, flops: 25, comm_bytes: 5 });
    }

    #[test]
    fn min_is_componentwise() {
        let a = ResourceProfile { mem_bytes: 100, flops: 5, comm_bytes: 10 };
        let b = ResourceProfile { mem_bytes: 50, flops: 50, comm_bytes: 50 };
        assert_eq!(a.min(b), ResourceProfile { mem_bytes: 50, flops: 5, comm_bytes: 10 });
    }

    #[test]
    fn unconstrained_survives_scaling() {
        let p = ResourceProfile::unconstrained().scaled(2.0);
        assert!(p.mem_bytes > u64::MAX / 8);
    }
}
