//! A hand-rolled HTTP/1.1 ops endpoint for the coordinator.
//!
//! Three read-only routes, all JSON, all `Connection: close`:
//!
//! * `GET /healthz` — liveness plus the live worker count, rounds
//!   completed, and seconds since the last round barrier closed.
//! * `GET /metrics` — the telemetry metrics registry snapshot.
//! * `GET /round`   — round-barrier progress.
//!
//! The parser accepts exactly what `curl`/probes emit: a request line
//! and headers, no bodies, no keep-alive. Anything else gets a 400/404
//! and the connection is closed either way.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::coordinator::Coordinator;
use crate::ServeError;

/// A running ops endpoint. Dropping it stops and joins the listener
/// thread; [`OpsServer::stop`] does the same eagerly when teardown
/// order matters.
pub struct OpsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl OpsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves the coordinator's
    /// status until [`OpsServer::stop`].
    pub fn spawn(addr: &str, coordinator: Coordinator) -> Result<OpsServer, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = thread::spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(mut s) = stream {
                    let _ = serve_one(&mut s, &coordinator);
                }
            }
        });
        Ok(OpsServer { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (useful after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it.
    pub fn stop(mut self) {
        self.halt();
    }

    /// The actual teardown: raise the flag, unblock `accept` with a
    /// self-dial, join. Idempotent so `stop` + `Drop` compose.
    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        // An ops endpoint abandoned on an early-return path must not
        // leave a listener thread (and its bound port) behind.
        self.halt();
    }
}

/// Reads one request (capped at 8 KiB), routes it, writes one response.
fn serve_one(stream: &mut TcpStream, coordinator: &Coordinator) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut raw = Vec::new();
    let mut chunk = [0u8; 1024];
    while !raw.windows(4).any(|w| w == b"\r\n\r\n") {
        if raw.len() > 8192 {
            return respond(stream, 400, "{\"error\":\"request too large\"}");
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
    let text = String::from_utf8_lossy(&raw);
    let mut parts = text.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(stream, 405, "{\"error\":\"method not allowed\"}");
    }
    match path {
        "/healthz" => {
            let names = serde_json::to_string(&coordinator.worker_names()).unwrap_or_else(|_| "[]".into());
            let age = match coordinator.seconds_since_last_round() {
                Some(s) => format!("{s:.3}"),
                None => "null".into(),
            };
            let body = format!(
                "{{\"ok\":true,\"workers\":{},\"names\":{names},\"rounds_completed\":{},\"last_round_age_s\":{age}}}",
                coordinator.worker_count(),
                coordinator.rounds_completed(),
            );
            respond(stream, 200, &body)
        }
        "/metrics" => respond(stream, 200, &coordinator.metrics_json()),
        "/round" => {
            let body = format!(
                "{{\"rounds_completed\":{},\"workers\":{}}}",
                coordinator.rounds_completed(),
                coordinator.worker_count()
            );
            respond(stream, 200, &body)
        }
        _ => respond(stream, 404, "{\"error\":\"not found\"}"),
    }
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
