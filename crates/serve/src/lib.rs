//! # nebula-serve
//!
//! The serving plane: a real coordinator/worker deployment of the
//! dispatch [`Transport`](nebula_core::Transport) over `nebula-wire`
//! frames on TCP and Unix-domain sockets.
//!
//! The simulator's strategies fan a round's training jobs out through a
//! transport; in-process that is [`nebula_core::Loopback`]. This crate
//! provides the remote half:
//!
//! * [`coordinator`] — listeners, the worker registry with the
//!   hello/ack handshake, and [`coordinator::SocketTransport`]: a
//!   deadline-driven round barrier that reassigns jobs away from dead
//!   workers under the shared retry budget and degrades what's left
//!   into the round's existing fault fates (never hangs).
//! * [`worker`] — a worker process: connect, handshake, then a small
//!   thread pool executing jobs bit-identically to the loopback path.
//! * [`proto`] — job/result/shutdown messages as wire control frames
//!   (JSON header record + binary blob records).
//! * [`ops`] — a hand-rolled HTTP/1.1 endpoint serving `/healthz`,
//!   `/metrics` (the telemetry registry as JSON) and `/round`.
//!
//! Everything is `std::net`/`std::os::unix::net` plus blocking threads:
//! no async runtime. The job codec is `Raw`-only (enforced at the
//! handshake) because that is the codec family with no cross-frame
//! state, which is what makes a remote worker's output byte-identical
//! to in-process execution.

pub mod coordinator;
pub mod netio;
pub mod ops;
pub mod proto;
pub mod worker;

use std::fmt;

use nebula_modular::ModularConfig;
use serde::{Deserialize, Serialize};

pub use coordinator::{Coordinator, ServeConfig, SocketTransport};
pub use netio::{ChaosConn, Conn, Endpoint, NetFaultPlan};
pub use ops::OpsServer;
pub use worker::{run_worker, WorkerConfig, WorkerReport};

/// Serving-plane failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Socket-level failure (connect, read, write, bind).
    Io(String),
    /// A malformed or unverifiable serving-plane message.
    Proto(String),
    /// The handshake did not complete (closed before the ack, an
    /// undecodable ack). Possibly transient — a coordinator dying
    /// mid-restart looks the same as an auth mismatch from here — so
    /// the worker rejoin loop retries these a bounded number of times
    /// before giving up.
    Handshake(String),
    /// The deployment permanently refused this worker — an explicit
    /// handshake rejection (unsupported proto revision or codec) or a
    /// run config this worker cannot satisfy. Never retried: the same
    /// hello would be refused again, forever.
    Rejected(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(why) => write!(f, "io: {why}"),
            ServeError::Proto(why) => write!(f, "protocol: {why}"),
            ServeError::Handshake(why) => write!(f, "handshake: {why}"),
            ServeError::Rejected(why) => write!(f, "rejected: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

/// The run configuration a coordinator ships to every admitted worker
/// inside [`nebula_wire::HelloAck::config_json`]. The auth key is *not*
/// part of it — a worker proves it already holds the shared secret at
/// the handshake; secrets never ride the wire.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkerRunConfig {
    /// Architecture of the modular model, when the run dispatches
    /// Nebula jobs. `None` leaves the worker dense-only.
    pub modular: Option<ModularConfig>,
    /// Upload sparsification threshold (unused under `Raw`; carried so
    /// a future delta-capable plane needs no schema change).
    pub delta_threshold: f32,
    /// Whether the *inner* payload/update frames are device-MAC'd (the
    /// strategy's `WireConfig::auth_key` is set coordinator-side). The
    /// worker then applies its own locally-held key — only the boolean
    /// rides the wire, never the key.
    pub payload_auth: bool,
}
