//! Job/result messages between coordinator and worker, carried as
//! `nebula-wire` control frames.
//!
//! Every serving-plane message is one [`FrameKind::Control`] frame with
//! a JSON *header record* at control slot 0 (self-describing, visible
//! to ops tooling) and zero or more *binary blob records* at higher
//! slots carrying the bulk payloads: the encoded sub-model frame or
//! dense parameter vector, the device's dataset features (f32 LE) and
//! labels (u32 LE), and — on the way back — the trained update frame or
//! parameter vector. Keeping the bulk out of the JSON keeps the header
//! cheap to parse and the floats bit-exact (they never round-trip
//! through decimal).
//!
//! When the deployment holds a master [`FrameKey`], every message is
//! MAC'd under a dedicated jobs subkey ([`job_key`]) — distinct from
//! both the per-device payload keys and the handshake subkey, so no
//! transcript from one plane replays into another.

use nebula_core::{DispatchJob, JobResult, JobSpec, TrainParams, TransportError};
use nebula_data::Dataset;
use nebula_tensor::Tensor;
use nebula_wire::frame::{FrameBuilder, FrameKind, FrameView, ModuleKey};
use nebula_wire::{CodecKind, FrameKey};
use serde::{Deserialize, Serialize};

use crate::ServeError;

/// Domain-separation label of the jobs subkey ("NBWJOBS1").
const JOB_STREAM: u64 = 0x4E42_574A_4F42_5331;

/// Control-record slots of a serving-plane message.
const SLOT_HEADER: ModuleKey = ModuleKey { layer: 0xFFFC, module: 0 };
const SLOT_MODEL: ModuleKey = ModuleKey { layer: 0xFFFC, module: 1 };
const SLOT_FEATURES: ModuleKey = ModuleKey { layer: 0xFFFC, module: 2 };
const SLOT_LABELS: ModuleKey = ModuleKey { layer: 0xFFFC, module: 3 };

/// Derives the job-traffic MAC key from a deployment master key.
pub fn job_key(master: &FrameKey) -> FrameKey {
    master.derive(JOB_STREAM)
}

/// The JSON header record present in every serving-plane message. One
/// flat struct for all three message kinds — absent facets are zeroed —
/// because the vendored serde derive wants every field present anyway.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
struct Header {
    /// "job" | "result" | "shutdown".
    kind: String,
    /// Index of the job within the round's dispatch batch.
    job: u64,
    /// Dispatch attempt (0 = first send; bumped on reassignment).
    attempt: u64,
    /// Coordinator round-barrier epoch (monotonic; see [`JobTag`]).
    epoch: u64,
    round: u64,
    device: u64,
    /// Job family: "modular" | "dense" (jobs and results).
    spec: String,
    epochs: u64,
    batch: u64,
    lr: f32,
    /// Captured RNG state (4 words, exact — u64 survives the JSON shim).
    rng: Vec<u64>,
    /// Dataset geometry (jobs only).
    classes: u64,
    feature_dim: u64,
    /// Dense architecture (dense jobs only).
    input: u64,
    width: u64,
    blocks: u64,
    block_hidden: u64,
    dense_classes: u64,
    ratio: f32,
    /// Result status (results only).
    ok: bool,
    error: String,
}

/// Coordinator-stamped identity of one dispatched job copy, carried in
/// every job frame and echoed verbatim in its result. The coordinator
/// only lands a result whose epoch, attempt *and* device all still
/// match the slot's current assignment, so neither a superseded attempt
/// nor a straggler from a round that already hit the deadline barrier
/// can be mistaken for the live round's update.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobTag {
    /// Index of the job within the round's dispatch batch.
    pub job: u64,
    /// Dispatch attempt (0 = first send; bumped on reassignment).
    pub attempt: u32,
    /// Round-barrier epoch, monotonic over the coordinator's lifetime
    /// (independent of the job's own `round` field, which the strategy
    /// controls and may repeat or zero).
    pub epoch: u64,
    /// Device the job was cut for.
    pub device: u64,
}

/// A decoded serving-plane message.
pub enum Message {
    /// A training assignment plus its identity tag.
    Job(Box<DispatchJob>, JobTag),
    /// A finished job: the echoed tag plus the outcome.
    Result(JobTag, Result<JobResult, String>),
    /// Coordinator liveness probe; a worker answers with a [`Message::Pong`]
    /// echoing the nonce from its reader thread, so a live-but-training
    /// worker still answers promptly while a frozen process stays silent.
    Ping(u64),
    /// A worker's echo of a ping nonce.
    Pong(u64),
    /// Coordinator asks the worker to drain and exit.
    Shutdown,
}

fn begin(buf: &mut Vec<u8>) -> FrameBuilder<'_> {
    FrameBuilder::begin(buf, FrameKind::Control, CodecKind::Raw)
}

fn finish(b: FrameBuilder<'_>, key: Option<&FrameKey>) -> usize {
    match key {
        Some(k) => b.finish_authed(&job_key(k)),
        None => b.finish(),
    }
}

fn push_header(b: &mut FrameBuilder<'_>, header: &Header) -> Result<(), ServeError> {
    let json = serde_json::to_string(header).map_err(|e| ServeError::Proto(e.to_string()))?;
    b.record(SLOT_HEADER, CodecKind::Raw, 0, 0, |o| o.extend_from_slice(json.as_bytes()));
    Ok(())
}

fn push_f32s(b: &mut FrameBuilder<'_>, slot: ModuleKey, xs: &[f32]) {
    b.record(slot, CodecKind::Raw, 0, xs.len(), |o| {
        for x in xs {
            o.extend_from_slice(&x.to_le_bytes());
        }
    });
}

fn parse_f32s(payload: &[u8]) -> Result<Vec<f32>, ServeError> {
    if !payload.len().is_multiple_of(4) {
        return Err(ServeError::Proto(format!("f32 blob of {} bytes", payload.len())));
    }
    Ok(payload.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

/// Encodes a training job into `buf` (cleared). Returns the frame length.
pub fn encode_job(
    buf: &mut Vec<u8>,
    job: &DispatchJob,
    tag: JobTag,
    key: Option<&FrameKey>,
) -> Result<usize, ServeError> {
    let mut header = Header {
        kind: "job".into(),
        job: tag.job,
        attempt: tag.attempt as u64,
        epoch: tag.epoch,
        round: job.round as u64,
        device: job.device,
        epochs: job.train.epochs as u64,
        batch: job.train.batch_size as u64,
        lr: job.train.lr,
        rng: job.rng_state.to_vec(),
        classes: job.data.classes() as u64,
        feature_dim: job.data.feature_dim() as u64,
        ..Header::default()
    };
    let mut b = begin(buf);
    match &job.spec {
        JobSpec::Modular { frame } => {
            header.spec = "modular".into();
            push_header(&mut b, &header)?;
            b.record(SLOT_MODEL, CodecKind::Raw, 0, 0, |o| o.extend_from_slice(frame));
        }
        JobSpec::Dense { input, width, blocks, block_hidden, classes, ratio, params } => {
            header.spec = "dense".into();
            header.input = *input as u64;
            header.width = *width as u64;
            header.blocks = *blocks as u64;
            header.block_hidden = *block_hidden as u64;
            header.dense_classes = *classes as u64;
            header.ratio = *ratio;
            push_header(&mut b, &header)?;
            push_f32s(&mut b, SLOT_MODEL, params);
        }
    }
    push_f32s(&mut b, SLOT_FEATURES, job.data.features().data());
    let labels = job.data.labels();
    b.record(SLOT_LABELS, CodecKind::Raw, 0, labels.len(), |o| {
        for &y in labels {
            o.extend_from_slice(&(y as u32).to_le_bytes());
        }
    });
    Ok(finish(b, key))
}

/// Encodes a job outcome into `buf` (cleared). Returns the frame length.
pub fn encode_result(
    buf: &mut Vec<u8>,
    tag: JobTag,
    outcome: &Result<JobResult, TransportError>,
    key: Option<&FrameKey>,
) -> Result<usize, ServeError> {
    let mut header = Header {
        kind: "result".into(),
        job: tag.job,
        attempt: tag.attempt as u64,
        epoch: tag.epoch,
        device: tag.device,
        ..Header::default()
    };
    let mut b = begin(buf);
    match outcome {
        Ok(JobResult::Frame(frame)) => {
            header.spec = "modular".into();
            header.ok = true;
            push_header(&mut b, &header)?;
            b.record(SLOT_MODEL, CodecKind::Raw, 0, 0, |o| o.extend_from_slice(frame));
        }
        Ok(JobResult::Params(params)) => {
            header.spec = "dense".into();
            header.ok = true;
            push_header(&mut b, &header)?;
            push_f32s(&mut b, SLOT_MODEL, params);
        }
        Err(e) => {
            header.ok = false;
            header.error = e.to_string();
            push_header(&mut b, &header)?;
        }
    }
    Ok(finish(b, key))
}

/// Encodes a shutdown notice into `buf` (cleared). Returns the length.
pub fn encode_shutdown(buf: &mut Vec<u8>, key: Option<&FrameKey>) -> Result<usize, ServeError> {
    let header = Header { kind: "shutdown".into(), ..Header::default() };
    let mut b = begin(buf);
    push_header(&mut b, &header)?;
    Ok(finish(b, key))
}

/// Encodes a liveness probe (the nonce rides in the `job` field).
pub fn encode_ping(buf: &mut Vec<u8>, nonce: u64, key: Option<&FrameKey>) -> Result<usize, ServeError> {
    let header = Header { kind: "ping".into(), job: nonce, ..Header::default() };
    let mut b = begin(buf);
    push_header(&mut b, &header)?;
    Ok(finish(b, key))
}

/// Encodes a worker's echo of a ping nonce.
pub fn encode_pong(buf: &mut Vec<u8>, nonce: u64, key: Option<&FrameKey>) -> Result<usize, ServeError> {
    let header = Header { kind: "pong".into(), job: nonce, ..Header::default() };
    let mut b = begin(buf);
    push_header(&mut b, &header)?;
    Ok(finish(b, key))
}

/// Decodes any serving-plane message, verifying the MAC when keyed.
pub fn decode_message(bytes: &[u8], key: Option<&FrameKey>) -> Result<Message, ServeError> {
    let derived = key.map(job_key);
    let view =
        FrameView::parse_keyed(bytes, derived.as_ref()).map_err(|e| ServeError::Proto(format!("{e:?}")))?;
    if view.kind != FrameKind::Control {
        return Err(ServeError::Proto(format!("unexpected frame kind {:?}", view.kind)));
    }
    let header_rec =
        view.find(SLOT_HEADER).ok_or_else(|| ServeError::Proto("message without header record".into()))?;
    let json = std::str::from_utf8(header_rec.payload)
        .map_err(|_| ServeError::Proto("header is not UTF-8".into()))?;
    let header: Header = serde_json::from_str(json).map_err(|e| ServeError::Proto(e.to_string()))?;
    let tag = JobTag {
        job: header.job,
        attempt: header.attempt as u32,
        epoch: header.epoch,
        device: header.device,
    };
    match header.kind.as_str() {
        "shutdown" => Ok(Message::Shutdown),
        "ping" => Ok(Message::Ping(header.job)),
        "pong" => Ok(Message::Pong(header.job)),
        "result" => {
            let outcome = if header.ok {
                let rec = view
                    .find(SLOT_MODEL)
                    .ok_or_else(|| ServeError::Proto("ok result without payload".into()))?;
                match header.spec.as_str() {
                    "modular" => Ok(JobResult::Frame(rec.payload.to_vec())),
                    "dense" => Ok(JobResult::Params(parse_f32s(rec.payload)?)),
                    other => return Err(ServeError::Proto(format!("result spec '{other}'"))),
                }
            } else {
                Err(header.error.clone())
            };
            Ok(Message::Result(tag, outcome))
        }
        "job" => {
            let model =
                view.find(SLOT_MODEL).ok_or_else(|| ServeError::Proto("job without model record".into()))?;
            let spec = match header.spec.as_str() {
                "modular" => JobSpec::Modular { frame: model.payload.to_vec() },
                "dense" => JobSpec::Dense {
                    input: header.input as usize,
                    width: header.width as usize,
                    blocks: header.blocks as usize,
                    block_hidden: header.block_hidden as usize,
                    classes: header.dense_classes as usize,
                    ratio: header.ratio,
                    params: parse_f32s(model.payload)?,
                },
                other => return Err(ServeError::Proto(format!("job spec '{other}'"))),
            };
            let feats = view
                .find(SLOT_FEATURES)
                .ok_or_else(|| ServeError::Proto("job without features record".into()))?;
            let labels_rec = view
                .find(SLOT_LABELS)
                .ok_or_else(|| ServeError::Proto("job without labels record".into()))?;
            if labels_rec.payload.len() % 4 != 0 {
                return Err(ServeError::Proto("label blob not u32-aligned".into()));
            }
            let labels: Vec<usize> = labels_rec
                .payload
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]) as usize)
                .collect();
            let xs = parse_f32s(feats.payload)?;
            let dim = header.feature_dim as usize;
            if dim == 0 || xs.len() != labels.len() * dim {
                return Err(ServeError::Proto(format!(
                    "dataset geometry mismatch: {} features, {} labels x dim {dim}",
                    xs.len(),
                    labels.len()
                )));
            }
            if header.rng.len() != 4 {
                return Err(ServeError::Proto("rng state must be 4 words".into()));
            }
            let data =
                Dataset::new(Tensor::from_vec(xs, &[labels.len(), dim]), labels, header.classes as usize);
            let job = DispatchJob {
                round: header.round as usize,
                device: header.device,
                spec,
                rng_state: [header.rng[0], header.rng[1], header.rng[2], header.rng[3]],
                train: TrainParams {
                    epochs: header.epochs as usize,
                    batch_size: header.batch as usize,
                    lr: header.lr,
                },
                data,
            };
            Ok(Message::Job(Box::new(job), tag))
        }
        other => Err(ServeError::Proto(format!("unknown message kind '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_tensor::NebulaRng;

    fn toy_data() -> Dataset {
        let xs: Vec<f32> = (0..12).map(|i| i as f32 * 0.25 - 1.0).collect();
        Dataset::new(Tensor::from_vec(xs, &[3, 4]), vec![0, 2, 1], 3)
    }

    fn toy_job(spec: JobSpec) -> DispatchJob {
        DispatchJob {
            round: 7,
            device: 42,
            spec,
            rng_state: NebulaRng::seed(0xFEED).state(),
            train: TrainParams { epochs: 2, batch_size: 8, lr: 0.05 },
            data: toy_data(),
        }
    }

    fn toy_tag(device: u64) -> JobTag {
        JobTag { job: 3, attempt: 1, epoch: 9, device }
    }

    fn round_trip(job: DispatchJob, key: Option<&FrameKey>) -> (DispatchJob, JobTag) {
        let mut buf = Vec::new();
        encode_job(&mut buf, &job, toy_tag(job.device), key).unwrap();
        match decode_message(&buf, key).unwrap() {
            Message::Job(j, tag) => (*j, tag),
            _ => panic!("expected a job message"),
        }
    }

    #[test]
    fn modular_job_round_trips_exactly() {
        let job = toy_job(JobSpec::Modular { frame: vec![9, 8, 7, 6, 5] });
        let (back, tag) = round_trip(job.clone(), None);
        assert_eq!(tag, toy_tag(job.device), "the tag must survive transit verbatim");
        assert_eq!(back.round, job.round);
        assert_eq!(back.device, job.device);
        assert_eq!(back.rng_state, job.rng_state);
        assert_eq!(back.train, job.train);
        assert_eq!(back.data.labels(), job.data.labels());
        assert_eq!(back.data.features().data(), job.data.features().data());
        match (back.spec, job.spec) {
            (JobSpec::Modular { frame: a }, JobSpec::Modular { frame: b }) => assert_eq!(a, b),
            _ => panic!("spec family changed in transit"),
        }
    }

    #[test]
    fn dense_job_round_trips_exactly_with_auth() {
        let key = FrameKey::from_bytes(&[7u8; 16]);
        let params: Vec<f32> = (0..10).map(|i| (i as f32).sin()).collect();
        let job = toy_job(JobSpec::Dense {
            input: 4,
            width: 24,
            blocks: 2,
            block_hidden: 32,
            classes: 3,
            ratio: 0.5,
            params: params.clone(),
        });
        let (back, _) = round_trip(job, Some(&key));
        match back.spec {
            JobSpec::Dense { input, width, blocks, block_hidden, classes, ratio, params: p } => {
                assert_eq!((input, width, blocks, block_hidden, classes), (4, 24, 2, 32, 3));
                assert_eq!(ratio, 0.5);
                assert_eq!(p, params);
            }
            _ => panic!("spec family changed in transit"),
        }
    }

    #[test]
    fn results_and_shutdown_round_trip() {
        let mut buf = Vec::new();
        let ok_tag = JobTag { job: 5, attempt: 2, epoch: 4, device: 11 };
        encode_result(&mut buf, ok_tag, &Ok(JobResult::Frame(vec![1, 2, 3])), None).unwrap();
        match decode_message(&buf, None).unwrap() {
            Message::Result(tag, Ok(JobResult::Frame(f))) => {
                assert_eq!(tag, ok_tag, "result tag must echo the job tag (epoch included)");
                assert_eq!(f, vec![1, 2, 3]);
            }
            _ => panic!("bad result decode"),
        }

        let err: Result<JobResult, TransportError> =
            Err(TransportError::Rejected("no modular config".into()));
        let err_tag = JobTag { job: 6, attempt: 0, epoch: 7, device: 12 };
        encode_result(&mut buf, err_tag, &err, None).unwrap();
        match decode_message(&buf, None).unwrap() {
            Message::Result(tag, Err(why)) => {
                assert_eq!(tag, err_tag);
                assert!(why.contains("no modular config"));
            }
            _ => panic!("bad error-result decode"),
        }

        encode_shutdown(&mut buf, None).unwrap();
        assert!(matches!(decode_message(&buf, None).unwrap(), Message::Shutdown));
    }

    #[test]
    fn ping_pong_round_trip_with_and_without_auth() {
        let key = FrameKey::from_bytes(&[9u8; 16]);
        let mut buf = Vec::new();
        encode_ping(&mut buf, 0xDEAD_BEEF, Some(&key)).unwrap();
        assert!(matches!(decode_message(&buf, Some(&key)).unwrap(), Message::Ping(0xDEAD_BEEF)));
        assert!(decode_message(&buf, None).is_err(), "keyed ping at an open decoder must fail");
        encode_pong(&mut buf, 7, None).unwrap();
        assert!(matches!(decode_message(&buf, None).unwrap(), Message::Pong(7)));
    }

    #[test]
    fn keyed_messages_reject_wrong_or_missing_keys() {
        let key = FrameKey::from_bytes(&[3u8; 16]);
        let other = FrameKey::from_bytes(&[4u8; 16]);
        let mut buf = Vec::new();
        encode_shutdown(&mut buf, Some(&key)).unwrap();
        assert!(decode_message(&buf, Some(&other)).is_err(), "wrong key must fail the MAC");
        assert!(decode_message(&buf, None).is_err(), "keyed frame at an open decoder must fail");
        encode_shutdown(&mut buf, None).unwrap();
        assert!(decode_message(&buf, Some(&key)).is_err(), "open frame at a keyed decoder must fail");
    }
}
