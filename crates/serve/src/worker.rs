//! A worker process: dial the coordinator, handshake, then pull jobs
//! off the connection into a small thread pool and stream results back.
//!
//! Execution is routed through the same [`JobRunner`]s the in-process
//! [`nebula_core::Loopback`] transport uses, each job wrapped in
//! [`nebula_tensor::par::sequential`] exactly like loopback — that pair
//! is what makes a remote round byte-identical to an in-process one
//! under the `Raw` codec (test-pinned in this crate).
//!
//! A worker outlives its connection: [`run_worker`] wraps one *session*
//! (connect → handshake → serve until shutdown or loss) in a rejoin
//! loop, so a coordinator that crashes and restarts gets its fleet back
//! without anyone re-launching worker processes. Only an orderly
//! shutdown notice — or a permanent rejection — ends the worker.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use nebula_baselines::DenseJobRunner;
use nebula_core::{backoff_ms, DispatchJob, JobRunner, JobSpec, ModularRunner, TransportError, WireConfig};
use nebula_telemetry::Telemetry;
use nebula_wire::hello::{decode_hello_ack, encode_hello, Hello, HELLO_PROTO};
use nebula_wire::stream::{read_frame, write_frame, DEFAULT_MAX_FRAME_LEN};
use nebula_wire::{CodecKind, FrameKey};

use crate::netio::{Conn, Endpoint, NetFaultPlan};
use crate::proto::{self, JobTag, Message};
use crate::{ServeError, WorkerRunConfig};

/// Worker deployment knobs.
pub struct WorkerConfig {
    /// Coordinator endpoint to dial.
    pub endpoint: Endpoint,
    /// Shared master key; must match the coordinator's (or both unset).
    pub auth_key: Option<[u8; 16]>,
    /// Name announced in the hello (logs/telemetry only).
    pub name: String,
    /// Executor threads (0 = 2).
    pub threads: usize,
    /// Hostile-length cap for inbound frames.
    pub max_frame_len: usize,
    /// Dial attempts before giving up (the coordinator may start late).
    pub connect_attempts: u32,
    /// Re-dial and re-handshake after a lost session instead of exiting.
    /// Permanent rejections and local protocol failures still exit; only
    /// link loss (coordinator crash, eviction, network cut) is retried.
    pub rejoin: bool,
    /// Seeded fault plan applied to this worker's link *after* the
    /// handshake (chaos harness only). With [`NetFaultPlan::once`] set,
    /// rejoined sessions get a clean link; otherwise each session `s`
    /// replays the plan under `seed ^ s`.
    pub chaos: Option<NetFaultPlan>,
    pub telemetry: Telemetry,
}

impl WorkerConfig {
    pub fn new(endpoint: Endpoint) -> Self {
        WorkerConfig {
            endpoint,
            auth_key: None,
            name: "worker".into(),
            threads: 2,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            connect_attempts: 20,
            rejoin: true,
            chaos: None,
            telemetry: Telemetry::off(),
        }
    }
}

/// What a finished worker reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerReport {
    /// Coordinator-assigned id of the final session.
    pub worker_id: u64,
    /// Jobs executed (successfully or not) across all sessions.
    pub jobs_run: u64,
    /// Admitted sessions over the worker's life; >1 means the rejoin
    /// loop recovered at least one lost connection.
    pub sessions: u64,
}

/// How one serving session ended.
enum SessionEnd {
    /// The coordinator sent an orderly shutdown notice.
    Shutdown,
    /// The link died without one (coordinator crash, eviction, fault).
    Lost(String),
}

/// Routes each job family to its executor; what the pool threads run.
struct CompositeRunner {
    modular: Option<ModularRunner>,
    dense: DenseJobRunner,
}

impl JobRunner for CompositeRunner {
    fn run(&self, job: &DispatchJob) -> Result<nebula_core::JobResult, TransportError> {
        match &job.spec {
            JobSpec::Modular { .. } => match &self.modular {
                Some(r) => r.run(job),
                None => Err(TransportError::Rejected("worker has no modular model configured".into())),
            },
            JobSpec::Dense { .. } => self.dense.run(job),
        }
    }
}

/// Per-attempt ceiling on the dial backoff: without it the exponential
/// curve reaches ~27 minutes per sleep by attempt 16, so a worker whose
/// coordinator never comes up would block for over an hour before
/// reporting failure.
const DIAL_BACKOFF_CAP_MS: f64 = 5_000.0;

/// Consecutive ambiguous handshake failures tolerated before the rejoin
/// loop gives up. "Closed before ack" and "bad ack" are indistinguishable
/// between a coordinator dying mid-restart (transient) and an auth
/// mismatch silently garbling the ack (permanent), so we retry a few
/// times and then surface the error rather than spin forever.
const HANDSHAKE_STRIKES: u32 = 3;

/// The sleep before re-dialing after a failed connect `attempt`:
/// exponential from 25 ms, clamped to [`DIAL_BACKOFF_CAP_MS`].
fn dial_backoff(attempt: u32) -> Duration {
    Duration::from_millis(backoff_ms(25.0, attempt).min(DIAL_BACKOFF_CAP_MS) as u64)
}

/// Dials with capped exponential backoff so a worker may start before
/// its coordinator's listener is up.
fn connect(endpoint: &Endpoint, attempts: u32) -> Result<Conn, ServeError> {
    let tries = attempts.max(1);
    for attempt in 0..tries {
        match Conn::connect(endpoint) {
            Ok(c) => return Ok(c),
            Err(e) if attempt + 1 == tries => {
                return Err(ServeError::Io(format!("connect {endpoint}: {e}")));
            }
            Err(_) => thread::sleep(dial_backoff(attempt)),
        }
    }
    unreachable!("loop returns on the final attempt");
}

/// Runs a worker to completion: blocks until the coordinator sends a
/// shutdown notice, the deployment permanently rejects it, or (with
/// `rejoin` off) the connection closes.
///
/// Error classification drives the loop:
/// * [`ServeError::Rejected`] — permanent; exit immediately with the
///   coordinator's reason. The same hello would be refused forever.
/// * [`ServeError::Handshake`] — ambiguous; retried up to
///   [`HANDSHAKE_STRIKES`] consecutive times, then surfaced.
/// * [`ServeError::Io`] / [`ServeError::Proto`] — a dial budget already
///   exhausted by capped backoff, or a corrupt stream this worker
///   cannot answer; exit immediately.
/// * A *lost session* (connection died after admission) is not an error
///   while `rejoin` is set: the worker re-dials, re-handshakes, and is
///   assigned a fresh id.
pub fn run_worker(cfg: WorkerConfig) -> Result<WorkerReport, ServeError> {
    let master = cfg.auth_key.map(|k| FrameKey::from_bytes(&k));
    let mut sessions: u64 = 0;
    let mut jobs_total: u64 = 0;
    let mut strikes: u32 = 0;
    loop {
        match run_session(&cfg, master.as_ref(), sessions) {
            Ok((worker_id, jobs, end)) => {
                sessions += 1;
                jobs_total += jobs;
                strikes = 0;
                match end {
                    SessionEnd::Shutdown => {
                        return Ok(WorkerReport { worker_id, jobs_run: jobs_total, sessions });
                    }
                    SessionEnd::Lost(why) => {
                        if !cfg.rejoin {
                            return Err(ServeError::Io(why));
                        }
                        cfg.telemetry.counter_add("serve.worker_rejoins", 1);
                        thread::sleep(Duration::from_millis(50));
                    }
                }
            }
            Err(ServeError::Handshake(why)) => {
                strikes += 1;
                if !cfg.rejoin || strikes >= HANDSHAKE_STRIKES {
                    return Err(ServeError::Handshake(why));
                }
                thread::sleep(dial_backoff(strikes));
            }
            Err(e) => return Err(e),
        }
    }
}

/// One serving session: connect, handshake, serve until shutdown or
/// loss. Returns the session's assigned id, jobs executed, and how it
/// ended; handshake-stage failures come back as errors for the rejoin
/// loop to classify.
fn run_session(
    cfg: &WorkerConfig,
    master: Option<&FrameKey>,
    session: u64,
) -> Result<(u64, u64, SessionEnd), ServeError> {
    let mut conn = connect(&cfg.endpoint, cfg.connect_attempts)?;

    // Handshake: hello out, ack (with the run config) back.
    let mut buf = Vec::new();
    let hello = Hello {
        proto: HELLO_PROTO,
        codec: CodecKind::Raw,
        threads: cfg.threads.clamp(1, u16::MAX as usize) as u16,
        name: cfg.name.clone(),
    };
    encode_hello(&mut buf, &hello, master);
    // I/O failures here are handshake failures, not `Io`: a worker can
    // dial the backlog of a listener mid-teardown, and that race must
    // be retriable rather than fatal.
    write_frame(&mut conn, &buf).map_err(|e| ServeError::Handshake(format!("hello write: {e}")))?;
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    match read_frame(&mut conn, cfg.max_frame_len, &mut buf) {
        Ok(true) => {}
        Ok(false) => return Err(ServeError::Handshake("coordinator closed before ack".into())),
        Err(e) => return Err(ServeError::Handshake(format!("ack read: {e}"))),
    }
    let ack = decode_hello_ack(&buf, master).map_err(|e| ServeError::Handshake(format!("bad ack: {e:?}")))?;
    if !ack.accepted {
        return Err(ServeError::Rejected(ack.reason));
    }
    conn.set_read_timeout(None)?;
    let run_cfg: WorkerRunConfig =
        serde_json::from_str(&ack.config_json).map_err(|e| ServeError::Proto(format!("run config: {e}")))?;
    if run_cfg.payload_auth && cfg.auth_key.is_none() {
        return Err(ServeError::Rejected(
            "run requires device-MAC'd payload frames but this worker holds no key".into(),
        ));
    }

    // Fault injection sits below the session, above the socket: the
    // handshake always completes cleanly, then the link degrades.
    if let Some(plan) = cfg.chaos {
        if !(plan.once && session > 0) {
            let mut p = plan;
            p.seed ^= session;
            conn = conn.chaos(p);
        }
    }

    let wire = WireConfig {
        codec: CodecKind::Raw,
        delta_threshold: run_cfg.delta_threshold,
        auth_key: if run_cfg.payload_auth { cfg.auth_key } else { None },
    };
    let runner = Arc::new(CompositeRunner {
        modular: run_cfg.modular.map(|m| ModularRunner::new(m, wire)),
        dense: DenseJobRunner,
    });

    // Pool: the connection reader feeds a channel; each executor thread
    // takes a job, runs it, and writes the result under the shared
    // write half. A failed result write poisons the session and severs
    // the socket so the reader fails fast instead of idling on a
    // connection that can no longer deliver anything.
    let threads = cfg.threads.max(1);
    let (tx, rx) = mpsc::channel::<(Box<DispatchJob>, JobTag)>();
    let rx = Arc::new(Mutex::new(rx));
    let writer = Arc::new(Mutex::new(conn.try_clone()?));
    let jobs_run = Arc::new(AtomicU64::new(0));
    let poisoned = Arc::new(AtomicBool::new(false));
    let master_owned = master.cloned();
    let pool: Vec<_> = (0..threads)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let runner = Arc::clone(&runner);
            let writer = Arc::clone(&writer);
            let jobs_run = Arc::clone(&jobs_run);
            let poisoned = Arc::clone(&poisoned);
            let master = master_owned;
            let telemetry = cfg.telemetry.clone();
            thread::spawn(move || loop {
                // Hold the receiver lock only while taking a job, never
                // while training.
                let msg = rx.lock().unwrap().recv();
                let Ok((job, tag)) = msg else { break };
                let mut span = telemetry.span("serve.job");
                span.int("device", job.device);
                let outcome = nebula_tensor::par::sequential(|| runner.run(&job));
                drop(span);
                jobs_run.fetch_add(1, Ordering::SeqCst);
                let mut out = Vec::new();
                // The tag goes back verbatim (epoch included) so the
                // coordinator can tell this copy from any stale echo.
                if proto::encode_result(&mut out, tag, &outcome, master.as_ref()).is_ok() {
                    let mut w = writer.lock().unwrap();
                    if write_frame(&mut *w, &out).is_err() {
                        // A silently dead executor would leave the
                        // worker looking alive while every result it
                        // computes vanishes. Poison the session and cut
                        // the socket: the reader loop wakes immediately
                        // and ends the session with a reason.
                        poisoned.store(true, Ordering::SeqCst);
                        w.shutdown();
                        break;
                    }
                }
            })
        })
        .collect();

    let mut end: Option<SessionEnd> = None;
    let mut fail: Option<ServeError> = None;
    let mut pong = Vec::new();
    loop {
        match read_frame(&mut conn, cfg.max_frame_len, &mut buf) {
            Ok(true) => match proto::decode_message(&buf, master) {
                Ok(Message::Job(job, tag)) => {
                    if tx.send((job, tag)).is_err() {
                        end = Some(SessionEnd::Lost("executor pool gone".into()));
                        break;
                    }
                }
                Ok(Message::Ping(nonce)) => {
                    // Answered here, not in the pool: the reader thread
                    // is free even while every executor is training, so
                    // a busy-but-live worker still pongs promptly.
                    let ok = proto::encode_pong(&mut pong, nonce, master).is_ok()
                        && write_frame(&mut *writer.lock().unwrap(), &pong).is_ok();
                    if !ok {
                        end = Some(SessionEnd::Lost("pong write failed".into()));
                        break;
                    }
                }
                Ok(Message::Shutdown) => {
                    end = Some(SessionEnd::Shutdown);
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    // An undecodable job frame (MAC mismatch, corrupt
                    // stream) can't be answered — its index may be
                    // unrecoverable — so close the connection instead of
                    // silently skipping it: the coordinator's drop path
                    // then reassigns every outstanding job immediately
                    // rather than idling until the round deadline.
                    cfg.telemetry.counter_add("serve.bad_frames", 1);
                    fail = Some(ServeError::Proto(format!("undecodable inbound frame: {e}")));
                    break;
                }
            },
            Ok(false) => {
                end = Some(SessionEnd::Lost(if poisoned.load(Ordering::SeqCst) {
                    "result write failed; session poisoned".into()
                } else {
                    "connection closed without shutdown notice".into()
                }));
                break;
            }
            Err(e) => {
                end = Some(SessionEnd::Lost(if poisoned.load(Ordering::SeqCst) {
                    "result write failed; session poisoned".into()
                } else {
                    format!("connection lost: {e}")
                }));
                break;
            }
        }
    }
    drop(tx);
    for h in pool {
        let _ = h.join();
    }
    conn.shutdown();
    if let Some(e) = fail {
        return Err(e);
    }
    let end = end.expect("loop breaks only after recording an end or a failure");
    Ok((ack.worker_id, jobs_run.load(Ordering::SeqCst), end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dial_backoff_grows_then_caps() {
        assert_eq!(dial_backoff(0), Duration::from_millis(25));
        assert_eq!(dial_backoff(3), Duration::from_millis(200));
        // From attempt 8 on (25ms * 2^8 = 6.4s) the cap holds, so even a
        // long dial budget stays minutes, not hours.
        for attempt in [8, 16, 20, u32::MAX] {
            assert_eq!(dial_backoff(attempt), Duration::from_millis(5_000));
        }
    }
}
