//! Socket plumbing shared by coordinator and worker: one connection
//! type over both TCP and Unix-domain streams, and the endpoint
//! addressing that picks between them.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Where a worker dials (or a listener sits).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `host:port`.
    Tcp(String),
    /// Filesystem path of a Unix-domain socket.
    Uds(PathBuf),
}

impl Endpoint {
    /// Parses an endpoint string: anything containing a `/` is a UDS
    /// path, everything else a TCP `host:port`.
    pub fn parse(s: &str) -> Endpoint {
        if s.contains('/') {
            Endpoint::Uds(PathBuf::from(s))
        } else {
            Endpoint::Tcp(s.to_string())
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp://{a}"),
            Endpoint::Uds(p) => write!(f, "uds://{}", p.display()),
        }
    }
}

/// A connected byte stream, TCP or UDS, with uniform clone/timeout
/// controls. Frame I/O goes through [`nebula_wire::stream`] on top.
pub enum Conn {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Conn {
    /// Dials `endpoint` once.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Conn> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true).ok();
                Ok(Conn::Tcp(s))
            }
            Endpoint::Uds(path) => Ok(Conn::Uds(UnixStream::connect(path)?)),
        }
    }

    /// An independently owned handle to the same socket (shared file
    /// description: one side may read while the other writes).
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            Conn::Uds(s) => s.try_clone().map(Conn::Uds),
        }
    }

    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            Conn::Uds(s) => s.set_read_timeout(dur),
        }
    }

    /// Tears the connection down in both directions; a blocked reader
    /// on the other handle wakes with EOF/error.
    pub fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Conn::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Uds(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing_picks_the_family() {
        assert_eq!(Endpoint::parse("127.0.0.1:7070"), Endpoint::Tcp("127.0.0.1:7070".into()));
        assert_eq!(Endpoint::parse("/tmp/nebula.sock"), Endpoint::Uds(PathBuf::from("/tmp/nebula.sock")));
        assert_eq!(Endpoint::parse("./run.sock"), Endpoint::Uds(PathBuf::from("./run.sock")));
    }
}
