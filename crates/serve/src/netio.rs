//! Socket plumbing shared by coordinator and worker: one connection
//! type over both TCP and Unix-domain streams, the endpoint addressing
//! that picks between them, and a seeded fault-injection wrapper
//! ([`ChaosConn`]) that perturbs the *outbound frame stream* for the
//! chaos harness.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where a worker dials (or a listener sits).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `host:port`.
    Tcp(String),
    /// Filesystem path of a Unix-domain socket.
    Uds(PathBuf),
}

impl Endpoint {
    /// Parses an endpoint string: anything containing a `/` is a UDS
    /// path, everything else a TCP `host:port`.
    pub fn parse(s: &str) -> Endpoint {
        if s.contains('/') {
            Endpoint::Uds(PathBuf::from(s))
        } else {
            Endpoint::Tcp(s.to_string())
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp://{a}"),
            Endpoint::Uds(p) => write!(f, "uds://{}", p.display()),
        }
    }
}

/// A connected byte stream, TCP or UDS, with uniform clone/timeout
/// controls. Frame I/O goes through [`nebula_wire::stream`] on top.
/// The [`Conn::Chaos`] variant threads the same stream through a
/// seeded fault plan (chaos tests only; never built in production
/// paths unless explicitly configured).
pub enum Conn {
    Tcp(TcpStream),
    Uds(UnixStream),
    Chaos(Box<ChaosConn>),
}

impl Conn {
    /// Dials `endpoint` once.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Conn> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true).ok();
                Ok(Conn::Tcp(s))
            }
            Endpoint::Uds(path) => Ok(Conn::Uds(UnixStream::connect(path)?)),
        }
    }

    /// Wraps `self` in a deterministic fault injector. All handles
    /// cloned from the result share one fault state, so a stall or kill
    /// triggered by the write half is observed by the read half too.
    pub fn chaos(self, plan: NetFaultPlan) -> Conn {
        Conn::Chaos(Box::new(ChaosConn {
            inner: Box::new(self),
            state: Arc::new(Mutex::new(ChaosState::new(plan))),
        }))
    }

    /// An independently owned handle to the same socket (shared file
    /// description: one side may read while the other writes).
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            Conn::Uds(s) => s.try_clone().map(Conn::Uds),
            Conn::Chaos(c) => Ok(Conn::Chaos(Box::new(ChaosConn {
                inner: Box::new(c.inner.try_clone()?),
                state: Arc::clone(&c.state),
            }))),
        }
    }

    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            Conn::Uds(s) => s.set_read_timeout(dur),
            Conn::Chaos(c) => c.inner.set_read_timeout(dur),
        }
    }

    /// Tears the connection down in both directions; a blocked reader
    /// on the other handle wakes with EOF/error.
    pub fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Conn::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Conn::Chaos(c) => c.inner.shutdown(),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Uds(s) => s.read(buf),
            Conn::Chaos(c) => c.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Uds(s) => s.write(buf),
            Conn::Chaos(c) => c.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Uds(s) => s.flush(),
            Conn::Chaos(c) => c.flush(),
        }
    }
}

/// A deterministic per-connection network-fault plan for [`ChaosConn`].
///
/// Faults act on whole *outbound frames* (the wrapper reassembles the
/// `nebula_wire::stream` u32-LE length-delimited framing from the byte
/// stream) so a dropped frame is a lost message, never a desynchronised
/// stream. All randomness derives from `seed` and the outbound frame
/// index alone — replaying the same plan over the same frame sequence
/// injects the same faults.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetFaultPlan {
    /// Seed of the per-frame fault rolls.
    pub seed: u64,
    /// Probability an outbound frame is silently dropped.
    pub drop_prob: f64,
    /// Probability an outbound frame is written twice back-to-back.
    pub dup_prob: f64,
    /// Fixed delay applied before each outbound frame write, ms.
    pub delay_ms: u64,
    /// After this many outbound frames, write a truncated prefix of the
    /// next frame and kill the connection (torn write).
    pub truncate_after: Option<u64>,
    /// Kill the connection outright after this many outbound frames.
    pub kill_after: Option<u64>,
    /// Half-open stall after this many outbound frames: subsequent
    /// writes are silently swallowed and reads block until the peer
    /// closes — the socket stays open, the process just goes mute.
    pub stall_after: Option<u64>,
    /// Apply the faults to the first session only; a rejoined session
    /// gets a clean link (see `WorkerConfig::chaos`).
    pub once: bool,
}

impl NetFaultPlan {
    /// A plan with the given seed and no faults armed.
    pub fn seeded(seed: u64) -> NetFaultPlan {
        NetFaultPlan { seed, ..NetFaultPlan::default() }
    }
}

/// SplitMix64: the per-frame fault roll in [0, 1).
fn roll(seed: u64, frame: u64, salt: u64) -> f64 {
    let mut z = seed ^ frame.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Shared fault state across cloned handles of one chaos connection.
struct ChaosState {
    plan: NetFaultPlan,
    /// Bytes written but not yet forming a complete frame.
    pending: Vec<u8>,
    /// Outbound frames seen so far (fault-roll index).
    frames_out: u64,
    /// The connection was killed by a fault; all I/O fails from here.
    dead: bool,
    /// Half-open: writes are swallowed, reads block until peer close.
    stalled: bool,
}

impl ChaosState {
    fn new(plan: NetFaultPlan) -> ChaosState {
        ChaosState { plan, pending: Vec::new(), frames_out: 0, dead: false, stalled: false }
    }
}

/// What the fault plan decided for one complete outbound frame.
enum FrameFate {
    Forward { delay_ms: u64, copies: u8 },
    Drop,
    Truncate,
    Kill,
    Stall,
}

/// A [`Conn`] whose outbound frames pass through a [`NetFaultPlan`].
/// Inbound traffic is untouched except under a stall, which silences
/// both directions (a frozen process neither writes nor reads).
pub struct ChaosConn {
    inner: Box<Conn>,
    state: Arc<Mutex<ChaosState>>,
}

impl ChaosConn {
    /// Blocks until the peer closes, discarding anything that arrives:
    /// the read half of a half-open stall. Returning the close lets the
    /// session end (and, on a worker, the rejoin loop take over).
    fn stalled_read(&mut self) -> io::Result<usize> {
        let _ = self.inner.set_read_timeout(Some(Duration::from_millis(50)));
        let mut scratch = [0u8; 1024];
        loop {
            match self.inner.read(&mut scratch) {
                Ok(0) => return Ok(0),
                Ok(_) => {} // swallowed: a stalled process reads nothing
                Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let (dead, stalled) = {
            let st = self.state.lock().unwrap();
            (st.dead, st.stalled)
        };
        if dead {
            return Ok(0);
        }
        if stalled {
            return self.stalled_read();
        }
        self.inner.read(buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // Decide each complete frame's fate under the lock, perform the
        // slow I/O (delays, writes) outside it.
        let mut actions: Vec<(Vec<u8>, FrameFate)> = Vec::new();
        {
            let mut st = self.state.lock().unwrap();
            if st.dead {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "chaos: connection killed"));
            }
            if st.stalled {
                return Ok(buf.len()); // swallowed
            }
            st.pending.extend_from_slice(buf);
            while st.pending.len() >= 4 {
                let len =
                    u32::from_le_bytes([st.pending[0], st.pending[1], st.pending[2], st.pending[3]]) as usize;
                if st.pending.len() < 4 + len {
                    break;
                }
                let frame: Vec<u8> = st.pending.drain(..4 + len).collect();
                let n = st.frames_out;
                st.frames_out += 1;
                let plan = st.plan;
                let fate = if plan.stall_after.is_some_and(|k| n >= k) {
                    st.stalled = true;
                    FrameFate::Stall
                } else if plan.truncate_after.is_some_and(|k| n >= k) {
                    st.dead = true;
                    FrameFate::Truncate
                } else if plan.kill_after.is_some_and(|k| n >= k) {
                    st.dead = true;
                    FrameFate::Kill
                } else if roll(plan.seed, n, 0xD20F) < plan.drop_prob {
                    FrameFate::Drop
                } else {
                    let copies = if roll(plan.seed, n, 0xD0B1) < plan.dup_prob { 2 } else { 1 };
                    FrameFate::Forward { delay_ms: plan.delay_ms, copies }
                };
                actions.push((frame, fate));
            }
        }
        for (frame, fate) in actions {
            match fate {
                FrameFate::Forward { delay_ms, copies } => {
                    if delay_ms > 0 {
                        std::thread::sleep(Duration::from_millis(delay_ms));
                    }
                    for _ in 0..copies {
                        self.inner.write_all(&frame)?;
                    }
                }
                FrameFate::Drop | FrameFate::Stall => {}
                FrameFate::Truncate => {
                    // A torn write: half the frame, then the plug is pulled.
                    let _ = self.inner.write_all(&frame[..frame.len() / 2]);
                    let _ = self.inner.flush();
                    self.inner.shutdown();
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "chaos: truncated frame"));
                }
                FrameFate::Kill => {
                    self.inner.shutdown();
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "chaos: connection killed"));
                }
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        let blocked = {
            let st = self.state.lock().unwrap();
            st.dead || st.stalled
        };
        if blocked {
            return Ok(());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing_picks_the_family() {
        assert_eq!(Endpoint::parse("127.0.0.1:7070"), Endpoint::Tcp("127.0.0.1:7070".into()));
        assert_eq!(Endpoint::parse("/tmp/nebula.sock"), Endpoint::Uds(PathBuf::from("/tmp/nebula.sock")));
        assert_eq!(Endpoint::parse("./run.sock"), Endpoint::Uds(PathBuf::from("./run.sock")));
    }

    /// (chaos sender, plain receiver) over a socketpair.
    fn chaos_pair(plan: NetFaultPlan) -> (Conn, Conn) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        (Conn::Uds(a).chaos(plan), Conn::Uds(b))
    }

    fn send_frames(conn: &mut Conn, n: usize) {
        use nebula_wire::stream::write_frame;
        for i in 0..n {
            let body = vec![i as u8; 8 + i];
            let _ = write_frame(conn, &body);
        }
    }

    fn recv_frames(conn: &mut Conn) -> Vec<Vec<u8>> {
        use nebula_wire::stream::read_frame;
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while let Ok(true) = read_frame(conn, 1 << 20, &mut buf) {
            out.push(buf.clone());
        }
        out
    }

    /// The same seed perturbs the same frame stream identically, and a
    /// different seed perturbs it differently — the property the chaos
    /// scorecard's determinism gate rests on.
    #[test]
    fn chaos_drop_and_dup_are_seed_deterministic() {
        let run = |seed: u64| {
            let plan = NetFaultPlan { drop_prob: 0.4, dup_prob: 0.3, ..NetFaultPlan::seeded(seed) };
            let (mut tx, mut rx) = chaos_pair(plan);
            send_frames(&mut tx, 32);
            tx.shutdown();
            recv_frames(&mut rx)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must produce the same surviving frame sequence");
        assert!(a.len() < 64, "with drop_prob 0.4 not every frame (and dup) can survive");
        let c = run(8);
        assert_ne!(a, c, "a different seed must perturb differently");
    }

    /// kill_after severs the stream at an exact frame boundary; the
    /// receiver sees precisely the surviving prefix and then EOF.
    #[test]
    fn chaos_kill_after_cuts_at_the_frame_boundary() {
        let plan = NetFaultPlan { kill_after: Some(3), ..NetFaultPlan::seeded(1) };
        let (mut tx, mut rx) = chaos_pair(plan);
        send_frames(&mut tx, 10);
        let got = recv_frames(&mut rx);
        assert_eq!(got.len(), 3, "exactly kill_after frames must survive");
    }

    /// A stalled connection swallows writes without erroring (half-open:
    /// the peer sees silence, not a close) and the read half unblocks
    /// only when the peer hangs up.
    #[test]
    fn chaos_stall_goes_half_open_until_peer_close() {
        let plan = NetFaultPlan { stall_after: Some(1), ..NetFaultPlan::seeded(1) };
        let (mut tx, mut rx) = chaos_pair(plan);
        send_frames(&mut tx, 5); // frame 0 passes, the rest vanish without error
        let mut reader = tx.try_clone().expect("clone shares the stall state");
        let peer = std::thread::spawn(move || {
            // Bounded read: the stalled sender will never complete frame 2.
            rx.set_read_timeout(Some(Duration::from_millis(300))).expect("timeout");
            let got = recv_frames(&mut rx);
            rx.shutdown();
            got
        });
        // The stalled read must block until the peer closes, then EOF.
        let mut scratch = [0u8; 64];
        use std::io::Read;
        assert_eq!(reader.read(&mut scratch).expect("stalled read ends at peer close"), 0);
        let got = peer.join().expect("peer thread");
        assert_eq!(got.len(), 1, "only the pre-stall frame may reach the peer");
    }
}
