//! The cloud coordinator: listeners, the worker registry, and the
//! socket transport with its deadline-driven round barrier.
//!
//! ## Round barrier
//!
//! [`SocketTransport::round_trip`] installs the batch as the current
//! round, spreads the jobs round-robin over the live workers, and
//! blocks on a condvar until every slot is resolved or the wall-clock
//! deadline passes. Results stream in on per-worker reader threads.
//!
//! ## Failure semantics
//!
//! A worker that dies mid-round (reader hits EOF/error, or a send
//! fails) is dropped from the registry and its outstanding jobs are
//! *reassigned* to the survivors, each reassignment consuming one unit
//! of the job's retry budget ([`nebula_core::RetryPolicy`], the same
//! policy family the simulated fault paths use). A job that exhausts
//! the budget — or has no surviving worker to go to — resolves to
//! [`TransportError::Closed`]; jobs still unresolved at the deadline
//! resolve to [`TransportError::Timeout`]. The strategy above maps
//! every error onto its existing `link_dropped` fate, so a dying or
//! straggling worker degrades the round exactly like a simulated lossy
//! cohort and can never hang the run.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use nebula_core::{DispatchJob, JobResult, RetryPolicy, Transport, TransportError};
use nebula_telemetry::Telemetry;
use nebula_wire::hello::{decode_hello, encode_hello_ack, HelloAck, HELLO_PROTO};
use nebula_wire::stream::{read_frame, write_frame, DEFAULT_MAX_FRAME_LEN};
use nebula_wire::{CodecKind, FrameKey};

use crate::netio::Conn;
use crate::proto::{self, JobTag, Message};
use crate::{ServeError, WorkerRunConfig};

/// Coordinator deployment knobs.
pub struct ServeConfig {
    /// TCP listen address (`host:port`), if any.
    pub tcp: Option<String>,
    /// Unix-domain socket path, if any (an existing file is replaced).
    pub uds: Option<PathBuf>,
    /// Shared master key; when set the handshake and all job traffic
    /// are MAC'd and unauthenticated workers are rejected.
    pub auth_key: Option<[u8; 16]>,
    /// What admitted workers are told to run.
    pub worker_config: WorkerRunConfig,
    /// Round barrier wall-clock deadline.
    pub deadline_ms: u64,
    /// Reassignment budget for jobs on dying workers.
    pub retry: RetryPolicy,
    /// Hostile-length cap for inbound frames.
    pub max_frame_len: usize,
    pub telemetry: Telemetry,
}

impl ServeConfig {
    /// A config with no listeners yet: set `tcp` and/or `uds` before
    /// [`Coordinator::bind`].
    pub fn new(worker_config: WorkerRunConfig) -> Self {
        ServeConfig {
            tcp: None,
            uds: None,
            auth_key: None,
            worker_config,
            deadline_ms: 60_000,
            retry: RetryPolicy::default(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            telemetry: Telemetry::off(),
        }
    }
}

/// One admitted worker connection.
struct WorkerHandle {
    name: String,
    /// Write half; reads happen on the connection's own reader thread.
    writer: Arc<Mutex<Conn>>,
}

/// The in-flight round, if any.
struct RoundState {
    /// Barrier epoch this round's jobs were stamped with — monotonic
    /// across rounds, so a straggler result from a round that already
    /// hit the deadline can never land in a later round's slot.
    epoch: u64,
    jobs: Vec<DispatchJob>,
    /// Per job: (owning worker id, dispatch attempt). Worker ids start
    /// at 1, so the initial `(0, 0)` never matches a real owner.
    assigned: Vec<(u64, u32)>,
    results: Vec<Option<Result<JobResult, TransportError>>>,
    outstanding: usize,
}

struct Shared {
    key: Option<FrameKey>,
    config_json: String,
    deadline_ms: u64,
    retry: RetryPolicy,
    max_frame_len: usize,
    telemetry: Telemetry,
    workers: Mutex<BTreeMap<u64, WorkerHandle>>,
    round: Mutex<Option<RoundState>>,
    round_done: Condvar,
    next_worker_id: AtomicU64,
    /// Source of [`RoundState::epoch`]; bumped once per `round_trip`.
    round_epoch: AtomicU64,
    rounds_completed: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    /// Live worker writers, in id order. Never held together with the
    /// round lock — callers snapshot, release, then lock the round.
    fn live_workers(&self) -> Vec<(u64, Arc<Mutex<Conn>>)> {
        let map = self.workers.lock().unwrap();
        map.iter().map(|(id, w)| (*id, Arc::clone(&w.writer))).collect()
    }

    /// Resolves `job_idx` under the round lock (idempotent).
    fn resolve(&self, st: &mut RoundState, job_idx: usize, outcome: Result<JobResult, TransportError>) {
        if st.results[job_idx].is_some() {
            return;
        }
        match &outcome {
            Ok(_) => self.telemetry.counter_add("serve.results_ok", 1),
            Err(_) => self.telemetry.counter_add("serve.results_failed", 1),
        }
        st.results[job_idx] = Some(outcome);
        st.outstanding -= 1;
        if st.outstanding == 0 {
            self.round_done.notify_all();
        }
    }

    /// Records the assignment and encodes under the round lock, writes
    /// outside it. Returns false when the write failed (caller drops
    /// the target worker).
    fn send_job(&self, job_idx: usize, target: u64, attempt: u32, writer: &Mutex<Conn>) -> bool {
        let mut buf = Vec::new();
        {
            let mut round = self.round.lock().unwrap();
            let Some(st) = round.as_mut() else { return true };
            if st.results[job_idx].is_some() {
                return true;
            }
            st.assigned[job_idx] = (target, attempt);
            let tag = JobTag {
                job: job_idx as u64,
                attempt,
                epoch: st.epoch,
                device: st.jobs[job_idx].device,
            };
            if let Err(e) = proto::encode_job(&mut buf, &st.jobs[job_idx], tag, self.key.as_ref()) {
                self.resolve(st, job_idx, Err(TransportError::Wire(e.to_string())));
                return true;
            }
        }
        let ok = {
            let mut w = writer.lock().unwrap();
            write_frame(&mut *w, &buf).is_ok()
        };
        if ok {
            self.telemetry.counter_add("serve.jobs_sent", 1);
        }
        ok
    }

    /// A result frame arrived from a worker. Lands only when the echoed
    /// tag matches the current round's epoch and the slot's live
    /// assignment (attempt and device): anything else is a stale echo —
    /// a superseded attempt, or a straggler from a round that already
    /// hit the deadline barrier — and is dropped, not aggregated.
    fn deliver(&self, tag: JobTag, outcome: Result<JobResult, String>) {
        let mut round = self.round.lock().unwrap();
        let Some(st) = round.as_mut() else { return };
        let j = tag.job as usize;
        if tag.epoch != st.epoch
            || j >= st.results.len()
            || st.assigned[j].1 != tag.attempt
            || st.jobs[j].device != tag.device
        {
            self.telemetry.counter_add("serve.stale_results", 1);
            return;
        }
        // A worker-side rejection is deterministic — re-running it
        // elsewhere returns the same refusal, so no retry.
        self.resolve(st, j, outcome.map_err(TransportError::Rejected));
    }

    /// Drops `dead` from the registry and re-homes its unresolved jobs:
    /// each reassignment burns one retry; over-budget (or unplaceable)
    /// jobs resolve to `Closed`. Safe to call repeatedly and from any
    /// thread; recursion through failed resends is bounded by the
    /// worker count.
    fn drop_worker(&self, dead: u64) {
        if self.workers.lock().unwrap().remove(&dead).is_some() {
            self.telemetry.counter_add("serve.workers_lost", 1);
        }
        let live = self.live_workers();
        let mut sends: Vec<(usize, u32, u64, Arc<Mutex<Conn>>)> = Vec::new();
        {
            let mut round = self.round.lock().unwrap();
            let Some(st) = round.as_mut() else { return };
            let mut spread = 0usize;
            for j in 0..st.jobs.len() {
                if st.results[j].is_some() || st.assigned[j].0 != dead {
                    continue;
                }
                let attempt = st.assigned[j].1 + 1;
                if live.is_empty() || attempt > self.retry.max_retries {
                    self.resolve(
                        st,
                        j,
                        Err(TransportError::Closed(format!(
                            "worker {dead} lost (attempt {attempt}/{} budget)",
                            self.retry.max_retries
                        ))),
                    );
                    continue;
                }
                let (wid, writer) = live[spread % live.len()].clone();
                spread += 1;
                st.assigned[j] = (wid, attempt);
                sends.push((j, attempt, wid, writer));
            }
        }
        for (j, attempt, wid, writer) in sends {
            self.telemetry.counter_add("serve.jobs_reassigned", 1);
            if !self.send_job(j, wid, attempt, &writer) {
                self.drop_worker(wid);
            }
        }
    }
}

/// A coordinator: cheaply cloneable handle over the shared serving
/// state (listeners, registry, round barrier).
#[derive(Clone)]
pub struct Coordinator {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
}

impl Coordinator {
    /// Binds the configured listeners and starts accepting workers.
    pub fn bind(cfg: ServeConfig) -> Result<Coordinator, ServeError> {
        let config_json =
            serde_json::to_string(&cfg.worker_config).map_err(|e| ServeError::Proto(e.to_string()))?;
        let shared = Arc::new(Shared {
            key: cfg.auth_key.map(|k| FrameKey::from_bytes(&k)),
            config_json,
            deadline_ms: cfg.deadline_ms,
            retry: cfg.retry,
            max_frame_len: cfg.max_frame_len,
            telemetry: cfg.telemetry,
            workers: Mutex::new(BTreeMap::new()),
            round: Mutex::new(None),
            round_done: Condvar::new(),
            next_worker_id: AtomicU64::new(1),
            round_epoch: AtomicU64::new(0),
            rounds_completed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let mut tcp_addr = None;
        if let Some(addr) = &cfg.tcp {
            let listener = TcpListener::bind(addr)?;
            tcp_addr = Some(listener.local_addr()?);
            let s = Arc::clone(&shared);
            thread::spawn(move || accept_tcp(listener, s));
        }
        if let Some(path) = &cfg.uds {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            let s = Arc::clone(&shared);
            thread::spawn(move || accept_uds(listener, s));
        }
        Ok(Coordinator { shared, tcp_addr, uds_path: cfg.uds })
    }

    /// The bound TCP address (useful after binding port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    pub fn worker_count(&self) -> usize {
        self.shared.workers.lock().unwrap().len()
    }

    /// Names of the live workers, in id order (ops/status surface).
    pub fn worker_names(&self) -> Vec<String> {
        self.shared.workers.lock().unwrap().values().map(|w| w.name.clone()).collect()
    }

    pub fn rounds_completed(&self) -> u64 {
        self.shared.rounds_completed.load(Ordering::SeqCst)
    }

    /// Polls until at least `n` workers are registered. Returns false
    /// on timeout.
    pub fn wait_for_workers(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.worker_count() < n {
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(10));
        }
        true
    }

    /// A transport handle for `Runner::transport` /
    /// `AdaptStrategy::set_transport`. Many handles may exist; one round
    /// runs at a time (the strategy drives rounds sequentially).
    pub fn transport(&self) -> SocketTransport {
        SocketTransport { shared: Arc::clone(&self.shared) }
    }

    /// The telemetry registry snapshot as JSON (`{}` when telemetry is
    /// off). What `/metrics` serves.
    pub fn metrics_json(&self) -> String {
        match self.shared.telemetry.metrics() {
            Some(snap) => serde_json::to_string(&snap).unwrap_or_else(|_| "{}".into()),
            None => "{}".into(),
        }
    }

    /// Tells every worker to drain and exit, then closes the listeners.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let mut buf = Vec::new();
        if proto::encode_shutdown(&mut buf, self.shared.key.as_ref()).is_ok() {
            for (_, writer) in self.shared.live_workers() {
                let mut w = writer.lock().unwrap();
                let _ = write_frame(&mut *w, &buf);
                w.shutdown();
            }
        }
        // Dial the listeners once so their accept loops observe the flag.
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(path) = &self.uds_path {
            let _ = UnixStream::connect(path);
            let _ = std::fs::remove_file(path);
        }
    }
}

fn accept_tcp(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(s) = stream {
            s.set_nodelay(true).ok();
            spawn_conn(Conn::Tcp(s), Arc::clone(&shared));
        }
    }
}

fn accept_uds(listener: UnixListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(s) = stream {
            spawn_conn(Conn::Uds(s), Arc::clone(&shared));
        }
    }
}

fn spawn_conn(conn: Conn, shared: Arc<Shared>) {
    shared.telemetry.counter_add("serve.connections", 1);
    thread::spawn(move || {
        if handshake_and_serve(conn, &shared).is_err() {
            shared.telemetry.counter_add("serve.handshake_failed", 1);
        }
    });
}

/// Admits one connection: hello → validate → ack (+ run config), then
/// runs the connection's reader loop until EOF/error.
fn handshake_and_serve(mut conn: Conn, shared: &Arc<Shared>) -> Result<(), ServeError> {
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut buf = Vec::new();
    if !read_frame(&mut conn, shared.max_frame_len, &mut buf)? {
        return Err(ServeError::Handshake("closed before hello".into()));
    }
    let hello = decode_hello(&buf, shared.key.as_ref())
        .map_err(|e| ServeError::Handshake(format!("bad hello: {e:?}")))?;
    let reject = |reason: &str| HelloAck {
        accepted: false,
        codec: CodecKind::Raw,
        worker_id: 0,
        reason: reason.into(),
        config_json: String::new(),
    };
    let ack = if hello.proto != HELLO_PROTO {
        reject(&format!("unsupported handshake revision {}", hello.proto))
    } else if hello.codec != CodecKind::Raw {
        // Stateful codecs would need the coordinator's channel state on
        // the worker; the serving plane speaks Raw only.
        reject(&format!("codec {:?} not served; speak Raw", hello.codec))
    } else {
        HelloAck {
            accepted: true,
            codec: CodecKind::Raw,
            worker_id: shared.next_worker_id.fetch_add(1, Ordering::SeqCst),
            reason: String::new(),
            config_json: shared.config_json.clone(),
        }
    };
    encode_hello_ack(&mut buf, &ack, shared.key.as_ref());
    write_frame(&mut conn, &buf)?;
    if !ack.accepted {
        return Err(ServeError::Handshake(ack.reason));
    }
    conn.set_read_timeout(None)?;

    let id = ack.worker_id;
    let writer = Arc::new(Mutex::new(conn.try_clone()?));
    shared.workers.lock().unwrap().insert(id, WorkerHandle { name: hello.name.clone(), writer });
    shared.telemetry.counter_add("serve.workers_joined", 1);
    shared.telemetry.emit("serve_worker", |e| {
        e.ints.insert("worker".into(), id);
        e.text.insert("name".into(), hello.name.clone());
    });

    while let Ok(true) = read_frame(&mut conn, shared.max_frame_len, &mut buf) {
        match proto::decode_message(&buf, shared.key.as_ref()) {
            Ok(Message::Result(tag, outcome)) => {
                shared.deliver(tag, outcome);
            }
            Ok(_) => {}
            Err(_) => {
                // An undecodable frame (MAC mismatch, corruption) means
                // the stream can no longer be trusted: drop the worker
                // now so its outstanding jobs reassign immediately
                // instead of idling until the round deadline.
                shared.telemetry.counter_add("serve.bad_frames", 1);
                break;
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    shared.drop_worker(id);
    Ok(())
}

/// The remote [`Transport`]: ships each round's jobs to the registered
/// workers and blocks on the deadline barrier.
pub struct SocketTransport {
    shared: Arc<Shared>,
}

impl Transport for SocketTransport {
    fn kind(&self) -> &'static str {
        "socket"
    }

    fn round_trip(&mut self, jobs: Vec<DispatchJob>) -> Vec<Result<JobResult, TransportError>> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut span = self.shared.telemetry.span("serve.round_trip");
        span.int("jobs", n as u64);
        let live = self.shared.live_workers();
        if live.is_empty() {
            self.shared.telemetry.counter_add("serve.rounds_unserved", 1);
            return (0..n).map(|_| Err(TransportError::Closed("no workers connected".into()))).collect();
        }
        let epoch = self.shared.round_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        *self.shared.round.lock().unwrap() = Some(RoundState {
            epoch,
            jobs,
            assigned: vec![(0, 0); n],
            results: vec![None; n],
            outstanding: n,
        });
        for j in 0..n {
            let (wid, writer) = live[j % live.len()].clone();
            if !self.shared.send_job(j, wid, 0, &writer) {
                self.shared.drop_worker(wid);
            }
        }

        let started = Instant::now();
        let deadline = started + Duration::from_millis(self.shared.deadline_ms);
        let mut round = self.shared.round.lock().unwrap();
        loop {
            let outstanding = round.as_ref().map_or(0, |st| st.outstanding);
            if outstanding == 0 {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                // Stragglers missed the barrier: the round degrades, it
                // does not hang.
                let waited_ms = started.elapsed().as_millis() as u64;
                if let Some(st) = round.as_mut() {
                    for j in 0..st.results.len() {
                        if st.results[j].is_none() {
                            self.shared.resolve(st, j, Err(TransportError::Timeout { waited_ms }));
                        }
                    }
                }
                self.shared.telemetry.counter_add("serve.round_timeouts", 1);
                break;
            }
            let (guard, _) = self.shared.round_done.wait_timeout(round, deadline - now).unwrap();
            round = guard;
        }
        let st = round.take().expect("round state present until the barrier resolves");
        drop(round);
        self.shared.rounds_completed.fetch_add(1, Ordering::SeqCst);
        st.results
            .into_iter()
            .map(|r| r.unwrap_or(Err(TransportError::Closed("round aborted".into()))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_core::{JobSpec, TrainParams};
    use nebula_data::Dataset;
    use nebula_tensor::Tensor;

    fn shared() -> Shared {
        Shared {
            key: None,
            config_json: String::new(),
            deadline_ms: 1_000,
            retry: RetryPolicy::default(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            telemetry: Telemetry::off(),
            workers: Mutex::new(BTreeMap::new()),
            round: Mutex::new(None),
            round_done: Condvar::new(),
            next_worker_id: AtomicU64::new(1),
            round_epoch: AtomicU64::new(0),
            rounds_completed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    fn toy_job(device: u64) -> DispatchJob {
        let xs: Vec<f32> = (0..8).map(|i| i as f32).collect();
        DispatchJob {
            round: 0,
            device,
            spec: JobSpec::Dense {
                input: 4,
                width: 4,
                blocks: 1,
                block_hidden: 4,
                classes: 2,
                ratio: 1.0,
                params: vec![0.0; 4],
            },
            rng_state: [1, 2, 3, 4],
            train: TrainParams { epochs: 1, batch_size: 4, lr: 0.1 },
            data: Dataset::new(Tensor::from_vec(xs, &[2, 4]), vec![0, 1], 2),
        }
    }

    fn install_round(s: &Shared, epoch: u64, devices: &[u64]) {
        let jobs: Vec<DispatchJob> = devices.iter().map(|&d| toy_job(d)).collect();
        let n = jobs.len();
        *s.round.lock().unwrap() = Some(RoundState {
            epoch,
            jobs,
            assigned: vec![(1, 0); n],
            results: vec![None; n],
            outstanding: n,
        });
    }

    fn outstanding(s: &Shared) -> usize {
        s.round.lock().unwrap().as_ref().map_or(0, |st| st.outstanding)
    }

    /// The stale-result guard: a result only lands when its epoch,
    /// attempt and device all match the slot's live assignment. In
    /// particular a straggler from a previous round (older epoch, same
    /// slot at attempt 0) must never be accepted as the new round's
    /// update.
    #[test]
    fn deliver_rejects_stale_epoch_attempt_and_device() {
        let s = shared();
        install_round(&s, 2, &[7, 8]);
        let ok: Result<JobResult, String> = Ok(JobResult::Params(vec![1.0]));
        // Previous round's straggler: old epoch, otherwise a perfect match.
        s.deliver(JobTag { job: 0, attempt: 0, epoch: 1, device: 7 }, ok.clone());
        // Superseded attempt.
        s.deliver(JobTag { job: 0, attempt: 5, epoch: 2, device: 7 }, ok.clone());
        // Right slot, wrong device.
        s.deliver(JobTag { job: 0, attempt: 0, epoch: 2, device: 8 }, ok.clone());
        // Out-of-range slot.
        s.deliver(JobTag { job: 9, attempt: 0, epoch: 2, device: 7 }, ok.clone());
        assert_eq!(outstanding(&s), 2, "no stale echo may resolve a slot");
        // The genuine copy still lands.
        s.deliver(JobTag { job: 0, attempt: 0, epoch: 2, device: 7 }, ok);
        assert_eq!(outstanding(&s), 1);
        let round = s.round.lock().unwrap();
        let st = round.as_ref().unwrap();
        assert!(st.results[0].is_some() && st.results[1].is_none());
    }
}
