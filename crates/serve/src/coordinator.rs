//! The cloud coordinator: listeners, the worker registry, and the
//! socket transport with its deadline-driven round barrier.
//!
//! ## Round barrier
//!
//! [`SocketTransport::round_trip`] installs the batch as the current
//! round, spreads the jobs round-robin over the live workers, and
//! blocks on a condvar until every slot is resolved or the wall-clock
//! deadline passes. Results stream in on per-worker reader threads.
//!
//! ## Failure semantics
//!
//! A worker that dies mid-round (reader hits EOF/error, or a send
//! fails) is dropped from the registry and its outstanding jobs are
//! *reassigned* to the survivors, each reassignment consuming one unit
//! of the job's retry budget ([`nebula_core::RetryPolicy`], the same
//! policy family the simulated fault paths use). A job that exhausts
//! the budget — or has no surviving worker to go to — resolves to
//! [`TransportError::Closed`]; jobs still unresolved at the deadline
//! resolve to [`TransportError::Timeout`]. The strategy above maps
//! every error onto its existing `link_dropped` fate, so a dying or
//! straggling worker degrades the round exactly like a simulated lossy
//! cohort and can never hang the run.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use nebula_core::{DispatchJob, JobResult, RetryPolicy, Transport, TransportError};
use nebula_telemetry::Telemetry;
use nebula_wire::hello::{decode_hello, encode_hello_ack, HelloAck, HELLO_PROTO};
use nebula_wire::stream::{read_frame, write_frame, DEFAULT_MAX_FRAME_LEN};
use nebula_wire::{CodecKind, FrameKey};

use crate::netio::Conn;
use crate::proto::{self, JobTag, Message};
use crate::{ServeError, WorkerRunConfig};

/// Coordinator deployment knobs.
pub struct ServeConfig {
    /// TCP listen address (`host:port`), if any.
    pub tcp: Option<String>,
    /// Unix-domain socket path, if any (an existing file is replaced).
    pub uds: Option<PathBuf>,
    /// Shared master key; when set the handshake and all job traffic
    /// are MAC'd and unauthenticated workers are rejected.
    pub auth_key: Option<[u8; 16]>,
    /// What admitted workers are told to run.
    pub worker_config: WorkerRunConfig,
    /// Round barrier wall-clock deadline.
    pub deadline_ms: u64,
    /// Reassignment budget for jobs on dying workers.
    pub retry: RetryPolicy,
    /// Hostile-length cap for inbound frames.
    pub max_frame_len: usize,
    /// Evict a worker that has been silent (no result, no pong) for this
    /// long. `0` disables liveness: a half-open connection then costs the
    /// full `deadline_ms`, as it did before liveness existed. When on,
    /// the coordinator pings every worker at a quarter of this interval;
    /// workers answer from their reader thread, so a busy-but-live
    /// worker always answers promptly while a frozen one stays silent.
    pub liveness_timeout_ms: u64,
    /// Speculatively re-dispatch a job still unresolved after this long
    /// to a second live worker (a *hedge*, at a bumped attempt). `0`
    /// disables hedging. Whichever copy answers first resolves the slot;
    /// the loser is counted, never aggregated. Hedges do not consume the
    /// retry budget — they are a latency bet, not a failure response.
    pub hedge_after_ms: u64,
    pub telemetry: Telemetry,
}

impl ServeConfig {
    /// A config with no listeners yet: set `tcp` and/or `uds` before
    /// [`Coordinator::bind`].
    pub fn new(worker_config: WorkerRunConfig) -> Self {
        ServeConfig {
            tcp: None,
            uds: None,
            auth_key: None,
            worker_config,
            deadline_ms: 60_000,
            retry: RetryPolicy::default(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            liveness_timeout_ms: 0,
            hedge_after_ms: 0,
            telemetry: Telemetry::off(),
        }
    }
}

/// One admitted worker connection.
struct WorkerHandle {
    name: String,
    /// Write half; reads happen on the connection's own reader thread.
    writer: Arc<Mutex<Conn>>,
    /// Unguarded shutdown handle: severing a connection must not wait
    /// on the writer mutex — a writer blocked mid-write on a half-open
    /// socket's full buffer is exactly what eviction needs to unblock.
    closer: Conn,
    /// Milliseconds (on the coordinator's clock, [`Shared::now_ms`]) of
    /// the last inbound frame from this worker. Shared with the reader
    /// thread, which stamps it without touching the registry lock.
    last_seen: Arc<AtomicU64>,
}

/// The in-flight round, if any.
struct RoundState {
    /// Barrier epoch this round's jobs were stamped with — monotonic
    /// across rounds, so a straggler result from a round that already
    /// hit the deadline can never land in a later round's slot.
    epoch: u64,
    jobs: Vec<DispatchJob>,
    /// Per job: (owning worker id, dispatch attempt). Worker ids start
    /// at 1, so the initial `(0, 0)` never matches a real owner.
    assigned: Vec<(u64, u32)>,
    /// Per job: the secondary in-flight copy `(worker, attempt)` when a
    /// hedge was dispatched. Either copy may resolve the slot; the other
    /// is then a counted duplicate.
    hedge: Vec<Option<(u64, u32)>>,
    /// Per job: a hedge was attempted (at most one per job per round).
    hedged: Vec<bool>,
    /// Per job: highest attempt number ever issued. Every dispatch —
    /// initial, reassignment, or hedge — reserves `issued + 1`, so no
    /// two copies of a job can ever share an attempt number and a
    /// straggler from any superseded dispatch can never collide with a
    /// live one.
    issued: Vec<u32>,
    /// Per job: reassignments consumed from the retry budget (hedges
    /// are free — they race the original, they don't replace it).
    retries_used: Vec<u32>,
    /// Per job: when the primary copy was (re)dispatched; what the
    /// hedging timer measures against.
    sent_at: Vec<Instant>,
    results: Vec<Option<Result<JobResult, TransportError>>>,
    outstanding: usize,
}

impl RoundState {
    fn new(epoch: u64, jobs: Vec<DispatchJob>) -> RoundState {
        let n = jobs.len();
        RoundState {
            epoch,
            jobs,
            assigned: vec![(0, 0); n],
            hedge: vec![None; n],
            hedged: vec![false; n],
            issued: vec![0; n],
            retries_used: vec![0; n],
            sent_at: vec![Instant::now(); n],
            results: vec![None; n],
            outstanding: n,
        }
    }
}

struct Shared {
    key: Option<FrameKey>,
    config_json: String,
    deadline_ms: u64,
    retry: RetryPolicy,
    max_frame_len: usize,
    liveness_timeout_ms: u64,
    hedge_after_ms: u64,
    telemetry: Telemetry,
    workers: Mutex<BTreeMap<u64, WorkerHandle>>,
    round: Mutex<Option<RoundState>>,
    round_done: Condvar,
    next_worker_id: AtomicU64,
    /// Source of [`RoundState::epoch`]; bumped once per `round_trip`.
    round_epoch: AtomicU64,
    rounds_completed: AtomicU64,
    /// Zero point of [`Shared::now_ms`] (liveness stamps, `/healthz` age).
    started_at: Instant,
    /// `now_ms()` when the last round barrier resolved; `u64::MAX` =
    /// no round has completed yet.
    last_round_ms: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    /// Milliseconds since the coordinator started: the clock liveness
    /// stamps and `/healthz` ages are expressed in.
    fn now_ms(&self) -> u64 {
        self.started_at.elapsed().as_millis() as u64
    }

    /// Live worker writers, in id order. Never held together with the
    /// round lock — callers snapshot, release, then lock the round.
    fn live_workers(&self) -> Vec<(u64, Arc<Mutex<Conn>>)> {
        let map = self.workers.lock().unwrap();
        map.iter().map(|(id, w)| (*id, Arc::clone(&w.writer))).collect()
    }

    /// Resolves `job_idx` under the round lock (idempotent).
    fn resolve(&self, st: &mut RoundState, job_idx: usize, outcome: Result<JobResult, TransportError>) {
        if st.results[job_idx].is_some() {
            return;
        }
        match &outcome {
            Ok(_) => self.telemetry.counter_add("serve.results_ok", 1),
            Err(_) => self.telemetry.counter_add("serve.results_failed", 1),
        }
        st.results[job_idx] = Some(outcome);
        st.outstanding -= 1;
        if st.outstanding == 0 {
            self.round_done.notify_all();
        }
    }

    /// Records the dispatch and encodes under the round lock, writes
    /// outside it. A primary send updates the slot's live assignment
    /// (and restarts its hedge timer); a hedge send records the second
    /// in-flight copy. Returns false when the write failed (caller
    /// drops the target worker).
    fn send_copy(
        &self,
        job_idx: usize,
        target: u64,
        attempt: u32,
        writer: &Mutex<Conn>,
        hedge: bool,
    ) -> bool {
        let mut buf = Vec::new();
        {
            let mut round = self.round.lock().unwrap();
            let Some(st) = round.as_mut() else { return true };
            if st.results[job_idx].is_some() {
                return true;
            }
            if hedge {
                st.hedge[job_idx] = Some((target, attempt));
            } else {
                st.assigned[job_idx] = (target, attempt);
                st.sent_at[job_idx] = Instant::now();
            }
            st.issued[job_idx] = st.issued[job_idx].max(attempt);
            let tag =
                JobTag { job: job_idx as u64, attempt, epoch: st.epoch, device: st.jobs[job_idx].device };
            if let Err(e) = proto::encode_job(&mut buf, &st.jobs[job_idx], tag, self.key.as_ref()) {
                self.resolve(st, job_idx, Err(TransportError::Wire(e.to_string())));
                return true;
            }
        }
        let ok = {
            let mut w = writer.lock().unwrap();
            write_frame(&mut *w, &buf).is_ok()
        };
        if ok {
            self.telemetry.counter_add("serve.jobs_sent", 1);
        }
        ok
    }

    fn send_job(&self, job_idx: usize, target: u64, attempt: u32, writer: &Mutex<Conn>) -> bool {
        self.send_copy(job_idx, target, attempt, writer, false)
    }

    /// A result frame arrived from a worker. Lands only when the echoed
    /// tag matches the current round's epoch, the slot's device, and one
    /// of the slot's *live* attempts — the primary assignment or its
    /// hedge: anything else is a stale echo (a superseded attempt, or a
    /// straggler from a round that already hit the deadline barrier) and
    /// is dropped, not aggregated. When both live copies answer, the
    /// first resolves the slot and the second is counted as a duplicate
    /// — also never aggregated.
    fn deliver(&self, tag: JobTag, outcome: Result<JobResult, String>) {
        let mut round = self.round.lock().unwrap();
        let Some(st) = round.as_mut() else { return };
        let j = tag.job as usize;
        if tag.epoch != st.epoch || j >= st.results.len() || st.jobs[j].device != tag.device {
            self.telemetry.counter_add("serve.stale_results", 1);
            return;
        }
        let primary = st.assigned[j].1 == tag.attempt;
        let hedged = st.hedge[j].is_some_and(|(_, a)| a == tag.attempt);
        if !primary && !hedged {
            self.telemetry.counter_add("serve.stale_results", 1);
            return;
        }
        if st.results[j].is_some() {
            // The other copy of a hedged pair already landed.
            self.telemetry.counter_add("serve.dup_results", 1);
            return;
        }
        if hedged && !primary {
            self.telemetry.counter_add("serve.hedge_wins", 1);
        } else if st.hedge[j].is_some() {
            self.telemetry.counter_add("serve.hedge_losses", 1);
        }
        // A worker-side rejection is deterministic — re-running it
        // elsewhere returns the same refusal, so no retry.
        self.resolve(st, j, outcome.map_err(TransportError::Rejected));
    }

    /// Drops `dead` from the registry, severs its socket (so both the
    /// blocked reader thread and the remote process observe the drop),
    /// and re-homes its unresolved jobs: a job whose hedge copy is still
    /// in flight on a live worker is promoted to that copy for free;
    /// every true reassignment burns one retry; over-budget (or
    /// unplaceable) jobs resolve to `Closed`. Safe to call repeatedly
    /// and from any thread; recursion through failed resends is bounded
    /// by the worker count.
    fn drop_worker(&self, dead: u64) {
        let handle = self.workers.lock().unwrap().remove(&dead);
        if let Some(w) = handle {
            self.telemetry.counter_add("serve.workers_lost", 1);
            w.closer.shutdown();
        }
        let live = self.live_workers();
        let mut sends: Vec<(usize, u32, u64, Arc<Mutex<Conn>>)> = Vec::new();
        {
            let mut round = self.round.lock().unwrap();
            let Some(st) = round.as_mut() else { return };
            let mut spread = 0usize;
            for j in 0..st.jobs.len() {
                if st.results[j].is_some() {
                    continue;
                }
                if st.hedge[j].is_some_and(|(w, _)| w == dead) {
                    st.hedge[j] = None;
                }
                if st.assigned[j].0 != dead {
                    continue;
                }
                if let Some((hw, ha)) = st.hedge[j] {
                    // The hedge copy is already in flight on a live
                    // worker: promote it to primary, no resend needed.
                    st.assigned[j] = (hw, ha);
                    st.hedge[j] = None;
                    continue;
                }
                let used = st.retries_used[j] + 1;
                if live.is_empty() || used > self.retry.max_retries {
                    self.resolve(
                        st,
                        j,
                        Err(TransportError::Closed(format!(
                            "worker {dead} lost (retry {used}/{} budget)",
                            self.retry.max_retries
                        ))),
                    );
                    continue;
                }
                st.retries_used[j] = used;
                let attempt = st.issued[j] + 1;
                st.issued[j] = attempt;
                let (wid, writer) = live[spread % live.len()].clone();
                spread += 1;
                st.assigned[j] = (wid, attempt);
                sends.push((j, attempt, wid, writer));
            }
        }
        for (j, attempt, wid, writer) in sends {
            self.telemetry.counter_add("serve.jobs_reassigned", 1);
            if !self.send_job(j, wid, attempt, &writer) {
                self.drop_worker(wid);
            }
        }
    }

    /// Liveness eviction: sever the socket first (waking the worker's
    /// blocked reader into the drop path) and reassign through
    /// [`Shared::drop_worker`].
    fn evict_worker(&self, id: u64) {
        self.telemetry.counter_add("serve.workers_evicted", 1);
        self.drop_worker(id);
    }
}

/// The liveness loop: every quarter-timeout, ping every worker and
/// evict any that has been silent past the timeout. Workers answer
/// pings from their reader thread, so silence means a frozen process or
/// a half-open connection — exactly what the round barrier cannot see
/// on its own (a dead-but-ACKing socket never errors a write).
fn liveness_monitor(shared: Arc<Shared>) {
    let timeout = shared.liveness_timeout_ms;
    let interval = (timeout / 4).clamp(10, 1_000);
    let mut buf = Vec::new();
    let mut nonce = 0u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Sleep in short steps so shutdown is observed promptly.
        let mut slept = 0;
        while slept < interval && !shared.shutdown.load(Ordering::SeqCst) {
            let step = (interval - slept).min(25);
            thread::sleep(Duration::from_millis(step));
            slept += step;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        nonce += 1;
        if proto::encode_ping(&mut buf, nonce, shared.key.as_ref()).is_err() {
            continue;
        }
        let snapshot: Vec<(u64, Arc<Mutex<Conn>>, Arc<AtomicU64>)> = {
            let map = shared.workers.lock().unwrap();
            map.iter().map(|(id, w)| (*id, Arc::clone(&w.writer), Arc::clone(&w.last_seen))).collect()
        };
        let now = shared.now_ms();
        for (id, writer, last_seen) in snapshot {
            if now.saturating_sub(last_seen.load(Ordering::SeqCst)) > timeout {
                shared.evict_worker(id);
                continue;
            }
            let ok = {
                let mut w = writer.lock().unwrap();
                write_frame(&mut *w, &buf).is_ok()
            };
            if ok {
                shared.telemetry.counter_add("serve.pings_sent", 1);
            } else {
                shared.drop_worker(id);
            }
        }
    }
}

/// A coordinator: cheaply cloneable handle over the shared serving
/// state (listeners, registry, round barrier).
#[derive(Clone)]
pub struct Coordinator {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
}

impl Coordinator {
    /// Binds the configured listeners and starts accepting workers.
    pub fn bind(cfg: ServeConfig) -> Result<Coordinator, ServeError> {
        let config_json =
            serde_json::to_string(&cfg.worker_config).map_err(|e| ServeError::Proto(e.to_string()))?;
        let shared = Arc::new(Shared {
            key: cfg.auth_key.map(|k| FrameKey::from_bytes(&k)),
            config_json,
            deadline_ms: cfg.deadline_ms,
            retry: cfg.retry,
            max_frame_len: cfg.max_frame_len,
            liveness_timeout_ms: cfg.liveness_timeout_ms,
            hedge_after_ms: cfg.hedge_after_ms,
            telemetry: cfg.telemetry,
            workers: Mutex::new(BTreeMap::new()),
            round: Mutex::new(None),
            round_done: Condvar::new(),
            next_worker_id: AtomicU64::new(1),
            round_epoch: AtomicU64::new(0),
            rounds_completed: AtomicU64::new(0),
            started_at: Instant::now(),
            last_round_ms: AtomicU64::new(u64::MAX),
            shutdown: AtomicBool::new(false),
        });
        if cfg.liveness_timeout_ms > 0 {
            let s = Arc::clone(&shared);
            thread::spawn(move || liveness_monitor(s));
        }
        let mut tcp_addr = None;
        if let Some(addr) = &cfg.tcp {
            let listener = TcpListener::bind(addr)?;
            tcp_addr = Some(listener.local_addr()?);
            let s = Arc::clone(&shared);
            thread::spawn(move || accept_tcp(listener, s));
        }
        if let Some(path) = &cfg.uds {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            let s = Arc::clone(&shared);
            thread::spawn(move || accept_uds(listener, s));
        }
        Ok(Coordinator { shared, tcp_addr, uds_path: cfg.uds })
    }

    /// The bound TCP address (useful after binding port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    pub fn worker_count(&self) -> usize {
        self.shared.workers.lock().unwrap().len()
    }

    /// Names of the live workers, in id order (ops/status surface).
    pub fn worker_names(&self) -> Vec<String> {
        self.shared.workers.lock().unwrap().values().map(|w| w.name.clone()).collect()
    }

    pub fn rounds_completed(&self) -> u64 {
        self.shared.rounds_completed.load(Ordering::SeqCst)
    }

    /// Seconds since the last round barrier resolved; `None` before the
    /// first round. External probes use this to spot a wedged
    /// coordinator that still accepts connections.
    pub fn seconds_since_last_round(&self) -> Option<f64> {
        match self.shared.last_round_ms.load(Ordering::SeqCst) {
            u64::MAX => None,
            at => Some(self.shared.now_ms().saturating_sub(at) as f64 / 1_000.0),
        }
    }

    /// Polls until at least `n` workers are registered. Returns false
    /// on timeout.
    pub fn wait_for_workers(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.worker_count() < n {
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(10));
        }
        true
    }

    /// A transport handle for `Runner::transport` /
    /// `AdaptStrategy::set_transport`. Many handles may exist; one round
    /// runs at a time (the strategy drives rounds sequentially).
    pub fn transport(&self) -> SocketTransport {
        SocketTransport { shared: Arc::clone(&self.shared) }
    }

    /// The telemetry registry snapshot as JSON (`{}` when telemetry is
    /// off). What `/metrics` serves.
    pub fn metrics_json(&self) -> String {
        match self.shared.telemetry.metrics() {
            Some(snap) => serde_json::to_string(&snap).unwrap_or_else(|_| "{}".into()),
            None => "{}".into(),
        }
    }

    /// Tells every worker to drain and exit, then closes the listeners.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let mut buf = Vec::new();
        if proto::encode_shutdown(&mut buf, self.shared.key.as_ref()).is_ok() {
            for (id, writer) in self.shared.live_workers() {
                // The notice alone ends a conforming worker (it severs
                // its own side); severing here could discard the frame
                // from the socket buffer, and a worker that misses it
                // reads the close as a crash and tries to rejoin. Only
                // an unwritable connection is cut outright.
                let failed = {
                    let mut w = writer.lock().unwrap();
                    write_frame(&mut *w, &buf).is_err()
                };
                if failed {
                    self.shared.drop_worker(id);
                }
            }
        }
        self.close_listeners();
    }

    /// Simulates a coordinator crash: slams every worker connection and
    /// the listeners shut *without* the shutdown notice, so workers see
    /// exactly what a killed process leaves behind (EOF mid-session)
    /// and enter their rejoin loop. Chaos-harness use; a production
    /// teardown wants [`Coordinator::shutdown`].
    pub fn abort(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let snapshot: Vec<u64> = self.shared.workers.lock().unwrap().keys().copied().collect();
        for id in snapshot {
            if let Some(w) = self.shared.workers.lock().unwrap().get(&id) {
                w.closer.shutdown();
            }
        }
        self.shared.workers.lock().unwrap().clear();
        self.close_listeners();
    }

    /// Dials the listeners once so their accept loops observe the
    /// shutdown flag, and unlinks the UDS path for a future rebind.
    fn close_listeners(&self) {
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(path) = &self.uds_path {
            let _ = UnixStream::connect(path);
            let _ = std::fs::remove_file(path);
        }
    }
}

fn accept_tcp(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(s) = stream {
            s.set_nodelay(true).ok();
            spawn_conn(Conn::Tcp(s), Arc::clone(&shared));
        }
    }
}

fn accept_uds(listener: UnixListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(s) = stream {
            spawn_conn(Conn::Uds(s), Arc::clone(&shared));
        }
    }
}

fn spawn_conn(conn: Conn, shared: Arc<Shared>) {
    shared.telemetry.counter_add("serve.connections", 1);
    thread::spawn(move || {
        if handshake_and_serve(conn, &shared).is_err() {
            shared.telemetry.counter_add("serve.handshake_failed", 1);
        }
    });
}

/// Admits one connection: hello → validate → ack (+ run config), then
/// runs the connection's reader loop until EOF/error.
fn handshake_and_serve(mut conn: Conn, shared: &Arc<Shared>) -> Result<(), ServeError> {
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut buf = Vec::new();
    if !read_frame(&mut conn, shared.max_frame_len, &mut buf)? {
        return Err(ServeError::Handshake("closed before hello".into()));
    }
    let hello = decode_hello(&buf, shared.key.as_ref())
        .map_err(|e| ServeError::Handshake(format!("bad hello: {e:?}")))?;
    let reject = |reason: &str| HelloAck {
        accepted: false,
        codec: CodecKind::Raw,
        worker_id: 0,
        reason: reason.into(),
        config_json: String::new(),
    };
    let ack = if hello.proto != HELLO_PROTO {
        reject(&format!("unsupported handshake revision {}", hello.proto))
    } else if hello.codec != CodecKind::Raw {
        // Stateful codecs would need the coordinator's channel state on
        // the worker; the serving plane speaks Raw only.
        reject(&format!("codec {:?} not served; speak Raw", hello.codec))
    } else {
        HelloAck {
            accepted: true,
            codec: CodecKind::Raw,
            worker_id: shared.next_worker_id.fetch_add(1, Ordering::SeqCst),
            reason: String::new(),
            config_json: shared.config_json.clone(),
        }
    };
    encode_hello_ack(&mut buf, &ack, shared.key.as_ref());
    write_frame(&mut conn, &buf)?;
    if !ack.accepted {
        return Err(ServeError::Handshake(ack.reason));
    }
    conn.set_read_timeout(None)?;

    let id = ack.worker_id;
    let writer = Arc::new(Mutex::new(conn.try_clone()?));
    let closer = conn.try_clone()?;
    let last_seen = Arc::new(AtomicU64::new(shared.now_ms()));
    shared.workers.lock().unwrap().insert(
        id,
        WorkerHandle { name: hello.name.clone(), writer, closer, last_seen: Arc::clone(&last_seen) },
    );
    shared.telemetry.counter_add("serve.workers_joined", 1);
    shared.telemetry.emit("serve_worker", |e| {
        e.ints.insert("worker".into(), id);
        e.text.insert("name".into(), hello.name.clone());
    });

    while let Ok(true) = read_frame(&mut conn, shared.max_frame_len, &mut buf) {
        // Any well-framed inbound traffic — results, pongs — proves the
        // worker's reader loop is alive.
        last_seen.store(shared.now_ms(), Ordering::SeqCst);
        match proto::decode_message(&buf, shared.key.as_ref()) {
            Ok(Message::Result(tag, outcome)) => {
                shared.deliver(tag, outcome);
            }
            Ok(_) => {}
            Err(_) => {
                // An undecodable frame (MAC mismatch, corruption) means
                // the stream can no longer be trusted: drop the worker
                // now so its outstanding jobs reassign immediately
                // instead of idling until the round deadline.
                shared.telemetry.counter_add("serve.bad_frames", 1);
                break;
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        // Clean teardown. `shutdown()` owns the registry now: it is
        // writing (or has written) the shutdown notice on this very
        // socket, and severing here races the notice out of the stream —
        // the worker reads a torn frame or a bare EOF, mistakes the
        // teardown for a crash, and burns its whole rejoin dial budget
        // against a deployment that no longer exists.
        return Ok(());
    }
    shared.drop_worker(id);
    Ok(())
}

/// The remote [`Transport`]: ships each round's jobs to the registered
/// workers and blocks on the deadline barrier.
pub struct SocketTransport {
    shared: Arc<Shared>,
}

impl Transport for SocketTransport {
    fn kind(&self) -> &'static str {
        "socket"
    }

    fn round_trip(&mut self, jobs: Vec<DispatchJob>) -> Vec<Result<JobResult, TransportError>> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut span = self.shared.telemetry.span("serve.round_trip");
        span.int("jobs", n as u64);
        let live = self.shared.live_workers();
        if live.is_empty() {
            self.shared.telemetry.counter_add("serve.rounds_unserved", 1);
            return (0..n).map(|_| Err(TransportError::Closed("no workers connected".into()))).collect();
        }
        let epoch = self.shared.round_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        *self.shared.round.lock().unwrap() = Some(RoundState::new(epoch, jobs));
        for j in 0..n {
            let (wid, writer) = live[j % live.len()].clone();
            if !self.shared.send_job(j, wid, 0, &writer) {
                self.shared.drop_worker(wid);
            }
        }

        let started = Instant::now();
        let deadline = started + Duration::from_millis(self.shared.deadline_ms);
        let hedge_after = self.shared.hedge_after_ms;
        let mut round = self.shared.round.lock().unwrap();
        loop {
            let outstanding = round.as_ref().map_or(0, |st| st.outstanding);
            if outstanding == 0 {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                // Stragglers missed the barrier: the round degrades, it
                // does not hang.
                let waited_ms = started.elapsed().as_millis() as u64;
                if let Some(st) = round.as_mut() {
                    for j in 0..st.results.len() {
                        if st.results[j].is_none() {
                            self.shared.resolve(st, j, Err(TransportError::Timeout { waited_ms }));
                        }
                    }
                }
                self.shared.telemetry.counter_add("serve.round_timeouts", 1);
                break;
            }
            // The hedge timer: wake early enough to re-dispatch the
            // slowest unresolved jobs to a second worker. Each job is
            // hedged at most once per round, at a freshly reserved
            // attempt number (reserved under the round lock here, sent
            // outside it).
            let mut wake = deadline;
            let mut due: Vec<(usize, u32, u64)> = Vec::new();
            if hedge_after > 0 {
                let h = Duration::from_millis(hedge_after);
                if let Some(st) = round.as_mut() {
                    for j in 0..st.jobs.len() {
                        if st.results[j].is_some() || st.hedged[j] {
                            continue;
                        }
                        let at = st.sent_at[j] + h;
                        if at <= now {
                            st.hedged[j] = true;
                            let attempt = st.issued[j] + 1;
                            st.issued[j] = attempt;
                            due.push((j, attempt, st.assigned[j].0));
                        } else {
                            wake = wake.min(at);
                        }
                    }
                }
            }
            if !due.is_empty() {
                drop(round);
                let live = self.shared.live_workers();
                let mut spread = 0usize;
                for (j, attempt, owner) in due {
                    // Hedge to a worker other than the slow owner; with
                    // no second worker there is nowhere to race the job.
                    let others: Vec<_> = live.iter().filter(|(id, _)| *id != owner).collect();
                    if others.is_empty() {
                        continue;
                    }
                    let (wid, writer) = others[spread % others.len()].clone();
                    spread += 1;
                    self.shared.telemetry.counter_add("serve.jobs_hedged", 1);
                    if !self.shared.send_copy(j, wid, attempt, &writer, true) {
                        self.shared.drop_worker(wid);
                    }
                }
                round = self.shared.round.lock().unwrap();
                continue;
            }
            let (guard, _) = self.shared.round_done.wait_timeout(round, wake - now).unwrap();
            round = guard;
        }
        let st = round.take().expect("round state present until the barrier resolves");
        drop(round);
        self.shared.rounds_completed.fetch_add(1, Ordering::SeqCst);
        self.shared.last_round_ms.store(self.shared.now_ms(), Ordering::SeqCst);
        st.results
            .into_iter()
            .map(|r| r.unwrap_or(Err(TransportError::Closed("round aborted".into()))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_core::{JobSpec, TrainParams};
    use nebula_data::Dataset;
    use nebula_tensor::Tensor;

    fn shared() -> Shared {
        Shared {
            key: None,
            config_json: String::new(),
            deadline_ms: 1_000,
            retry: RetryPolicy::default(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            liveness_timeout_ms: 0,
            hedge_after_ms: 0,
            telemetry: Telemetry::off(),
            workers: Mutex::new(BTreeMap::new()),
            round: Mutex::new(None),
            round_done: Condvar::new(),
            next_worker_id: AtomicU64::new(1),
            round_epoch: AtomicU64::new(0),
            rounds_completed: AtomicU64::new(0),
            started_at: Instant::now(),
            last_round_ms: AtomicU64::new(u64::MAX),
            shutdown: AtomicBool::new(false),
        }
    }

    fn toy_job(device: u64) -> DispatchJob {
        let xs: Vec<f32> = (0..8).map(|i| i as f32).collect();
        DispatchJob {
            round: 0,
            device,
            spec: JobSpec::Dense {
                input: 4,
                width: 4,
                blocks: 1,
                block_hidden: 4,
                classes: 2,
                ratio: 1.0,
                params: vec![0.0; 4],
            },
            rng_state: [1, 2, 3, 4],
            train: TrainParams { epochs: 1, batch_size: 4, lr: 0.1 },
            data: Dataset::new(Tensor::from_vec(xs, &[2, 4]), vec![0, 1], 2),
        }
    }

    fn install_round(s: &Shared, epoch: u64, devices: &[u64]) {
        let jobs: Vec<DispatchJob> = devices.iter().map(|&d| toy_job(d)).collect();
        let n = jobs.len();
        let mut st = RoundState::new(epoch, jobs);
        st.assigned = vec![(1, 0); n];
        *s.round.lock().unwrap() = Some(st);
    }

    /// Marks job `j` as hedged to `(worker, attempt)`, reserving the
    /// attempt number exactly like the barrier's hedge timer does.
    fn install_hedge(s: &Shared, j: usize, worker: u64, attempt: u32) {
        let mut round = s.round.lock().unwrap();
        let st = round.as_mut().unwrap();
        st.hedged[j] = true;
        st.issued[j] = st.issued[j].max(attempt);
        st.hedge[j] = Some((worker, attempt));
    }

    fn outstanding(s: &Shared) -> usize {
        s.round.lock().unwrap().as_ref().map_or(0, |st| st.outstanding)
    }

    fn resolved(s: &Shared, j: usize) -> bool {
        s.round.lock().unwrap().as_ref().is_some_and(|st| st.results[j].is_some())
    }

    /// The stale-result guard: a result only lands when its epoch,
    /// attempt and device all match the slot's live assignment. In
    /// particular a straggler from a previous round (older epoch, same
    /// slot at attempt 0) must never be accepted as the new round's
    /// update.
    #[test]
    fn deliver_rejects_stale_epoch_attempt_and_device() {
        let s = shared();
        install_round(&s, 2, &[7, 8]);
        let ok: Result<JobResult, String> = Ok(JobResult::Params(vec![1.0]));
        // Previous round's straggler: old epoch, otherwise a perfect match.
        s.deliver(JobTag { job: 0, attempt: 0, epoch: 1, device: 7 }, ok.clone());
        // Superseded attempt.
        s.deliver(JobTag { job: 0, attempt: 5, epoch: 2, device: 7 }, ok.clone());
        // Right slot, wrong device.
        s.deliver(JobTag { job: 0, attempt: 0, epoch: 2, device: 8 }, ok.clone());
        // Out-of-range slot.
        s.deliver(JobTag { job: 9, attempt: 0, epoch: 2, device: 7 }, ok.clone());
        assert_eq!(outstanding(&s), 2, "no stale echo may resolve a slot");
        // The genuine copy still lands.
        s.deliver(JobTag { job: 0, attempt: 0, epoch: 2, device: 7 }, ok);
        assert_eq!(outstanding(&s), 1);
        let round = s.round.lock().unwrap();
        let st = round.as_ref().unwrap();
        assert!(st.results[0].is_some() && st.results[1].is_none());
    }

    /// Hedging × the stale guard: both live copies of a hedged job are
    /// acceptable, whichever lands first resolves the slot exactly once,
    /// and the loser is a counted duplicate — `outstanding` moves by one
    /// and only one.
    #[test]
    fn hedged_pair_resolves_exactly_once_either_order() {
        let ok: Result<JobResult, String> = Ok(JobResult::Params(vec![1.0]));
        // Hedge (attempt 1) first, then the original (attempt 0).
        let s = shared();
        install_round(&s, 3, &[7, 8]);
        install_hedge(&s, 0, 2, 1);
        s.deliver(JobTag { job: 0, attempt: 1, epoch: 3, device: 7 }, ok.clone());
        assert_eq!(outstanding(&s), 1, "the hedge copy must resolve its slot");
        s.deliver(JobTag { job: 0, attempt: 0, epoch: 3, device: 7 }, ok.clone());
        assert_eq!(outstanding(&s), 1, "the losing original is a duplicate, not a second resolve");
        // Original first, then the hedge.
        let s = shared();
        install_round(&s, 3, &[7, 8]);
        install_hedge(&s, 0, 2, 1);
        s.deliver(JobTag { job: 0, attempt: 0, epoch: 3, device: 7 }, ok.clone());
        assert_eq!(outstanding(&s), 1);
        s.deliver(JobTag { job: 0, attempt: 1, epoch: 3, device: 7 }, ok);
        assert_eq!(outstanding(&s), 1, "the losing hedge is a duplicate, not a second resolve");
    }

    /// A hedged attempt from a *previous* epoch must not land in the
    /// current round, even when the attempt number happens to match the
    /// live hedge.
    #[test]
    fn hedge_results_cannot_cross_rounds() {
        let s = shared();
        install_round(&s, 5, &[7, 8]);
        install_hedge(&s, 0, 2, 1);
        let ok: Result<JobResult, String> = Ok(JobResult::Params(vec![1.0]));
        s.deliver(JobTag { job: 0, attempt: 1, epoch: 4, device: 7 }, ok.clone());
        assert_eq!(outstanding(&s), 2, "an old-epoch hedge echo is stale");
        s.deliver(JobTag { job: 0, attempt: 1, epoch: 5, device: 8 }, ok);
        assert_eq!(outstanding(&s), 2, "a wrong-device hedge echo is stale");
    }

    /// Eviction mid-hedge: when the primary's worker dies, the hedge
    /// copy is promoted to the live assignment (no retry burned) and the
    /// dead primary's late echo is rejected as stale.
    #[test]
    fn eviction_promotes_hedge_and_rejects_dead_primary_echo() {
        let s = shared();
        install_round(&s, 6, &[7, 8]);
        // Job 0 primary on worker 1 (attempt 0), hedge on worker 2 (attempt 1).
        install_hedge(&s, 0, 2, 1);
        s.drop_worker(1);
        {
            let round = s.round.lock().unwrap();
            let st = round.as_ref().unwrap();
            assert_eq!(st.assigned[0], (2, 1), "the hedge must be promoted to primary");
            assert_eq!(st.hedge[0], None);
            assert_eq!(st.retries_used[0], 0, "promotion must not burn the retry budget");
            // Job 1 had no hedge and no live workers remain: Closed.
            assert!(st.results[1].is_some(), "unhedged job with no survivors must resolve Closed");
        }
        let ok: Result<JobResult, String> = Ok(JobResult::Params(vec![1.0]));
        s.deliver(JobTag { job: 0, attempt: 0, epoch: 6, device: 7 }, ok.clone());
        assert!(!resolved(&s, 0), "the dead primary's attempt 0 is superseded, must not land");
        s.deliver(JobTag { job: 0, attempt: 1, epoch: 6, device: 7 }, ok);
        assert!(resolved(&s, 0), "the promoted hedge attempt still lands");
        assert_eq!(outstanding(&s), 0);
    }

    proptest::proptest! {
        /// Any storm of result echoes — arbitrary job indices, attempts,
        /// epochs and devices, duplicated and reordered — can never
        /// double-resolve a slot or corrupt the `outstanding` count:
        /// after every delivery, `outstanding` equals the number of
        /// unresolved slots, and it only ever decreases.
        #[test]
        fn outstanding_accounting_survives_echo_storms(
            // Each echo is one packed draw: job (4) x attempt (3) x
            // epoch 1..4 (3) x device 6..10 (4) x ok (2) = 288 codes.
            echoes in proptest::collection::vec(0u64..288, 0..48),
            // Hedge: job 0..3 (3) x attempt 1..3 (2) = 6 codes.
            hedges in proptest::collection::vec(0u64..6, 0..3),
        ) {
            let s = shared();
            install_round(&s, 2, &[7, 8, 9]);
            for code in hedges {
                install_hedge(&s, (code % 3) as usize, 2, 1 + (code / 3) as u32);
            }
            let mut last = outstanding(&s);
            for code in echoes {
                let ok = code % 2 == 0;
                let c = code / 2;
                let device = 6 + (c % 4);
                let c = c / 4;
                let epoch = 1 + (c % 3);
                let c = c / 3;
                let attempt = (c % 3) as u32;
                let job = c / 3;
                let outcome: Result<JobResult, String> = if ok {
                    Ok(JobResult::Params(vec![0.5]))
                } else {
                    Err("boom".into())
                };
                s.deliver(JobTag { job, attempt, epoch, device }, outcome);
                let round = s.round.lock().unwrap();
                let st = round.as_ref().unwrap();
                let unresolved = st.results.iter().filter(|r| r.is_none()).count();
                proptest::prop_assert_eq!(st.outstanding, unresolved,
                    "outstanding must always equal the unresolved slot count");
                proptest::prop_assert!(st.outstanding <= last, "outstanding may never grow");
                last = st.outstanding;
            }
        }
    }
}
