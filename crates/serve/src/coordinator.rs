//! The cloud coordinator: listeners, the worker registry, and the
//! socket transport with its deadline-driven round barrier.
//!
//! ## Round barrier
//!
//! [`SocketTransport::round_trip`] installs the batch as the current
//! round, spreads the jobs round-robin over the live workers, and
//! blocks on a condvar until every slot is resolved or the wall-clock
//! deadline passes. Results stream in on per-worker reader threads.
//!
//! ## Failure semantics
//!
//! A worker that dies mid-round (reader hits EOF/error, or a send
//! fails) is dropped from the registry and its outstanding jobs are
//! *reassigned* to the survivors, each reassignment consuming one unit
//! of the job's retry budget ([`nebula_core::RetryPolicy`], the same
//! policy family the simulated fault paths use). A job that exhausts
//! the budget — or has no surviving worker to go to — resolves to
//! [`TransportError::Closed`]; jobs still unresolved at the deadline
//! resolve to [`TransportError::Timeout`]. The strategy above maps
//! every error onto its existing `link_dropped` fate, so a dying or
//! straggling worker degrades the round exactly like a simulated lossy
//! cohort and can never hang the run.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use nebula_core::{DispatchJob, JobResult, RetryPolicy, Transport, TransportError};
use nebula_telemetry::Telemetry;
use nebula_wire::hello::{decode_hello, encode_hello_ack, HelloAck, HELLO_PROTO};
use nebula_wire::stream::{read_frame, write_frame, DEFAULT_MAX_FRAME_LEN};
use nebula_wire::{CodecKind, FrameKey};

use crate::netio::Conn;
use crate::proto::{self, Message};
use crate::{ServeError, WorkerRunConfig};

/// Coordinator deployment knobs.
pub struct ServeConfig {
    /// TCP listen address (`host:port`), if any.
    pub tcp: Option<String>,
    /// Unix-domain socket path, if any (an existing file is replaced).
    pub uds: Option<PathBuf>,
    /// Shared master key; when set the handshake and all job traffic
    /// are MAC'd and unauthenticated workers are rejected.
    pub auth_key: Option<[u8; 16]>,
    /// What admitted workers are told to run.
    pub worker_config: WorkerRunConfig,
    /// Round barrier wall-clock deadline.
    pub deadline_ms: u64,
    /// Reassignment budget for jobs on dying workers.
    pub retry: RetryPolicy,
    /// Hostile-length cap for inbound frames.
    pub max_frame_len: usize,
    pub telemetry: Telemetry,
}

impl ServeConfig {
    /// A config with no listeners yet: set `tcp` and/or `uds` before
    /// [`Coordinator::bind`].
    pub fn new(worker_config: WorkerRunConfig) -> Self {
        ServeConfig {
            tcp: None,
            uds: None,
            auth_key: None,
            worker_config,
            deadline_ms: 60_000,
            retry: RetryPolicy::default(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            telemetry: Telemetry::off(),
        }
    }
}

/// One admitted worker connection.
struct WorkerHandle {
    name: String,
    /// Write half; reads happen on the connection's own reader thread.
    writer: Arc<Mutex<Conn>>,
}

/// The in-flight round, if any.
struct RoundState {
    jobs: Vec<DispatchJob>,
    /// Per job: (owning worker id, dispatch attempt). Worker ids start
    /// at 1, so the initial `(0, 0)` never matches a real owner.
    assigned: Vec<(u64, u32)>,
    results: Vec<Option<Result<JobResult, TransportError>>>,
    outstanding: usize,
}

struct Shared {
    key: Option<FrameKey>,
    config_json: String,
    deadline_ms: u64,
    retry: RetryPolicy,
    max_frame_len: usize,
    telemetry: Telemetry,
    workers: Mutex<BTreeMap<u64, WorkerHandle>>,
    round: Mutex<Option<RoundState>>,
    round_done: Condvar,
    next_worker_id: AtomicU64,
    rounds_completed: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    /// Live worker writers, in id order. Never held together with the
    /// round lock — callers snapshot, release, then lock the round.
    fn live_workers(&self) -> Vec<(u64, Arc<Mutex<Conn>>)> {
        let map = self.workers.lock().unwrap();
        map.iter().map(|(id, w)| (*id, Arc::clone(&w.writer))).collect()
    }

    /// Resolves `job_idx` under the round lock (idempotent).
    fn resolve(&self, st: &mut RoundState, job_idx: usize, outcome: Result<JobResult, TransportError>) {
        if st.results[job_idx].is_some() {
            return;
        }
        match &outcome {
            Ok(_) => self.telemetry.counter_add("serve.results_ok", 1),
            Err(_) => self.telemetry.counter_add("serve.results_failed", 1),
        }
        st.results[job_idx] = Some(outcome);
        st.outstanding -= 1;
        if st.outstanding == 0 {
            self.round_done.notify_all();
        }
    }

    /// Records the assignment and encodes under the round lock, writes
    /// outside it. Returns false when the write failed (caller drops
    /// the target worker).
    fn send_job(&self, job_idx: usize, target: u64, attempt: u32, writer: &Mutex<Conn>) -> bool {
        let mut buf = Vec::new();
        {
            let mut round = self.round.lock().unwrap();
            let Some(st) = round.as_mut() else { return true };
            if st.results[job_idx].is_some() {
                return true;
            }
            st.assigned[job_idx] = (target, attempt);
            if let Err(e) =
                proto::encode_job(&mut buf, &st.jobs[job_idx], job_idx as u64, attempt, self.key.as_ref())
            {
                self.resolve(st, job_idx, Err(TransportError::Wire(e.to_string())));
                return true;
            }
        }
        let ok = {
            let mut w = writer.lock().unwrap();
            write_frame(&mut *w, &buf).is_ok()
        };
        if ok {
            self.telemetry.counter_add("serve.jobs_sent", 1);
        }
        ok
    }

    /// A result frame arrived from a worker.
    fn deliver(&self, job_idx: u64, attempt: u32, outcome: Result<JobResult, String>) {
        let mut round = self.round.lock().unwrap();
        let Some(st) = round.as_mut() else { return };
        let j = job_idx as usize;
        if j >= st.results.len() || st.assigned[j].1 != attempt {
            // Late echo of a superseded attempt; the reassigned copy owns
            // the slot now.
            return;
        }
        // A worker-side rejection is deterministic — re-running it
        // elsewhere returns the same refusal, so no retry.
        self.resolve(st, j, outcome.map_err(TransportError::Rejected));
    }

    /// Drops `dead` from the registry and re-homes its unresolved jobs:
    /// each reassignment burns one retry; over-budget (or unplaceable)
    /// jobs resolve to `Closed`. Safe to call repeatedly and from any
    /// thread; recursion through failed resends is bounded by the
    /// worker count.
    fn drop_worker(&self, dead: u64) {
        if self.workers.lock().unwrap().remove(&dead).is_some() {
            self.telemetry.counter_add("serve.workers_lost", 1);
        }
        let live = self.live_workers();
        let mut sends: Vec<(usize, u32, u64, Arc<Mutex<Conn>>)> = Vec::new();
        {
            let mut round = self.round.lock().unwrap();
            let Some(st) = round.as_mut() else { return };
            let mut spread = 0usize;
            for j in 0..st.jobs.len() {
                if st.results[j].is_some() || st.assigned[j].0 != dead {
                    continue;
                }
                let attempt = st.assigned[j].1 + 1;
                if live.is_empty() || attempt > self.retry.max_retries {
                    self.resolve(
                        st,
                        j,
                        Err(TransportError::Closed(format!(
                            "worker {dead} lost (attempt {attempt}/{} budget)",
                            self.retry.max_retries
                        ))),
                    );
                    continue;
                }
                let (wid, writer) = live[spread % live.len()].clone();
                spread += 1;
                st.assigned[j] = (wid, attempt);
                sends.push((j, attempt, wid, writer));
            }
        }
        for (j, attempt, wid, writer) in sends {
            self.telemetry.counter_add("serve.jobs_reassigned", 1);
            if !self.send_job(j, wid, attempt, &writer) {
                self.drop_worker(wid);
            }
        }
    }
}

/// A coordinator: cheaply cloneable handle over the shared serving
/// state (listeners, registry, round barrier).
#[derive(Clone)]
pub struct Coordinator {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
}

impl Coordinator {
    /// Binds the configured listeners and starts accepting workers.
    pub fn bind(cfg: ServeConfig) -> Result<Coordinator, ServeError> {
        let config_json =
            serde_json::to_string(&cfg.worker_config).map_err(|e| ServeError::Proto(e.to_string()))?;
        let shared = Arc::new(Shared {
            key: cfg.auth_key.map(|k| FrameKey::from_bytes(&k)),
            config_json,
            deadline_ms: cfg.deadline_ms,
            retry: cfg.retry,
            max_frame_len: cfg.max_frame_len,
            telemetry: cfg.telemetry,
            workers: Mutex::new(BTreeMap::new()),
            round: Mutex::new(None),
            round_done: Condvar::new(),
            next_worker_id: AtomicU64::new(1),
            rounds_completed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let mut tcp_addr = None;
        if let Some(addr) = &cfg.tcp {
            let listener = TcpListener::bind(addr)?;
            tcp_addr = Some(listener.local_addr()?);
            let s = Arc::clone(&shared);
            thread::spawn(move || accept_tcp(listener, s));
        }
        if let Some(path) = &cfg.uds {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            let s = Arc::clone(&shared);
            thread::spawn(move || accept_uds(listener, s));
        }
        Ok(Coordinator { shared, tcp_addr, uds_path: cfg.uds })
    }

    /// The bound TCP address (useful after binding port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    pub fn worker_count(&self) -> usize {
        self.shared.workers.lock().unwrap().len()
    }

    /// Names of the live workers, in id order (ops/status surface).
    pub fn worker_names(&self) -> Vec<String> {
        self.shared.workers.lock().unwrap().values().map(|w| w.name.clone()).collect()
    }

    pub fn rounds_completed(&self) -> u64 {
        self.shared.rounds_completed.load(Ordering::SeqCst)
    }

    /// Polls until at least `n` workers are registered. Returns false
    /// on timeout.
    pub fn wait_for_workers(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.worker_count() < n {
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(10));
        }
        true
    }

    /// A transport handle for `Runner::transport` /
    /// `AdaptStrategy::set_transport`. Many handles may exist; one round
    /// runs at a time (the strategy drives rounds sequentially).
    pub fn transport(&self) -> SocketTransport {
        SocketTransport { shared: Arc::clone(&self.shared) }
    }

    /// The telemetry registry snapshot as JSON (`{}` when telemetry is
    /// off). What `/metrics` serves.
    pub fn metrics_json(&self) -> String {
        match self.shared.telemetry.metrics() {
            Some(snap) => serde_json::to_string(&snap).unwrap_or_else(|_| "{}".into()),
            None => "{}".into(),
        }
    }

    /// Tells every worker to drain and exit, then closes the listeners.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let mut buf = Vec::new();
        if proto::encode_shutdown(&mut buf, self.shared.key.as_ref()).is_ok() {
            for (_, writer) in self.shared.live_workers() {
                let mut w = writer.lock().unwrap();
                let _ = write_frame(&mut *w, &buf);
                w.shutdown();
            }
        }
        // Dial the listeners once so their accept loops observe the flag.
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(path) = &self.uds_path {
            let _ = UnixStream::connect(path);
            let _ = std::fs::remove_file(path);
        }
    }
}

fn accept_tcp(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(s) = stream {
            s.set_nodelay(true).ok();
            spawn_conn(Conn::Tcp(s), Arc::clone(&shared));
        }
    }
}

fn accept_uds(listener: UnixListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(s) = stream {
            spawn_conn(Conn::Uds(s), Arc::clone(&shared));
        }
    }
}

fn spawn_conn(conn: Conn, shared: Arc<Shared>) {
    shared.telemetry.counter_add("serve.connections", 1);
    thread::spawn(move || {
        if handshake_and_serve(conn, &shared).is_err() {
            shared.telemetry.counter_add("serve.handshake_failed", 1);
        }
    });
}

/// Admits one connection: hello → validate → ack (+ run config), then
/// runs the connection's reader loop until EOF/error.
fn handshake_and_serve(mut conn: Conn, shared: &Arc<Shared>) -> Result<(), ServeError> {
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut buf = Vec::new();
    if !read_frame(&mut conn, shared.max_frame_len, &mut buf)? {
        return Err(ServeError::Handshake("closed before hello".into()));
    }
    let hello = decode_hello(&buf, shared.key.as_ref())
        .map_err(|e| ServeError::Handshake(format!("bad hello: {e:?}")))?;
    let reject = |reason: &str| HelloAck {
        accepted: false,
        codec: CodecKind::Raw,
        worker_id: 0,
        reason: reason.into(),
        config_json: String::new(),
    };
    let ack = if hello.proto != HELLO_PROTO {
        reject(&format!("unsupported handshake revision {}", hello.proto))
    } else if hello.codec != CodecKind::Raw {
        // Stateful codecs would need the coordinator's channel state on
        // the worker; the serving plane speaks Raw only.
        reject(&format!("codec {:?} not served; speak Raw", hello.codec))
    } else {
        HelloAck {
            accepted: true,
            codec: CodecKind::Raw,
            worker_id: shared.next_worker_id.fetch_add(1, Ordering::SeqCst),
            reason: String::new(),
            config_json: shared.config_json.clone(),
        }
    };
    encode_hello_ack(&mut buf, &ack, shared.key.as_ref());
    write_frame(&mut conn, &buf)?;
    if !ack.accepted {
        return Err(ServeError::Handshake(ack.reason));
    }
    conn.set_read_timeout(None)?;

    let id = ack.worker_id;
    let writer = Arc::new(Mutex::new(conn.try_clone()?));
    shared.workers.lock().unwrap().insert(id, WorkerHandle { name: hello.name.clone(), writer });
    shared.telemetry.counter_add("serve.workers_joined", 1);
    shared.telemetry.emit("serve_worker", |e| {
        e.ints.insert("worker".into(), id);
        e.text.insert("name".into(), hello.name.clone());
    });

    while let Ok(true) = read_frame(&mut conn, shared.max_frame_len, &mut buf) {
        match proto::decode_message(&buf, shared.key.as_ref()) {
            Ok(Message::Result(job, attempt, _device, outcome)) => {
                shared.deliver(job, attempt, outcome);
            }
            Ok(_) => {}
            Err(_) => shared.telemetry.counter_add("serve.bad_frames", 1),
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    shared.drop_worker(id);
    Ok(())
}

/// The remote [`Transport`]: ships each round's jobs to the registered
/// workers and blocks on the deadline barrier.
pub struct SocketTransport {
    shared: Arc<Shared>,
}

impl Transport for SocketTransport {
    fn kind(&self) -> &'static str {
        "socket"
    }

    fn round_trip(&mut self, jobs: Vec<DispatchJob>) -> Vec<Result<JobResult, TransportError>> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut span = self.shared.telemetry.span("serve.round_trip");
        span.int("jobs", n as u64);
        let live = self.shared.live_workers();
        if live.is_empty() {
            self.shared.telemetry.counter_add("serve.rounds_unserved", 1);
            return (0..n).map(|_| Err(TransportError::Closed("no workers connected".into()))).collect();
        }
        *self.shared.round.lock().unwrap() =
            Some(RoundState { jobs, assigned: vec![(0, 0); n], results: vec![None; n], outstanding: n });
        for j in 0..n {
            let (wid, writer) = live[j % live.len()].clone();
            if !self.shared.send_job(j, wid, 0, &writer) {
                self.shared.drop_worker(wid);
            }
        }

        let started = Instant::now();
        let deadline = started + Duration::from_millis(self.shared.deadline_ms);
        let mut round = self.shared.round.lock().unwrap();
        loop {
            let outstanding = round.as_ref().map_or(0, |st| st.outstanding);
            if outstanding == 0 {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                // Stragglers missed the barrier: the round degrades, it
                // does not hang.
                let waited_ms = started.elapsed().as_millis() as u64;
                if let Some(st) = round.as_mut() {
                    for j in 0..st.results.len() {
                        if st.results[j].is_none() {
                            self.shared.resolve(st, j, Err(TransportError::Timeout { waited_ms }));
                        }
                    }
                }
                self.shared.telemetry.counter_add("serve.round_timeouts", 1);
                break;
            }
            let (guard, _) = self.shared.round_done.wait_timeout(round, deadline - now).unwrap();
            round = guard;
        }
        let st = round.take().expect("round state present until the barrier resolves");
        drop(round);
        self.shared.rounds_completed.fetch_add(1, Ordering::SeqCst);
        st.results
            .into_iter()
            .map(|r| r.unwrap_or(Err(TransportError::Closed("round aborted".into()))))
            .collect()
    }
}
