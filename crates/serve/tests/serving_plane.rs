//! End-to-end serving-plane tests: the loopback transport and real
//! socket deployments (UDS and TCP, two workers) must reproduce the
//! in-process Nebula trajectory bit-for-bit, and a worker crashing
//! mid-round must degrade the round into dropout fates instead of
//! hanging it.

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use nebula_core::{Loopback, ModularRunner, RetryPolicy, Transport};
use nebula_data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_nn::Layer;
use nebula_sim::strategy::StrategyConfig;
use nebula_sim::{NebulaStrategy, ResourceSampler, SimWorld};
use nebula_tensor::NebulaRng;

use nebula_serve::worker::{run_worker, WorkerConfig};
use nebula_serve::{Coordinator, Endpoint, OpsServer, ServeConfig, WorkerRunConfig};

fn toy_world(devices: usize, seed: u64) -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(devices, Partitioner::LabelSkew { m: 2 });
    SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), seed)
}

fn toy_cfg() -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = 4;
    cfg.rounds_per_step = 1;
    cfg.pretrain_epochs = 1;
    cfg.proxy_samples = 100;
    cfg.local_epochs = 1;
    cfg
}

/// Per-round (up_bytes, down_bytes, participated, link_dropped).
type Trail = Vec<(u64, u64, u64, u64)>;

/// Runs `rounds` Nebula rounds through `transport` (`None` = the
/// historical in-process path) and digests the trajectory: final cloud
/// parameters plus per-round comm/fault accounting.
fn run_rounds(transport: Option<Box<dyn Transport>>, rounds: usize) -> (Vec<f32>, Trail) {
    run_rounds_with(toy_cfg(), transport, rounds)
}

fn run_rounds_with(
    cfg: StrategyConfig,
    transport: Option<Box<dyn Transport>>,
    rounds: usize,
) -> (Vec<f32>, Trail) {
    let mut world = toy_world(8, 5);
    let mut s = NebulaStrategy::new(cfg, 1);
    if let Some(t) = transport {
        use nebula_sim::AdaptStrategy;
        s.set_transport(t);
    }
    let mut rng = NebulaRng::seed(3);
    let mut trail = Vec::new();
    for _ in 0..rounds {
        let out = s.single_round(&mut world, &mut rng);
        trail.push((
            out.stats.comm.up_bytes,
            out.stats.comm.down_bytes,
            out.stats.faults.participated,
            out.stats.faults.link_dropped,
        ));
    }
    (s.cloud().model().param_vector(), trail)
}

fn loopback() -> Box<dyn Transport> {
    let cfg = toy_cfg();
    Box::new(Loopback::new(Arc::new(ModularRunner::new(cfg.modular, cfg.wire))))
}

fn uds_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nebula-serve-{tag}-{}.sock", std::process::id()))
}

struct Deployment {
    coordinator: Coordinator,
    workers: Vec<thread::JoinHandle<()>>,
}

/// Starts a coordinator and `n` worker threads speaking real sockets.
fn deploy(tcp: bool, tag: &str, n: usize, auth: Option<[u8; 16]>) -> (Deployment, Endpoint) {
    // The same master key protects the serving plane and — when set —
    // the inner per-device payload frames.
    let worker_cfg = WorkerRunConfig {
        modular: Some(toy_cfg().modular),
        delta_threshold: 0.0,
        payload_auth: auth.is_some(),
    };
    let mut cfg = ServeConfig::new(worker_cfg);
    cfg.auth_key = auth;
    cfg.deadline_ms = 60_000;
    let path = uds_path(tag);
    if tcp {
        cfg.tcp = Some("127.0.0.1:0".into());
    } else {
        cfg.uds = Some(path.clone());
    }
    let coordinator = Coordinator::bind(cfg).expect("bind coordinator");
    let endpoint = if tcp {
        Endpoint::Tcp(coordinator.tcp_addr().expect("tcp bound").to_string())
    } else {
        Endpoint::Uds(path)
    };
    let workers = (0..n)
        .map(|i| {
            let ep = endpoint.clone();
            thread::spawn(move || {
                let mut wc = WorkerConfig::new(ep);
                wc.auth_key = auth;
                wc.name = format!("w{i}");
                wc.threads = 2;
                run_worker(wc).expect("worker runs to clean shutdown");
            })
        })
        .collect();
    assert!(coordinator.wait_for_workers(n, Duration::from_secs(20)), "workers must register within 20s");
    (Deployment { coordinator, workers }, endpoint)
}

impl Deployment {
    fn teardown(self) {
        self.coordinator.shutdown();
        for w in self.workers {
            w.join().expect("worker thread");
        }
    }
}

/// The tentpole invariant, part 1: routing training through the
/// loopback transport is a pure refactoring — 5 rounds land on exactly
/// the in-process trajectory.
#[test]
fn loopback_transport_is_bit_identical_to_in_process_rounds() {
    let (base_params, base_trail) = run_rounds(None, 5);
    let (loop_params, loop_trail) = run_rounds(Some(loopback()), 5);
    assert_eq!(base_trail, loop_trail, "comm/fault accounting must match");
    assert_eq!(base_params, loop_params, "cloud parameters must be bit-identical");
}

/// Part 2: two real worker processes behind a Unix-domain socket
/// produce the same bits as loopback (hence as in-process).
#[test]
fn uds_deployment_is_bit_identical_to_in_process_rounds() {
    let (base_params, base_trail) = run_rounds(None, 5);
    let (deployment, _) = deploy(false, "identity", 2, None);
    let (uds_params, uds_trail) = run_rounds(Some(Box::new(deployment.coordinator.transport())), 5);
    assert_eq!(deployment.coordinator.rounds_completed(), 5);
    deployment.teardown();
    assert_eq!(base_trail, uds_trail, "comm/fault accounting must match over UDS");
    assert_eq!(base_params, uds_params, "cloud parameters must be bit-identical over UDS");
}

/// Part 3: the same holds over TCP with frame auth on, and the ops
/// endpoint answers while rounds run.
#[test]
fn tcp_deployment_with_auth_matches_and_serves_ops() {
    let key = [0x5Au8; 16];
    let authed_cfg = || {
        let mut cfg = toy_cfg();
        cfg.wire = cfg.wire.with_auth(key);
        cfg
    };
    let (base_params, _) = run_rounds_with(authed_cfg(), None, 3);
    let (deployment, _) = deploy(true, "tcp", 2, Some(key));
    let ops = OpsServer::spawn("127.0.0.1:0", deployment.coordinator.clone()).expect("ops binds");

    let (tcp_params, _) =
        run_rounds_with(authed_cfg(), Some(Box::new(deployment.coordinator.transport())), 3);
    assert_eq!(base_params, tcp_params, "cloud parameters must be bit-identical over TCP+auth");

    let health = http_get(ops.addr(), "/healthz");
    assert!(health.contains("\"ok\":true"), "healthz: {health}");
    assert!(health.contains("\"workers\":2"), "healthz: {health}");
    let round = http_get(ops.addr(), "/round");
    assert!(round.contains("\"rounds_completed\":3"), "round: {round}");
    let metrics = http_get(ops.addr(), "/metrics");
    let body = metrics.split("\r\n\r\n").nth(1).unwrap_or("");
    assert!(body.starts_with('{') && body.ends_with('}'), "metrics must be JSON: {metrics}");
    let missing = http_get(ops.addr(), "/nope");
    assert!(missing.contains("not found"), "404 body: {missing}");

    ops.stop();
    deployment.teardown();
}

/// A worker that dies mid-round degrades the round through the retry
/// budget into dropout fates — the barrier resolves, nothing hangs.
/// With no surviving worker every device lands in `link_dropped`.
#[test]
fn worker_crash_mid_round_degrades_to_dropout_fates() {
    let worker_cfg = WorkerRunConfig { modular: Some(toy_cfg().modular), ..WorkerRunConfig::default() };
    let mut cfg = ServeConfig::new(worker_cfg);
    let path = uds_path("crash");
    cfg.uds = Some(path.clone());
    cfg.deadline_ms = 30_000;
    cfg.retry = RetryPolicy { max_retries: 1, ..RetryPolicy::default() };
    let coordinator = Coordinator::bind(cfg).expect("bind coordinator");

    // A saboteur worker: handshakes, then slams the connection shut the
    // moment the first job frame arrives.
    let ep = Endpoint::Uds(path);
    let saboteur = thread::spawn(move || {
        use nebula_wire::hello::{decode_hello_ack, encode_hello, Hello, HELLO_PROTO};
        use nebula_wire::stream::{read_frame, write_frame, DEFAULT_MAX_FRAME_LEN};
        use nebula_wire::CodecKind;
        let mut conn = nebula_serve::Conn::connect(&ep).expect("dial");
        let mut buf = Vec::new();
        let hello = Hello { proto: HELLO_PROTO, codec: CodecKind::Raw, threads: 1, name: "bad".into() };
        encode_hello(&mut buf, &hello, None);
        write_frame(&mut conn, &buf).expect("hello");
        assert!(read_frame(&mut conn, DEFAULT_MAX_FRAME_LEN, &mut buf).expect("ack"));
        decode_hello_ack(&buf, None).expect("ack decodes");
        // Wait for the first job, then die without answering.
        let _ = read_frame(&mut conn, DEFAULT_MAX_FRAME_LEN, &mut buf);
        conn.shutdown();
    });
    assert!(coordinator.wait_for_workers(1, Duration::from_secs(20)));

    let mut world = toy_world(8, 5);
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    {
        use nebula_sim::AdaptStrategy;
        s.set_transport(Box::new(coordinator.transport()));
    }
    let mut rng = NebulaRng::seed(3);
    let before = s.cloud().model().param_vector();
    let out = s.single_round(&mut world, &mut rng);
    saboteur.join().expect("saboteur thread");

    assert_eq!(out.stats.faults.participated, 0, "{:?}", out.stats.faults);
    assert!(out.stats.faults.link_dropped > 0, "lost jobs must land as dropouts: {:?}", out.stats.faults);
    assert_eq!(
        before,
        s.cloud().model().param_vector(),
        "a fully-lost round must leave the cloud model untouched"
    );
    assert_eq!(coordinator.worker_count(), 0, "the dead worker must leave the registry");
    coordinator.shutdown();
}

/// A crash with a survivor: jobs on the dead worker are reassigned
/// under the retry budget, so the round still matches the in-process
/// bits exactly.
#[test]
fn crash_with_survivor_reassigns_and_stays_bit_identical() {
    let (base_params, base_trail) = run_rounds(None, 2);

    let worker_cfg = WorkerRunConfig { modular: Some(toy_cfg().modular), ..WorkerRunConfig::default() };
    let mut cfg = ServeConfig::new(worker_cfg);
    let path = uds_path("survivor");
    cfg.uds = Some(path.clone());
    cfg.deadline_ms = 60_000;
    let coordinator = Coordinator::bind(cfg).expect("bind coordinator");

    // One honest worker...
    let ep = Endpoint::Uds(path.clone());
    let honest = thread::spawn(move || {
        let mut wc = WorkerConfig::new(ep);
        wc.name = "honest".into();
        run_worker(wc).expect("honest worker");
    });
    assert!(coordinator.wait_for_workers(1, Duration::from_secs(20)));
    // ...and one saboteur that dies on its first job, forcing a
    // mid-round reassignment to the survivor.
    let ep = Endpoint::Uds(path);
    let saboteur = thread::spawn(move || {
        use nebula_wire::hello::{decode_hello_ack, encode_hello, Hello, HELLO_PROTO};
        use nebula_wire::stream::{read_frame, write_frame, DEFAULT_MAX_FRAME_LEN};
        use nebula_wire::CodecKind;
        let mut conn = nebula_serve::Conn::connect(&ep).expect("dial");
        let mut buf = Vec::new();
        let hello = Hello { proto: HELLO_PROTO, codec: CodecKind::Raw, threads: 1, name: "bad".into() };
        encode_hello(&mut buf, &hello, None);
        write_frame(&mut conn, &buf).expect("hello");
        assert!(read_frame(&mut conn, DEFAULT_MAX_FRAME_LEN, &mut buf).expect("ack"));
        decode_hello_ack(&buf, None).expect("ack decodes");
        let _ = read_frame(&mut conn, DEFAULT_MAX_FRAME_LEN, &mut buf);
        conn.shutdown();
    });
    assert!(coordinator.wait_for_workers(2, Duration::from_secs(20)));

    let mut world = toy_world(8, 5);
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    {
        use nebula_sim::AdaptStrategy;
        s.set_transport(Box::new(coordinator.transport()));
    }
    let mut rng = NebulaRng::seed(3);
    let mut trail = Vec::new();
    for _ in 0..2 {
        let out = s.single_round(&mut world, &mut rng);
        trail.push((
            out.stats.comm.up_bytes,
            out.stats.comm.down_bytes,
            out.stats.faults.participated,
            out.stats.faults.link_dropped,
        ));
    }
    saboteur.join().expect("saboteur thread");

    assert_eq!(base_trail, trail, "reassigned rounds must keep the in-process accounting");
    assert_eq!(
        base_params,
        s.cloud().model().param_vector(),
        "reassignment must not change a single bit of the trajectory"
    );
    coordinator.shutdown();
    honest.join().expect("honest worker thread");
}

/// An undecodable job frame makes the worker close its connection and
/// report the failure immediately — fail fast so the coordinator's drop
/// path reassigns, instead of the job idling until the round deadline.
#[test]
fn worker_fails_fast_on_corrupt_job_frame() {
    use nebula_wire::hello::{decode_hello, encode_hello_ack, HelloAck};
    use nebula_wire::stream::{read_frame, write_frame, DEFAULT_MAX_FRAME_LEN};
    use nebula_wire::CodecKind;
    use std::os::unix::net::UnixListener;

    let path = uds_path("badframe");
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).expect("bind fake coordinator");
    let ep = Endpoint::Uds(path.clone());

    let fake = thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        let mut buf = Vec::new();
        assert!(read_frame(&mut conn, DEFAULT_MAX_FRAME_LEN, &mut buf).expect("hello"));
        decode_hello(&buf, None).expect("hello decodes");
        let ack = HelloAck {
            accepted: true,
            codec: CodecKind::Raw,
            worker_id: 1,
            reason: String::new(),
            config_json: serde_json::to_string(&WorkerRunConfig::default()).expect("config json"),
        };
        encode_hello_ack(&mut buf, &ack, None);
        write_frame(&mut conn, &buf).expect("ack");
        // A well-delimited frame whose body is garbage: the worker's
        // decode_message must reject it and hang up on us.
        write_frame(&mut conn, b"not a nebula-wire frame").expect("garbage frame");
        let closed = matches!(read_frame(&mut conn, DEFAULT_MAX_FRAME_LEN, &mut buf), Ok(false) | Err(_));
        assert!(closed, "worker must close the connection after the bad frame");
    });

    let t0 = std::time::Instant::now();
    let err = run_worker(WorkerConfig::new(ep)).expect_err("a corrupt frame must fail the worker");
    assert!(matches!(err, nebula_serve::ServeError::Proto(_)), "got {err:?}");
    assert!(t0.elapsed() < Duration::from_secs(10), "must fail fast, not sit out a round deadline");
    fake.join().expect("fake coordinator thread");
    let _ = std::fs::remove_file(&path);
}

/// Liveness, the tentpole's first leg: a half-open worker — connected,
/// admitted, silent — is evicted within the liveness timeout and its
/// jobs re-homed, so the round completes bit-identically in seconds
/// instead of idling out the 60 s deadline.
#[test]
fn silent_worker_is_evicted_within_liveness_timeout() {
    use nebula_telemetry::{MemorySink, Telemetry};

    let (base_params, _) = run_rounds(None, 1);

    let worker_cfg = WorkerRunConfig { modular: Some(toy_cfg().modular), ..WorkerRunConfig::default() };
    let mut cfg = ServeConfig::new(worker_cfg);
    let path = uds_path("liveness");
    cfg.uds = Some(path.clone());
    cfg.deadline_ms = 60_000;
    cfg.liveness_timeout_ms = 400;
    let telemetry = Telemetry::new(Arc::new(MemorySink::default()));
    cfg.telemetry = telemetry.clone();
    let coordinator = Coordinator::bind(cfg).expect("bind coordinator");

    // One honest worker (it answers pings from its reader thread)...
    let ep = Endpoint::Uds(path.clone());
    let honest = thread::spawn(move || {
        let mut wc = WorkerConfig::new(ep);
        wc.name = "honest".into();
        run_worker(wc).expect("honest worker");
    });
    assert!(coordinator.wait_for_workers(1, Duration::from_secs(20)));
    // ...and a half-open one: it handshakes, then reads and discards
    // everything without ever writing a byte back. No socket error ever
    // surfaces — only liveness can see it.
    let ep = Endpoint::Uds(path);
    let silent = thread::spawn(move || {
        use nebula_wire::hello::{decode_hello_ack, encode_hello, Hello, HELLO_PROTO};
        use nebula_wire::stream::{read_frame, write_frame, DEFAULT_MAX_FRAME_LEN};
        use nebula_wire::CodecKind;
        let mut conn = nebula_serve::Conn::connect(&ep).expect("dial");
        let mut buf = Vec::new();
        let hello = Hello { proto: HELLO_PROTO, codec: CodecKind::Raw, threads: 1, name: "mute".into() };
        encode_hello(&mut buf, &hello, None);
        write_frame(&mut conn, &buf).expect("hello");
        assert!(read_frame(&mut conn, DEFAULT_MAX_FRAME_LEN, &mut buf).expect("ack"));
        decode_hello_ack(&buf, None).expect("ack decodes");
        // Swallow jobs and pings until the coordinator cuts us off.
        while let Ok(true) = read_frame(&mut conn, DEFAULT_MAX_FRAME_LEN, &mut buf) {}
    });
    assert!(coordinator.wait_for_workers(2, Duration::from_secs(20)));

    let mut world = toy_world(8, 5);
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    {
        use nebula_sim::AdaptStrategy;
        s.set_transport(Box::new(coordinator.transport()));
    }
    let mut rng = NebulaRng::seed(3);
    let t0 = std::time::Instant::now();
    let out = s.single_round(&mut world, &mut rng);
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "eviction must resolve the round well under the 60s deadline, took {:?}",
        t0.elapsed()
    );
    silent.join().expect("silent worker thread");

    assert_eq!(
        out.stats.faults.link_dropped, 0,
        "reassignment must absorb the eviction: {:?}",
        out.stats.faults
    );
    assert_eq!(coordinator.worker_count(), 1, "the silent worker must be evicted from the registry");
    let counters = telemetry.metrics().expect("telemetry armed").counters;
    assert_eq!(counters.get("serve.workers_evicted").copied().unwrap_or(0), 1, "counters: {counters:?}");
    assert!(counters.get("serve.pings_sent").copied().unwrap_or(0) >= 1, "counters: {counters:?}");
    assert_eq!(base_params, s.cloud().model().param_vector(), "the evicted round must stay bit-identical");

    coordinator.shutdown();
    honest.join().expect("honest worker thread");
}

/// Crash-resume, worker half: a coordinator that dies without shutdown
/// notices gets its fleet back — the worker's rejoin loop re-dials the
/// rebound endpoint, re-handshakes under a fresh id, and training
/// continues on the same bits.
#[test]
fn worker_rejoins_across_coordinator_restart_and_bits_continue() {
    let (base_params, _) = run_rounds(None, 2);

    let worker_cfg = WorkerRunConfig { modular: Some(toy_cfg().modular), ..WorkerRunConfig::default() };
    let path = uds_path("rejoin");
    let bind = |p: &PathBuf| {
        let mut cfg = ServeConfig::new(worker_cfg.clone());
        cfg.uds = Some(p.clone());
        cfg.deadline_ms = 60_000;
        Coordinator::bind(cfg).expect("bind coordinator")
    };
    let first = bind(&path);
    let ep = Endpoint::Uds(path.clone());
    let worker = thread::spawn(move || {
        let mut wc = WorkerConfig::new(ep);
        wc.name = "phoenix".into();
        run_worker(wc).expect("worker survives the restart to a clean shutdown")
    });
    assert!(first.wait_for_workers(1, Duration::from_secs(20)));

    let mut world = toy_world(8, 5);
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    let mut rng = NebulaRng::seed(3);
    {
        use nebula_sim::AdaptStrategy;
        s.set_transport(Box::new(first.transport()));
    }
    s.single_round(&mut world, &mut rng);

    // The coordinator "crashes": sockets slammed shut, no notices.
    first.abort();
    let second = bind(&path);
    assert!(
        second.wait_for_workers(1, Duration::from_secs(20)),
        "the worker must rejoin the restarted coordinator on its own"
    );
    {
        use nebula_sim::AdaptStrategy;
        s.set_transport(Box::new(second.transport()));
    }
    s.single_round(&mut world, &mut rng);

    second.shutdown();
    let report = worker.join().expect("worker thread");
    assert_eq!(report.sessions, 2, "exactly one rejoin must have happened: {report:?}");
    assert_eq!(
        base_params,
        s.cloud().model().param_vector(),
        "the trajectory must continue bit-identically across the restart"
    );
}

/// Satellite regression: a result write that fails must poison the
/// session and sever the socket, so the worker fails fast with a reason
/// instead of computing results into the void with a silently dead
/// executor pool.
#[test]
fn result_write_failure_poisons_the_session_and_fails_fast() {
    use nebula_core::{DispatchJob, JobSpec, TrainParams};
    use nebula_data::Dataset;
    use nebula_serve::proto::{encode_job, JobTag};
    use nebula_tensor::Tensor;
    use nebula_wire::hello::{decode_hello, encode_hello_ack, HelloAck};
    use nebula_wire::stream::{read_frame, write_frame, DEFAULT_MAX_FRAME_LEN};
    use nebula_wire::CodecKind;
    use std::os::unix::net::UnixListener;

    let path = uds_path("poison");
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).expect("bind fake coordinator");
    let ep = Endpoint::Uds(path.clone());
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();

    let fake = thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        let mut buf = Vec::new();
        assert!(read_frame(&mut conn, DEFAULT_MAX_FRAME_LEN, &mut buf).expect("hello"));
        decode_hello(&buf, None).expect("hello decodes");
        let ack = HelloAck {
            accepted: true,
            codec: CodecKind::Raw,
            worker_id: 1,
            reason: String::new(),
            config_json: serde_json::to_string(&WorkerRunConfig::default()).expect("config json"),
        };
        encode_hello_ack(&mut buf, &ack, None);
        write_frame(&mut conn, &buf).expect("ack");
        // Stop reading BEFORE the job goes out: the worker's result
        // write then hits a peer that will never drain it (EPIPE), not
        // an ordinary close.
        conn.shutdown(std::net::Shutdown::Read).expect("shut read half");
        // A modular job against a worker with no modular model: the
        // result (a rejection) is produced instantly, no training.
        let xs: Vec<f32> = (0..12).map(|i| i as f32 * 0.25 - 1.0).collect();
        let job = DispatchJob {
            round: 0,
            device: 42,
            spec: JobSpec::Modular { frame: vec![1, 2, 3] },
            rng_state: NebulaRng::seed(7).state(),
            train: TrainParams { epochs: 1, batch_size: 4, lr: 0.05 },
            data: Dataset::new(Tensor::from_vec(xs, &[3, 4]), vec![0, 2, 1], 3),
        };
        let tag = JobTag { job: 0, attempt: 0, epoch: 1, device: 42 };
        encode_job(&mut buf, &job, tag, None).expect("job encodes");
        write_frame(&mut conn, &buf).expect("job frame");
        // Hold the socket open until the worker has failed: dropping it
        // here would mask the write-failure path behind a plain EOF.
        let _ = done_rx.recv_timeout(Duration::from_secs(30));
    });

    let t0 = std::time::Instant::now();
    let mut wc = WorkerConfig::new(ep);
    wc.rejoin = false;
    let err = run_worker(wc).expect_err("a dead result path must fail the worker");
    assert!(matches!(err, nebula_serve::ServeError::Io(_)), "got {err:?}");
    assert!(format!("{err}").contains("poisoned"), "the reason must name the poisoned session: {err}");
    assert!(t0.elapsed() < Duration::from_secs(10), "must fail fast, took {:?}", t0.elapsed());
    done_tx.send(()).ok();
    fake.join().expect("fake coordinator thread");
    let _ = std::fs::remove_file(&path);
}

/// Crash-resume, coordinator half: a durable serving run killed at
/// round 2 resumes from disk — replaying through the live workers —
/// and lands on the uninterrupted trajectory exactly.
#[test]
fn killed_durable_serving_run_resumes_bit_identically() {
    use nebula_sim::{ChaosControl, DurabilityConfig, ExperimentConfig, KillSpot, RunError, Runner};

    const TARGET: f32 = 1.01; // unreachable: runs always go to max_rounds
    const ROUNDS: usize = 4;
    let cfg = ExperimentConfig { eval_devices: 3, seed: 11 };

    // Uninterrupted in-process baseline (serve == in-process is pinned
    // by the identity tests above).
    let mut world = toy_world(8, 5);
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    let base =
        Runner::new(&mut world, &mut s).config(cfg).target(TARGET, ROUNDS, 2).run().expect("baseline run");

    let dir = std::env::temp_dir().join(format!("nebula-serve-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("durability dir");

    let (deployment, _) = deploy(false, "resume", 2, None);

    {
        let mut world = toy_world(8, 5);
        let mut s = NebulaStrategy::new(toy_cfg(), 1);
        let err = Runner::new(&mut world, &mut s)
            .config(cfg)
            .target(TARGET, ROUNDS, 2)
            .durable(DurabilityConfig::new(&dir))
            .chaos(ChaosControl { kill: Some((2, KillSpot::AfterAppend)) })
            .transport(Box::new(deployment.coordinator.transport()))
            .run()
            .expect_err("the armed kill must fire");
        assert_eq!(err, RunError::Killed { round: 2 });
    }

    let mut world = toy_world(8, 5);
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    let resumed = Runner::new(&mut world, &mut s)
        .config(cfg)
        .target(TARGET, ROUNDS, 2)
        .durable(DurabilityConfig::new(&dir))
        .transport(Box::new(deployment.coordinator.transport()))
        .resume()
        .run()
        .expect("resumed serving run completes");

    deployment.teardown();
    assert_eq!(base.rounds, resumed.rounds, "round counts diverge");
    assert_eq!(
        base.final_accuracy.to_bits(),
        resumed.final_accuracy.to_bits(),
        "resume must land on the uninterrupted bits: {} vs {}",
        base.final_accuracy,
        resumed.final_accuracy
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hedged retry, the tentpole's latency leg: a worker whose result
/// frames crawl past the hedge trigger gets its jobs speculatively
/// re-dispatched to the fast worker; the round resolves early, the
/// late originals are absorbed as duplicates, and the bits don't move.
#[test]
fn hedged_dispatch_rescues_a_round_from_a_slow_worker() {
    use nebula_serve::NetFaultPlan;
    use nebula_telemetry::{MemorySink, Telemetry};

    let (base_params, _) = run_rounds(None, 1);

    let worker_cfg = WorkerRunConfig { modular: Some(toy_cfg().modular), ..WorkerRunConfig::default() };
    let mut cfg = ServeConfig::new(worker_cfg);
    let path = uds_path("hedge");
    cfg.uds = Some(path.clone());
    cfg.deadline_ms = 60_000;
    cfg.hedge_after_ms = 250;
    let telemetry = Telemetry::new(Arc::new(MemorySink::default()));
    cfg.telemetry = telemetry.clone();
    let coordinator = Coordinator::bind(cfg).expect("bind coordinator");

    let ep = Endpoint::Uds(path.clone());
    let fast = thread::spawn(move || {
        let mut wc = WorkerConfig::new(ep);
        wc.name = "fast".into();
        run_worker(wc).expect("fast worker");
    });
    assert!(coordinator.wait_for_workers(1, Duration::from_secs(20)));
    let ep = Endpoint::Uds(path);
    let slow = thread::spawn(move || {
        let mut wc = WorkerConfig::new(ep);
        wc.name = "slow".into();
        // Every outbound frame sits on the wire for 1.5 s — an order of
        // magnitude past the hedge trigger, far under the deadline.
        wc.chaos = Some(NetFaultPlan { delay_ms: 1_500, ..NetFaultPlan::seeded(1) });
        run_worker(wc).expect("slow worker");
    });
    assert!(coordinator.wait_for_workers(2, Duration::from_secs(20)));

    let mut world = toy_world(8, 5);
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    {
        use nebula_sim::AdaptStrategy;
        s.set_transport(Box::new(coordinator.transport()));
    }
    let mut rng = NebulaRng::seed(3);
    let out = s.single_round(&mut world, &mut rng);

    assert_eq!(out.stats.faults.link_dropped, 0, "hedging must not surface faults: {:?}", out.stats.faults);
    let counters = telemetry.metrics().expect("telemetry armed").counters;
    assert!(counters.get("serve.jobs_hedged").copied().unwrap_or(0) >= 1, "counters: {counters:?}");
    assert!(counters.get("serve.hedge_wins").copied().unwrap_or(0) >= 1, "counters: {counters:?}");
    assert_eq!(base_params, s.cloud().model().param_vector(), "a hedged round must stay bit-identical");

    coordinator.shutdown();
    fast.join().expect("fast worker thread");
    slow.join().expect("slow worker thread");
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("ops connect");
    write!(s, "GET {path} HTTP/1.1\r\nHost: ops\r\nConnection: close\r\n\r\n").expect("request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("response");
    out
}
