//! Weight-initialisation schemes.
//!
//! Matches the initialisers PyTorch uses for the paper's models: Kaiming
//! (He) for layers followed by ReLU, Xavier (Glorot) for gate/selector
//! heads, plus constant/normal/uniform utility schemes.

use crate::{NebulaRng, Tensor};

/// A weight-initialisation scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// Constant fill.
    Constant(f32),
    /// `N(mean, std)`.
    Normal { mean: f32, std: f32 },
    /// `U(lo, hi)`.
    Uniform { lo: f32, hi: f32 },
    /// Glorot/Xavier uniform: `U(±sqrt(6/(fan_in+fan_out)))`.
    XavierUniform,
    /// He/Kaiming normal: `N(0, sqrt(2/fan_in))`, for ReLU networks.
    KaimingNormal,
}

impl Init {
    /// Builds a rank-2 weight tensor of shape `[fan_out, fan_in]`.
    ///
    /// Row-major `out×in` layout matches [`Tensor::matmul_nt`], the linear
    /// layer's forward kernel.
    pub fn weight(self, fan_out: usize, fan_in: usize, rng: &mut NebulaRng) -> Tensor {
        let n = fan_out * fan_in;
        let data: Vec<f32> = match self {
            Init::Zeros => vec![0.0; n],
            Init::Constant(c) => vec![c; n],
            Init::Normal { mean, std } => (0..n).map(|_| rng.normal_f32(mean, std)).collect(),
            Init::Uniform { lo, hi } => (0..n).map(|_| rng.uniform_f32(lo, hi)).collect(),
            Init::XavierUniform => {
                let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
                (0..n).map(|_| rng.uniform_f32(-bound, bound)).collect()
            }
            Init::KaimingNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                (0..n).map(|_| rng.normal_f32(0.0, std)).collect()
            }
        };
        Tensor::from_vec(data, &[fan_out, fan_in])
    }

    /// Builds a rank-1 tensor of length `n` (bias / scale vectors).
    pub fn vector(self, n: usize, rng: &mut NebulaRng) -> Tensor {
        let data: Vec<f32> = match self {
            Init::Zeros => vec![0.0; n],
            Init::Constant(c) => vec![c; n],
            Init::Normal { mean, std } => (0..n).map(|_| rng.normal_f32(mean, std)).collect(),
            Init::Uniform { lo, hi } => (0..n).map(|_| rng.uniform_f32(lo, hi)).collect(),
            Init::XavierUniform | Init::KaimingNormal => {
                // Fan-based schemes degrade to a small uniform for vectors.
                let bound = (1.0 / n.max(1) as f32).sqrt();
                (0..n).map(|_| rng.uniform_f32(-bound, bound)).collect()
            }
        };
        Tensor::from_vec(data, &[n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_constant() {
        let mut rng = NebulaRng::seed(1);
        assert!(Init::Zeros.weight(3, 4, &mut rng).data().iter().all(|&v| v == 0.0));
        assert!(Init::Constant(2.5).vector(5, &mut rng).data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = NebulaRng::seed(2);
        let w = Init::XavierUniform.weight(10, 20, &mut rng);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = NebulaRng::seed(3);
        let w = Init::KaimingNormal.weight(64, 128, &mut rng);
        let std = (w.norm_sq() / w.len() as f32).sqrt();
        let expect = (2.0f32 / 128.0).sqrt();
        assert!((std - expect).abs() / expect < 0.15, "std {std} vs {expect}");
    }

    #[test]
    fn shapes_are_correct() {
        let mut rng = NebulaRng::seed(4);
        assert_eq!(Init::KaimingNormal.weight(7, 3, &mut rng).shape(), &[7, 3]);
        assert_eq!(Init::Zeros.vector(9, &mut rng).shape(), &[9]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = NebulaRng::seed(5);
        let mut b = NebulaRng::seed(5);
        let wa = Init::Normal { mean: 0.0, std: 1.0 }.weight(4, 4, &mut a);
        let wb = Init::Normal { mean: 0.0, std: 1.0 }.weight(4, 4, &mut b);
        assert_eq!(wa, wb);
    }
}
