//! Cache-blocked, register-tiled GEMM engine behind the public
//! [`crate::Tensor`] mat-mul API.
//!
//! Structure follows the classic three-level blocking of GotoBLAS/BLIS:
//!
//! * the `n` dimension is cut into `NC`-wide slabs, the `k` dimension into
//!   `KC`-deep slabs; for every `(jc, pc)` pair the corresponding `B` panel
//!   is packed once into a contiguous, `NR`-interleaved buffer;
//! * the `m` dimension is cut into `MC`-tall blocks; each block packs its
//!   `A` slab `MR`-interleaved and then sweeps `MR×NR` register tiles over
//!   the packed panels;
//! * the micro-kernel keeps an `MR×NR` accumulator entirely in registers
//!   and streams both packed panels linearly — no bounds checks, no
//!   branches, unit-stride loads.
//!
//! Both transposed operand layouts (`A` stored `k×m`, `B` stored `n×k`)
//! are absorbed by the packing routines, so `matmul`, `matmul_nt` and
//! `matmul_tn` all share this one kernel.
//!
//! ## Determinism
//!
//! For a fixed output element `C[i, j]`, products are accumulated in
//! ascending `p` order: the `pc` loop walks `k` in `KC` steps and the
//! micro-kernel walks each slab in order. Threads only ever split the `m`
//! dimension (disjoint row blocks of `C`), never `k`, so the reduction
//! order — and therefore the floating-point result — is bit-identical for
//! any thread count, including the sequential path. Block sizes *do*
//! change the result relative to a naive `p = 0..k` loop only in so far as
//! rounding differs when `k > KC` splits the sum; the order within and
//! across slabs is still the plain ascending order, so in fact the
//! reduction order equals the naive kernel's and results match it exactly
//! (modulo the compiler's freedom to contract `a*b + c` into fused
//! multiply-adds in either kernel).

use rayon::prelude::*;
use std::cell::RefCell;

/// Micro-tile rows: `MR` rows of `A` are broadcast per step.
pub const MR: usize = 4;
/// Micro-tile columns: `NR` contiguous packed `B` values per step. One
/// 256-bit lane on the x86-64-v3 baseline (see `.cargo/config.toml`), so
/// the `MR×NR` accumulator occupies 4 of the 16 YMM registers with room
/// for the `B` row, `A` broadcasts and loop-carried state.
pub const NR: usize = 8;
/// Rows of `A` packed per block (multiple of `MR`); `MC×KC` floats ≈ 64 KiB
/// targets L2 residency for the packed `A` slab.
pub const MC: usize = 64;
/// Depth of one packed slab; bounds the per-tile accumulator run.
pub const KC: usize = 256;
/// Columns of `B` packed per slab (multiple of `NR`); `KC×NC` floats ≈
/// 256 KiB keeps the shared `B` panel cache-resident while every row block
/// re-reads it.
pub const NC: usize = 256;

/// How the `A` operand is stored.
#[derive(Clone, Copy, Debug)]
pub enum ALayout {
    /// `m×k` row-major: element `(i, p)` at `a[i*k + p]`.
    RowMajor,
    /// `k×m` row-major, used transposed: element `(i, p)` at `a[p*m + i]`.
    Transposed,
}

/// How the `B` operand is stored.
#[derive(Clone, Copy, Debug)]
pub enum BLayout {
    /// `k×n` row-major: element `(p, j)` at `b[p*n + j]`.
    RowMajor,
    /// `n×k` row-major, used transposed: element `(p, j)` at `b[j*k + p]`.
    Transposed,
}

thread_local! {
    // Packing scratch, reused across calls (and per worker thread under a
    // real rayon pool) so steady-state GEMMs allocate nothing.
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `C += A·B` over row-major `out` (`m×n`, assumed pre-zeroed by callers
/// wanting a plain product). `parallel` splits the `m` dimension over
/// rayon; results are bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    al: ALayout,
    b: &[f32],
    bl: BLayout,
    parallel: bool,
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let lda = match al {
        ALayout::RowMajor => k,
        ALayout::Transposed => m,
    };
    let ldb = match bl {
        BLayout::RowMajor => n,
        BLayout::Transposed => k,
    };

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            PACK_B.with(|cell| {
                let mut bbuf = cell.borrow_mut();
                pack_b(&mut bbuf, b, bl, ldb, pc, kc, jc, nc);
                let bpack: &[f32] = &bbuf;
                if parallel {
                    out.par_chunks_mut(MC * n).enumerate().for_each(|(blk, rows)| {
                        let ic = blk * MC;
                        let mc = MC.min(m - ic);
                        process_block(rows, a, al, lda, ic, mc, n, jc, nc, pc, kc, bpack);
                    });
                } else {
                    for (blk, rows) in out.chunks_mut(MC * n).enumerate() {
                        let ic = blk * MC;
                        let mc = MC.min(m - ic);
                        process_block(rows, a, al, lda, ic, mc, n, jc, nc, pc, kc, bpack);
                    }
                }
            });
            pc += kc;
        }
        jc += nc;
    }
}

/// Packs `B[pc..pc+kc, jc..jc+nc]` into `NR`-wide column panels: panel
/// `jp` holds, for each `p`, the `NR` values of columns
/// `jc + jp*NR .. +NR`, zero-padded past the matrix edge so the
/// micro-kernel never branches.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    buf: &mut Vec<f32>,
    b: &[f32],
    bl: BLayout,
    ldb: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let np = nc.div_ceil(NR);
    buf.clear();
    buf.resize(np * kc * NR, 0.0);
    for jp in 0..np {
        let j0 = jc + jp * NR;
        let jw = NR.min(jc + nc - j0);
        let panel = &mut buf[jp * kc * NR..(jp + 1) * kc * NR];
        match bl {
            BLayout::RowMajor => {
                for p in 0..kc {
                    let src = &b[(pc + p) * ldb + j0..(pc + p) * ldb + j0 + jw];
                    panel[p * NR..p * NR + jw].copy_from_slice(src);
                }
            }
            BLayout::Transposed => {
                for j in 0..jw {
                    let src = &b[(j0 + j) * ldb + pc..(j0 + j) * ldb + pc + kc];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * NR + j] = v;
                    }
                }
            }
        }
    }
}

/// Packs `A[ic..ic+mc, pc..pc+kc]` into `MR`-tall row panels: panel `ip`
/// holds, for each `p`, the `MR` values of rows `ic + ip*MR .. +MR`,
/// zero-padded past the matrix edge.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    buf: &mut Vec<f32>,
    a: &[f32],
    al: ALayout,
    lda: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let mp = mc.div_ceil(MR);
    buf.clear();
    buf.resize(mp * kc * MR, 0.0);
    for ip in 0..mp {
        let i0 = ic + ip * MR;
        let iw = MR.min(ic + mc - i0);
        let panel = &mut buf[ip * kc * MR..(ip + 1) * kc * MR];
        match al {
            ALayout::RowMajor => {
                for i in 0..iw {
                    let src = &a[(i0 + i) * lda + pc..(i0 + i) * lda + pc + kc];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * MR + i] = v;
                    }
                }
            }
            ALayout::Transposed => {
                for p in 0..kc {
                    let src = &a[(pc + p) * lda + i0..(pc + p) * lda + i0 + iw];
                    panel[p * MR..p * MR + iw].copy_from_slice(src);
                }
            }
        }
    }
}

/// One `MC`-tall row block: pack its `A` slab, then sweep `MR×NR` tiles.
/// `rows` is the block's `mc×n` window of `C`.
#[allow(clippy::too_many_arguments)]
fn process_block(
    rows: &mut [f32],
    a: &[f32],
    al: ALayout,
    lda: usize,
    ic: usize,
    mc: usize,
    n: usize,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
    bpack: &[f32],
) {
    PACK_A.with(|cell| {
        let mut abuf = cell.borrow_mut();
        pack_a(&mut abuf, a, al, lda, ic, mc, pc, kc);
        let mp = mc.div_ceil(MR);
        let np = nc.div_ceil(NR);
        for ip in 0..mp {
            let iw = MR.min(mc - ip * MR);
            let apanel = &abuf[ip * kc * MR..(ip + 1) * kc * MR];
            for jp in 0..np {
                let jw = NR.min(nc - jp * NR);
                let bpanel = &bpack[jp * kc * NR..(jp + 1) * kc * NR];
                let mut acc = [[0.0f32; NR]; MR];
                microkernel(kc, apanel, bpanel, &mut acc);
                for (i, acc_row) in acc.iter().enumerate().take(iw) {
                    let base = (ip * MR + i) * n + jc + jp * NR;
                    let crow = &mut rows[base..base + jw];
                    for (c, &v) in crow.iter_mut().zip(acc_row.iter()) {
                        *c += v;
                    }
                }
            }
        }
    });
}

/// The register tile: `acc[i][j] += Σ_p apanel[p][i] · bpanel[p][j]`.
/// `chunks_exact` gives the optimiser fixed-size, bounds-check-free views;
/// the `NR`-wide inner loop vectorises and the `MR×NR` accumulators give
/// 32 independent dependency chains.
#[inline]
fn microkernel(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (av, bv) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(kc) {
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc[i][j] += ai * bv[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = s;
            }
        }
        out
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = crate::NebulaRng::seed(seed);
        (0..len).map(|_| rng.normal_f32(0.0, 1.0)).collect()
    }

    #[test]
    fn blocked_matches_naive_at_block_edges() {
        // Shapes straddling MR/NR/MC/KC/NC boundaries.
        for &(m, n, k) in &[
            (1, 1, 1),
            (MR, NR, 4),
            (MR + 1, NR + 1, 3),
            (MC, NR, KC),
            (MC + 3, NC + 5, KC + 7),
            (2, 300, 300),
        ] {
            let a = fill(m * k, 1 + m as u64);
            let b = fill(k * n, 2 + n as u64);
            let mut out = vec![0.0; m * n];
            gemm(&mut out, m, n, k, &a, ALayout::RowMajor, &b, BLayout::RowMajor, false);
            let want = naive(m, n, k, &a, &b);
            for (x, y) in out.iter().zip(&want) {
                assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()), "{m}x{n}x{k}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn parallel_path_is_bit_identical() {
        let (m, n, k) = (MC * 2 + 5, 70, KC + 9);
        let a = fill(m * k, 11);
        let b = fill(k * n, 12);
        let mut seq = vec![0.0; m * n];
        let mut par = vec![0.0; m * n];
        gemm(&mut seq, m, n, k, &a, ALayout::RowMajor, &b, BLayout::RowMajor, false);
        gemm(&mut par, m, n, k, &a, ALayout::RowMajor, &b, BLayout::RowMajor, true);
        assert_eq!(seq, par, "parallel split changed the reduction result");
    }

    #[test]
    fn transposed_layouts_match_explicit_transpose() {
        let (m, n, k) = (9, 13, 21);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        // A stored k×m.
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        // B stored n×k.
        let mut bt = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let want = naive(m, n, k, &a, &b);
        let mut out = vec![0.0; m * n];
        gemm(&mut out, m, n, k, &at, ALayout::Transposed, &b, BLayout::RowMajor, false);
        for (x, y) in out.iter().zip(&want) {
            assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
        let mut out2 = vec![0.0; m * n];
        gemm(&mut out2, m, n, k, &a, ALayout::RowMajor, &bt, BLayout::Transposed, false);
        for (x, y) in out2.iter().zip(&want) {
            assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }
}
