//! The core [`Tensor`] type: row-major dense `f32` storage with a dynamic
//! shape. Rank-1 and rank-2 tensors cover everything the Nebula training
//! stack needs; higher ranks are supported for storage but most linear
//! algebra is defined on rank ≤ 2.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// Cloning a tensor copies its buffer; the training stack relies on this for
/// snapshotting model parameters before aggregation, so buffers are kept as
/// plain `Vec<f32>` rather than reference-counted slabs.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from raw parts. Panics if `data.len()` does not
    /// match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let expect: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expect,
            "data length {} does not match shape {:?} (= {})",
            data.len(),
            shape,
            expect
        );
        Self { data, shape: shape.to_vec() }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self { data: vec![0.0; shape.iter().product()], shape: shape.to_vec() }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self { data: vec![1.0; shape.iter().product()], shape: shape.to_vec() }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self { data: vec![value; shape.iter().product()], shape: shape.to_vec() }
    }

    /// Rank-1 tensor from a slice.
    pub fn vector(values: &[f32]) -> Self {
        Self { data: values.to_vec(), shape: vec![values.len()] }
    }

    /// Rank-2 tensor from nested slices; all rows must have equal length.
    pub fn matrix(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Tensor::matrix");
            data.extend_from_slice(row);
        }
        Self { data, shape: vec![r, c] }
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The shape as a slice.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows of a rank-2 tensor (or length of a rank-1 tensor).
    #[inline]
    pub fn rows(&self) -> usize {
        match self.rank() {
            1 => self.shape[0],
            2 => self.shape[0],
            r => panic!("rows() on rank-{r} tensor"),
        }
    }

    /// Number of columns of a rank-2 tensor (1 for rank-1 tensors).
    #[inline]
    pub fn cols(&self) -> usize {
        match self.rank() {
            1 => 1,
            2 => self.shape[1],
            r => panic!("cols() on rank-{r} tensor"),
        }
    }

    /// Immutable view of row `i` of a rank-2 tensor.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let c = self.shape[1];
        &self.data[i * c..(i + 1) * c]
    }

    /// Mutable view of row `i` of a rank-2 tensor.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert_eq!(self.rank(), 2, "row_mut() requires a rank-2 tensor");
        let c = self.shape[1];
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Element accessor for rank-2 tensors.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Mutable element accessor for rank-2 tensors.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        debug_assert_eq!(self.rank(), 2);
        let c = self.shape[1];
        &mut self.data[i * c + j]
    }

    /// Returns a copy reshaped to `shape`; element count must be preserved.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let expect: usize = shape.iter().product();
        assert_eq!(self.len(), expect, "reshape {:?} -> {:?} changes element count", self.shape, shape);
        Tensor { data: self.data.clone(), shape: shape.to_vec() }
    }

    /// Reshapes in place; element count must be preserved.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let expect: usize = shape.iter().product();
        assert_eq!(self.len(), expect, "reshape {:?} -> {:?} changes element count", self.shape, shape);
        self.shape = shape.to_vec();
    }

    /// Transposes a rank-2 tensor (copying).
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Builds a rank-2 tensor by stacking row slices.
    pub fn stack_rows(rows: &[&[f32]]) -> Tensor {
        Tensor::matrix(rows)
    }

    /// Extracts a contiguous range of rows as a new tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "slice_rows requires rank-2");
        assert!(start <= end && end <= self.shape[0], "row range {start}..{end} out of bounds");
        let c = self.shape[1];
        Tensor::from_vec(self.data[start * c..end * c].to_vec(), &[end - start, c])
    }

    /// Gathers the given rows (by index) into a new tensor.
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        assert_eq!(self.rank(), 2, "gather_rows requires rank-2");
        let c = self.shape[1];
        let mut data = Vec::with_capacity(idx.len() * c);
        for &i in idx {
            data.extend_from_slice(self.row(i));
        }
        Tensor::from_vec(data, &[idx.len(), c])
    }

    /// Gathers the given rows into `out` (`idx.len() × cols`, overwritten)
    /// without allocating; `out` must already have the right shape.
    pub fn gather_rows_into(&self, idx: &[usize], out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "gather_rows_into requires rank-2");
        let c = self.shape[1];
        assert_eq!(out.shape(), &[idx.len(), c], "gather_rows_into out shape mismatch");
        for (dst, &i) in out.data.chunks_exact_mut(c).zip(idx) {
            dst.copy_from_slice(&self.data[i * c..(i + 1) * c]);
        }
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Fills with zeros without reallocating.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:.4}, {:.4}, …, {:.4}]", self.data[0], self.data[1], self.data[self.len() - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_shape() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_shape() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[3, 2]).data().iter().all(|&v| v == 0.0));
        assert!(Tensor::ones(&[4]).data().iter().all(|&v| v == 1.0));
        assert!(Tensor::full(&[2, 2], 7.5).data().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn eye_is_identity() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.at(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn row_access() {
        let t = Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn row_mut_updates() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.row_mut(1).copy_from_slice(&[5.0, 6.0]);
        assert_eq!(t.data(), &[0.0, 0.0, 5.0, 6.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::matrix(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(2, 1), 6.0);
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_count_change() {
        Tensor::zeros(&[2, 3]).reshape(&[4, 2]);
    }

    #[test]
    fn slice_and_gather_rows() {
        let t = Tensor::matrix(&[&[0.0, 1.0], &[2.0, 3.0], &[4.0, 5.0]]);
        let s = t.slice_rows(1, 3);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.row(0), &[2.0, 3.0]);
        let g = t.gather_rows(&[2, 0, 2]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.row(0), &[4.0, 5.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
        assert_eq!(g.row(2), &[4.0, 5.0]);
        let mut out = Tensor::full(&[3, 2], -1.0);
        t.gather_rows_into(&[2, 0, 2], &mut out);
        assert_eq!(out, g);
    }

    #[test]
    fn norms() {
        let t = Tensor::vector(&[3.0, 4.0]);
        assert_eq!(t.norm_sq(), 25.0);
        assert_eq!(t.norm(), 5.0);
    }

    #[test]
    fn finite_detection() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn zero_in_place() {
        let mut t = Tensor::full(&[3], 2.0);
        t.zero_();
        assert_eq!(t.data(), &[0.0, 0.0, 0.0]);
    }
}
