//! Nested-parallelism policy.
//!
//! The simulator parallelises at the *client* level: one task per sampled
//! device inside a collaborative round (`strategy.rs`, `fedavg_round`,
//! `heterofl_round`). The tensor kernels also parallelise, at the
//! *row-block* level, once a product is large enough. Letting both fire at
//! once oversubscribes the pool: every client task forks its own kernel
//! tasks, and the fork/join overhead swamps the 16×96×24-sized products a
//! per-device training batch actually runs.
//!
//! The fix is a per-thread depth counter: a round section that is already
//! parallel over clients wraps each client's work in [`sequential`], and
//! the kernels consult [`in_sequential_scope`] before going parallel. The
//! counter is thread-local, so with a real work-stealing pool the guard
//! applies exactly to the worker executing the client closure — other
//! workers (e.g. the cloud thread aggregating between rounds) are
//! unaffected.
//!
//! Determinism is unaffected either way: the blocked GEMM produces
//! bit-identical results on the sequential and parallel paths (see
//! `gemm.rs`), so this policy is purely a scheduling decision.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static SEQ_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Process-wide kernel-thread budget; `0` means "no explicit budget".
static MAX_KERNEL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Caps kernel-level parallelism process-wide; `0` clears the cap.
///
/// A budget of `1` pins every mat-mul to the sequential path regardless of
/// size — the co-location knob behind `nebula-node worker --threads 1`, so
/// workers sharing a host don't oversubscribe cores. Budgets above `1`
/// currently permit the parallel path and rely on the rayon pool's own
/// sizing (results are bit-identical at any thread count, so the budget is
/// purely a scheduling decision; see the module docs).
pub fn set_max_kernel_threads(n: usize) {
    MAX_KERNEL_THREADS.store(n, Ordering::SeqCst);
}

/// The budget set by [`set_max_kernel_threads`]; `0` when uncapped.
pub fn max_kernel_threads() -> usize {
    MAX_KERNEL_THREADS.load(Ordering::SeqCst)
}

/// True when a kernel may take the rayon path on this thread: not inside
/// a [`sequential`] scope and not pinned by a budget of `1`.
pub fn kernel_parallelism_allowed() -> bool {
    max_kernel_threads() != 1 && !in_sequential_scope()
}

/// RAII guard for a sequential-kernel scope; created by [`sequential`].
pub struct SequentialScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SequentialScope {
    fn enter() -> Self {
        SEQ_DEPTH.with(|d| d.set(d.get() + 1));
        Self { _not_send: std::marker::PhantomData }
    }
}

impl Drop for SequentialScope {
    fn drop(&mut self) {
        SEQ_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Runs `f` with kernel-level parallelism disabled on this thread.
///
/// Use around per-client work inside a client-parallel round section so
/// inner mat-muls do not nest-fork. Scopes may nest; parallelism resumes
/// when the outermost scope ends.
pub fn sequential<R>(f: impl FnOnce() -> R) -> R {
    let _guard = SequentialScope::enter();
    f()
}

/// True while the current thread is inside a [`sequential`] scope.
pub fn in_sequential_scope() -> bool {
    SEQ_DEPTH.with(|d| d.get() > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_nests_and_unwinds() {
        assert!(!in_sequential_scope());
        sequential(|| {
            assert!(in_sequential_scope());
            sequential(|| assert!(in_sequential_scope()));
            assert!(in_sequential_scope());
        });
        assert!(!in_sequential_scope());
    }

    #[test]
    fn scope_returns_closure_value() {
        assert_eq!(sequential(|| 7), 7);
    }

    #[test]
    fn thread_budget_of_one_pins_sequential() {
        assert_eq!(max_kernel_threads(), 0);
        assert!(kernel_parallelism_allowed());
        set_max_kernel_threads(1);
        assert!(!kernel_parallelism_allowed());
        set_max_kernel_threads(4);
        assert!(kernel_parallelism_allowed());
        set_max_kernel_threads(0);
        assert!(kernel_parallelism_allowed());
    }
}
