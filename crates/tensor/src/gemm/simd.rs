//! Explicit SIMD micro-kernels with runtime dispatch.
//!
//! The scalar `Blocked` engine leaves FMA throughput on the table: LLVM
//! will not contract `a*b + c` into a fused multiply-add without
//! fast-math flags, so the auto-vectorised tile issues separate multiply
//! and add instructions and sustains at best half of machine peak. The
//! kernels here use `_mm256_fmadd_ps`/`_mm512_fmadd_ps` explicitly:
//!
//! * **AVX2+FMA, 6×16 tile** — 12 of the 16 YMM registers hold the
//!   accumulator (6 rows × two 8-lane vectors), leaving room for the two
//!   `B` vectors and the broadcast `A` scalar. 6×16 over two FMA ports
//!   covers the 4-to-5-cycle FMA latency with ~12 independent chains.
//! * **AVX-512F, 8×32 tile** — 16 of the 32 ZMM registers hold the
//!   accumulator (8 rows × two 16-lane vectors); twice the flops per
//!   k-step of the AVX2 tile.
//!
//! Feature detection runs once via [`is_x86_feature_detected!`] and is
//! cached in a `OnceLock` ([`detect`]); [`crate::backend::resolve`] maps
//! the detected [`SimdLevel`] to a [`crate::KernelBackend`] and never
//! dispatches a kernel the CPU cannot run — on non-x86 builds both entry
//! points degrade to the scalar blocked engine, the guaranteed fallback.
//!
//! ## Determinism
//!
//! Both kernels run under the same macro-kernel
//! ([`crate::gemm::gemm_with`]) with the same `KC` slabbing as the scalar
//! tile, accumulate each output element in ascending `p` order, and split
//! only the `m` dimension across threads. A fixed backend is therefore
//! run-to-run (and thread-count-to-thread-count) bit-identical; across
//! backends results differ only by FMA contraction, pinned against the
//! scalar engine by `tests/simd_equivalence.rs`.

use super::{gemm_with, ALayout, BLayout, MicroKernel};
use std::sync::OnceLock;

/// Best instruction-set tier the running CPU supports, ordered so that
/// `Avx512 > Avx2 > None` comparisons express capability.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// No usable x86 SIMD tier (or a non-x86 build): scalar engine only.
    None,
    /// AVX2 + FMA available.
    Avx2,
    /// AVX-512F available (implies the AVX2 tier).
    Avx512,
}

/// Detects the best supported [`SimdLevel`] once per process; subsequent
/// calls are a relaxed atomic load out of the `OnceLock`.
pub fn detect() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            // FMA is required at every tier: the whole point of the
            // explicit kernels is fused multiply-add throughput.
            if !(is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")) {
                SimdLevel::None
            } else if is_x86_feature_detected!("avx512f") {
                SimdLevel::Avx512
            } else {
                SimdLevel::Avx2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            SimdLevel::None
        }
    })
}

/// Register-tile rows of the AVX2 micro-kernel.
pub const MR_AVX2: usize = 6;
/// Register-tile columns of the AVX2 micro-kernel (two YMM lanes).
pub const NR_AVX2: usize = 16;
/// Register-tile rows of the AVX-512 micro-kernel.
pub const MR_AVX512: usize = 8;
/// Register-tile columns of the AVX-512 micro-kernel (two ZMM lanes).
pub const NR_AVX512: usize = 32;
/// Row-block height for the SIMD engines: a common multiple of both tile
/// heights (and of the parallel m-split unit); `96×KC` floats ≈ 96 KiB of
/// packed `A` stays L2-resident.
pub const MC_SIMD: usize = 96;

/// `C += A·B` through the AVX2+FMA 6×16 micro-kernel.
///
/// Panics in debug builds if the CPU lacks AVX2+FMA — dispatch through
/// [`crate::backend::resolve`] guarantees it is only reached when
/// supported. Non-x86 builds fall back to the scalar blocked engine.
#[allow(clippy::too_many_arguments)]
pub fn gemm_avx2(
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    al: ALayout,
    b: &[f32],
    bl: BLayout,
    parallel: bool,
) {
    #[cfg(target_arch = "x86_64")]
    {
        debug_assert!(detect() >= SimdLevel::Avx2, "AVX2 kernel dispatched on unsupported CPU");
        let kernel: MicroKernel<MR_AVX2, NR_AVX2> = x86::microkernel_avx2;
        // SAFETY: resolve() only routes here when AVX2+FMA are present.
        unsafe { gemm_with::<MR_AVX2, NR_AVX2>(kernel, MC_SIMD, out, m, n, k, a, al, b, bl, parallel) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    super::gemm(out, m, n, k, a, al, b, bl, parallel);
}

/// `C += A·B` through the AVX-512F 8×32 micro-kernel.
///
/// Same contract as [`gemm_avx2`], requiring the `Avx512` tier.
#[allow(clippy::too_many_arguments)]
pub fn gemm_avx512(
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    al: ALayout,
    b: &[f32],
    bl: BLayout,
    parallel: bool,
) {
    #[cfg(target_arch = "x86_64")]
    {
        debug_assert!(detect() >= SimdLevel::Avx512, "AVX-512 kernel dispatched on unsupported CPU");
        let kernel: MicroKernel<MR_AVX512, NR_AVX512> = x86::microkernel_avx512;
        // SAFETY: resolve() only routes here when AVX-512F is present.
        unsafe { gemm_with::<MR_AVX512, NR_AVX512>(kernel, MC_SIMD, out, m, n, k, a, al, b, bl, parallel) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    super::gemm(out, m, n, k, a, al, b, bl, parallel);
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR_AVX2, MR_AVX512, NR_AVX2, NR_AVX512};
    use std::arch::x86_64::*;

    /// AVX2+FMA 6×16 register tile behind the [`super::MicroKernel`]
    /// signature (plain `unsafe fn` so it coerces to the fn-pointer type).
    ///
    /// # Safety
    /// The CPU must support AVX2 and FMA.
    pub(super) unsafe fn microkernel_avx2(
        kc: usize,
        apanel: &[f32],
        bpanel: &[f32],
        acc: &mut [[f32; NR_AVX2]; MR_AVX2],
    ) {
        debug_assert!(apanel.len() >= kc * MR_AVX2 && bpanel.len() >= kc * NR_AVX2);
        microkernel_avx2_impl(kc, apanel, bpanel, acc)
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn microkernel_avx2_impl(
        kc: usize,
        apanel: &[f32],
        bpanel: &[f32],
        acc: &mut [[f32; NR_AVX2]; MR_AVX2],
    ) {
        // 12 YMM accumulators: 6 rows × two 8-lane halves, loaded from
        // (and added back into) the caller's tile to honour the `+=`
        // contract shared with the scalar kernel.
        let mut c = [[_mm256_setzero_ps(); 2]; MR_AVX2];
        let mut ap = apanel.as_ptr();
        let mut bp = bpanel.as_ptr();
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for (i, row) in c.iter_mut().enumerate() {
                let ai = _mm256_broadcast_ss(&*ap.add(i));
                row[0] = _mm256_fmadd_ps(ai, b0, row[0]);
                row[1] = _mm256_fmadd_ps(ai, b1, row[1]);
            }
            ap = ap.add(MR_AVX2);
            bp = bp.add(NR_AVX2);
        }
        for (row, out) in c.iter().zip(acc.iter_mut()) {
            let lo = _mm256_add_ps(_mm256_loadu_ps(out.as_ptr()), row[0]);
            let hi = _mm256_add_ps(_mm256_loadu_ps(out.as_ptr().add(8)), row[1]);
            _mm256_storeu_ps(out.as_mut_ptr(), lo);
            _mm256_storeu_ps(out.as_mut_ptr().add(8), hi);
        }
    }

    /// AVX-512F 8×32 register tile behind the [`super::MicroKernel`]
    /// signature.
    ///
    /// # Safety
    /// The CPU must support AVX-512F.
    pub(super) unsafe fn microkernel_avx512(
        kc: usize,
        apanel: &[f32],
        bpanel: &[f32],
        acc: &mut [[f32; NR_AVX512]; MR_AVX512],
    ) {
        debug_assert!(apanel.len() >= kc * MR_AVX512 && bpanel.len() >= kc * NR_AVX512);
        microkernel_avx512_impl(kc, apanel, bpanel, acc)
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn microkernel_avx512_impl(
        kc: usize,
        apanel: &[f32],
        bpanel: &[f32],
        acc: &mut [[f32; NR_AVX512]; MR_AVX512],
    ) {
        // 16 ZMM accumulators: 8 rows × two 16-lane halves.
        let mut c = [[_mm512_setzero_ps(); 2]; MR_AVX512];
        let mut ap = apanel.as_ptr();
        let mut bp = bpanel.as_ptr();
        for _ in 0..kc {
            let b0 = _mm512_loadu_ps(bp);
            let b1 = _mm512_loadu_ps(bp.add(16));
            for (i, row) in c.iter_mut().enumerate() {
                let ai = _mm512_set1_ps(*ap.add(i));
                row[0] = _mm512_fmadd_ps(ai, b0, row[0]);
                row[1] = _mm512_fmadd_ps(ai, b1, row[1]);
            }
            ap = ap.add(MR_AVX512);
            bp = bp.add(NR_AVX512);
        }
        for (row, out) in c.iter().zip(acc.iter_mut()) {
            let lo = _mm512_add_ps(_mm512_loadu_ps(out.as_ptr()), row[0]);
            let hi = _mm512_add_ps(_mm512_loadu_ps(out.as_ptr().add(16)), row[1]);
            _mm512_storeu_ps(out.as_mut_ptr(), lo);
            _mm512_storeu_ps(out.as_mut_ptr().add(16), hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = crate::NebulaRng::seed(seed);
        (0..len).map(|_| rng.normal_f32(0.0, 1.0)).collect()
    }

    fn close(got: &[f32], want: &[f32], tol: f32) {
        for (x, y) in got.iter().zip(want) {
            assert!((x - y).abs() <= tol * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn detect_is_stable_and_ordered() {
        assert_eq!(detect(), detect());
        assert!(SimdLevel::None < SimdLevel::Avx2 && SimdLevel::Avx2 < SimdLevel::Avx512);
    }

    #[test]
    fn simd_engines_match_scalar_and_are_deterministic() {
        // Shapes straddling both SIMD tile shapes and the shared KC slab.
        for &(m, n, k) in
            &[(1, 1, 1), (MR_AVX512, NR_AVX512, 5), (MC_SIMD + 7, NR_AVX512 + 3, super::super::KC + 9)]
        {
            let a = fill(m * k, 21 + m as u64);
            let b = fill(k * n, 22 + n as u64);
            let mut scalar = vec![0.0; m * n];
            super::super::gemm(&mut scalar, m, n, k, &a, ALayout::RowMajor, &b, BLayout::RowMajor, false);

            if detect() >= SimdLevel::Avx2 {
                let mut v = vec![0.0; m * n];
                gemm_avx2(&mut v, m, n, k, &a, ALayout::RowMajor, &b, BLayout::RowMajor, false);
                close(&v, &scalar, 1e-4);
                let mut v2 = vec![0.0; m * n];
                gemm_avx2(&mut v2, m, n, k, &a, ALayout::RowMajor, &b, BLayout::RowMajor, true);
                assert_eq!(v, v2, "AVX2 parallel split changed the result");
            }
            if detect() >= SimdLevel::Avx512 {
                let mut v = vec![0.0; m * n];
                gemm_avx512(&mut v, m, n, k, &a, ALayout::RowMajor, &b, BLayout::RowMajor, false);
                close(&v, &scalar, 1e-4);
                let mut v2 = vec![0.0; m * n];
                gemm_avx512(&mut v2, m, n, k, &a, ALayout::RowMajor, &b, BLayout::RowMajor, true);
                assert_eq!(v, v2, "AVX-512 parallel split changed the result");
            }
        }
    }
}
