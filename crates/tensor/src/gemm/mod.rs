//! Cache-blocked, register-tiled GEMM engine behind the public
//! [`crate::Tensor`] mat-mul API.
//!
//! Structure follows the classic three-level blocking of GotoBLAS/BLIS:
//!
//! * the `n` dimension is cut into `NC`-wide slabs, the `k` dimension into
//!   `KC`-deep slabs; for every `(jc, pc)` pair the corresponding `B` panel
//!   is packed once into a contiguous, `NR`-interleaved buffer;
//! * the `m` dimension is cut into `MC`-tall blocks; each block packs its
//!   `A` slab `MR`-interleaved and then sweeps `MR×NR` register tiles over
//!   the packed panels;
//! * the micro-kernel keeps an `MR×NR` accumulator entirely in registers
//!   and streams both packed panels linearly — no bounds checks, no
//!   branches, unit-stride loads.
//!
//! Both transposed operand layouts (`A` stored `k×m`, `B` stored `n×k`)
//! are absorbed by the packing routines, so `matmul`, `matmul_nt` and
//! `matmul_tn` all share this one macro-kernel.
//!
//! The packing/blocking loops are generic over the register-tile shape
//! (`const MR_/NR_`), so one macro-kernel drives several micro-kernels:
//! the scalar 4×8 tile the compiler auto-vectorises (the `Blocked`
//! backend — numerically identical to the pre-generic engine), and the
//! explicit AVX2/AVX-512 tiles in [`simd`] selected at runtime through
//! [`crate::backend`]. [`int8`] adds the quantized `i8×i8→i32` path.
//!
//! ## Determinism
//!
//! For a fixed output element `C[i, j]`, products are accumulated in
//! ascending `p` order: the `pc` loop walks `k` in `KC` steps and the
//! micro-kernel walks each slab in order. Threads only ever split the `m`
//! dimension (disjoint row blocks of `C`), never `k`, so the reduction
//! order — and therefore the floating-point result — is bit-identical for
//! any thread count, including the sequential path. `KC` is shared by
//! every register-tile shape, so two backends differ only in whether
//! `a*b + c` is contracted into a fused multiply-add (the explicit SIMD
//! micro-kernels) or not (the scalar tile; LLVM does not contract without
//! fast-math flags) — never in summation order.

pub mod int8;
pub mod simd;

use rayon::prelude::*;
use std::cell::RefCell;

/// Micro-tile rows of the scalar engine: `MR` rows of `A` broadcast per step.
pub const MR: usize = 4;
/// Micro-tile columns of the scalar engine: `NR` contiguous packed `B`
/// values per step. One 256-bit lane on the x86-64-v3 baseline (see
/// `.cargo/config.toml`), so the `MR×NR` accumulator occupies 4 of the 16
/// YMM registers with room for the `B` row, `A` broadcasts and
/// loop-carried state.
pub const NR: usize = 8;
/// Rows of `A` packed per block (multiple of `MR`); `MC×KC` floats ≈ 64 KiB
/// targets L2 residency for the packed `A` slab.
pub const MC: usize = 64;
/// Depth of one packed slab; bounds the per-tile accumulator run. Shared
/// by every backend so the k-reduction splits identically everywhere.
pub const KC: usize = 256;
/// Columns of `B` packed per slab (multiple of every `NR_` in use);
/// `KC×NC` floats ≈ 256 KiB keeps the shared `B` panel cache-resident
/// while every row block re-reads it.
pub const NC: usize = 256;

/// A register-tiled micro-kernel: `acc[i][j] += Σ_p apanel[p][i] · bpanel[p][j]`
/// over one packed `(MR_, NR_)` tile pair of depth `kc`.
///
/// # Safety
///
/// Implementations may require CPU features (AVX2+FMA, AVX-512F); callers
/// must only invoke pointers whose requirements the running CPU satisfies
/// — [`crate::backend::resolve`] guarantees this for dispatched kernels.
pub type MicroKernel<const MR_: usize, const NR_: usize> =
    unsafe fn(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR_]; MR_]);

/// How the `A` operand is stored.
#[derive(Clone, Copy, Debug)]
pub enum ALayout {
    /// `m×k` row-major: element `(i, p)` at `a[i*k + p]`.
    RowMajor,
    /// `k×m` row-major, used transposed: element `(i, p)` at `a[p*m + i]`.
    Transposed,
}

/// How the `B` operand is stored.
#[derive(Clone, Copy, Debug)]
pub enum BLayout {
    /// `k×n` row-major: element `(p, j)` at `b[p*n + j]`.
    RowMajor,
    /// `n×k` row-major, used transposed: element `(p, j)` at `b[j*k + p]`.
    Transposed,
}

thread_local! {
    // Packing scratch, reused across calls (and per worker thread under a
    // real rayon pool) so steady-state GEMMs allocate nothing.
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `C += A·B` over row-major `out` (`m×n`, assumed pre-zeroed by callers
/// wanting a plain product) through the scalar `Blocked` engine.
/// `parallel` splits the `m` dimension over rayon; results are
/// bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    al: ALayout,
    b: &[f32],
    bl: BLayout,
    parallel: bool,
) {
    // SAFETY: the scalar micro-kernel has no CPU-feature requirements.
    unsafe { gemm_with::<MR, NR>(microkernel_scalar, MC, out, m, n, k, a, al, b, bl, parallel) }
}

/// The shared macro-kernel, generic over the register-tile shape.
///
/// `mc_block` is the row-block height (a multiple of `MR_`; also the unit
/// of the deterministic parallel m-split). `KC`/`NC` are shared constants
/// so every tile shape produces the same k-reduction slabs.
///
/// # Safety
///
/// `kernel`'s CPU-feature requirements (see [`MicroKernel`]) must hold on
/// the running CPU.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn gemm_with<const MR_: usize, const NR_: usize>(
    kernel: MicroKernel<MR_, NR_>,
    mc_block: usize,
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    al: ALayout,
    b: &[f32],
    bl: BLayout,
    parallel: bool,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(mc_block % MR_, 0, "row block must be a multiple of the tile height");
    debug_assert_eq!(NC % NR_, 0, "NC must be a multiple of the tile width");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let lda = match al {
        ALayout::RowMajor => k,
        ALayout::Transposed => m,
    };
    let ldb = match bl {
        BLayout::RowMajor => n,
        BLayout::Transposed => k,
    };

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            PACK_B.with(|cell| {
                let mut bbuf = cell.borrow_mut();
                pack_b::<NR_>(&mut bbuf, b, bl, ldb, pc, kc, jc, nc);
                let bpack: &[f32] = &bbuf;
                if parallel {
                    out.par_chunks_mut(mc_block * n).enumerate().for_each(|(blk, rows)| {
                        let ic = blk * mc_block;
                        let mc = mc_block.min(m - ic);
                        process_block(kernel, rows, a, al, lda, ic, mc, n, jc, nc, pc, kc, bpack);
                    });
                } else {
                    for (blk, rows) in out.chunks_mut(mc_block * n).enumerate() {
                        let ic = blk * mc_block;
                        let mc = mc_block.min(m - ic);
                        process_block(kernel, rows, a, al, lda, ic, mc, n, jc, nc, pc, kc, bpack);
                    }
                }
            });
            pc += kc;
        }
        jc += nc;
    }
}

/// Packs `B[pc..pc+kc, jc..jc+nc]` into `NR_`-wide column panels: panel
/// `jp` holds, for each `p`, the `NR_` values of columns
/// `jc + jp*NR_ .. +NR_`, zero-padded past the matrix edge so the
/// micro-kernel never branches.
#[allow(clippy::too_many_arguments)]
fn pack_b<const NR_: usize>(
    buf: &mut Vec<f32>,
    b: &[f32],
    bl: BLayout,
    ldb: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let np = nc.div_ceil(NR_);
    buf.clear();
    buf.resize(np * kc * NR_, 0.0);
    for jp in 0..np {
        let j0 = jc + jp * NR_;
        let jw = NR_.min(jc + nc - j0);
        let panel = &mut buf[jp * kc * NR_..(jp + 1) * kc * NR_];
        match bl {
            BLayout::RowMajor => {
                for p in 0..kc {
                    let src = &b[(pc + p) * ldb + j0..(pc + p) * ldb + j0 + jw];
                    panel[p * NR_..p * NR_ + jw].copy_from_slice(src);
                }
            }
            BLayout::Transposed => {
                for j in 0..jw {
                    let src = &b[(j0 + j) * ldb + pc..(j0 + j) * ldb + pc + kc];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * NR_ + j] = v;
                    }
                }
            }
        }
    }
}

/// Packs `A[ic..ic+mc, pc..pc+kc]` into `MR_`-tall row panels: panel `ip`
/// holds, for each `p`, the `MR_` values of rows `ic + ip*MR_ .. +MR_`,
/// zero-padded past the matrix edge.
#[allow(clippy::too_many_arguments)]
fn pack_a<const MR_: usize>(
    buf: &mut Vec<f32>,
    a: &[f32],
    al: ALayout,
    lda: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let mp = mc.div_ceil(MR_);
    buf.clear();
    buf.resize(mp * kc * MR_, 0.0);
    for ip in 0..mp {
        let i0 = ic + ip * MR_;
        let iw = MR_.min(ic + mc - i0);
        let panel = &mut buf[ip * kc * MR_..(ip + 1) * kc * MR_];
        match al {
            ALayout::RowMajor => {
                for i in 0..iw {
                    let src = &a[(i0 + i) * lda + pc..(i0 + i) * lda + pc + kc];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * MR_ + i] = v;
                    }
                }
            }
            ALayout::Transposed => {
                for p in 0..kc {
                    let src = &a[(pc + p) * lda + i0..(pc + p) * lda + i0 + iw];
                    panel[p * MR_..p * MR_ + iw].copy_from_slice(src);
                }
            }
        }
    }
}

/// One `mc`-tall row block: pack its `A` slab, then sweep `MR_×NR_` tiles.
/// `rows` is the block's `mc×n` window of `C`.
#[allow(clippy::too_many_arguments)]
fn process_block<const MR_: usize, const NR_: usize>(
    kernel: MicroKernel<MR_, NR_>,
    rows: &mut [f32],
    a: &[f32],
    al: ALayout,
    lda: usize,
    ic: usize,
    mc: usize,
    n: usize,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
    bpack: &[f32],
) {
    PACK_A.with(|cell| {
        let mut abuf = cell.borrow_mut();
        pack_a::<MR_>(&mut abuf, a, al, lda, ic, mc, pc, kc);
        let mp = mc.div_ceil(MR_);
        let np = nc.div_ceil(NR_);
        for ip in 0..mp {
            let iw = MR_.min(mc - ip * MR_);
            let apanel = &abuf[ip * kc * MR_..(ip + 1) * kc * MR_];
            for jp in 0..np {
                let jw = NR_.min(nc - jp * NR_);
                let bpanel = &bpack[jp * kc * NR_..(jp + 1) * kc * NR_];
                let mut acc = [[0.0f32; NR_]; MR_];
                // SAFETY: feature requirements are guaranteed by
                // gemm_with's caller; panels are fully packed
                // (kc·MR_ / kc·NR_ long, zero-padded).
                unsafe { kernel(kc, apanel, bpanel, &mut acc) };
                for (i, acc_row) in acc.iter().enumerate().take(iw) {
                    let base = (ip * MR_ + i) * n + jc + jp * NR_;
                    let crow = &mut rows[base..base + jw];
                    for (c, &v) in crow.iter_mut().zip(acc_row.iter()) {
                        *c += v;
                    }
                }
            }
        }
    });
}

/// The scalar register tile: `acc[i][j] += Σ_p apanel[p][i] · bpanel[p][j]`.
/// `chunks_exact` gives the optimiser fixed-size, bounds-check-free views;
/// the `NR`-wide inner loop vectorises and the `MR×NR` accumulators give
/// 32 independent dependency chains. No FMA contraction, so numerics match
/// a baseline (non-v3) build bit-for-bit.
///
/// # Safety
///
/// None required — plain safe code behind the [`MicroKernel`] signature.
unsafe fn microkernel_scalar(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (av, bv) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(kc) {
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc[i][j] += ai * bv[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = s;
            }
        }
        out
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = crate::NebulaRng::seed(seed);
        (0..len).map(|_| rng.normal_f32(0.0, 1.0)).collect()
    }

    #[test]
    fn blocked_matches_naive_at_block_edges() {
        // Shapes straddling MR/NR/MC/KC/NC boundaries.
        for &(m, n, k) in &[
            (1, 1, 1),
            (MR, NR, 4),
            (MR + 1, NR + 1, 3),
            (MC, NR, KC),
            (MC + 3, NC + 5, KC + 7),
            (2, 300, 300),
        ] {
            let a = fill(m * k, 1 + m as u64);
            let b = fill(k * n, 2 + n as u64);
            let mut out = vec![0.0; m * n];
            gemm(&mut out, m, n, k, &a, ALayout::RowMajor, &b, BLayout::RowMajor, false);
            let want = naive(m, n, k, &a, &b);
            for (x, y) in out.iter().zip(&want) {
                assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()), "{m}x{n}x{k}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn parallel_path_is_bit_identical() {
        let (m, n, k) = (MC * 2 + 5, 70, KC + 9);
        let a = fill(m * k, 11);
        let b = fill(k * n, 12);
        let mut seq = vec![0.0; m * n];
        let mut par = vec![0.0; m * n];
        gemm(&mut seq, m, n, k, &a, ALayout::RowMajor, &b, BLayout::RowMajor, false);
        gemm(&mut par, m, n, k, &a, ALayout::RowMajor, &b, BLayout::RowMajor, true);
        assert_eq!(seq, par, "parallel split changed the reduction result");
    }

    #[test]
    fn transposed_layouts_match_explicit_transpose() {
        let (m, n, k) = (9, 13, 21);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        // A stored k×m.
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        // B stored n×k.
        let mut bt = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let want = naive(m, n, k, &a, &b);
        let mut out = vec![0.0; m * n];
        gemm(&mut out, m, n, k, &at, ALayout::Transposed, &b, BLayout::RowMajor, false);
        for (x, y) in out.iter().zip(&want) {
            assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
        let mut out2 = vec![0.0; m * n];
        gemm(&mut out2, m, n, k, &a, ALayout::RowMajor, &bt, BLayout::Transposed, false);
        for (x, y) in out2.iter().zip(&want) {
            assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }
}
