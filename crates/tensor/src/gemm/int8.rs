//! Quantized `i8×i8 → i32` matmul for low-tier device inference.
//!
//! Uses the same per-tensor symmetric scheme as `nebula-wire`'s
//! `QuantInt8` codec (one f32 scale, `zero_point = 0`, values clamped to
//! `±127`), so weights shipped over the wire in quantized form can be
//! multiplied without a dequantize round-trip: `C_f32 ≈ (Aq·Bqᵀ) · sa·sb`
//! with one integer GEMM and a scalar rescale.
//!
//! The operand layout is the inference one: `A` is `m×k` activations,
//! `B` is `n×k` row-major weights (each output feature's weights
//! contiguous — exactly `nn::Linear`'s storage), so every dot product
//! streams two contiguous `i8` rows.
//!
//! ## Exactness and determinism
//!
//! The accumulation is exact integer arithmetic: products are at most
//! `127² = 16129`, so an `i32` accumulator is exact for `k` up to ~130 000
//! (`i32::MAX / 127²`), far beyond any layer here — [`matmul_nt_i32`]
//! debug-asserts that bound. Exactness means the scalar and AVX2 paths
//! produce *identical* outputs (not merely close), pinned by the tests
//! below, so dispatch never affects results; the only rounding anywhere
//! is the f32 quantization itself, bounded per element by
//! `k · sa · sb · 127.25`-ish (half-ulp of each operand times the other's
//! magnitude, summed over `k`) and pinned against the f32 reference in
//! `tests/simd_equivalence.rs`.

use super::simd::{self, SimdLevel};

/// Per-tensor symmetric quantization, mirroring `nebula-wire`'s
/// `QuantInt8` codec: `scale = max_abs/127`, `q = round(v/scale)` clamped
/// to `±127`. Returns the quantized values and the scale. All-zero (or
/// empty) input yields scale `0.0` and zero codes; non-finite input
/// yields a NaN scale (decoding such a tensor is visibly poisoned, the
/// same contract as the wire codec).
pub fn quantize(src: &[f32]) -> (Vec<i8>, f32) {
    let mut max_abs = 0.0f32;
    for &v in src {
        max_abs = max_abs.max(v.abs());
    }
    let scale = max_abs / 127.0;
    if !scale.is_finite() {
        return (vec![0; src.len()], f32::NAN);
    }
    if scale == 0.0 {
        return (vec![0; src.len()], 0.0);
    }
    let q = src.iter().map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8).collect();
    (q, scale)
}

/// Inverse of [`quantize`]: `v = q · scale`.
pub fn dequantize(q: &[i8], scale: f32) -> Vec<f32> {
    q.iter().map(|&v| v as f32 * scale).collect()
}

/// `C[i, j] = Σ_p A[i, p] · B[j, p]` in exact `i32`, `A` row-major `m×k`,
/// `B` row-major `n×k` (transposed operand, `nn::Linear` weight layout).
///
/// Dispatches to the AVX2 inner kernel when the CPU supports it; scalar
/// and SIMD paths are bit-identical (integer arithmetic is exact).
pub fn matmul_nt_i32(out: &mut [i32], m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) {
    assert_eq!(out.len(), m * n, "output shape mismatch");
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), n * k, "B shape mismatch");
    debug_assert!(k as u64 * 127 * 127 <= i32::MAX as u64, "k too deep for exact i32 accumulation");
    #[cfg(target_arch = "x86_64")]
    if simd::detect() >= SimdLevel::Avx2 {
        // SAFETY: AVX2 confirmed by detect().
        unsafe { x86::matmul_nt_i32_avx2(out, m, n, k, a, b) };
        return;
    }
    matmul_nt_i32_scalar(out, m, n, k, a, b);
}

/// Quantized matmul with dequantized `f32` output:
/// `C[i, j] = (Σ_p Aq[i, p] · Bq[j, p]) · sa · sb`.
#[allow(clippy::too_many_arguments)]
pub fn matmul_nt_dequant(
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    sa: f32,
    b: &[i8],
    sb: f32,
) {
    let mut acc = vec![0i32; m * n];
    matmul_nt_i32(&mut acc, m, n, k, a, b);
    let s = sa * sb;
    for (o, &v) in out.iter_mut().zip(&acc) {
        *o = v as f32 * s;
    }
}

fn matmul_nt_i32_scalar(out: &mut [i32], m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut s = 0i32;
            for (&x, &y) in arow.iter().zip(brow) {
                s += x as i32 * y as i32;
            }
            out[i * n + j] = s;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// AVX2 dot-product kernel: 16 `i8` pairs per step widen to `i16`
    /// (`cvtepi8_epi16`), `madd_epi16` multiplies and pair-sums into 8
    /// exact `i32` lanes (max pair sum `2·127² = 32258`, no overflow),
    /// which accumulate vertically; one horizontal reduction per output.
    ///
    /// # Safety
    /// The CPU must support AVX2. Slice shapes as in
    /// [`super::matmul_nt_i32`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matmul_nt_i32_avx2(
        out: &mut [i32],
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        b: &[i8],
    ) {
        let kv = k - k % 16;
        for i in 0..m {
            let ap = a.as_ptr().add(i * k);
            for j in 0..n {
                let bp = b.as_ptr().add(j * k);
                let mut acc = _mm256_setzero_si256();
                let mut p = 0;
                while p < kv {
                    let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(p) as *const __m128i));
                    let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(p) as *const __m128i));
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
                    p += 16;
                }
                // Horizontal sum of the 8 i32 lanes.
                let hi = _mm256_extracti128_si256(acc, 1);
                let lo = _mm256_castsi256_si128(acc);
                let s4 = _mm_add_epi32(lo, hi);
                let s2 = _mm_add_epi32(s4, _mm_shuffle_epi32(s4, 0b01_00_11_10));
                let s1 = _mm_add_epi32(s2, _mm_shuffle_epi32(s2, 0b00_01_00_01));
                let mut s = _mm_cvtsi128_si32(s1);
                while p < k {
                    s += *ap.add(p) as i32 * *bp.add(p) as i32;
                    p += 1;
                }
                out[i * n + j] = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = crate::NebulaRng::seed(seed);
        (0..len).map(|_| rng.normal_f32(0.0, 1.0)).collect()
    }

    #[test]
    fn quantize_matches_wire_contract() {
        let v = [1.0f32, -0.5, 0.25, -1.0];
        let (q, s) = quantize(&v);
        assert_eq!(s, 1.0 / 127.0);
        assert_eq!(q, vec![127, -64, 32, -127]);
        let d = dequantize(&q, s);
        for (x, y) in d.iter().zip(&v) {
            assert!((x - y).abs() <= s * 0.5 + 1e-7, "{x} vs {y}");
        }

        let (qz, sz) = quantize(&[0.0, 0.0]);
        assert_eq!(sz, 0.0);
        assert_eq!(qz, vec![0, 0]);
        assert_eq!(dequantize(&qz, sz), vec![0.0, 0.0]);

        let (qp, sp) = quantize(&[1.0, f32::INFINITY]);
        assert!(sp.is_nan());
        assert_eq!(qp, vec![0, 0]);
    }

    #[test]
    fn scalar_and_dispatched_paths_are_identical() {
        // Shapes straddling the 16-wide vector body and its scalar tail.
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 16), (4, 7, 33), (2, 3, 100)] {
            let (a, _) = quantize(&fill(m * k, 31 + k as u64));
            let (b, _) = quantize(&fill(n * k, 32 + k as u64));
            let mut dispatched = vec![0i32; m * n];
            matmul_nt_i32(&mut dispatched, m, n, k, &a, &b);
            let mut scalar = vec![0i32; m * n];
            matmul_nt_i32_scalar(&mut scalar, m, n, k, &a, &b);
            assert_eq!(dispatched, scalar, "{m}x{n}x{k}: integer paths must be exact");
        }
    }

    #[test]
    fn dequant_matmul_tracks_f32_reference_within_quant_error() {
        let (m, n, k) = (5, 6, 64);
        let af = fill(m * k, 41);
        let bf = fill(n * k, 42);
        // f32 reference: C[i,j] = sum_p A[i,p]*B[j,p].
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                want[i * n + j] = (0..k).map(|p| af[i * k + p] * bf[j * k + p]).sum();
            }
        }
        let (aq, sa) = quantize(&af);
        let (bq, sb) = quantize(&bf);
        let mut got = vec![0.0f32; m * n];
        matmul_nt_dequant(&mut got, m, n, k, &aq, sa, &bq, sb);
        // Guaranteed bound: each term errs by at most half a quantization
        // step of either operand times the other's magnitude.
        let tol = k as f32 * (sa * sb) * 127.25;
        for (x, y) in got.iter().zip(&want) {
            assert!((x - y).abs() <= tol, "{x} vs {y} (tol {tol})");
        }
    }
}
