//! Element-wise and broadcasting operations on [`Tensor`].
//!
//! Two broadcasting forms are supported, matching exactly what the NN stack
//! needs: same-shape element-wise ops, and rank-2 ⊕ rank-1 row broadcasting
//! (a bias vector applied to every row of a batch).

use crate::Tensor;

impl Tensor {
    /// Element-wise sum; shapes must match.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise difference; shapes must match.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product; shapes must match.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise quotient; shapes must match.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a / b)
    }

    /// In-place element-wise sum.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.zip_assign(other, |a, b| *a += b);
    }

    /// In-place element-wise difference.
    pub fn sub_assign(&mut self, other: &Tensor) {
        self.zip_assign(other, |a, b| *a -= b);
    }

    /// In-place `self += alpha * other` (axpy). The workhorse of SGD updates
    /// and weighted model aggregation.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += alpha * b;
        }
    }

    /// Scales every element by `alpha`, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|v| v * alpha)
    }

    /// Scales every element in place.
    pub fn scale_assign(&mut self, alpha: f32) {
        self.data_mut().iter_mut().for_each(|v| *v *= alpha);
    }

    /// Adds a scalar to every element, returning a new tensor.
    pub fn add_scalar(&self, alpha: f32) -> Tensor {
        self.map(|v| v + alpha)
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.data().iter().map(|&v| f(v)).collect(), self.shape())
    }

    /// Applies `f` to every element in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        self.data_mut().iter_mut().for_each(|v| *v = f(*v));
    }

    /// Combines two same-shape tensors element-wise with `f`.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self.data().iter().zip(other.data().iter()).map(|(&a, &b)| f(a, b)).collect();
        Tensor::from_vec(data, self.shape())
    }

    /// In-place binary combiner.
    pub fn zip_assign(&mut self, other: &Tensor, f: impl Fn(&mut f32, f32)) {
        assert_eq!(self.shape(), other.shape(), "zip_assign shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            f(a, b);
        }
    }

    /// Adds a rank-1 `bias` to every row of a rank-2 tensor.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "add_row_broadcast needs a rank-2 receiver");
        assert_eq!(bias.rank(), 1, "bias must be rank-1");
        assert_eq!(self.cols(), bias.len(), "bias length must match columns");
        let mut out = self.clone();
        let c = out.cols();
        for row in out.data_mut().chunks_mut(c) {
            for (v, &b) in row.iter_mut().zip(bias.data()) {
                *v += b;
            }
        }
        out
    }

    /// Adds a rank-1 `bias` to every row in place (zero-alloc variant of
    /// [`Tensor::add_row_broadcast`]).
    pub fn add_row_broadcast_assign(&mut self, bias: &Tensor) {
        assert_eq!(self.rank(), 2, "add_row_broadcast_assign needs a rank-2 receiver");
        assert_eq!(bias.rank(), 1, "bias must be rank-1");
        assert_eq!(self.cols(), bias.len(), "bias length must match columns");
        let c = self.cols();
        for row in self.data_mut().chunks_mut(c) {
            for (v, &b) in row.iter_mut().zip(bias.data()) {
                *v += b;
            }
        }
    }

    /// Multiplies every row of a rank-2 tensor by a rank-1 vector
    /// (per-feature scaling, used by batch-norm).
    pub fn mul_row_broadcast(&self, gamma: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "mul_row_broadcast needs a rank-2 receiver");
        assert_eq!(gamma.rank(), 1, "gamma must be rank-1");
        assert_eq!(self.cols(), gamma.len(), "gamma length must match columns");
        let mut out = self.clone();
        let c = out.cols();
        for row in out.data_mut().chunks_mut(c) {
            for (v, &g) in row.iter_mut().zip(gamma.data()) {
                *v *= g;
            }
        }
        out
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Dot product between two rank-1 tensors (or flattened tensors of equal
    /// length).
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.data().iter().zip(other.data()).map(|(&a, &b)| a * b).sum()
    }
}

/// Dot product of two slices; shared helper used by the linalg kernels.
#[inline]
pub fn dot_slices(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Four-lane manual unrolling: measurably faster than the naive zip-sum
    // under rustc's default vectorisation for the sizes Nebula uses
    // (64–1024 element rows), per the perf-book guidance of helping LLVM
    // with reduction dependencies.
    let mut acc0 = 0.0f32;
    let mut acc1 = 0.0f32;
    let mut acc2 = 0.0f32;
    let mut acc3 = 0.0f32;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc0 += a[j] * b[j];
        acc1 += a[j + 1] * b[j + 1];
        acc2 += a[j + 2] * b[j + 2];
        acc3 += a[j + 3] * b[j + 3];
    }
    let mut acc = acc0 + acc1 + acc2 + acc3;
    for j in chunks * 4..a.len() {
        acc += a[j] * b[j];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_tensor_close;

    #[test]
    fn add_sub_mul_div() {
        let a = Tensor::vector(&[1.0, 2.0, 3.0]);
        let b = Tensor::vector(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::vector(&[1.0, 1.0]);
        let b = Tensor::vector(&[2.0, 4.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn scale_and_add_scalar() {
        let a = Tensor::vector(&[1.0, -2.0]);
        assert_eq!(a.scale(3.0).data(), &[3.0, -6.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, -1.0]);
    }

    #[test]
    fn row_broadcasts() {
        let x = Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::vector(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.data(), &[11.0, 22.0, 13.0, 24.0]);
        let z = x.mul_row_broadcast(&b);
        assert_eq!(z.data(), &[10.0, 40.0, 30.0, 80.0]);
    }

    #[test]
    #[should_panic(expected = "bias length must match")]
    fn broadcast_rejects_bad_bias() {
        Tensor::zeros(&[2, 3]).add_row_broadcast(&Tensor::zeros(&[2]));
    }

    #[test]
    fn relu_clamps_negatives() {
        let a = Tensor::vector(&[-1.0, 0.0, 2.0]);
        assert_eq!(a.relu().data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn clamp_bounds() {
        let a = Tensor::vector(&[-5.0, 0.5, 5.0]);
        assert_eq!(a.clamp(-1.0, 1.0).data(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn dot_matches_manual() {
        let a = Tensor::vector(&[1.0, 2.0, 3.0]);
        let b = Tensor::vector(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn dot_slices_matches_naive_on_odd_lengths() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        crate::assert_close(dot_slices(&a, &b), naive, 1e-5);
    }

    #[test]
    fn map_and_zip_preserve_shape() {
        let a = Tensor::zeros(&[2, 3]);
        let b = a.map(|v| v + 1.0);
        assert_eq!(b.shape(), &[2, 3]);
        assert_tensor_close(&b, &Tensor::ones(&[2, 3]), 0.0);
    }
}
