//! # nebula-tensor
//!
//! Dense `f32` tensor substrate used by every other Nebula crate.
//!
//! The Nebula paper runs on PyTorch; this crate is the from-scratch
//! replacement: a row-major dense tensor with the operations a
//! feed-forward / residual-MLP training stack needs, parallelised with
//! rayon where it pays off (mat-muls over a few thousand elements).
//!
//! Design notes:
//! * Row-major `Vec<f32>` storage, shape carried as a small vector.
//!   Most of the training stack works on rank-2 tensors (`batch × features`);
//!   rank-1 tensors are used for biases and per-class statistics.
//! * All shape errors panic with a descriptive message: inside a training
//!   loop a shape mismatch is a programming error, not a recoverable
//!   condition (this mirrors ndarray/PyTorch behaviour).
//! * Deterministic: every random initialiser takes an explicit RNG so a
//!   seeded experiment reproduces bit-for-bit on one thread count.
//!   Parallelism is over independent output elements only, so results do
//!   not depend on the rayon thread count.

pub mod backend;
pub mod gemm;
pub mod init;
pub mod linalg;
pub mod ops;
pub mod par;
pub mod reduce;
pub mod rng;
pub mod tensor;

pub use backend::{active_backend, resolved_backend, set_kernel_backend, BackendGuard, KernelBackend};
pub use init::Init;
pub use rng::NebulaRng;
pub use tensor::Tensor;

/// Absolute tolerance used by test helpers throughout the workspace.
pub const TEST_EPS: f32 = 1e-4;

/// Asserts two `f32` values are close; used across the workspace's tests.
pub fn assert_close(a: f32, b: f32, eps: f32) {
    assert!((a - b).abs() <= eps.max(eps * a.abs().max(b.abs())), "values differ: {a} vs {b} (eps {eps})");
}

/// Asserts two tensors have the same shape and element-wise close values.
pub fn assert_tensor_close(a: &Tensor, b: &Tensor, eps: f32) {
    assert_eq!(a.shape(), b.shape(), "shape mismatch: {:?} vs {:?}", a.shape(), b.shape());
    for (i, (&x, &y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        assert!(
            (x - y).abs() <= eps.max(eps * x.abs().max(y.abs())),
            "element {i} differs: {x} vs {y} (eps {eps})"
        );
    }
}
