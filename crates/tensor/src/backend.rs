//! Kernel-backend selection: which GEMM engine the public
//! [`crate::Tensor`] mat-mul API routes through.
//!
//! This replaces the old boolean `set_reference_kernels` switch, which
//! could only express "blocked or not" — a dead end once the engine grew
//! runtime-dispatched SIMD variants. The model is now:
//!
//! * [`KernelBackend`] names an engine: the retained pre-blocking
//!   [`Reference`](KernelBackend::Reference) kernels, the scalar
//!   [`Blocked`](KernelBackend::Blocked) BLIS-style engine, the explicit
//!   [`Avx2`](KernelBackend::Avx2)/[`Avx512`](KernelBackend::Avx512)
//!   micro-kernels, or [`Auto`](KernelBackend::Auto) (default) which
//!   resolves to the best engine the CPU supports.
//! * One process-global *selection* ([`set_kernel_backend`]), read by
//!   every mat-mul. [`active_backend`] returns the selection verbatim;
//!   [`resolved_backend`] returns the engine that will actually run
//!   (`Auto` and unsupported requests resolve downward, never upward).
//! * [`BackendGuard`] is a scoped RAII override for tests and benches:
//!   it swaps the selection in and restores the previous one on drop.
//!   The underlying switch stays process-global (kernels run on rayon
//!   worker threads, so a thread-local would not reach them) — concurrent
//!   guards in one process race exactly like the old boolean did, so test
//!   binaries keep backend-sensitive assertions in a single `#[test]`.
//!
//! The initial selection can be forced from the environment:
//! `NEBULA_KERNEL_BACKEND=reference|blocked|avx2|avx512|auto`, read once
//! on first use. CI's kernel-matrix job runs the tensor/nn suites under
//! each forced backend this way.
//!
//! ## Determinism contract
//!
//! Every backend is run-to-run deterministic: for a fixed backend, shape
//! and inputs, results are bit-identical across calls, thread counts and
//! processes on the same machine. `Reference` and `Blocked` are
//! bit-identical to what they produced before this module existed.
//! *Across* backends results differ only by f32 rounding (the SIMD
//! engines contract `a*b + c` into fused multiply-adds; the blocked and
//! reference engines accumulate in the same ascending-`p` order without
//! contraction) — equivalence is pinned by the proptest suites in
//! `crates/tensor/tests/`.

use crate::gemm::simd::{self, SimdLevel};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A GEMM engine the mat-mul entry points can route through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Pre-blocking naive kernels ([`crate::linalg::reference`]) —
    /// baseline for equivalence tests and speedup measurements.
    Reference,
    /// Cache-blocked, register-tiled scalar engine (auto-vectorised by
    /// the compiler; no FMA contraction).
    Blocked,
    /// Blocked engine with the explicit AVX2+FMA 6×16 micro-kernel.
    Avx2,
    /// Blocked engine with the explicit AVX-512 8×32 micro-kernel.
    Avx512,
    /// Resolve to the fastest supported engine at first use (default).
    Auto,
}

impl KernelBackend {
    /// Stable lower-case name (used by env/CLI parsing and bench JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            KernelBackend::Reference => "reference",
            KernelBackend::Blocked => "blocked",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Avx512 => "avx512",
            KernelBackend::Auto => "auto",
        }
    }

    fn from_u8(v: u8) -> KernelBackend {
        match v {
            0 => KernelBackend::Reference,
            1 => KernelBackend::Blocked,
            2 => KernelBackend::Avx2,
            3 => KernelBackend::Avx512,
            _ => KernelBackend::Auto,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            KernelBackend::Reference => 0,
            KernelBackend::Blocked => 1,
            KernelBackend::Avx2 => 2,
            KernelBackend::Avx512 => 3,
            KernelBackend::Auto => 4,
        }
    }
}

impl std::str::FromStr for KernelBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reference" => Ok(KernelBackend::Reference),
            "blocked" => Ok(KernelBackend::Blocked),
            "avx2" => Ok(KernelBackend::Avx2),
            "avx512" => Ok(KernelBackend::Avx512),
            "auto" => Ok(KernelBackend::Auto),
            other => {
                Err(format!("unknown kernel backend {other:?} (expected reference|blocked|avx2|avx512|auto)"))
            }
        }
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The process-global selection, lazily seeded from the environment.
fn global() -> &'static AtomicU8 {
    static CELL: OnceLock<AtomicU8> = OnceLock::new();
    CELL.get_or_init(|| {
        let initial = std::env::var("NEBULA_KERNEL_BACKEND")
            .ok()
            .and_then(|v| v.parse::<KernelBackend>().ok())
            .unwrap_or(KernelBackend::Auto);
        AtomicU8::new(initial.to_u8())
    })
}

/// Selects the engine every subsequent mat-mul routes through.
///
/// Prefer [`KernelBackend::scoped`] in tests and benches — it restores
/// the previous selection even on panic.
pub fn set_kernel_backend(backend: KernelBackend) {
    global().store(backend.to_u8(), Ordering::SeqCst);
}

/// The current selection, verbatim (may be `Auto`).
pub fn active_backend() -> KernelBackend {
    KernelBackend::from_u8(global().load(Ordering::SeqCst))
}

/// The engine the current selection actually runs: `Auto` resolves to the
/// best CPU-supported engine, and an explicit SIMD request on hardware
/// without that feature set degrades to the best *supported* engine
/// (never upward — `Blocked` stays `Blocked`). Detection happens once,
/// cached behind a `OnceLock` in [`crate::gemm::simd`].
pub fn resolved_backend() -> KernelBackend {
    resolve(active_backend())
}

/// Resolution rule, exposed for introspection/benches.
pub fn resolve(selection: KernelBackend) -> KernelBackend {
    let best = match simd::detect() {
        SimdLevel::Avx512 => KernelBackend::Avx512,
        SimdLevel::Avx2 => KernelBackend::Avx2,
        SimdLevel::None => KernelBackend::Blocked,
    };
    match selection {
        KernelBackend::Reference => KernelBackend::Reference,
        KernelBackend::Blocked => KernelBackend::Blocked,
        KernelBackend::Auto => best,
        KernelBackend::Avx2 => {
            if simd::detect() >= SimdLevel::Avx2 {
                KernelBackend::Avx2
            } else {
                KernelBackend::Blocked
            }
        }
        KernelBackend::Avx512 => {
            if simd::detect() >= SimdLevel::Avx512 {
                KernelBackend::Avx512
            } else if simd::detect() >= SimdLevel::Avx2 {
                KernelBackend::Avx2
            } else {
                KernelBackend::Blocked
            }
        }
    }
}

/// RAII override created by [`KernelBackend::scoped`]: restores the
/// previously selected backend when dropped.
#[must_use = "dropping the guard immediately restores the previous backend"]
pub struct BackendGuard {
    previous: KernelBackend,
}

impl KernelBackend {
    /// Selects `self` for the whole process and returns a guard that
    /// restores the previous selection on drop (including unwinds).
    pub fn scoped(self) -> BackendGuard {
        let previous = active_backend();
        set_kernel_backend(self);
        BackendGuard { previous }
    }
}

impl Drop for BackendGuard {
    fn drop(&mut self) {
        set_kernel_backend(self.previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One #[test]: the selection is process-global and the test binary
    // runs tests concurrently (same rule as the old boolean switch).
    #[test]
    fn selection_guard_and_resolution_rules() {
        let initial = active_backend();

        // Guard swaps and restores, and nests.
        {
            let _g = KernelBackend::Reference.scoped();
            assert_eq!(active_backend(), KernelBackend::Reference);
            assert_eq!(resolved_backend(), KernelBackend::Reference);
            {
                let _inner = KernelBackend::Blocked.scoped();
                assert_eq!(active_backend(), KernelBackend::Blocked);
            }
            assert_eq!(active_backend(), KernelBackend::Reference);
        }
        assert_eq!(active_backend(), initial);

        // Guard restores across a panic.
        let caught = std::panic::catch_unwind(|| {
            let _g = KernelBackend::Blocked.scoped();
            panic!("unwind through the guard");
        });
        assert!(caught.is_err());
        assert_eq!(active_backend(), initial);

        // Resolution never lands on an unsupported engine, and never
        // resolves upward past the explicit selection.
        for sel in
            [KernelBackend::Reference, KernelBackend::Blocked, KernelBackend::Avx2, KernelBackend::Avx512]
        {
            let r = resolve(sel);
            match sel {
                KernelBackend::Reference => assert_eq!(r, KernelBackend::Reference),
                KernelBackend::Blocked => assert_eq!(r, KernelBackend::Blocked),
                KernelBackend::Avx2 => {
                    assert!(matches!(r, KernelBackend::Avx2 | KernelBackend::Blocked))
                }
                KernelBackend::Avx512 => {
                    assert!(matches!(r, KernelBackend::Avx512 | KernelBackend::Avx2 | KernelBackend::Blocked))
                }
                KernelBackend::Auto => unreachable!(),
            }
        }
        assert_ne!(resolve(KernelBackend::Auto), KernelBackend::Reference);

        // Round-trips.
        for b in [
            KernelBackend::Reference,
            KernelBackend::Blocked,
            KernelBackend::Avx2,
            KernelBackend::Avx512,
            KernelBackend::Auto,
        ] {
            assert_eq!(b.as_str().parse::<KernelBackend>().unwrap(), b);
            assert_eq!(KernelBackend::from_u8(b.to_u8()), b);
        }
        assert!("metal".parse::<KernelBackend>().is_err());
    }
}
