//! Reductions and row-wise probabilistic transforms (softmax, log-softmax,
//! argmax) used by the classifier heads and the module selector gates.

use crate::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements; zero for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element; `-inf` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element; `+inf` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Column-wise sum of a rank-2 tensor → rank-1 of length `cols`.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_rows requires rank-2");
        let c = self.cols();
        let mut out = Tensor::zeros(&[c]);
        for row in self.data().chunks(c) {
            for (o, &v) in out.data_mut().iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Column-wise mean of a rank-2 tensor → rank-1 of length `cols`.
    pub fn mean_rows(&self) -> Tensor {
        let r = self.rows() as f32;
        let mut out = self.sum_rows();
        if r > 0.0 {
            out.scale_assign(1.0 / r);
        }
        out
    }

    /// Column-wise (biased) variance of a rank-2 tensor → rank-1.
    pub fn var_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "var_rows requires rank-2");
        let mean = self.mean_rows();
        let c = self.cols();
        let r = self.rows() as f32;
        let mut out = Tensor::zeros(&[c]);
        for row in self.data().chunks(c) {
            for ((o, &v), &m) in out.data_mut().iter_mut().zip(row).zip(mean.data()) {
                let d = v - m;
                *o += d * d;
            }
        }
        if r > 0.0 {
            out.scale_assign(1.0 / r);
        }
        out
    }

    /// Index of the maximum element of a rank-1 tensor (first on ties).
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        let mut best_v = self.data()[0];
        for (i, &v) in self.data().iter().enumerate().skip(1) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        best
    }

    /// Per-row argmax of a rank-2 tensor (class predictions).
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires rank-2");
        (0..self.rows())
            .map(|i| {
                let row = self.row(i);
                let mut best = 0;
                let mut best_v = row[0];
                for (j, &v) in row.iter().enumerate().skip(1) {
                    if v > best_v {
                        best = j;
                        best_v = v;
                    }
                }
                best
            })
            .collect()
    }

    /// Numerically-stable softmax over each row of a rank-2 tensor.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "softmax_rows requires rank-2");
        let mut out = self.clone();
        let c = out.cols();
        for row in out.data_mut().chunks_mut(c) {
            softmax_in_place(row);
        }
        out
    }

    /// Numerically-stable log-softmax over each row of a rank-2 tensor.
    pub fn log_softmax_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "log_softmax_rows requires rank-2");
        let mut out = self.clone();
        let c = out.cols();
        for row in out.data_mut().chunks_mut(c) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
            row.iter_mut().for_each(|v| *v -= lse);
        }
        out
    }
}

/// In-place numerically-stable softmax over a slice.
pub fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Returns the indices of the `k` largest values of `scores`, in descending
/// value order. Ties broken by lower index first (deterministic).
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    top_k_indices_into(scores, k, &mut out);
    out
}

/// Zero-allocation variant of [`top_k_indices`]: clears `out` and fills it
/// with the selected indices. The routing hot loop calls this once per
/// sample per layer, reusing one buffer.
///
/// Partial insertion selection, O(N·k): `out` is kept sorted by
/// (value descending, index ascending). Because candidates are scanned in
/// ascending index order and only displace strictly-smaller values, an
/// equal-valued later index can never overtake an earlier one — the same
/// tie-break the previous full sort implemented.
pub fn top_k_indices_into(scores: &[f32], k: usize, out: &mut Vec<usize>) {
    out.clear();
    let k = k.min(scores.len());
    if k == 0 {
        return;
    }
    out.reserve(k);
    for (i, &v) in scores.iter().enumerate() {
        if out.len() == k {
            // Continue unless the current tail is strictly smaller than `v`
            // (NaN tails are incomparable and also never displaced).
            if scores[out[k - 1]].partial_cmp(&v) != Some(std::cmp::Ordering::Less) {
                continue;
            }
            out.pop();
        }
        let mut pos = out.len();
        while pos > 0 && scores[out[pos - 1]] < v {
            pos -= 1;
        }
        out.insert(pos, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_close, assert_tensor_close};

    #[test]
    fn scalar_reductions() {
        let t = Tensor::vector(&[1.0, 2.0, 3.0, -4.0]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -4.0);
    }

    #[test]
    fn row_reductions() {
        let t = Tensor::matrix(&[&[1.0, 2.0], &[3.0, 6.0]]);
        assert_eq!(t.sum_rows().data(), &[4.0, 8.0]);
        assert_eq!(t.mean_rows().data(), &[2.0, 4.0]);
        assert_eq!(t.var_rows().data(), &[1.0, 4.0]);
    }

    #[test]
    fn argmax_first_on_ties() {
        let t = Tensor::vector(&[1.0, 3.0, 3.0, 0.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn argmax_rows_predictions() {
        let t = Tensor::matrix(&[&[0.1, 0.9], &[0.8, 0.2]]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::matrix(&[&[1.0, 2.0, 3.0], &[100.0, 100.0, 100.0]]);
        let s = t.softmax_rows();
        for i in 0..2 {
            assert_close(s.row(i).iter().sum::<f32>(), 1.0, 1e-5);
        }
        // Uniform logits → uniform probabilities, even for huge values
        // (stability check).
        for &v in s.row(1) {
            assert_close(v, 1.0 / 3.0, 1e-5);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let t = Tensor::matrix(&[&[0.5, -1.0, 2.0]]);
        let ls = t.log_softmax_rows();
        let s = t.softmax_rows();
        assert_tensor_close(&ls.map(f32::exp), &s, 1e-5);
    }

    #[test]
    fn top_k_orders_and_truncates() {
        let scores = [0.1, 0.9, 0.5, 0.9];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&scores, 10), vec![1, 3, 2, 0]);
        assert_eq!(top_k_indices(&scores, 0), Vec::<usize>::new());
    }

    #[test]
    fn top_k_breaks_ties_by_lower_index() {
        // All-equal scores: selection must be the first k indices in order.
        let flat = [2.0; 7];
        assert_eq!(top_k_indices(&flat, 3), vec![0, 1, 2]);
        // Ties straddling the selection boundary: index 1 and 4 tie at 5.0;
        // only the lower index may enter a top-2 alongside the 9.0.
        let scores = [0.0, 5.0, 9.0, -1.0, 5.0, 5.0];
        assert_eq!(top_k_indices(&scores, 2), vec![2, 1]);
        assert_eq!(top_k_indices(&scores, 4), vec![2, 1, 4, 5]);
    }

    #[test]
    fn top_k_matches_full_sort_reference() {
        // Partial selection must agree with the naive sort-everything
        // reference (value desc, index asc) for every k.
        let mut rng = crate::NebulaRng::seed(23);
        for _ in 0..50 {
            // Coarse quantisation forces frequent ties.
            let scores: Vec<f32> = (0..17).map(|_| (rng.normal_f32(0.0, 2.0) * 2.0).round() / 2.0).collect();
            let mut reference: Vec<usize> = (0..scores.len()).collect();
            reference.sort_by(|&a, &b| {
                scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
            });
            for k in 0..=scores.len() {
                assert_eq!(top_k_indices(&scores, k), reference[..k], "k={k} scores={scores:?}");
            }
        }
    }

    #[test]
    fn top_k_into_reuses_buffer() {
        let mut buf = vec![42; 9];
        top_k_indices_into(&[1.0, 3.0, 2.0], 2, &mut buf);
        assert_eq!(buf, vec![1, 2]);
        top_k_indices_into(&[5.0], 4, &mut buf);
        assert_eq!(buf, vec![0]);
    }
}
