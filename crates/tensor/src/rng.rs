//! Deterministic random number generation for the whole workspace.
//!
//! Every stochastic component in Nebula (weight init, noisy top-k, data
//! synthesis, device sampling, drift) draws from a [`NebulaRng`] seeded from
//! the experiment configuration, so any experiment is reproducible from its
//! seed. `fork` derives independent child streams — e.g. one per simulated
//! device — so adding a device never perturbs another device's stream.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::{Distribution, LogNormal, Normal};

/// Seedable RNG with the sampling helpers the workspace needs.
#[derive(Clone, Debug)]
pub struct NebulaRng {
    inner: StdRng,
}

impl NebulaRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self { inner: StdRng::seed_from_u64(seed) }
    }

    /// Raw generator state (xoshiro256** words) for checkpoint/resume.
    pub fn state(&self) -> [u64; 4] {
        self.inner.state()
    }

    /// Restores an RNG from a captured [`Self::state`]. Returns `None`
    /// for the all-zero state, which no seeded stream can reach — a
    /// corrupted snapshot rather than a real generator.
    pub fn from_state(state: [u64; 4]) -> Option<Self> {
        StdRng::from_state(state).map(|inner| Self { inner })
    }

    /// Derives an independent child stream labelled by `stream`.
    ///
    /// Children are decorrelated by hashing the label into the parent's
    /// next output, so `fork(0)` and `fork(1)` never overlap even though
    /// both derive from the same parent state.
    pub fn fork(&mut self, stream: u64) -> NebulaRng {
        let base = self.inner.next_u64();
        // SplitMix64-style finalizer over (base ^ stream).
        let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        NebulaRng::seed(z)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform_f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Bernoulli draw with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Gaussian draw.
    pub fn normal_f32(&mut self, mean: f32, std: f32) -> f32 {
        if std <= 0.0 {
            return mean;
        }
        Normal::new(mean, std).expect("valid normal").sample(&mut self.inner)
    }

    /// Log-normal draw parameterised by the underlying normal's `mu`/`sigma`.
    pub fn lognormal_f32(&mut self, mu: f32, sigma: f32) -> f32 {
        LogNormal::new(mu, sigma).expect("valid lognormal").sample(&mut self.inner)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k positions need shuffling.
        for i in 0..k {
            let j = self.inner.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Picks one element of a slice uniformly.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Samples an index from an (unnormalised, non-negative) weight vector.
    pub fn weighted_index(&mut self, weights: &[f32]) -> usize {
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index needs positive total weight");
        let mut target = self.uniform_f32(0.0, total);
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Samples a probability vector from a symmetric Dirichlet(α) of size n.
    pub fn dirichlet(&mut self, alpha: f32, n: usize) -> Vec<f32> {
        // Gamma(α, 1) draws via Marsaglia–Tsang (with boost for α < 1),
        // then normalise.
        let mut draws: Vec<f32> = (0..n).map(|_| self.gamma(alpha)).collect();
        let sum: f32 = draws.iter().sum();
        if sum <= 0.0 {
            return vec![1.0 / n as f32; n];
        }
        draws.iter_mut().for_each(|v| *v /= sum);
        draws
    }

    fn gamma(&mut self, alpha: f32) -> f32 {
        if alpha < 1.0 {
            // Boost: Gamma(α) = Gamma(α+1) * U^{1/α}
            let u: f32 = self.uniform_f32(1e-7, 1.0);
            return self.gamma(alpha + 1.0) * u.powf(1.0 / alpha);
        }
        let d = alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal_f32(0.0, 1.0);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f32 = self.uniform_f32(1e-7, 1.0);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = NebulaRng::seed(42);
        let mut b = NebulaRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ_from_parent_and_each_other() {
        let mut parent = NebulaRng::seed(1);
        let mut c0 = parent.fork(0);
        let mut parent2 = NebulaRng::seed(1);
        let mut c1 = parent2.fork(1);
        let a: Vec<u64> = (0..10).map(|_| c0.next_u64()).collect();
        let b: Vec<u64> = (0..10).map(|_| c1.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = NebulaRng::seed(7);
        for _ in 0..1000 {
            let v = rng.uniform_f32(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn normal_has_right_moments() {
        let mut rng = NebulaRng::seed(9);
        let n = 20_000;
        let draws: Vec<f32> = (0..n).map(|_| rng.normal_f32(2.0, 0.5)).collect();
        let mean = draws.iter().sum::<f32>() / n as f32;
        let var = draws.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = NebulaRng::seed(3);
        let idx = rng.sample_indices(100, 25);
        assert_eq!(idx.len(), 25);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 25);
        assert!(sorted.iter().all(|&i| i < 100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = NebulaRng::seed(4);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = NebulaRng::seed(5);
        let weights = [0.0, 0.0, 1.0];
        for _ in 0..100 {
            assert_eq!(rng.weighted_index(&weights), 2);
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = NebulaRng::seed(6);
        for &alpha in &[0.1f32, 0.5, 1.0, 5.0] {
            let p = rng.dirichlet(alpha, 8);
            assert_eq!(p.len(), 8);
            let s: f32 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "alpha {alpha}: sum {s}");
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = NebulaRng::seed(8);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }
}
