//! Matrix multiplication kernels.
//!
//! Three variants cover every use in the NN stack without materialising
//! transposes in the hot path:
//!
//! * [`Tensor::matmul`] — `A(m×k) · B(k×n)`, forward pass of a linear layer
//!   (weights stored as `out×in`, used through [`Tensor::matmul_nt`]).
//! * [`Tensor::matmul_nt`] — `A(m×k) · Bᵀ(n×k)`, forward pass with row-major
//!   weight layout: each output element is a dot of two contiguous rows.
//! * [`Tensor::matmul_tn`] — `Aᵀ(k×m) · B(k×n)`, gradient w.r.t. weights.
//!
//! Parallelism: rows of the output are independent, so we split over rows
//! with rayon once the work is large enough to amortise the fork/join cost
//! (see `PAR_THRESHOLD`). Below the threshold we run sequentially — the
//! per-device training batches in the simulator are small (batch 16), and
//! spawning tasks for a 16×64 product is a slowdown, not a speedup.

use crate::ops::dot_slices;
use crate::Tensor;
use rayon::prelude::*;

/// Minimum number of multiply-adds before a kernel goes parallel.
const PAR_THRESHOLD: usize = 64 * 1024;

impl Tensor {
    /// `self (m×k) · other (k×n)` → `m×n`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");

        let mut out = Tensor::zeros(&[m, n]);
        let work = m * n * k;
        let a = self.data();
        let b = other.data();

        let body = |i: usize, orow: &mut [f32]| {
            let arow = &a[i * k..(i + 1) * k];
            // ikj loop order: stream through B rows, accumulate into the
            // output row, keeping all three accesses sequential.
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        };

        if work >= PAR_THRESHOLD {
            out.data_mut().par_chunks_mut(n).enumerate().for_each(|(i, orow)| body(i, orow));
        } else {
            for (i, orow) in out.data_mut().chunks_mut(n).enumerate() {
                body(i, orow);
            }
        }
        out
    }

    /// `self (m×k) · otherᵀ` where `other` is `n×k` → `m×n`.
    ///
    /// This is the natural layout for a linear layer whose weight matrix is
    /// stored `out_features × in_features`: every output element is the dot
    /// product of two contiguous rows.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul_nt rhs must be rank-2");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul_nt inner dims differ: {k} vs {k2}");

        let mut out = Tensor::zeros(&[m, n]);
        let work = m * n * k;
        let a = self.data();
        let b = other.data();

        let body = |i: usize, orow: &mut [f32]| {
            let arow = &a[i * k..(i + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot_slices(arow, &b[j * k..(j + 1) * k]);
            }
        };

        if work >= PAR_THRESHOLD {
            out.data_mut().par_chunks_mut(n).enumerate().for_each(|(i, orow)| body(i, orow));
        } else {
            for (i, orow) in out.data_mut().chunks_mut(n).enumerate() {
                body(i, orow);
            }
        }
        out
    }

    /// `selfᵀ · other` where `self` is `k×m` and `other` is `k×n` → `m×n`.
    ///
    /// Weight-gradient kernel: `dW = dYᵀ · X` with `dY: batch×out` and
    /// `X: batch×in` is computed as `dY.matmul_tn(X)`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul_tn rhs must be rank-2");
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul_tn inner dims differ: {k} vs {k2}");

        let mut out = Tensor::zeros(&[m, n]);
        let work = m * n * k;
        let a = self.data();
        let b = other.data();

        let body = |i: usize, orow: &mut [f32]| {
            // out[i, :] = sum_p a[p, i] * b[p, :]
            for p in 0..k {
                let av = a[p * m + i];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        };

        if work >= PAR_THRESHOLD {
            out.data_mut().par_chunks_mut(n).enumerate().for_each(|(i, orow)| body(i, orow));
        } else {
            for (i, orow) in out.data_mut().chunks_mut(n).enumerate() {
                body(i, orow);
            }
        }
        out
    }

    /// Matrix–vector product `self (m×k) · v (k)` → `m`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank-2");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank-1");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        assert_eq!(k, v.len(), "matvec inner dims differ");
        let mut out = Tensor::zeros(&[m]);
        for i in 0..m {
            out.data_mut()[i] = dot_slices(self.row(i), v.data());
        }
        out
    }

    /// Outer product of two rank-1 tensors → `m×n`.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 1, "outer lhs must be rank-1");
        assert_eq!(other.rank(), 1, "outer rhs must be rank-1");
        let (m, n) = (self.len(), other.len());
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            let a = self.data()[i];
            for j in 0..n {
                out.data_mut()[i * n + j] = a * other.data()[j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_tensor_close;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(i, p) * b.at(p, j);
                }
                *out.at_mut(i, j) = s;
            }
        }
        out
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::matrix(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::matrix(&[&[1.5, -2.0, 3.0], &[0.0, 4.0, 5.5]]);
        let c = a.matmul(&Tensor::eye(3));
        assert_tensor_close(&c, &a, 0.0);
    }

    #[test]
    fn matmul_matches_naive_random() {
        let mut rng = crate::NebulaRng::seed(7);
        let a = Tensor::from_vec((0..13 * 9).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[13, 9]);
        let b = Tensor::from_vec((0..9 * 11).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[9, 11]);
        assert_tensor_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // Big enough to cross PAR_THRESHOLD (128*128*64 = 1M MACs).
        let mut rng = crate::NebulaRng::seed(11);
        let a = Tensor::from_vec((0..128 * 64).map(|_| rng.normal_f32(0.0, 0.5)).collect(), &[128, 64]);
        let b = Tensor::from_vec((0..64 * 128).map(|_| rng.normal_f32(0.0, 0.5)).collect(), &[64, 128]);
        assert_tensor_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-3);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let mut rng = crate::NebulaRng::seed(3);
        let a = Tensor::from_vec((0..6 * 5).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[6, 5]);
        let b = Tensor::from_vec((0..7 * 5).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[7, 5]);
        assert_tensor_close(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-4);
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let mut rng = crate::NebulaRng::seed(5);
        let a = Tensor::from_vec((0..8 * 4).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[8, 4]);
        let b = Tensor::from_vec((0..8 * 6).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[8, 6]);
        assert_tensor_close(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_mismatched_dims() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let v = Tensor::vector(&[2.0, -1.0]);
        let out = a.matvec(&v);
        assert_eq!(out.data(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let a = Tensor::vector(&[1.0, 2.0]);
        let b = Tensor::vector(&[3.0, 4.0, 5.0]);
        let o = a.outer(&b);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }
}
