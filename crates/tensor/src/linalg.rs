//! Matrix multiplication kernels.
//!
//! Three variants cover every use in the NN stack without materialising
//! transposes in the hot path:
//!
//! * [`Tensor::matmul`] — `A(m×k) · B(k×n)`, forward pass of a linear layer
//!   (weights stored as `out×in`, used through [`Tensor::matmul_nt`]).
//! * [`Tensor::matmul_nt`] — `A(m×k) · Bᵀ(n×k)`, forward pass with row-major
//!   weight layout: each output element is a dot of two contiguous rows.
//! * [`Tensor::matmul_tn`] — `Aᵀ(k×m) · B(k×n)`, gradient w.r.t. weights.
//!
//! All three lower onto the cache-blocked, register-tiled engine in
//! [`crate::gemm`]; the transposed layouts are absorbed by its packing
//! routines, so there is a single macro-kernel to tune. `*_into` variants
//! write into a caller-provided output tensor so hot loops can reuse
//! buffers (see `nebula-nn`'s workspace).
//!
//! Which micro-kernel runs under that macro-kernel is selected through
//! [`crate::backend`]: the default `Auto` resolves once (cached CPUID) to
//! the best engine the CPU supports — the explicit AVX-512/AVX2+FMA tiles
//! in [`crate::gemm::simd`] where present, the auto-vectorised scalar
//! `Blocked` tile otherwise — and tests/benches force a specific engine
//! with [`crate::KernelBackend::scoped`]. Every backend is run-to-run
//! deterministic; see `backend.rs` for the full contract.
//!
//! Parallelism: the engine splits rows of the output over rayon once the
//! work is large enough to amortise fork/join (`PAR_THRESHOLD`) *and* the
//! current thread is not already inside a client-parallel round section
//! ([`crate::par::in_sequential_scope`] — see `par.rs` for the nesting
//! policy) *and* the process-wide kernel-thread budget
//! ([`crate::par::set_max_kernel_threads`]) permits forking. The
//! sequential and parallel paths are bit-identical, so all three checks
//! are purely scheduling decisions.
//!
//! The pre-blocking kernels are retained under [`reference`] — they anchor
//! the equivalence proptests and give `perf_suite` a stable baseline to
//! report speedups against ([`KernelBackend::Reference`]).

use crate::backend::{self, KernelBackend};
use crate::gemm::{self, simd, ALayout, BLayout};
use crate::ops::dot_slices;
use crate::par;
use crate::Tensor;

/// Minimum number of multiply-adds before a kernel goes parallel.
///
/// Re-tuned for the blocked engine: packing raises the fixed cost per call
/// and the micro-kernel raises per-core throughput, so the old `64·1024`
/// crossover (tuned for the naive row loop) now forks far too early — a
/// 128×128×64 product finishes in the tens of microseconds. Forking pays
/// off roughly an order of magnitude later.
const PAR_THRESHOLD: usize = 512 * 1024;

/// Routes all mat-muls through the pre-blocking [`reference`] kernels
/// (benchmark baseline) or back to automatic engine selection.
#[deprecated(note = "use nebula_tensor::set_kernel_backend / KernelBackend::scoped instead; \
                     `true` maps to KernelBackend::Reference, `false` to KernelBackend::Auto")]
pub fn set_reference_kernels(on: bool) {
    backend::set_kernel_backend(if on { KernelBackend::Reference } else { KernelBackend::Auto });
}

/// True while the [`KernelBackend::Reference`] engine is selected.
#[deprecated(note = "use nebula_tensor::active_backend() instead")]
pub fn reference_kernels_enabled() -> bool {
    backend::active_backend() == KernelBackend::Reference
}

/// Whether this product should use the rayon path.
fn go_parallel(work: usize) -> bool {
    work >= PAR_THRESHOLD && par::kernel_parallelism_allowed()
}

/// Lowers one product onto the engine the resolved backend names.
/// `Reference` is handled by the callers (its three naive kernels are
/// layout-specific); `Auto` never escapes [`backend::resolve`].
#[allow(clippy::too_many_arguments)]
fn gemm_backend(
    engine: KernelBackend,
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    al: ALayout,
    b: &[f32],
    bl: BLayout,
) {
    let parallel = go_parallel(m * n * k);
    match engine {
        KernelBackend::Blocked => gemm::gemm(out, m, n, k, a, al, b, bl, parallel),
        KernelBackend::Avx2 => simd::gemm_avx2(out, m, n, k, a, al, b, bl, parallel),
        KernelBackend::Avx512 => simd::gemm_avx512(out, m, n, k, a, al, b, bl, parallel),
        KernelBackend::Reference | KernelBackend::Auto => {
            unreachable!("resolve() never yields {engine} here")
        }
    }
}

impl Tensor {
    /// `self (m×k) · other (k×n)` → `m×n`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(&[self.shape()[0], other.shape()[1]]);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self (m×k) · other (k×n)` written into `out` (`m×n`, overwritten).
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
        assert_eq!(out.shape(), &[m, n], "matmul out shape mismatch");
        out.zero_();
        match backend::resolved_backend() {
            KernelBackend::Reference => {
                reference::matmul_slices(out.data_mut(), m, n, k, self.data(), other.data())
            }
            engine => gemm_backend(
                engine,
                out.data_mut(),
                m,
                n,
                k,
                self.data(),
                ALayout::RowMajor,
                other.data(),
                BLayout::RowMajor,
            ),
        }
    }

    /// `self (m×k) · otherᵀ` where `other` is `n×k` → `m×n`.
    ///
    /// This is the natural layout for a linear layer whose weight matrix is
    /// stored `out_features × in_features`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(&[self.shape()[0], other.shape()[0]]);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `self · otherᵀ` written into `out` (`m×n`, overwritten).
    pub fn matmul_nt_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul_nt rhs must be rank-2");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul_nt inner dims differ: {k} vs {k2}");
        assert_eq!(out.shape(), &[m, n], "matmul_nt out shape mismatch");
        out.zero_();
        match backend::resolved_backend() {
            KernelBackend::Reference => {
                reference::matmul_nt_slices(out.data_mut(), m, n, k, self.data(), other.data())
            }
            engine => gemm_backend(
                engine,
                out.data_mut(),
                m,
                n,
                k,
                self.data(),
                ALayout::RowMajor,
                other.data(),
                BLayout::Transposed,
            ),
        }
    }

    /// `selfᵀ · other` where `self` is `k×m` and `other` is `k×n` → `m×n`.
    ///
    /// Weight-gradient kernel: `dW = dYᵀ · X` with `dY: batch×out` and
    /// `X: batch×in` is computed as `dY.matmul_tn(X)`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(&[self.shape()[1], other.shape()[1]]);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// `selfᵀ · other` written into `out` (`m×n`, overwritten).
    pub fn matmul_tn_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul_tn rhs must be rank-2");
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul_tn inner dims differ: {k} vs {k2}");
        assert_eq!(out.shape(), &[m, n], "matmul_tn out shape mismatch");
        out.zero_();
        match backend::resolved_backend() {
            KernelBackend::Reference => {
                reference::matmul_tn_slices(out.data_mut(), m, n, k, self.data(), other.data())
            }
            engine => gemm_backend(
                engine,
                out.data_mut(),
                m,
                n,
                k,
                self.data(),
                ALayout::Transposed,
                other.data(),
                BLayout::RowMajor,
            ),
        }
    }

    /// Matrix–vector product `self (m×k) · v (k)` → `m`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank-2");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank-1");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        assert_eq!(k, v.len(), "matvec inner dims differ");
        let mut out = Tensor::zeros(&[m]);
        for i in 0..m {
            out.data_mut()[i] = dot_slices(self.row(i), v.data());
        }
        out
    }

    /// Outer product of two rank-1 tensors → `m×n`.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 1, "outer lhs must be rank-1");
        assert_eq!(other.rank(), 1, "outer rhs must be rank-1");
        let (m, n) = (self.len(), other.len());
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            let a = self.data()[i];
            for j in 0..n {
                out.data_mut()[i * n + j] = a * other.data()[j];
            }
        }
        out
    }
}

/// The pre-blocking kernels, retained verbatim (branchy `ikj` row loop for
/// `matmul`/`matmul_tn`, row-dot loop for `matmul_nt`).
///
/// They serve two purposes: the equivalence proptests check the blocked
/// engine against them across random shapes, and `perf_suite` measures
/// every engine's speedup over them (via
/// `KernelBackend::Reference.scoped()` for end-to-end runs). They are
/// sequential — on the round hot path they were always below the old
/// parallel threshold.
pub mod reference {
    use super::dot_slices;
    use crate::Tensor;

    /// Naive `C = A·B` (`ikj` order, zero-skip branch as pre-blocking).
    pub fn matmul_slices(out: &mut [f32], m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) {
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            let arow = &a[i * k..(i + 1) * k];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Naive `C = A·Bᵀ` (per-element row dots).
    pub fn matmul_nt_slices(out: &mut [f32], m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) {
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            let arow = &a[i * k..(i + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot_slices(arow, &b[j * k..(j + 1) * k]);
            }
        }
    }

    /// Naive `C = Aᵀ·B` (strided `A` reads, zero-skip branch).
    pub fn matmul_tn_slices(out: &mut [f32], m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) {
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            for p in 0..k {
                let av = a[p * m + i];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Tensor-level wrapper over [`matmul_slices`] (tests, benches).
    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        assert_eq!(k, b.shape()[0], "reference matmul inner dims differ");
        let mut out = Tensor::zeros(&[m, n]);
        matmul_slices(out.data_mut(), m, n, k, a.data(), b.data());
        out
    }

    /// Tensor-level wrapper over [`matmul_nt_slices`].
    pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[0];
        assert_eq!(k, b.shape()[1], "reference matmul_nt inner dims differ");
        let mut out = Tensor::zeros(&[m, n]);
        matmul_nt_slices(out.data_mut(), m, n, k, a.data(), b.data());
        out
    }

    /// Tensor-level wrapper over [`matmul_tn_slices`].
    pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
        let (k, m) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        assert_eq!(k, b.shape()[0], "reference matmul_tn inner dims differ");
        let mut out = Tensor::zeros(&[m, n]);
        matmul_tn_slices(out.data_mut(), m, n, k, a.data(), b.data());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_tensor_close;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(i, p) * b.at(p, j);
                }
                *out.at_mut(i, j) = s;
            }
        }
        out
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::matrix(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::matrix(&[&[1.5, -2.0, 3.0], &[0.0, 4.0, 5.5]]);
        let c = a.matmul(&Tensor::eye(3));
        assert_tensor_close(&c, &a, 0.0);
    }

    #[test]
    fn matmul_matches_naive_random() {
        let mut rng = crate::NebulaRng::seed(7);
        let a = Tensor::from_vec((0..13 * 9).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[13, 9]);
        let b = Tensor::from_vec((0..9 * 11).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[9, 11]);
        assert_tensor_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // Big enough to cross PAR_THRESHOLD (256·256·64 = 4M MACs).
        let mut rng = crate::NebulaRng::seed(11);
        let a = Tensor::from_vec((0..256 * 64).map(|_| rng.normal_f32(0.0, 0.5)).collect(), &[256, 64]);
        let b = Tensor::from_vec((0..64 * 256).map(|_| rng.normal_f32(0.0, 0.5)).collect(), &[64, 256]);
        assert_tensor_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-3);
    }

    #[test]
    fn sequential_scope_does_not_change_results() {
        let mut rng = crate::NebulaRng::seed(13);
        let a = Tensor::from_vec((0..256 * 64).map(|_| rng.normal_f32(0.0, 0.5)).collect(), &[256, 64]);
        let b = Tensor::from_vec((0..64 * 256).map(|_| rng.normal_f32(0.0, 0.5)).collect(), &[64, 256]);
        let free = a.matmul(&b);
        let scoped = crate::par::sequential(|| a.matmul(&b));
        assert_eq!(free.data(), scoped.data(), "seq scope changed kernel results");
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let mut rng = crate::NebulaRng::seed(3);
        let a = Tensor::from_vec((0..6 * 5).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[6, 5]);
        let b = Tensor::from_vec((0..7 * 5).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[7, 5]);
        assert_tensor_close(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-4);
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let mut rng = crate::NebulaRng::seed(5);
        let a = Tensor::from_vec((0..8 * 4).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[8, 4]);
        let b = Tensor::from_vec((0..8 * 6).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[8, 6]);
        assert_tensor_close(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-4);
    }

    #[test]
    fn into_variants_overwrite_stale_output() {
        let mut rng = crate::NebulaRng::seed(17);
        let a = Tensor::from_vec((0..5 * 7).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[5, 7]);
        let b = Tensor::from_vec((0..7 * 3).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[7, 3]);
        let mut out = Tensor::full(&[5, 3], 99.0); // stale garbage must not leak
        a.matmul_into(&b, &mut out);
        assert_tensor_close(&out, &naive_matmul(&a, &b), 1e-4);
    }

    #[test]
    fn backend_override_round_trips() {
        let mut rng = crate::NebulaRng::seed(19);
        let a = Tensor::from_vec((0..12 * 30).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[12, 30]);
        let b = Tensor::from_vec((0..30 * 8).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[30, 8]);
        let auto = a.matmul(&b);
        let baseline = {
            let _g = KernelBackend::Reference.scoped();
            a.matmul(&b)
        };
        let blocked = {
            let _g = KernelBackend::Blocked.scoped();
            a.matmul(&b)
        };
        assert_tensor_close(&auto, &baseline, 1e-4);
        assert_tensor_close(&blocked, &baseline, 1e-4);
        // The deprecated boolean shim still flips the backend.
        #[allow(deprecated)]
        {
            set_reference_kernels(true);
            assert!(reference_kernels_enabled());
            assert_eq!(backend::active_backend(), KernelBackend::Reference);
            set_reference_kernels(false);
            assert!(!reference_kernels_enabled());
            assert_eq!(backend::active_backend(), KernelBackend::Auto);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_mismatched_dims() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let v = Tensor::vector(&[2.0, -1.0]);
        let out = a.matvec(&v);
        assert_eq!(out.data(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let a = Tensor::vector(&[1.0, 2.0]);
        let b = Tensor::vector(&[3.0, 4.0, 5.0]);
        let o = a.outer(&b);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }
}
