//! Property tests: the blocked GEMM engine must agree with the retained
//! naive reference kernels for every shape and all three layout variants.
//!
//! Shapes are drawn to straddle the blocking parameters (MR=4, NR=8,
//! MC=64, KC=256, NC=256): dimensions of 1, exact multiples, and
//! off-by-a-few around tile/block edges are all reachable. Tolerance is
//! relative 1e-4 — the blocked kernel reassociates the k-sum into KC
//! slabs, so results are not bit-identical to the naive loop, but must
//! stay within ordinary f32 reassociation error.

use nebula_tensor::linalg::reference;
use nebula_tensor::{NebulaRng, Tensor};
use proptest::prelude::*;

/// Relative/absolute mixed tolerance, matching `assert_tensor_close`.
const TOL: f32 = 1e-4;

fn random_tensor(rng: &mut NebulaRng, r: usize, c: usize) -> Tensor {
    Tensor::from_vec((0..r * c).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[r, c])
}

fn close(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data().iter().zip(b.data()).all(|(&x, &y)| (x - y).abs() <= TOL.max(TOL * x.abs().max(y.abs())))
}

/// Dimension strategy biased toward blocking-parameter edges: the plain
/// range already covers 1 and non-multiples; the map folds in exact tile
/// widths (4, 8) and the MC block edge (64±1) with extra probability.
fn dim() -> impl Strategy<Value = usize> {
    (0usize..139 * 4).prop_map(|x| {
        let d = 1 + x / 4;
        if x % 4 == 0 {
            [1, 4, 8, 63, 64, 65][d % 6]
        } else {
            d
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_matches_reference(m in dim(), n in dim(), k in dim(), seed in 0u64..1_000_000) {
        let mut rng = NebulaRng::seed(seed);
        let a = random_tensor(&mut rng, m, k);
        let b = random_tensor(&mut rng, k, n);
        let blocked = a.matmul(&b);
        let naive = reference::matmul(&a, &b);
        prop_assert!(close(&blocked, &naive), "matmul diverged at m={} n={} k={}", m, n, k);
    }

    #[test]
    fn matmul_nt_matches_reference(m in dim(), n in dim(), k in dim(), seed in 0u64..1_000_000) {
        let mut rng = NebulaRng::seed(seed);
        let a = random_tensor(&mut rng, m, k);
        let b = random_tensor(&mut rng, n, k);
        let blocked = a.matmul_nt(&b);
        let naive = reference::matmul_nt(&a, &b);
        prop_assert!(close(&blocked, &naive), "matmul_nt diverged at m={} n={} k={}", m, n, k);
    }

    #[test]
    fn matmul_tn_matches_reference(m in dim(), n in dim(), k in dim(), seed in 0u64..1_000_000) {
        let mut rng = NebulaRng::seed(seed);
        let a = random_tensor(&mut rng, k, m);
        let b = random_tensor(&mut rng, k, n);
        let blocked = a.matmul_tn(&b);
        let naive = reference::matmul_tn(&a, &b);
        prop_assert!(close(&blocked, &naive), "matmul_tn diverged at m={} n={} k={}", m, n, k);
    }
}

/// Deterministic sweep of the exact edge shapes named in the issue:
/// m=1, k=1, and dims that are not multiples of any block parameter.
#[test]
fn edge_shapes_all_variants() {
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 17, 33),
        (17, 1, 33),
        (17, 33, 1),
        (4, 8, 256),    // exact MR/NR/KC multiples
        (5, 9, 257),    // one past each
        (64, 256, 64),  // exact MC/NC
        (65, 257, 300), // one past MC/NC, k past KC
        (3, 300, 7),
    ];
    for &(m, n, k) in shapes {
        let mut rng = NebulaRng::seed((m * 1_000_003 + n * 1_009 + k) as u64);
        let a = random_tensor(&mut rng, m, k);
        let b = random_tensor(&mut rng, k, n);
        assert!(close(&a.matmul(&b), &reference::matmul(&a, &b)), "matmul {m}x{n}x{k}");

        let bt = random_tensor(&mut rng, n, k);
        assert!(close(&a.matmul_nt(&bt), &reference::matmul_nt(&a, &bt)), "matmul_nt {m}x{n}x{k}");

        let at = random_tensor(&mut rng, k, m);
        assert!(close(&at.matmul_tn(&b), &reference::matmul_tn(&at, &b)), "matmul_tn {m}x{n}x{k}");
    }
}
