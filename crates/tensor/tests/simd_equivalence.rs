//! Property tests pinning the SIMD engines against the scalar blocked
//! engine, and the int8 quantized matmul against the f32 reference.
//!
//! The SIMD micro-kernels share the blocked engine's macro-kernel and
//! `KC` slabbing, so for every output element they accumulate the same
//! products in the same order — the only difference is FMA contraction.
//! Tolerance is therefore the workspace's ordinary mixed 1e-4, and a
//! fixed SIMD engine must be *bit*-identical between its sequential and
//! parallel paths (threads split only `m`).
//!
//! Shapes are drawn to straddle every register tile in play (scalar 4×8,
//! AVX2 6×16, AVX-512 8×32), the `MC_SIMD = 96` row block, and the shared
//! `KC = 256` slab: dimensions of 1, exact multiples, and off-by-a-few
//! tails are all reachable. The engines are called directly (not through
//! the process-global backend switch) so the proptests can run
//! concurrently without racing the selection; the scoped-guard path
//! through the public `Tensor` API is covered by a single deterministic
//! test at the bottom.

use nebula_tensor::gemm::simd::{self, SimdLevel};
use nebula_tensor::gemm::{self, int8, ALayout, BLayout};
use nebula_tensor::{KernelBackend, NebulaRng, Tensor};
use proptest::prelude::*;

const TOL: f32 = 1e-4;

fn fill(rng: &mut NebulaRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.normal_f32(0.0, 1.0)).collect()
}

fn close(got: &[f32], want: &[f32]) -> Option<String> {
    for (i, (&x, &y)) in got.iter().zip(want).enumerate() {
        if (x - y).abs() > TOL.max(TOL * x.abs().max(y.abs())) {
            return Some(format!("element {i}: {x} vs {y}"));
        }
    }
    None
}

/// Dimension strategy biased toward the tile/block edges of every engine:
/// 1, the AVX2/AVX-512 tile sides (6, 16, 8, 32), and the SIMD row block
/// (95..97) get extra probability; the plain range covers non-multiples.
fn dim() -> impl Strategy<Value = usize> {
    (0usize..139 * 4).prop_map(|x| {
        let d = 1 + x / 4;
        if x % 4 == 0 {
            [1, 6, 8, 16, 32, 95, 96, 97][d % 8]
        } else {
            d
        }
    })
}

/// Signature shared by every full GEMM engine entry point.
type Engine = fn(&mut [f32], usize, usize, usize, &[f32], ALayout, &[f32], BLayout, bool);

/// Runs one engine over all three layout variants and checks it against
/// the scalar blocked engine, plus sequential/parallel bit-identity.
fn check_engine(engine: Engine, name: &str, m: usize, n: usize, k: usize, seed: u64) -> Result<(), String> {
    let mut rng = NebulaRng::seed(seed);
    let a = fill(&mut rng, m * k);
    let b = fill(&mut rng, k * n);
    let at = fill(&mut rng, k * m); // stored k×m
    let bt = fill(&mut rng, n * k); // stored n×k
    for (al, bl, aa, bb) in [
        (ALayout::RowMajor, BLayout::RowMajor, &a, &b),
        (ALayout::RowMajor, BLayout::Transposed, &a, &bt),
        (ALayout::Transposed, BLayout::RowMajor, &at, &b),
    ] {
        let mut scalar = vec![0.0; m * n];
        gemm::gemm(&mut scalar, m, n, k, aa, al, bb, bl, false);
        let mut v = vec![0.0; m * n];
        engine(&mut v, m, n, k, aa, al, bb, bl, false);
        if let Some(err) = close(&v, &scalar) {
            return Err(format!("{name} diverged from blocked at {m}x{n}x{k} {al:?}/{bl:?}: {err}"));
        }
        let mut vp = vec![0.0; m * n];
        engine(&mut vp, m, n, k, aa, al, bb, bl, true);
        if v != vp {
            return Err(format!("{name} parallel split not bit-identical at {m}x{n}x{k} {al:?}/{bl:?}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn avx2_matches_blocked_all_layouts(m in dim(), n in dim(), k in dim(), seed in 0u64..1_000_000) {
        if simd::detect() >= SimdLevel::Avx2 {
            if let Err(e) = check_engine(simd::gemm_avx2, "avx2", m, n, k, seed) {
                prop_assert!(false, "{}", e);
            }
        }
    }

    #[test]
    fn avx512_matches_blocked_all_layouts(m in dim(), n in dim(), k in dim(), seed in 0u64..1_000_000) {
        if simd::detect() >= SimdLevel::Avx512 {
            if let Err(e) = check_engine(simd::gemm_avx512, "avx512", m, n, k, seed) {
                prop_assert!(false, "{}", e);
            }
        }
    }

    /// Quantize → int8 matmul → dequantize stays within the guaranteed
    /// quantization error bound of the f32 reference, for every shape.
    #[test]
    fn int8_matmul_tracks_f32_reference(
        m in 1usize..24, n in 1usize..24, k in 1usize..200, seed in 0u64..1_000_000,
    ) {
        let mut rng = NebulaRng::seed(seed);
        let af = fill(&mut rng, m * k);
        let bf = fill(&mut rng, n * k); // n×k weight layout
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                want[i * n + j] = (0..k).map(|p| af[i * k + p] * bf[j * k + p]).sum();
            }
        }
        let (aq, sa) = int8::quantize(&af);
        let (bq, sb) = int8::quantize(&bf);
        let mut got = vec![0.0f32; m * n];
        int8::matmul_nt_dequant(&mut got, m, n, k, &aq, sa, &bq, sb);
        // Guaranteed bound (see the int8 module docs) plus f32 slack.
        let tol = k as f32 * sa * sb * 127.25 + 1e-5;
        for (i, (x, y)) in got.iter().zip(&want).enumerate() {
            prop_assert!((x - y).abs() <= tol, "element {} at {}x{}x{}: {} vs {} (tol {})",
                i, m, n, k, x, y, tol);
        }
    }

    /// Per-element quantization round-trip error never exceeds half a step.
    #[test]
    fn quantize_round_trip_error_is_half_step(len in 1usize..300, seed in 0u64..1_000_000) {
        let mut rng = NebulaRng::seed(seed);
        let v = fill(&mut rng, len);
        let (q, s) = int8::quantize(&v);
        let d = int8::dequantize(&q, s);
        for (x, y) in v.iter().zip(&d) {
            prop_assert!((x - y).abs() <= s * 0.5 + s * 1e-3, "{} vs {} (scale {})", x, y, s);
        }
    }
}

/// Deterministic sweep of the adversarial shapes named in the issue —
/// tail m/n/k not divisible by any register block, k=1, m=1 — through
/// every supported engine.
#[test]
fn edge_shapes_every_engine() {
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 17, 33),
        (17, 1, 33),
        (17, 33, 1),
        (6, 16, 256),   // exact AVX2 tile, exact KC
        (7, 17, 257),   // one past each
        (8, 32, 64),    // exact AVX-512 tile
        (9, 33, 65),    // one past
        (96, 256, 96),  // exact MC_SIMD/NC
        (97, 257, 300), // one past MC_SIMD/NC, k past KC
        (5, 300, 7),
    ];
    for &(m, n, k) in shapes {
        let seed = (m * 1_000_003 + n * 1_009 + k) as u64;
        if simd::detect() >= SimdLevel::Avx2 {
            check_engine(simd::gemm_avx2, "avx2", m, n, k, seed).unwrap();
        }
        if simd::detect() >= SimdLevel::Avx512 {
            check_engine(simd::gemm_avx512, "avx512", m, n, k, seed).unwrap();
        }
    }
}

/// The scoped-guard path through the public `Tensor` API: one `#[test]`
/// because the backend selection is process-global (see `backend.rs`).
#[test]
fn scoped_backend_switches_tensor_matmuls() {
    let mut rng = NebulaRng::seed(123);
    let a = Tensor::from_vec(fill(&mut rng, 37 * 300), &[37, 300]);
    let b = Tensor::from_vec(fill(&mut rng, 300 * 41), &[300, 41]);

    let blocked = {
        let _g = KernelBackend::Blocked.scoped();
        a.matmul(&b)
    };
    for backend in [KernelBackend::Avx2, KernelBackend::Avx512, KernelBackend::Auto] {
        let _g = backend.scoped();
        let once = a.matmul(&b);
        let twice = a.matmul(&b);
        assert_eq!(once.data(), twice.data(), "{backend} not run-to-run deterministic");
        assert!(close(once.data(), blocked.data()).is_none(), "{backend} diverged from Blocked");
    }
}
