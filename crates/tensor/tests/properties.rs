//! Property-based tests for the tensor algebra.

use nebula_tensor::reduce::top_k_indices;
use nebula_tensor::{NebulaRng, Tensor};
use proptest::prelude::*;

/// Generates a random tensor of the given shape from a seed.
fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = NebulaRng::seed(seed);
    Tensor::from_vec((0..rows * cols).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[rows, cols])
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #[test]
    fn matmul_is_associative(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, p in 1usize..6, seed in 0u64..500
    ) {
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed ^ 1);
        let c = tensor(n, p, seed ^ 2);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!(close(*x, *y), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..500
    ) {
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed ^ 3);
        let c = tensor(k, n, seed ^ 4);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!(close(*x, *y));
        }
    }

    #[test]
    fn transpose_is_an_involution(m in 1usize..8, n in 1usize..8, seed in 0u64..500) {
        let a = tensor(m, n, seed);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_reverses_matmul(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..500) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed ^ 5);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!(close(*x, *y));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(n in 1usize..10, shift in -50.0f32..50.0, seed in 0u64..500) {
        let a = tensor(1, n, seed);
        let shifted = a.add_scalar(shift);
        let sa = a.softmax_rows();
        let sb = shifted.softmax_rows();
        for (x, y) in sa.data().iter().zip(sb.data()) {
            prop_assert!(close(*x, *y), "{x} vs {y}");
        }
    }

    #[test]
    fn softmax_rows_are_simplex_points(m in 1usize..5, n in 1usize..10, seed in 0u64..500) {
        let s = tensor(m, n, seed).softmax_rows();
        for i in 0..m {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn top_k_returns_the_k_largest(n in 1usize..12, k in 0usize..12, seed in 0u64..500) {
        let mut rng = NebulaRng::seed(seed);
        let scores: Vec<f32> = (0..n).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let idx = top_k_indices(&scores, k);
        prop_assert_eq!(idx.len(), k.min(n));
        // Every selected score ≥ every unselected score.
        let min_selected = idx.iter().map(|&i| scores[i]).fold(f32::INFINITY, f32::min);
        for (i, &s) in scores.iter().enumerate() {
            if !idx.contains(&i) {
                prop_assert!(s <= min_selected + 1e-6);
            }
        }
    }

    #[test]
    fn axpy_matches_scale_add(m in 1usize..6, n in 1usize..6, alpha in -3.0f32..3.0, seed in 0u64..500) {
        let a = tensor(m, n, seed);
        let b = tensor(m, n, seed ^ 7);
        let mut via_axpy = a.clone();
        via_axpy.axpy(alpha, &b);
        let direct = a.add(&b.scale(alpha));
        for (x, y) in via_axpy.data().iter().zip(direct.data()) {
            prop_assert!(close(*x, *y));
        }
    }

    #[test]
    fn dirichlet_always_lands_on_the_simplex(alpha in 0.05f32..10.0, n in 1usize..12, seed in 0u64..500) {
        let mut rng = NebulaRng::seed(seed);
        let p = rng.dirichlet(alpha, n);
        prop_assert_eq!(p.len(), n);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3, "sum {}", sum);
        prop_assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn gather_then_concat_rows_is_permutation(m in 2usize..8, n in 1usize..6, seed in 0u64..500) {
        let a = tensor(m, n, seed);
        let first: Vec<usize> = (0..m / 2).collect();
        let rest: Vec<usize> = (m / 2..m).collect();
        let ga = a.gather_rows(&first);
        let gb = a.gather_rows(&rest);
        let mut data = ga.data().to_vec();
        data.extend_from_slice(gb.data());
        prop_assert_eq!(Tensor::from_vec(data, &[m, n]), a);
    }
}
