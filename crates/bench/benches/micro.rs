//! Criterion micro-benchmarks for the systems-level costs of Nebula:
//! routing/gating throughput, sub-model derivation latency, module-wise
//! aggregation vs FedAvg-style full averaging, and the tensor kernels
//! everything sits on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nebula_core::{aggregate_module_wise, derive_submodel, ModuleUpdate, ResourceProfile};
use nebula_modular::cost::CostModel;
use nebula_modular::{ModularConfig, ModularModel, SubModelSpec};
use nebula_nn::{Layer, Mode};
use nebula_tensor::{NebulaRng, Tensor};
use std::collections::BTreeMap;

fn paper_config() -> ModularConfig {
    // ResNet18-equivalent: 4 layers × 16 modules.
    ModularConfig {
        input_dim: 96,
        classes: 10,
        width: 96,
        num_layers: 4,
        modules_per_layer: 16,
        module_hidden: 24,
        residual_module: true,
        top_k: 4,
        selector_embed: 48,
        gate_noise_std: 0.3,
        load_balance_weight: 0.02,
        conv_stem: None,
    }
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor/matmul_nt");
    let mut rng = NebulaRng::seed(1);
    for &n in &[64usize, 256, 512] {
        let a = Tensor::from_vec((0..16 * n).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[16, n]);
        let b = Tensor::from_vec((0..n * n).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[n, n]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_nt(&b)));
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("modular/forward");
    let cfg = paper_config();
    let mut model = ModularModel::new(cfg.clone(), 7);
    let mut rng = NebulaRng::seed(2);
    let x = Tensor::from_vec(
        (0..16 * cfg.input_dim).map(|_| rng.normal_f32(0.0, 1.0)).collect(),
        &[16, cfg.input_dim],
    );
    group.bench_function("full_model_batch16", |b| {
        b.iter(|| black_box(model.forward(&x, Mode::Eval)));
    });
    let small = SubModelSpec::new(vec![vec![0, 1]; 4]);
    model.set_submodel(Some(&small));
    group.bench_function("submodel2_batch16", |b| {
        b.iter(|| black_box(model.forward(&x, Mode::Eval)));
    });
    model.set_submodel(None);
    group.bench_function("train_step_batch16", |b| {
        b.iter(|| {
            model.zero_grad();
            let y = model.forward(&x, Mode::Train);
            let g = Tensor::ones(y.shape());
            black_box(model.backward(&g));
        });
    });
    group.finish();
}

fn bench_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/derive_submodel");
    let cfg = paper_config();
    let cost = CostModel::new(cfg.clone());
    let mut rng = NebulaRng::seed(3);
    let importance: Vec<Vec<f32>> = (0..cfg.num_layers)
        .map(|_| {
            let mut row: Vec<f32> = (0..cfg.modules_per_layer).map(|_| rng.uniform_f32(0.0, 1.0)).collect();
            let s: f32 = row.iter().sum();
            row.iter_mut().for_each(|v| *v /= s);
            row
        })
        .collect();
    let full = cost.full_model();
    let profile = ResourceProfile {
        mem_bytes: full.training_mem_bytes / 3,
        flops: full.flops / 3,
        comm_bytes: full.comm_bytes / 3,
    };
    group.bench_function("knapsack_64_modules", |b| {
        b.iter(|| black_box(derive_submodel(&cost, &importance, &profile, None)));
    });
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/aggregation");
    group.sample_size(20);
    let cfg = paper_config();
    let cloud = ModularModel::new(cfg.clone(), 9);

    // 25 device updates over random 8-module sub-models.
    let mut rng = NebulaRng::seed(4);
    let updates: Vec<ModuleUpdate> = (0..25)
        .map(|_| {
            let spec = SubModelSpec::new(
                (0..cfg.num_layers).map(|_| rng.sample_indices(cfg.modules_per_layer, 8)).collect(),
            );
            let mut module_params = BTreeMap::new();
            for (l, layer) in spec.layers().iter().enumerate() {
                for &i in layer {
                    module_params.insert((l, i), cloud.module_param_vector(l, i));
                }
            }
            let importance =
                vec![vec![1.0 / cfg.modules_per_layer as f32; cfg.modules_per_layer]; cfg.num_layers];
            ModuleUpdate {
                spec,
                module_params,
                shared_params: cloud.shared_param_vector(),
                importance,
                data_volume: 100,
            }
        })
        .collect();

    group.bench_function("module_wise_25_devices", |b| {
        b.iter_batched(
            || cloud.deep_clone(),
            |mut m| black_box(aggregate_module_wise(&mut m, &updates)),
            criterion::BatchSize::LargeInput,
        );
    });

    // FedAvg-style full-vector average at the same capacity, for contrast.
    let full_params: Vec<Vec<f32>> = (0..25).map(|_| cloud.param_vector()).collect();
    group.bench_function("full_average_25_devices", |b| {
        b.iter(|| {
            let len = full_params[0].len();
            let mut avg = vec![0.0f32; len];
            for p in &full_params {
                for (a, &v) in avg.iter_mut().zip(p) {
                    *a += v;
                }
            }
            avg.iter_mut().for_each(|v| *v /= 25.0);
            black_box(avg)
        });
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    use nebula_nn::Conv1d;
    let mut group = c.benchmark_group("nn/conv1d");
    let mut rng = NebulaRng::seed(5);
    // Speech-scale: 8 channels × 128 samples, 16 output channels, k=5.
    let mut conv = Conv1d::new(8, 16, 5, 1, 2, 128, &mut rng);
    let x = Tensor::from_vec((0..16 * 8 * 128).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[16, 8 * 128]);
    group.bench_function("forward_batch16", |b| {
        b.iter(|| black_box(conv.forward(&x, Mode::Eval)));
    });
    group.bench_function("train_step_batch16", |b| {
        b.iter(|| {
            conv.zero_grad();
            let y = conv.forward(&x, Mode::Train);
            let g = Tensor::ones(y.shape());
            black_box(conv.backward(&g));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_routing, bench_derivation, bench_aggregation, bench_conv);
criterion_main!(benches);
