//! Shared experiment harness for the per-table / per-figure binaries in
//! `src/bin/`. See DESIGN.md §4 for the experiment index.
//!
//! Every binary prints the paper's rows/series to stdout and appends a
//! JSON record per measurement to `results/<experiment>.jsonl` so the
//! numbers in EXPERIMENTS.md are regenerable.

use nebula_core::modular_config_for;
use nebula_data::drift::DriftKind;
use nebula_data::{DriftModel, PartitionSpec, Partitioner, Synthesizer, TaskPreset};
use nebula_sim::strategy::StrategyConfig;
use nebula_sim::{ResourceSampler, SimWorld};
use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// Scale knobs for the experiment binaries. The paper simulates 500
/// devices; `quick` mode shrinks everything for smoke runs, `full` mode
/// is the EXPERIMENTS.md configuration.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    pub devices: usize,
    pub rounds_per_step: usize,
    pub eval_devices: usize,
    pub pretrain_epochs: usize,
    pub proxy_samples: usize,
}

impl Scale {
    /// EXPERIMENTS.md scale (sized for a single-core CI box; the paper's
    /// 500-device population shrinks to 100 with the same 25-per-round
    /// sampling).
    pub fn full() -> Self {
        Self { devices: 100, rounds_per_step: 10, eval_devices: 10, pretrain_epochs: 12, proxy_samples: 2500 }
    }

    /// Smoke-test scale (CI and `--quick`).
    pub fn quick() -> Self {
        Self { devices: 30, rounds_per_step: 3, eval_devices: 6, pretrain_epochs: 4, proxy_samples: 600 }
    }

    /// Parses `--quick` from argv.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::full()
        }
    }
}

/// One experiment row of a task table: the task plus its label-skew
/// degree (`m` classes per device; `None` = HAR's subject skew).
#[derive(Clone, Copy, Debug)]
pub struct TaskRow {
    pub task: TaskPreset,
    pub skew_m: Option<usize>,
}

impl TaskRow {
    /// The seven rows of Table 1, in paper order.
    pub fn table1_rows() -> Vec<TaskRow> {
        let mut rows = vec![TaskRow { task: TaskPreset::Har, skew_m: None }];
        for task in [TaskPreset::Cifar10, TaskPreset::Cifar100, TaskPreset::SpeechCommands] {
            for m in task.skew_degrees().unwrap() {
                rows.push(TaskRow { task, skew_m: Some(m) });
            }
        }
        rows
    }

    /// Human-readable partition label ("1 subject" / "m=2" …).
    pub fn partition_label(&self) -> String {
        match self.skew_m {
            None => "1 subject".to_string(),
            Some(m) => format!("m={m}"),
        }
    }

    /// The partitioner for this row.
    pub fn partitioner(&self) -> Partitioner {
        match self.skew_m {
            None => Partitioner::FeatureSkew,
            Some(m) => Partitioner::LabelSkew { m },
        }
    }

    /// The drift process used in continuous experiments for this row.
    pub fn drift(&self, replace_frac: f32, group_seed: u64) -> DriftModel {
        match self.skew_m {
            None => DriftModel::new(replace_frac, DriftKind::ContextShift),
            Some(m) => DriftModel::new(replace_frac, DriftKind::ClassShift { m, group_seed }),
        }
    }

    /// Builds the simulated world for this row.
    pub fn world(&self, scale: Scale, drift_replace: Option<f32>, seed: u64) -> SimWorld {
        let group_seed = seed ^ 0x6E0;
        let synth = Synthesizer::new(self.task.synth_spec(), seed);
        let pspec = PartitionSpec::new(scale.devices, self.partitioner());
        let drift = drift_replace.map(|f| self.drift(f, group_seed));
        SimWorld::new(synth, pspec, group_seed, drift, &ResourceSampler::default(), seed ^ 0x5EED)
    }

    /// The strategy configuration for this row at the given scale.
    pub fn strategy_config(&self, scale: Scale) -> StrategyConfig {
        let mut cfg = StrategyConfig::new(modular_config_for(self.task));
        cfg.rounds_per_step = scale.rounds_per_step;
        cfg.pretrain_epochs = scale.pretrain_epochs;
        cfg.proxy_samples = scale.proxy_samples;
        cfg
    }
}

/// Appends a JSON record to `results/<experiment>.jsonl` (creating the
/// directory on first use).
pub fn emit_record<T: Serialize>(experiment: &str, record: &T) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{experiment}.jsonl"));
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(&path).expect("open results file");
    let line = serde_json::to_string(record).expect("serialize record");
    writeln!(f, "{line}").expect("write record");
}

/// `results/` beside the workspace root (env `NEBULA_RESULTS_DIR`
/// overrides).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("NEBULA_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Pretty-prints a row of fixed-width columns.
pub fn print_row(cols: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{:<width$}", c, width = w + 2));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_rows_in_paper_order() {
        let rows = TaskRow::table1_rows();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].task, TaskPreset::Har);
        assert_eq!(rows[1].partition_label(), "m=2");
        assert_eq!(rows[6].partition_label(), "m=10");
    }

    #[test]
    fn worlds_build_for_every_row_at_quick_scale() {
        for row in TaskRow::table1_rows() {
            let world = row.world(Scale::quick(), Some(0.5), 1);
            assert_eq!(world.num_devices(), Scale::quick().devices);
        }
    }

    #[test]
    fn strategy_config_tracks_scale() {
        let row = TaskRow::table1_rows()[1];
        let cfg = row.strategy_config(Scale::quick());
        assert_eq!(cfg.rounds_per_step, Scale::quick().rounds_per_step);
        cfg.modular.validate();
    }

    #[test]
    fn emit_record_appends_jsonl() {
        #[derive(Serialize)]
        struct R {
            x: u32,
        }
        let dir = std::env::temp_dir().join(format!("nebula-results-test-{}", std::process::id()));
        // Env var scoping: this is the only test touching NEBULA_RESULTS_DIR.
        std::env::set_var("NEBULA_RESULTS_DIR", &dir);
        emit_record("unit_test", &R { x: 1 });
        emit_record("unit_test", &R { x: 2 });
        let text = std::fs::read_to_string(dir.join("unit_test.jsonl")).unwrap();
        std::env::remove_var("NEBULA_RESULTS_DIR");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"x":1}"#);
        assert_eq!(lines[1], r#"{"x":2}"#);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drift_kind_follows_partition_type() {
        let har = TaskRow { task: TaskPreset::Har, skew_m: None };
        assert!(matches!(har.drift(0.5, 1).kind, DriftKind::ContextShift));
        let c10 = TaskRow { task: TaskPreset::Cifar10, skew_m: Some(2) };
        assert!(matches!(c10.drift(0.5, 1).kind, DriftKind::ClassShift { m: 2, .. }));
    }
}
