//! Seeded network-chaos harness for the serving plane (DESIGN.md §16):
//! five failure scenarios, each driving the same toy Nebula run the
//! serving-plane tests pin through a live coordinator/worker deployment
//! over Unix-domain sockets while a seeded [`nebula_serve::NetFaultPlan`]
//! breaks the links on purpose:
//!
//! * `kill_worker`      — a worker's link dies mid-run; its jobs
//!   reassign under the retry budget and the worker rejoins.
//! * `stall_worker`     — a worker goes half-open (mute, socket open);
//!   liveness pings evict it well under the round deadline.
//! * `flaky_link`       — a lossy/duplicating link; lost results degrade
//!   to `link_dropped` fates and every job resolves exactly once.
//! * `hedge_slow_worker`— a crawling worker; hedged re-dispatch rescues
//!   the round and the late originals are absorbed as duplicates.
//! * `kill_coordinator` — the coordinator is killed after a round
//!   commits (durable journal); workers rejoin the next incarnation and
//!   the resumed run lands on the uninterrupted bits.
//!
//! Every fault roll derives from the scenario seed and the outbound
//! frame index, so the whole grid is deterministic: `--check` runs it
//! twice and fails on any divergence between the two passes (or any
//! scenario failing its own invariants). The deterministic scorecard —
//! scenario, seed, pass, trajectory digest, fate accounting — goes to
//! `BENCH_CHAOS.json`; per-scenario wall-clock (not deterministic, not
//! gated) rides along in `results/serve_chaos.jsonl`.
//!
//! Usage: `serve_chaos [--quick] [--check]`.
//! `--quick` drops to 2 rounds per scenario for CI.

use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use nebula_data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_nn::Layer;
use nebula_serve::worker::{run_worker, WorkerConfig};
use nebula_serve::{Coordinator, Endpoint, NetFaultPlan, ServeConfig, WorkerRunConfig};
use nebula_sim::strategy::StrategyConfig;
use nebula_sim::{
    AdaptStrategy, ChaosControl, DurabilityConfig, ExperimentConfig, KillSpot, NebulaStrategy,
    ResourceSampler, RunError, Runner, SimWorld,
};
use nebula_tensor::NebulaRng;
use serde::Serialize;

/// One scenario's deterministic outcome — everything in here must be
/// identical across two runs of the same grid, which is exactly what
/// `--check` asserts.
#[derive(Clone, Debug, Serialize, PartialEq)]
struct ScenarioRecord {
    scenario: String,
    seed: u64,
    rounds: usize,
    pass: bool,
    /// FNV-1a fold of the final cloud parameter bit patterns.
    digest: String,
    /// Whole-run fate accounting: every dispatched job resolves into
    /// exactly one of these.
    participated: u64,
    link_dropped: u64,
    /// Deterministic invariant failures (empty when `pass`).
    notes: Vec<String>,
}

#[derive(Serialize)]
struct CheckVerdict {
    passed: bool,
    failures: Vec<String>,
}

#[derive(Serialize)]
struct Summary {
    suite: String,
    mode: String,
    scenarios: Vec<ScenarioRecord>,
    check: Option<CheckVerdict>,
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The serving-plane toy pin (same as `serve_sweep` and the
/// nebula-serve integration tests).
fn toy_cfg() -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = 4;
    cfg.rounds_per_step = 1;
    cfg.pretrain_epochs = 1;
    cfg.proxy_samples = 100;
    cfg.local_epochs = 1;
    cfg
}

fn toy_world() -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(8, Partitioner::LabelSkew { m: 2 });
    SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), 5)
}

fn fnv_digest(params: &[f32]) -> u64 {
    params
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, p| (h ^ p.to_bits() as u64).wrapping_mul(0x1000_0000_01b3))
}

/// The undisturbed trajectory the fault-tolerant scenarios must land
/// on: digest plus fate accounting of an in-process run.
struct Baseline {
    digest: u64,
    participated: u64,
    link_dropped: u64,
}

fn inproc_baseline(rounds: usize) -> Baseline {
    let mut world = toy_world();
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    let mut rng = NebulaRng::seed(3);
    let (mut participated, mut link_dropped) = (0u64, 0u64);
    for _ in 0..rounds {
        let out = s.single_round(&mut world, &mut rng);
        participated += out.stats.faults.participated;
        link_dropped += out.stats.faults.link_dropped;
    }
    Baseline { digest: fnv_digest(&s.cloud().model().param_vector()), participated, link_dropped }
}

/// Per-deployment knobs a scenario turns.
struct DeployOpts {
    tag: String,
    /// One worker per entry; `Some` arms that worker's chaos plan.
    workers: Vec<Option<NetFaultPlan>>,
    threads: usize,
    liveness_ms: u64,
    hedge_ms: u64,
    deadline_ms: u64,
}

struct Deployment {
    coordinator: Coordinator,
    path: std::path::PathBuf,
    workers: Vec<thread::JoinHandle<()>>,
}

fn deploy(opts: DeployOpts) -> Deployment {
    let worker_cfg = WorkerRunConfig { modular: Some(toy_cfg().modular), ..WorkerRunConfig::default() };
    let mut cfg = ServeConfig::new(worker_cfg);
    let path = std::env::temp_dir().join(format!("serve-chaos-{}-{}.sock", opts.tag, std::process::id()));
    cfg.uds = Some(path.clone());
    cfg.deadline_ms = opts.deadline_ms;
    cfg.liveness_timeout_ms = opts.liveness_ms;
    cfg.hedge_after_ms = opts.hedge_ms;
    let coordinator = Coordinator::bind(cfg).expect("bind coordinator");
    let n = opts.workers.len();
    let threads = opts.threads;
    let workers = opts
        .workers
        .into_iter()
        .enumerate()
        .map(|(i, chaos)| {
            let ep = Endpoint::Uds(path.clone());
            thread::spawn(move || {
                let mut wc = WorkerConfig::new(ep);
                wc.name = format!("chaos-w{i}");
                wc.threads = threads;
                wc.chaos = chaos;
                let armed = wc.chaos.is_some();
                if armed {
                    // Fail the re-dial fast: a chaos-killed link near the
                    // end of the run leaves this worker mid-rejoin when
                    // the deployment tears down, and the full dial budget
                    // would stall teardown for a minute.
                    wc.connect_attempts = 4;
                }
                match run_worker(wc) {
                    Ok(_) => {}
                    // Expected for a chaos-armed worker racing teardown:
                    // the socket path is already unlinked, the rejoin
                    // loop exhausts its dial budget and reports Io.
                    Err(nebula_serve::ServeError::Io(why)) if armed && why.contains("connect") => {}
                    Err(e) => panic!("chaos worker died: {e}"),
                }
            })
        })
        .collect();
    assert!(coordinator.wait_for_workers(n, Duration::from_secs(30)), "chaos workers must register");
    Deployment { coordinator, path, workers }
}

impl Deployment {
    fn teardown(self) {
        self.coordinator.shutdown();
        for w in self.workers {
            w.join().expect("chaos worker thread");
        }
    }
}

/// Runs `rounds` through `deployment` and folds the outcome into a
/// record, checking the shared invariants every fault-tolerant scenario
/// holds: baseline bits, zero dropped fates, full participation.
fn run_against(
    scenario: &str,
    seed: u64,
    rounds: usize,
    base: &Baseline,
    deployment: &Deployment,
    extra_notes: impl FnOnce(&nebula_sim::RoundStats) -> Vec<String>,
) -> ScenarioRecord {
    let mut world = toy_world();
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    s.set_transport(Box::new(deployment.coordinator.transport()));
    let mut rng = NebulaRng::seed(3);
    let mut stats = nebula_sim::RoundStats::default();
    for _ in 0..rounds {
        let out = s.single_round(&mut world, &mut rng);
        stats.merge(&out.stats);
    }
    let digest = fnv_digest(&s.cloud().model().param_vector());
    let mut notes = Vec::new();
    if digest != base.digest {
        notes.push(format!("trajectory diverged: digest {digest:016x} != baseline {:016x}", base.digest));
    }
    if stats.faults.link_dropped != base.link_dropped {
        notes.push(format!(
            "{} jobs degraded to link_dropped; baseline has {}",
            stats.faults.link_dropped, base.link_dropped
        ));
    }
    if stats.faults.participated != base.participated {
        notes.push(format!("participation {} != baseline {}", stats.faults.participated, base.participated));
    }
    notes.extend(extra_notes(&stats));
    ScenarioRecord {
        scenario: scenario.into(),
        seed,
        rounds,
        pass: notes.is_empty(),
        digest: format!("{digest:016x}"),
        participated: stats.faults.participated,
        link_dropped: stats.faults.link_dropped,
        notes,
    }
}

/// A worker's link dies mid-run (frame-counted kill): its in-flight
/// jobs reassign under the retry budget, it rejoins on a clean link,
/// and the trajectory stays on the baseline bits.
fn kill_worker(rounds: usize, base: &Baseline) -> ScenarioRecord {
    let seed = 11;
    let plan = NetFaultPlan { kill_after: Some(2), once: true, ..NetFaultPlan::seeded(seed) };
    let d = deploy(DeployOpts {
        tag: "kill".into(),
        workers: vec![None, Some(plan)],
        threads: 2,
        liveness_ms: 0,
        hedge_ms: 0,
        deadline_ms: 60_000,
    });
    let rec = run_against("kill_worker", seed, rounds, base, &d, |_| Vec::new());
    d.teardown();
    rec
}

/// A worker goes half-open (socket up, process mute): liveness pings go
/// unanswered and the coordinator evicts it well under the deadline
/// instead of stalling the round barrier.
fn stall_worker(rounds: usize, base: &Baseline) -> ScenarioRecord {
    let seed = 12;
    let plan = NetFaultPlan { stall_after: Some(2), once: true, ..NetFaultPlan::seeded(seed) };
    let deadline_ms = 60_000;
    let d = deploy(DeployOpts {
        tag: "stall".into(),
        workers: vec![None, Some(plan)],
        threads: 2,
        liveness_ms: 1_000,
        hedge_ms: 0,
        deadline_ms,
    });
    let start = Instant::now();
    let mut rec = run_against("stall_worker", seed, rounds, base, &d, |_| Vec::new());
    let elapsed = start.elapsed();
    // Eviction must beat the deadline by a wide margin — a stalled
    // worker costing `deadline_ms` per round is exactly the failure
    // liveness exists to prevent. Wall-clock, but with a 30x margin the
    // bound only trips when liveness is genuinely broken.
    if elapsed > Duration::from_millis(deadline_ms / 2) {
        rec.notes.push(format!(
            "{} rounds took {:.1}s against a {}s deadline: eviction is not beating the barrier",
            rounds,
            elapsed.as_secs_f64(),
            deadline_ms / 1000
        ));
        rec.pass = false;
    }
    d.teardown();
    rec
}

/// A lossy, duplicating link on the only worker: dropped results
/// degrade to `link_dropped` fates at the deadline, duplicated frames
/// are absorbed, and every job resolves exactly once. Single worker,
/// one executor thread, liveness and hedging off — the outbound frame
/// sequence (and so every seeded fault roll) is fully deterministic.
fn flaky_link(rounds: usize) -> ScenarioRecord {
    // Quick mode's 2 rounds push only ~8 frames through the lossy link --
    // too few for 25% rolls to reliably engage. Floor the scenario at 4
    // rounds so the dropped-frame invariant stays meaningful at any scale.
    let rounds = rounds.max(4);
    let seed = 13;
    let plan = NetFaultPlan { drop_prob: 0.25, dup_prob: 0.25, ..NetFaultPlan::seeded(seed) };
    let d = deploy(DeployOpts {
        tag: "flaky".into(),
        workers: vec![Some(plan)],
        threads: 1,
        liveness_ms: 0,
        hedge_ms: 0,
        // Wide enough that the only way a job misses the deadline is a
        // dropped result frame — execution time never competes.
        deadline_ms: 2_000,
    });
    let mut world = toy_world();
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    s.set_transport(Box::new(d.coordinator.transport()));
    let mut rng = NebulaRng::seed(3);
    let mut stats = nebula_sim::RoundStats::default();
    for _ in 0..rounds {
        let out = s.single_round(&mut world, &mut rng);
        stats.merge(&out.stats);
    }
    let digest = fnv_digest(&s.cloud().model().param_vector());
    let mut notes = Vec::new();
    let jobs = (rounds * 4) as u64;
    // The accounting identity: participation + dropped fates covers the
    // dispatched jobs exactly — no job lost twice, none resolved twice.
    if stats.faults.participated + stats.faults.link_dropped != jobs {
        notes.push(format!(
            "fate accounting leaks: {} participated + {} dropped != {jobs} dispatched",
            stats.faults.participated, stats.faults.link_dropped
        ));
    }
    if stats.faults.link_dropped == 0 {
        notes.push("a 25% lossy link dropped nothing: chaos is not engaging".into());
    }
    d.teardown();
    ScenarioRecord {
        scenario: "flaky_link".into(),
        seed,
        rounds,
        pass: notes.is_empty(),
        digest: format!("{digest:016x}"),
        participated: stats.faults.participated,
        link_dropped: stats.faults.link_dropped,
        notes,
    }
}

/// A crawling worker (every outbound frame delayed past the hedge
/// trigger): speculative re-dispatch rescues its jobs onto the fast
/// worker and the round resolves early on baseline bits.
fn hedge_slow_worker(rounds: usize, base: &Baseline) -> ScenarioRecord {
    let seed = 14;
    let plan = NetFaultPlan { delay_ms: 1_000, ..NetFaultPlan::seeded(seed) };
    let d = deploy(DeployOpts {
        tag: "hedge".into(),
        workers: vec![None, Some(plan)],
        threads: 2,
        liveness_ms: 0,
        hedge_ms: 150,
        deadline_ms: 60_000,
    });
    let rec = run_against("hedge_slow_worker", seed, rounds, base, &d, |_| Vec::new());
    d.teardown();
    rec
}

/// The coordinator is killed after a round's journal append commits;
/// the workers outlive it, rejoin the next incarnation on the same
/// socket path, and the resumed durable run must land on the exact bits
/// of an uninterrupted in-process run.
fn kill_coordinator(rounds: usize) -> ScenarioRecord {
    let seed = 15;
    let kill_round = (rounds as u64 / 2).max(1);
    let exp = ExperimentConfig { eval_devices: 3, seed: 11 };
    const TARGET: f32 = 1.01; // unreachable: the run is "exactly N rounds"

    let base = {
        let mut world = toy_world();
        let mut s = NebulaStrategy::new(toy_cfg(), 1);
        let out = Runner::new(&mut world, &mut s)
            .config(exp)
            .target(TARGET, rounds, 1)
            .run()
            .expect("in-process baseline");
        (out.rounds, out.final_accuracy.to_bits(), fnv_digest(&s.cloud().model().param_vector()))
    };

    let dir = std::env::temp_dir().join(format!("serve-chaos-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let first = deploy(DeployOpts {
        tag: "crash".into(),
        workers: vec![None, None],
        threads: 2,
        liveness_ms: 0,
        hedge_ms: 0,
        deadline_ms: 60_000,
    });
    let path = first.path.clone();
    {
        let mut world = toy_world();
        let mut s = NebulaStrategy::new(toy_cfg(), 1);
        let err = Runner::new(&mut world, &mut s)
            .config(exp)
            .target(TARGET, rounds, 1)
            .durable(DurabilityConfig::new(&dir))
            .chaos(ChaosControl { kill: Some((kill_round, KillSpot::AfterAppend)) })
            .transport(Box::new(first.coordinator.transport()))
            .run()
            .expect_err("the armed kill must fire");
        assert_eq!(err, RunError::Killed { round: kill_round }, "unexpected run error");
    }
    // Crash semantics: no shutdown notices, connections slammed shut.
    // The workers' rejoin loops now dial the unlinked path until the
    // second incarnation binds it.
    first.coordinator.abort();

    let worker_cfg = WorkerRunConfig { modular: Some(toy_cfg().modular), ..WorkerRunConfig::default() };
    let mut cfg = ServeConfig::new(worker_cfg);
    cfg.uds = Some(path);
    cfg.deadline_ms = 60_000;
    let second = Coordinator::bind(cfg).expect("rebind coordinator");
    assert!(
        second.wait_for_workers(2, Duration::from_secs(30)),
        "workers must rejoin the second incarnation"
    );

    let mut notes = Vec::new();
    let mut world = toy_world();
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    let resumed = Runner::new(&mut world, &mut s)
        .config(exp)
        .target(TARGET, rounds, 1)
        .durable(DurabilityConfig::new(&dir))
        .transport(Box::new(second.transport()))
        .resume()
        .run()
        .expect("resumed run completes");
    let digest = fnv_digest(&s.cloud().model().param_vector());
    if resumed.rounds != base.0 {
        notes.push(format!("round count diverged: resumed {} != baseline {}", resumed.rounds, base.0));
    }
    if resumed.final_accuracy.to_bits() != base.1 {
        notes.push("final accuracy bits diverged across the crash".into());
    }
    if digest != base.2 {
        notes.push(format!("trajectory diverged: digest {digest:016x} != baseline {:016x}", base.2));
    }

    second.shutdown();
    for w in first.workers {
        w.join().expect("chaos worker thread");
    }
    let _ = std::fs::remove_dir_all(&dir);
    ScenarioRecord {
        scenario: "kill_coordinator".into(),
        seed,
        rounds,
        pass: notes.is_empty(),
        digest: format!("{digest:016x}"),
        participated: resumed.stats.faults.participated,
        link_dropped: resumed.stats.faults.link_dropped,
        notes,
    }
}

/// One full pass over the grid; `--check` runs two and diffs them.
fn run_grid(rounds: usize, walls: &mut Vec<f64>) -> Vec<ScenarioRecord> {
    let base = inproc_baseline(rounds);
    let mut records = Vec::new();
    type Scenario<'a> = (&'a str, Box<dyn Fn() -> ScenarioRecord + 'a>);
    let fns: Vec<Scenario> = vec![
        ("kill_worker", Box::new(|| kill_worker(rounds, &base))),
        ("stall_worker", Box::new(|| stall_worker(rounds, &base))),
        ("flaky_link", Box::new(|| flaky_link(rounds))),
        ("hedge_slow_worker", Box::new(|| hedge_slow_worker(rounds, &base))),
        ("kill_coordinator", Box::new(|| kill_coordinator(rounds))),
    ];
    for (name, f) in fns {
        let start = Instant::now();
        let rec = f();
        let wall = start.elapsed().as_secs_f64() * 1e3;
        walls.push(wall);
        println!(
            "{:>18}  {}  digest {}  participated {:>3}  dropped {:>2}  {:>8.0} ms",
            name,
            if rec.pass { "pass" } else { "FAIL" },
            rec.digest,
            rec.participated,
            rec.link_dropped,
            wall
        );
        for n in &rec.notes {
            eprintln!("{name}: {n}");
        }
        records.push(rec);
    }
    records
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let mode = if quick { "quick" } else { "full" };
    let rounds = if quick { 2 } else { 4 };

    let mut walls = Vec::new();
    let records = run_grid(rounds, &mut walls);

    let verdict = if check {
        let mut failures: Vec<String> = records
            .iter()
            .filter(|r| !r.pass)
            .map(|r| format!("{}: {}", r.scenario, r.notes.join("; ")))
            .collect();
        println!("check: re-running the grid to verify determinism");
        let second = run_grid(rounds, &mut Vec::new());
        for (a, b) in records.iter().zip(&second) {
            if a != b {
                failures.push(format!(
                    "{}: two runs of the same seeded grid disagree ({a:?} vs {b:?})",
                    a.scenario
                ));
            }
        }
        Some(CheckVerdict { passed: failures.is_empty(), failures })
    } else {
        None
    };

    let root = repo_root();
    let jsonl: String = records
        .iter()
        .zip(&walls)
        .map(|(r, wall)| {
            // Splice the (non-deterministic, ungated) wall-clock into the
            // serialized record by hand — the vendored serde_json has no
            // Value manipulation.
            let body = serde_json::to_string(r).expect("record serializes");
            format!("{},\"wall_ms\":{wall:.1}}}", &body[..body.len() - 1])
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    let jsonl_path = root.join("results/serve_chaos.jsonl");
    std::fs::write(&jsonl_path, jsonl).expect("write results/serve_chaos.jsonl");
    println!("wrote {}", jsonl_path.display());

    let summary =
        Summary { suite: "serve_chaos".into(), mode: mode.into(), scenarios: records, check: verdict };
    let json_path = root.join("BENCH_CHAOS.json");
    std::fs::write(&json_path, serde_json::to_string(&summary).expect("summary serializes"))
        .expect("write BENCH_CHAOS.json");
    println!("wrote {}", json_path.display());

    match &summary.check {
        Some(v) if !v.passed => {
            for f in &v.failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
        Some(_) => println!("check passed: every scenario holds and the grid is deterministic"),
        None => {
            if summary.scenarios.iter().any(|r| !r.pass) {
                std::process::exit(1);
            }
        }
    }
}
