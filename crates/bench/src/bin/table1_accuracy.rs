//! **Table 1** — model accuracy of Nebula and the baselines after one
//! adaptation step, over the paper's seven task rows.
//!
//! Protocol (paper §6.2): 30% of the data acts as the cloud proxy for
//! pre-training (our synthesiser generates the proxy directly), the rest
//! is distributed to devices as newly-collected data; collaborative
//! methods run `rounds_per_step` rounds of 25 devices × 3 local epochs;
//! on-device methods fine-tune 10 epochs; accuracy is the mean per-device
//! top-1 on local test sets.
//!
//! Run: `cargo run --release -p nebula-bench --bin table1_accuracy [--quick]`

use nebula_bench::{emit_record, print_row, Scale, TaskRow};
use nebula_sim::experiment::{run_adaptation_step, ExperimentConfig};
use nebula_sim::{
    AdaptStrategy, AdaptiveNetStrategy, FedAvgStrategy, HeteroFlStrategy, LocalAdaptStrategy, NebulaStrategy,
    NoAdaptStrategy,
};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    task: String,
    model: String,
    partition: String,
    strategy: String,
    accuracy: f32,
    comm_bytes: u64,
}

fn main() {
    let scale = Scale::from_args();
    let seed = 42u64;
    println!("Table 1: model accuracy (%) after an adaptation step");
    println!("scale: {scale:?}\n");
    let widths = [14usize, 10, 10, 7, 7, 7, 7, 7, 7];
    print_row(
        ["Task", "Model", "Partition", "NA", "LA", "AN", "FA", "HFL", "Nebula"].map(String::from).as_ref(),
        &widths,
    );

    for row in TaskRow::table1_rows() {
        let cfg = row.strategy_config(scale);
        let strategies: Vec<Box<dyn AdaptStrategy>> = vec![
            Box::new(NoAdaptStrategy::new(cfg.clone(), seed)),
            Box::new(LocalAdaptStrategy::new(cfg.clone(), seed)),
            Box::new(AdaptiveNetStrategy::new(cfg.clone(), seed)),
            Box::new(FedAvgStrategy::new(cfg.clone(), seed)),
            Box::new(HeteroFlStrategy::new(cfg.clone(), seed)),
            Box::new(NebulaStrategy::new(cfg.clone(), seed)),
        ];
        let mut accs = Vec::new();
        for mut s in strategies {
            // Fresh world per strategy: every system sees the same device
            // population (same seeds) and adapts from its own pre-training.
            let mut world = row.world(scale, None, seed);
            let out = run_adaptation_step(
                s.as_mut(),
                &mut world,
                &ExperimentConfig { eval_devices: scale.eval_devices, seed },
            );
            emit_record(
                "table1",
                &Record {
                    experiment: "table1",
                    task: row.task.name().to_string(),
                    model: row.task.model_name().to_string(),
                    partition: row.partition_label(),
                    strategy: out.strategy.clone(),
                    accuracy: out.accuracy_after * 100.0,
                    comm_bytes: out.comm_total_bytes,
                },
            );
            accs.push(out.accuracy_after * 100.0);
        }
        let mut cols =
            vec![row.task.name().to_string(), row.task.model_name().to_string(), row.partition_label()];
        cols.extend(accs.iter().map(|a| format!("{a:.2}")));
        print_row(&cols, &widths);
    }
}
