//! Tracked performance suite for the kernel layer and the round loop.
//!
//! Times paper-shaped GEMMs (HAR/MLP, CIFAR/ResNet18 and VGG16 im2col
//! shapes) across the kernel-backend matrix — the retained pre-blocking
//! reference kernels, the scalar blocked engine, and the best SIMD engine
//! the host supports (`KernelBackend::Auto`) — reporting each case's
//! GFLOP/s against a measured per-engine peak, plus the int8 quantized
//! matmul, plus end-to-end `NebulaStrategy::single_round` throughput,
//! plus the wire transport (codec frame sizes and encode/decode
//! throughput on the CIFAR-10/ResNet18 preset, and measured per-round
//! bytes per codec), and writes machine-readable records to
//! `BENCH_KERNELS.json`, `BENCH_ROUND.json` and `BENCH_WIRE.json` at the
//! repository root.
//!
//! Usage: `perf_suite [--smoke]`. `--smoke` shrinks repetitions and the
//! round workload so CI can execute the whole suite in seconds; the
//! emitted JSON carries the mode so smoke numbers are never mistaken for
//! tracked ones.

use nebula_core::{modular_config_for, NebulaCloud, NebulaParams, ResourceProfile, WireConfig, WireContext};
use nebula_data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer, TaskPreset};
use nebula_modular::ModularConfig;
use nebula_sim::strategy::{AdaptStrategy, StrategyConfig};
use nebula_sim::{FaultPlan, NebulaStrategy, ResourceSampler, SimWorld};
use nebula_telemetry::{MemorySink, NullSink, Telemetry};
use nebula_tensor::gemm::int8;
use nebula_tensor::{resolved_backend, KernelBackend, NebulaRng, Tensor};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Which GEMM entry point a case exercises.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Variant {
    /// `a.matmul(b)`: (m,k)·(k,n).
    Nn,
    /// `a.matmul_nt(b)`: (m,k)·(n,k)ᵀ — the forward/im2col shape.
    Nt,
    /// `a.matmul_tn(b)`: (k,m)ᵀ·(k,n) — the weight-gradient shape.
    Tn,
}

impl Variant {
    fn label(self) -> &'static str {
        match self {
            Variant::Nn => "matmul",
            Variant::Nt => "matmul_nt",
            Variant::Tn => "matmul_tn",
        }
    }
}

struct GemmCase {
    /// Stable identifier for tracking across commits.
    name: &'static str,
    /// What paper workload this shape is taken from.
    origin: &'static str,
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
}

/// The tracked shapes. im2col turns a conv layer on a batch into one GEMM
/// of (batch · out_h · out_w) × (in_ch · kh · kw) times the weight matrix,
/// which is where the CIFAR/VGG shapes below come from.
fn gemm_cases() -> Vec<GemmCase> {
    vec![
        // HAR MLP (UCI-HAR, 561 features): batch forward + weight grad.
        GemmCase {
            name: "har_mlp_fwd",
            origin: "HAR MLP hidden layer forward, batch 32",
            variant: Variant::Nt,
            m: 32,
            n: 256,
            k: 561,
        },
        GemmCase {
            name: "har_mlp_dw",
            origin: "HAR MLP hidden layer weight grad, batch 32",
            variant: Variant::Tn,
            m: 561,
            n: 256,
            k: 32,
        },
        // CIFAR / ResNet18 3x3 conv via im2col: batch 4, 16x16 maps,
        // 64 -> 64 channels => m = 4*16*16, k = 64*9.
        GemmCase {
            name: "resnet18_conv3x3",
            origin: "ResNet18 3x3 conv (64ch, 16x16 maps, batch 4) im2col",
            variant: Variant::Nt,
            m: 1024,
            n: 64,
            k: 576,
        },
        GemmCase {
            name: "resnet18_conv3x3_dcols",
            origin: "ResNet18 3x3 conv input-gradient GEMM",
            variant: Variant::Nn,
            m: 1024,
            n: 576,
            k: 64,
        },
        // VGG16 conv3 block: 256 -> 256 channels on 28x28 maps, batch 2
        // => m = 2*28*28 = 1568, k = 256*9 = 2304.
        GemmCase {
            name: "vgg16_conv3",
            origin: "VGG16 conv3 (256ch, 28x28 maps, batch 2) im2col",
            variant: Variant::Nt,
            m: 1568,
            n: 256,
            k: 2304,
        },
        GemmCase {
            name: "vgg16_conv3_dw",
            origin: "VGG16 conv3 weight grad",
            variant: Variant::Tn,
            m: 2304,
            n: 256,
            k: 1568,
        },
    ]
}

/// Median of per-call times (seconds). Calibrates an inner-loop count so
/// each sample lasts long enough to be measurable, then takes `reps`
/// samples.
fn time_median(reps: usize, target_s: f64, mut f: impl FnMut()) -> f64 {
    // Warm-up + calibration call.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let inner = ((target_s / once).ceil() as usize).clamp(1, 10_000);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..inner {
            f();
        }
        samples.push(t.elapsed().as_secs_f64() / inner as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Measured per-engine throughput ceilings for the `pct_peak` columns.
struct Peaks {
    /// What `KernelBackend::Auto` resolves to on this host.
    simd_backend: KernelBackend,
    blocked_gflops: f64,
    simd_gflops: f64,
}

/// Calibrates each engine's peak on a hot cache-resident problem:
/// 960×256×256 — ten `MC_SIMD` row blocks swept over a single `NC`×`KC`
/// packed `B` panel, so the panel stays L2-resident and its packing cost
/// amortises away. This times the micro-kernel's sustainable FMA rate
/// rather than memory traffic. Because shared CI hosts drift over a
/// run, the final ceiling each case is scored against is the *greater*
/// of this probe and the best rate any tracked case sustained on that
/// engine (see `main`), so `pct_peak` is ≤100 by construction.
fn calibrate_peaks(target_s: f64) -> Peaks {
    let simd_backend = {
        let _g = KernelBackend::Auto.scoped();
        resolved_backend()
    };
    let probe = |backend: KernelBackend| {
        let _g = backend.scoped();
        let (m, n, k) = (960usize, 256usize, 256usize);
        let mut rng = NebulaRng::seed(7);
        let a = Tensor::from_vec((0..m * k).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[m, k]);
        let b = Tensor::from_vec((0..n * k).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[n, k]);
        let mut out = Tensor::zeros(&[m, n]);
        let t = time_median(5, target_s, || a.matmul_nt_into(&b, &mut out));
        2.0 * m as f64 * n as f64 * k as f64 / t / 1e9
    };
    Peaks { simd_backend, blocked_gflops: probe(KernelBackend::Blocked), simd_gflops: probe(simd_backend) }
}

struct KernelRow {
    name: &'static str,
    origin: &'static str,
    variant: &'static str,
    m: usize,
    n: usize,
    k: usize,
    reference_ms: f64,
    blocked_ms: f64,
    simd_ms: f64,
    /// reference / blocked — the historically tracked blocking win.
    speedup: f64,
    /// blocked / simd — what the vector engine buys over scalar blocked.
    simd_speedup: f64,
    blocked_gflops: f64,
    simd_gflops: f64,
    blocked_pct_peak: f64,
    simd_pct_peak: f64,
}

fn run_gemm_case(case: &GemmCase, reps: usize, target_s: f64) -> KernelRow {
    let (m, n, k) = (case.m, case.n, case.k);
    let mut rng = NebulaRng::seed(11);
    let fill = |r: usize, c: usize, rng: &mut NebulaRng| {
        Tensor::from_vec((0..r * c).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[r, c])
    };
    let (a, b) = match case.variant {
        Variant::Nn => (fill(m, k, &mut rng), fill(k, n, &mut rng)),
        Variant::Nt => (fill(m, k, &mut rng), fill(n, k, &mut rng)),
        Variant::Tn => (fill(k, m, &mut rng), fill(k, n, &mut rng)),
    };
    let mut out = Tensor::zeros(&[m, n]);
    let mut run = |backend: KernelBackend| {
        let _g = backend.scoped();
        time_median(reps, target_s, || match case.variant {
            Variant::Nn => a.matmul_into(&b, &mut out),
            Variant::Nt => a.matmul_nt_into(&b, &mut out),
            Variant::Tn => a.matmul_tn_into(&b, &mut out),
        })
    };
    let reference_s = run(KernelBackend::Reference);
    let blocked_s = run(KernelBackend::Blocked);
    let simd_s = run(KernelBackend::Auto);
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let blocked_gflops = flops / blocked_s / 1e9;
    let simd_gflops = flops / simd_s / 1e9;
    KernelRow {
        name: case.name,
        origin: case.origin,
        variant: case.variant.label(),
        m,
        n,
        k,
        reference_ms: reference_s * 1e3,
        blocked_ms: blocked_s * 1e3,
        simd_ms: simd_s * 1e3,
        speedup: reference_s / blocked_s,
        simd_speedup: blocked_s / simd_s,
        blocked_gflops,
        simd_gflops,
        // Filled in by `main` once the per-engine ceilings are final.
        blocked_pct_peak: 0.0,
        simd_pct_peak: 0.0,
    }
}

struct Int8Row {
    m: usize,
    n: usize,
    k: usize,
    int8_ms: f64,
    /// Integer multiply-add throughput, counting 2·m·n·k ops like f32.
    gops: f64,
    speedup_vs_blocked: f64,
    speedup_vs_simd: f64,
}

/// Times the quantize-free steady state of the int8 path — pre-quantized
/// operands, `matmul_nt_dequant` per call — on the largest tracked
/// forward shape, against that shape's f32 engines.
fn run_int8_case(reps: usize, target_s: f64, f32_row: &KernelRow) -> Int8Row {
    let (m, n, k) = (f32_row.m, f32_row.n, f32_row.k);
    let mut rng = NebulaRng::seed(11);
    let af: Vec<f32> = (0..m * k).map(|_| rng.normal_f32(0.0, 1.0)).collect();
    let bf: Vec<f32> = (0..n * k).map(|_| rng.normal_f32(0.0, 1.0)).collect();
    let (aq, sa) = int8::quantize(&af);
    let (bq, sb) = int8::quantize(&bf);
    let mut out = vec![0.0f32; m * n];
    let t = time_median(reps, target_s, || int8::matmul_nt_dequant(&mut out, m, n, k, &aq, sa, &bq, sb));
    let int8_ms = t * 1e3;
    Int8Row {
        m,
        n,
        k,
        int8_ms,
        gops: 2.0 * m as f64 * n as f64 * k as f64 / t / 1e9,
        speedup_vs_blocked: f32_row.blocked_ms / int8_ms,
        speedup_vs_simd: f32_row.simd_ms / int8_ms,
    }
}

fn toy_world(devices: usize, seed: u64) -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(devices, Partitioner::LabelSkew { m: 2 });
    SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), seed)
}

fn round_cfg(smoke: bool) -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = if smoke { 3 } else { 6 };
    cfg.rounds_per_step = 2;
    cfg.pretrain_epochs = if smoke { 1 } else { 2 };
    cfg.proxy_samples = if smoke { 100 } else { 400 };
    cfg
}

/// Runs `rounds` fault-free Nebula rounds under a pinned kernel backend
/// and returns seconds per round.
fn time_rounds(rounds: usize, smoke: bool, backend: KernelBackend) -> f64 {
    let _g = backend.scoped();
    time_rounds_with(rounds, smoke, Telemetry::off())
}

/// Same round loop with a telemetry handle attached (ambient backend).
/// With a [`NullSink`] the handle disarms, so this measures the cost the
/// instrumentation seams add to an untraced round; with an armed sink it
/// measures full span/metric/event collection.
fn time_rounds_with(rounds: usize, smoke: bool, telemetry: Telemetry) -> f64 {
    let mut world = toy_world(if smoke { 6 } else { 10 }, 5);
    world.set_fault_plan(FaultPlan::none());
    let mut s = NebulaStrategy::new(round_cfg(smoke), 1);
    s.set_telemetry(telemetry);
    let mut rng = NebulaRng::seed(3);
    // One warm-up round outside the timer (first round pays pretraining).
    s.single_round(&mut world, &mut rng);
    let t = Instant::now();
    for _ in 0..rounds {
        s.single_round(&mut world, &mut rng);
    }
    t.elapsed().as_secs_f64() / rounds as f64
}

struct WireRow {
    codec: &'static str,
    /// Planning-model size of the sub-model payload (4 bytes/param).
    analytic_bytes: u64,
    /// First frame to a device with no transport state.
    cold_frame_bytes: u64,
    /// Steady-state frame once baselines are acknowledged.
    warm_frame_bytes: u64,
    reduction_cold: f64,
    reduction_warm: f64,
    encode_ms: f64,
    decode_ms: f64,
    /// Payload parameter volume moved per second of encode/decode.
    encode_mib_s: f64,
    decode_mib_s: f64,
}

/// Codec frame sizes and encode/decode throughput for the paper's
/// CIFAR-10/ResNet18 preset: an unconstrained sub-model payload cut from
/// the 4-layer, 16-modules-per-layer cloud model.
fn wire_rows(reps: usize, target_s: f64) -> Vec<WireRow> {
    let cfg = modular_config_for(TaskPreset::Cifar10);
    let cloud = NebulaCloud::new(cfg.clone(), NebulaParams::default(), 7);
    let uniform = vec![vec![1.0 / cfg.modules_per_layer as f32; cfg.modules_per_layer]; cfg.num_layers];
    let spec = cloud.derive_for_importance(&uniform, &ResourceProfile::unconstrained(), None).spec;
    let payload = cloud.dispatch(&spec);
    let analytic = payload.bytes();

    let cases: [(&'static str, WireConfig); 3] = [
        ("raw", WireConfig::raw()),
        ("delta_fp32", WireConfig::delta(0.0)),
        ("quant_int8", WireConfig::int8()),
    ];
    cases
        .iter()
        .map(|&(codec, wc)| {
            let mut ctx = WireContext::new(wc);
            ctx.commit_model(cloud.model());
            let mut buf = Vec::new();
            let cold_frame_bytes = ctx.encode_payload(0, &payload, &mut buf) as u64;
            ctx.decode_payload(0, &buf).expect("cold frame decodes");
            let warm_frame_bytes = ctx.encode_payload(0, &payload, &mut buf) as u64;
            ctx.decode_payload(0, &buf).expect("warm frame decodes");
            // Steady-state timing: repeated exchanges with the same device.
            let encode_s = time_median(reps, target_s, || {
                ctx.encode_payload(0, &payload, &mut buf);
            });
            ctx.encode_payload(0, &payload, &mut buf);
            let decode_s = time_median(reps, target_s, || {
                ctx.decode_payload(0, &buf).expect("bench frame decodes");
            });
            let mib = analytic as f64 / (1024.0 * 1024.0);
            WireRow {
                codec,
                analytic_bytes: analytic,
                cold_frame_bytes,
                warm_frame_bytes,
                reduction_cold: analytic as f64 / cold_frame_bytes.max(1) as f64,
                reduction_warm: analytic as f64 / warm_frame_bytes.max(1) as f64,
                encode_ms: encode_s * 1e3,
                decode_ms: decode_s * 1e3,
                encode_mib_s: mib / encode_s,
                decode_mib_s: mib / decode_s,
            }
        })
        .collect()
}

/// Measured down+up bytes of fault-free Nebula rounds under a codec.
fn round_wire_bytes(rounds: usize, smoke: bool, wire: WireConfig) -> u64 {
    let mut world = toy_world(if smoke { 6 } else { 10 }, 5);
    world.set_fault_plan(FaultPlan::none());
    let mut cfg = round_cfg(smoke);
    cfg.wire = wire;
    let mut s = NebulaStrategy::new(cfg, 1);
    let mut rng = NebulaRng::seed(3);
    let mut total = 0u64;
    for _ in 0..rounds {
        let out = s.single_round(&mut world, &mut rng);
        total += out.stats.comm.down_bytes + out.stats.comm.up_bytes;
    }
    total
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    let (reps, target_s) = if smoke { (3, 0.01) } else { (5, 0.05) };

    let mut peaks = calibrate_peaks(target_s);
    println!("perf_suite mode={mode}");
    let mut rows: Vec<KernelRow> = gemm_cases().iter().map(|c| run_gemm_case(c, reps, target_s)).collect();
    // Final per-engine ceilings: the hot-cache probe, or the best rate a
    // tracked case sustained if the host sped up since calibration.
    for r in &rows {
        peaks.blocked_gflops = peaks.blocked_gflops.max(r.blocked_gflops);
        peaks.simd_gflops = peaks.simd_gflops.max(r.simd_gflops);
    }
    for r in &mut rows {
        r.blocked_pct_peak = 100.0 * r.blocked_gflops / peaks.blocked_gflops.max(1e-9);
        r.simd_pct_peak = 100.0 * r.simd_gflops / peaks.simd_gflops.max(1e-9);
    }
    println!(
        "simd backend: {} (peak {:.2} GF/s; blocked peak {:.2} GF/s)",
        peaks.simd_backend, peaks.simd_gflops, peaks.blocked_gflops
    );
    println!(
        "{:<24} {:>13} {:>9} {:>11} {:>9} {:>7} {:>8} {:>6}",
        "kernel", "m x n x k", "ref ms", "blocked ms", "simd ms", "simd x", "GF/s", "%peak"
    );
    for row in &rows {
        println!(
            "{:<24} {:>13} {:>9.3} {:>11.3} {:>9.3} {:>6.2}x {:>8.2} {:>5.1}%",
            row.name,
            format!("{}x{}x{}", row.m, row.n, row.k),
            row.reference_ms,
            row.blocked_ms,
            row.simd_ms,
            row.simd_speedup,
            row.simd_gflops,
            row.simd_pct_peak
        );
    }
    // int8 steady state on the largest tracked forward shape.
    let int8_base = rows.iter().find(|r| r.name == "vgg16_conv3").expect("tracked shape");
    let i8r = run_int8_case(reps, target_s, int8_base);
    println!(
        "int8 matmul_nt_dequant   {:>13} {:>9.3} ms {:>8.2} GOP/s ({:.2}x blocked f32, {:.2}x simd f32)",
        format!("{}x{}x{}", i8r.m, i8r.n, i8r.k),
        i8r.int8_ms,
        i8r.gops,
        i8r.speedup_vs_blocked,
        i8r.speedup_vs_simd
    );

    let kernel_json = {
        let mut items = Vec::new();
        for r in &rows {
            items.push(format!(
                concat!(
                    "    {{\"name\": \"{}\", \"origin\": \"{}\", \"variant\": \"{}\", ",
                    "\"m\": {}, \"n\": {}, \"k\": {},\n     ",
                    "\"reference_ms\": {:.4}, \"blocked_ms\": {:.4}, \"simd_ms\": {:.4}, ",
                    "\"speedup\": {:.3}, \"simd_speedup\": {:.3},\n     ",
                    "\"blocked_gflops\": {:.3}, \"simd_gflops\": {:.3}, ",
                    "\"blocked_pct_peak\": {:.1}, \"simd_pct_peak\": {:.1}}}"
                ),
                json_escape(r.name),
                json_escape(r.origin),
                r.variant,
                r.m,
                r.n,
                r.k,
                r.reference_ms,
                r.blocked_ms,
                r.simd_ms,
                r.speedup,
                r.simd_speedup,
                r.blocked_gflops,
                r.simd_gflops,
                r.blocked_pct_peak,
                r.simd_pct_peak
            ));
        }
        format!(
            concat!(
                "{{\n  \"mode\": \"{mode}\",\n  \"reps\": {reps},\n",
                "  \"simd_backend\": \"{simd}\",\n",
                "  \"peak_gflops\": {{\"blocked\": {pb:.3}, \"simd\": {ps:.3}}},\n",
                "  \"kernels\": [\n{items}\n  ],\n",
                "  \"int8\": {{\"m\": {im}, \"n\": {in_}, \"k\": {ik}, \"int8_ms\": {ims:.4}, ",
                "\"gops\": {gops:.3}, \"speedup_vs_blocked\": {svb:.3}, \"speedup_vs_simd\": {svs:.3}}}\n}}\n"
            ),
            mode = mode,
            reps = reps,
            simd = peaks.simd_backend,
            pb = peaks.blocked_gflops,
            ps = peaks.simd_gflops,
            items = items.join(",\n"),
            im = i8r.m,
            in_ = i8r.n,
            ik = i8r.k,
            ims = i8r.int8_ms,
            gops = i8r.gops,
            svb = i8r.speedup_vs_blocked,
            svs = i8r.speedup_vs_simd
        )
    };
    let kernels_path = repo_root().join("BENCH_KERNELS.json");
    std::fs::write(&kernels_path, kernel_json).expect("write BENCH_KERNELS.json");
    println!("wrote {}", kernels_path.display());

    // End-to-end round throughput across the backend matrix.
    let rounds = if smoke { 2 } else { 6 };
    println!("timing {rounds} fault-free rounds per kernel backend...");
    let reference_s = time_rounds(rounds, smoke, KernelBackend::Reference);
    let blocked_s = time_rounds(rounds, smoke, KernelBackend::Blocked);
    let auto_s = time_rounds(rounds, smoke, KernelBackend::Auto);
    let speedup = reference_s / blocked_s;
    let simd_round_speedup = blocked_s / auto_s;
    println!(
        "round loop: reference {:.1} ms/round, blocked {:.1} ms/round, {} {:.1} ms/round ({:.2}x blocked)",
        reference_s * 1e3,
        blocked_s * 1e3,
        peaks.simd_backend,
        auto_s * 1e3,
        simd_round_speedup
    );
    // Telemetry overhead: a NullSink disarms the handle (the acceptance
    // bar is <1% vs the uninstrumented loop); an armed MemorySink prices
    // full trace collection. Longer loops than the kernel comparison, and
    // a fresh same-length baseline, keep the deltas out of timer noise.
    let trounds = rounds * 3;
    let base_s = time_rounds_with(trounds, smoke, Telemetry::off());
    let null_s = time_rounds_with(trounds, smoke, Telemetry::new(Arc::new(NullSink)));
    let armed_s = time_rounds_with(trounds, smoke, Telemetry::new(Arc::new(MemorySink::new())));
    let null_overhead_pct = (null_s / base_s - 1.0) * 100.0;
    let armed_overhead_pct = (armed_s / base_s - 1.0) * 100.0;
    println!(
        "telemetry: null-sink {:.1} ms/round ({:+.2}%), armed memory-sink {:.1} ms/round ({:+.2}%)",
        null_s * 1e3,
        null_overhead_pct,
        armed_s * 1e3,
        armed_overhead_pct
    );
    let round_json = format!(
        concat!(
            "{{\n  \"mode\": \"{}\",\n  \"rounds\": {},\n",
            "  \"blocked_ms_per_round\": {:.3},\n  \"reference_ms_per_round\": {:.3},\n",
            "  \"simd_ms_per_round\": {:.3},\n  \"simd_backend\": \"{}\",\n",
            "  \"blocked_rounds_per_s\": {:.3},\n  \"speedup\": {:.3},\n  \"simd_speedup\": {:.3},\n",
            "  \"null_telemetry_ms_per_round\": {:.3},\n  \"null_telemetry_overhead_pct\": {:.3},\n",
            "  \"armed_telemetry_ms_per_round\": {:.3},\n  \"armed_telemetry_overhead_pct\": {:.3}\n}}\n"
        ),
        mode,
        rounds,
        blocked_s * 1e3,
        reference_s * 1e3,
        auto_s * 1e3,
        peaks.simd_backend,
        1.0 / blocked_s,
        speedup,
        simd_round_speedup,
        null_s * 1e3,
        null_overhead_pct,
        armed_s * 1e3,
        armed_overhead_pct
    );
    let round_path = repo_root().join("BENCH_ROUND.json");
    std::fs::write(&round_path, round_json).expect("write BENCH_ROUND.json");
    println!("wrote {}", round_path.display());

    // Wire transport: codec frame sizes + throughput on the CIFAR-10
    // preset, and measured per-round bytes per codec.
    println!(
        "\n{:<12} {:>12} {:>11} {:>11} {:>7} {:>7} {:>10} {:>10}",
        "codec", "analytic B", "cold B", "warm B", "x cold", "x warm", "enc MiB/s", "dec MiB/s"
    );
    let wires = wire_rows(reps, target_s);
    for w in &wires {
        println!(
            "{:<12} {:>12} {:>11} {:>11} {:>6.2}x {:>6.2}x {:>10.1} {:>10.1}",
            w.codec,
            w.analytic_bytes,
            w.cold_frame_bytes,
            w.warm_frame_bytes,
            w.reduction_cold,
            w.reduction_warm,
            w.encode_mib_s,
            w.decode_mib_s
        );
    }
    let wire_round_count = if smoke { 1 } else { 3 };
    println!("measuring {wire_round_count} Nebula round(s) per codec...");
    let raw_round = round_wire_bytes(wire_round_count, smoke, WireConfig::raw());
    let delta_round = round_wire_bytes(wire_round_count, smoke, WireConfig::delta(1e-4));
    let int8_round = round_wire_bytes(wire_round_count, smoke, WireConfig::int8());
    println!(
        "round bytes: raw {raw_round}, delta {delta_round}, int8 {int8_round} ({:.2}x reduction)",
        raw_round as f64 / int8_round.max(1) as f64
    );

    let wire_json = {
        let mut items = Vec::new();
        for w in &wires {
            items.push(format!(
                concat!(
                    "    {{\"codec\": \"{}\", \"analytic_bytes\": {}, \"cold_frame_bytes\": {}, ",
                    "\"warm_frame_bytes\": {}, \"reduction_cold\": {:.3}, \"reduction_warm\": {:.3}, ",
                    "\"encode_ms\": {:.4}, \"decode_ms\": {:.4}, ",
                    "\"encode_mib_s\": {:.2}, \"decode_mib_s\": {:.2}}}"
                ),
                w.codec,
                w.analytic_bytes,
                w.cold_frame_bytes,
                w.warm_frame_bytes,
                w.reduction_cold,
                w.reduction_warm,
                w.encode_ms,
                w.decode_ms,
                w.encode_mib_s,
                w.decode_mib_s
            ));
        }
        format!(
            concat!(
                "{{\n  \"mode\": \"{}\",\n  \"preset\": \"CIFAR10/ResNet18\",\n",
                "  \"codecs\": [\n{}\n  ],\n",
                "  \"rounds\": {{\"count\": {}, \"raw_bytes\": {}, \"delta_bytes\": {}, ",
                "\"int8_bytes\": {}, \"int8_reduction\": {:.3}}}\n}}\n"
            ),
            mode,
            items.join(",\n"),
            wire_round_count,
            raw_round,
            delta_round,
            int8_round,
            raw_round as f64 / int8_round.max(1) as f64
        )
    };
    let wire_path = repo_root().join("BENCH_WIRE.json");
    std::fs::write(&wire_path, wire_json).expect("write BENCH_WIRE.json");
    println!("wrote {}", wire_path.display());
}
