//! Tracked performance suite for the kernel layer and the round loop.
//!
//! Times paper-shaped GEMMs (HAR/MLP, CIFAR/ResNet18 and VGG16 im2col
//! shapes) under the blocked kernels vs the retained pre-blocking
//! reference kernels, plus end-to-end `NebulaStrategy::single_round`
//! throughput, and writes machine-readable records to `BENCH_KERNELS.json`
//! and `BENCH_ROUND.json` at the repository root.
//!
//! Usage: `perf_suite [--smoke]`. `--smoke` shrinks repetitions and the
//! round workload so CI can execute the whole suite in seconds; the
//! emitted JSON carries the mode so smoke numbers are never mistaken for
//! tracked ones.

use nebula_data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_sim::strategy::StrategyConfig;
use nebula_sim::{FaultPlan, NebulaStrategy, ResourceSampler, SimWorld};
use nebula_tensor::linalg::set_reference_kernels;
use nebula_tensor::{NebulaRng, Tensor};
use std::path::PathBuf;
use std::time::Instant;

/// Which GEMM entry point a case exercises.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Variant {
    /// `a.matmul(b)`: (m,k)·(k,n).
    Nn,
    /// `a.matmul_nt(b)`: (m,k)·(n,k)ᵀ — the forward/im2col shape.
    Nt,
    /// `a.matmul_tn(b)`: (k,m)ᵀ·(k,n) — the weight-gradient shape.
    Tn,
}

impl Variant {
    fn label(self) -> &'static str {
        match self {
            Variant::Nn => "matmul",
            Variant::Nt => "matmul_nt",
            Variant::Tn => "matmul_tn",
        }
    }
}

struct GemmCase {
    /// Stable identifier for tracking across commits.
    name: &'static str,
    /// What paper workload this shape is taken from.
    origin: &'static str,
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
}

/// The tracked shapes. im2col turns a conv layer on a batch into one GEMM
/// of (batch · out_h · out_w) × (in_ch · kh · kw) times the weight matrix,
/// which is where the CIFAR/VGG shapes below come from.
fn gemm_cases() -> Vec<GemmCase> {
    vec![
        // HAR MLP (UCI-HAR, 561 features): batch forward + weight grad.
        GemmCase {
            name: "har_mlp_fwd",
            origin: "HAR MLP hidden layer forward, batch 32",
            variant: Variant::Nt,
            m: 32,
            n: 256,
            k: 561,
        },
        GemmCase {
            name: "har_mlp_dw",
            origin: "HAR MLP hidden layer weight grad, batch 32",
            variant: Variant::Tn,
            m: 561,
            n: 256,
            k: 32,
        },
        // CIFAR / ResNet18 3x3 conv via im2col: batch 4, 16x16 maps,
        // 64 -> 64 channels => m = 4*16*16, k = 64*9.
        GemmCase {
            name: "resnet18_conv3x3",
            origin: "ResNet18 3x3 conv (64ch, 16x16 maps, batch 4) im2col",
            variant: Variant::Nt,
            m: 1024,
            n: 64,
            k: 576,
        },
        GemmCase {
            name: "resnet18_conv3x3_dcols",
            origin: "ResNet18 3x3 conv input-gradient GEMM",
            variant: Variant::Nn,
            m: 1024,
            n: 576,
            k: 64,
        },
        // VGG16 conv3 block: 256 -> 256 channels on 28x28 maps, batch 2
        // => m = 2*28*28 = 1568, k = 256*9 = 2304.
        GemmCase {
            name: "vgg16_conv3",
            origin: "VGG16 conv3 (256ch, 28x28 maps, batch 2) im2col",
            variant: Variant::Nt,
            m: 1568,
            n: 256,
            k: 2304,
        },
        GemmCase {
            name: "vgg16_conv3_dw",
            origin: "VGG16 conv3 weight grad",
            variant: Variant::Tn,
            m: 2304,
            n: 256,
            k: 1568,
        },
    ]
}

/// Median of per-call times (seconds). Calibrates an inner-loop count so
/// each sample lasts long enough to be measurable, then takes `reps`
/// samples.
fn time_median(reps: usize, target_s: f64, mut f: impl FnMut()) -> f64 {
    // Warm-up + calibration call.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let inner = ((target_s / once).ceil() as usize).clamp(1, 10_000);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..inner {
            f();
        }
        samples.push(t.elapsed().as_secs_f64() / inner as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct KernelRow {
    name: &'static str,
    origin: &'static str,
    variant: &'static str,
    m: usize,
    n: usize,
    k: usize,
    blocked_ms: f64,
    reference_ms: f64,
    speedup: f64,
    blocked_gflops: f64,
}

fn run_gemm_case(case: &GemmCase, reps: usize, target_s: f64) -> KernelRow {
    let (m, n, k) = (case.m, case.n, case.k);
    let mut rng = NebulaRng::seed(11);
    let fill = |r: usize, c: usize, rng: &mut NebulaRng| {
        Tensor::from_vec((0..r * c).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[r, c])
    };
    let (a, b) = match case.variant {
        Variant::Nn => (fill(m, k, &mut rng), fill(k, n, &mut rng)),
        Variant::Nt => (fill(m, k, &mut rng), fill(n, k, &mut rng)),
        Variant::Tn => (fill(k, m, &mut rng), fill(k, n, &mut rng)),
    };
    let mut out = Tensor::zeros(&[m, n]);
    let mut run = |use_reference: bool| {
        set_reference_kernels(use_reference);
        let t = time_median(reps, target_s, || match case.variant {
            Variant::Nn => a.matmul_into(&b, &mut out),
            Variant::Nt => a.matmul_nt_into(&b, &mut out),
            Variant::Tn => a.matmul_tn_into(&b, &mut out),
        });
        set_reference_kernels(false);
        t
    };
    let blocked_s = run(false);
    let reference_s = run(true);
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    KernelRow {
        name: case.name,
        origin: case.origin,
        variant: case.variant.label(),
        m,
        n,
        k,
        blocked_ms: blocked_s * 1e3,
        reference_ms: reference_s * 1e3,
        speedup: reference_s / blocked_s,
        blocked_gflops: flops / blocked_s / 1e9,
    }
}

fn toy_world(devices: usize, seed: u64) -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(devices, Partitioner::LabelSkew { m: 2 });
    SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), seed)
}

fn round_cfg(smoke: bool) -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = if smoke { 3 } else { 6 };
    cfg.rounds_per_step = 2;
    cfg.pretrain_epochs = if smoke { 1 } else { 2 };
    cfg.proxy_samples = if smoke { 100 } else { 400 };
    cfg
}

/// Runs `rounds` fault-free Nebula rounds and returns seconds per round.
fn time_rounds(rounds: usize, smoke: bool, use_reference: bool) -> f64 {
    set_reference_kernels(use_reference);
    let mut world = toy_world(if smoke { 6 } else { 10 }, 5);
    world.set_fault_plan(FaultPlan::none());
    let mut s = NebulaStrategy::new(round_cfg(smoke), 1);
    let mut rng = NebulaRng::seed(3);
    // One warm-up round outside the timer (first round pays pretraining).
    s.single_round(&mut world, &mut rng);
    let t = Instant::now();
    for _ in 0..rounds {
        s.single_round(&mut world, &mut rng);
    }
    let per_round = t.elapsed().as_secs_f64() / rounds as f64;
    set_reference_kernels(false);
    per_round
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    let (reps, target_s) = if smoke { (3, 0.01) } else { (5, 0.05) };

    println!("perf_suite mode={mode}");
    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>8} {:>8}",
        "kernel", "m x n x k", "blocked ms", "ref ms", "speedup", "GF/s"
    );
    let mut rows = Vec::new();
    for case in gemm_cases() {
        let row = run_gemm_case(&case, reps, target_s);
        println!(
            "{:<24} {:>10} {:>12.3} {:>12.3} {:>7.2}x {:>8.2}",
            row.name,
            format!("{}x{}x{}", row.m, row.n, row.k),
            row.blocked_ms,
            row.reference_ms,
            row.speedup,
            row.blocked_gflops
        );
        rows.push(row);
    }

    let kernel_json = {
        let mut items = Vec::new();
        for r in &rows {
            items.push(format!(
                concat!(
                    "    {{\"name\": \"{}\", \"origin\": \"{}\", \"variant\": \"{}\", ",
                    "\"m\": {}, \"n\": {}, \"k\": {}, \"blocked_ms\": {:.4}, ",
                    "\"reference_ms\": {:.4}, \"speedup\": {:.3}, \"blocked_gflops\": {:.3}}}"
                ),
                json_escape(r.name),
                json_escape(r.origin),
                r.variant,
                r.m,
                r.n,
                r.k,
                r.blocked_ms,
                r.reference_ms,
                r.speedup,
                r.blocked_gflops
            ));
        }
        format!(
            "{{\n  \"mode\": \"{mode}\",\n  \"reps\": {reps},\n  \"kernels\": [\n{}\n  ]\n}}\n",
            items.join(",\n")
        )
    };
    let kernels_path = repo_root().join("BENCH_KERNELS.json");
    std::fs::write(&kernels_path, kernel_json).expect("write BENCH_KERNELS.json");
    println!("wrote {}", kernels_path.display());

    // End-to-end round throughput, blocked vs reference kernels.
    let rounds = if smoke { 2 } else { 6 };
    println!("timing {rounds} fault-free rounds per kernel set...");
    let blocked_s = time_rounds(rounds, smoke, false);
    let reference_s = time_rounds(rounds, smoke, true);
    let speedup = reference_s / blocked_s;
    println!(
        "round loop: blocked {:.1} ms/round, reference {:.1} ms/round, speedup {:.2}x",
        blocked_s * 1e3,
        reference_s * 1e3,
        speedup
    );
    let round_json = format!(
        concat!(
            "{{\n  \"mode\": \"{}\",\n  \"rounds\": {},\n",
            "  \"blocked_ms_per_round\": {:.3},\n  \"reference_ms_per_round\": {:.3},\n",
            "  \"blocked_rounds_per_s\": {:.3},\n  \"speedup\": {:.3}\n}}\n"
        ),
        mode,
        rounds,
        blocked_s * 1e3,
        reference_s * 1e3,
        1.0 / blocked_s,
        speedup
    );
    let round_path = repo_root().join("BENCH_ROUND.json");
    std::fs::write(&round_path, round_json).expect("write BENCH_ROUND.json");
    println!("wrote {}", round_path.display());
}
