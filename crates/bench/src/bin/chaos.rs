//! Chaos kill/restart harness for the durability layer.
//!
//! For each seed: run a reference (uninterrupted) durable run, then kill
//! durable runs at randomized rounds and kill spots — optionally
//! corrupting the on-disk snapshot/journal files the way a torn write or
//! flaky disk would — resume, and assert the resumed trajectory is
//! **bit-identical** to the reference (final accuracy bits, comm totals,
//! fault accounting, and every journalled per-round record).
//!
//! Also drives a poisoned-state case where *every* snapshot is corrupted
//! and asserts recovery fails with a structured error — never a panic,
//! never a silent load of bad state.
//!
//! Writes an equivalence report to `results/chaos_report.json` and exits
//! nonzero if any case fails. `--quick` shrinks the matrix for CI.

use std::fs;
use std::path::{Path, PathBuf};

use nebula_bench::results_dir;
use nebula_data::drift::DriftKind;
use nebula_data::{DriftModel, PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_sim::resources::ResourceSampler;
use nebula_sim::strategy::{NebulaStrategy, StrategyConfig};
use nebula_sim::{
    ChaosControl, DurableOptions, ExperimentConfig, FaultPlan, KillSpot, RoundRecord, RunError, Runner,
    SimWorld,
};
use nebula_tensor::NebulaRng;
use serde::Serialize;

const TARGET: f32 = 1.01; // unreachable → every run goes to max_rounds
const PROBE_EVERY: usize = 2;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
enum Corruption {
    /// Kill only; disk state left exactly as the crash left it.
    None,
    /// Bit-flip inside the newest snapshot (torn snapshot write).
    SnapshotBitFlip,
    /// Truncate the journal mid-record (torn append).
    JournalTruncate,
    /// Bit-flip every snapshot — recovery must refuse, not panic.
    AllSnapshotsBitFlip,
}

#[derive(Clone, Debug, Serialize)]
struct CaseReport {
    seed: u64,
    kill_round: u64,
    kill_spot: String,
    corruption: Corruption,
    /// Resumed trajectory bit-identical to the uninterrupted run (or,
    /// for `AllSnapshotsBitFlip`, recovery refused with a structured
    /// error).
    pass: bool,
    detail: String,
}

#[derive(Debug, Serialize)]
struct ChaosReport {
    max_rounds: usize,
    seeds: Vec<u64>,
    cases: Vec<CaseReport>,
    passed: usize,
    failed: usize,
}

fn toy_world(world_seed: u64) -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(10, Partitioner::LabelSkew { m: 2 });
    let drift = Some(DriftModel::new(0.5, DriftKind::ClassShift { m: 2, group_seed: 9 }));
    let mut world = SimWorld::new(synth, spec, world_seed, drift, &ResourceSampler::default(), 5);
    world.set_fault_plan(FaultPlan {
        seed: 7,
        dropout_prob: 0.15,
        straggler_prob: 0.2,
        straggler_slowdown: 4.0,
        link_flake_prob: 0.1,
        bandwidth_collapse: 4.0,
        ..FaultPlan::none()
    });
    world
}

fn toy_cfg() -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = 4;
    cfg.rounds_per_step = 1;
    cfg.pretrain_epochs = 4;
    cfg.proxy_samples = 200;
    cfg
}

fn build(seed: u64) -> (NebulaStrategy, SimWorld) {
    (NebulaStrategy::new(toy_cfg(), seed), toy_world(9))
}

fn opts(dir: &Path) -> DurableOptions {
    let mut o = DurableOptions::new(dir);
    o.durability.snapshot_every = 2;
    o.durability.keep_snapshots = 2;
    o
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nebula-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn journal_records(dir: &Path) -> Result<Vec<RoundRecord>, String> {
    let contents = nebula_core::read_journal(&dir.join("rounds.nblj")).map_err(|e| e.to_string())?;
    contents.records.iter().map(|b| serde_json::from_slice(b).map_err(|e| e.to_string())).collect()
}

fn snapshot_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "nbrs"))
        .collect();
    files.sort();
    files
}

fn flip_byte(path: &Path, offset_from_end: usize) {
    let mut bytes = fs::read(path).unwrap();
    let n = bytes.len();
    let i = n - 1 - offset_from_end.min(n - 1);
    bytes[i] ^= 0x10;
    fs::write(path, bytes).unwrap();
}

fn corrupt(dir: &Path, kind: Corruption) {
    match kind {
        Corruption::None => {}
        Corruption::SnapshotBitFlip => {
            if let Some(newest) = snapshot_files(dir).last() {
                flip_byte(newest, 64);
            }
        }
        Corruption::JournalTruncate => {
            let jpath = dir.join("rounds.nblj");
            let bytes = fs::read(&jpath).unwrap();
            // Chop mid-record: drop the last 3 bytes (CRC torn off).
            fs::write(&jpath, &bytes[..bytes.len().saturating_sub(3)]).unwrap();
        }
        Corruption::AllSnapshotsBitFlip => {
            for snap in snapshot_files(dir) {
                flip_byte(&snap, 8);
            }
        }
    }
}

struct Reference {
    final_acc_bits: u32,
    rounds: usize,
    comm_total_bytes: u64,
    records: Vec<RoundRecord>,
}

fn reference_run(seed: u64, max_rounds: usize) -> Reference {
    let dir = work_dir(&format!("ref-{seed}"));
    let (mut s, mut world) = build(seed);
    let cfg = ExperimentConfig { eval_devices: 3, seed };
    let out = Runner::new(&mut world, &mut s)
        .config(cfg)
        .target(TARGET, max_rounds, PROBE_EVERY)
        .durable(opts(&dir).durability)
        .run()
        .expect("uninterrupted reference run");
    let records = journal_records(&dir).expect("reference journal");
    let _ = fs::remove_dir_all(&dir);
    Reference {
        final_acc_bits: out.final_accuracy.to_bits(),
        rounds: out.rounds as usize,
        comm_total_bytes: out.stats.comm.total_bytes(),
        records,
    }
}

/// Runs one kill → corrupt → resume case and reports equivalence.
fn run_case(
    seed: u64,
    max_rounds: usize,
    kill_round: u64,
    kill_spot: KillSpot,
    corruption: Corruption,
    reference: &Reference,
) -> CaseReport {
    let tag = format!("case-{seed}-{kill_round}-{kill_spot:?}-{corruption:?}");
    let dir = work_dir(&tag);
    let cfg = ExperimentConfig { eval_devices: 3, seed };
    let mut o = opts(&dir);
    o.chaos = ChaosControl { kill: Some((kill_round, kill_spot)) };

    let report = (|| -> Result<(bool, String), String> {
        let (mut s, mut world) = build(seed);
        match Runner::new(&mut world, &mut s)
            .config(cfg)
            .target(TARGET, max_rounds, PROBE_EVERY)
            .durable(o.durability.clone())
            .chaos(o.chaos)
            .run()
        {
            Err(RunError::Killed { round }) if round == kill_round => {}
            other => return Err(format!("expected kill at round {kill_round}, got {other:?}")),
        }
        corrupt(&dir, corruption);

        let (mut s, mut world) = build(seed);
        let resumed = Runner::new(&mut world, &mut s)
            .config(cfg)
            .target(TARGET, max_rounds, PROBE_EVERY)
            .durable(opts(&dir).durability)
            .resume()
            .run();

        if corruption == Corruption::AllSnapshotsBitFlip {
            return match resumed {
                Err(RunError::Durability(e)) => Ok((true, format!("recovery refused as expected: {e}"))),
                Err(other) => Err(format!("expected a durability error, got {other}")),
                Ok(_) => Err("resume silently loaded corrupt state".into()),
            };
        }

        let out = resumed.map_err(|e| format!("resume failed: {e}"))?;
        if out.final_accuracy.to_bits() != reference.final_acc_bits {
            return Err(format!(
                "final accuracy diverged: {:#010x} vs reference {:#010x}",
                out.final_accuracy.to_bits(),
                reference.final_acc_bits
            ));
        }
        if out.rounds as usize != reference.rounds {
            return Err(format!("round count diverged: {} vs {}", out.rounds, reference.rounds));
        }
        if out.stats.comm.total_bytes() != reference.comm_total_bytes {
            return Err(format!(
                "comm bytes diverged: {} vs {}",
                out.stats.comm.total_bytes(),
                reference.comm_total_bytes
            ));
        }
        let records = journal_records(&dir)?;
        for rec in &records {
            let base = reference
                .records
                .iter()
                .find(|r| r.index == rec.index)
                .ok_or_else(|| format!("reference journal missing round {}", rec.index))?;
            if base != rec {
                return Err(format!("round {} record diverged from reference", rec.index));
            }
        }
        Ok((true, format!("bit-identical over {} journalled rounds", records.len())))
    })();

    let _ = fs::remove_dir_all(&dir);
    let (pass, detail) = match report {
        Ok((pass, detail)) => (pass, detail),
        Err(detail) => (false, detail),
    };
    CaseReport { seed, kill_round, kill_spot: format!("{kill_spot:?}"), corruption, pass, detail }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (seeds, max_rounds): (Vec<u64>, usize) =
        if quick { (vec![41, 42, 43], 5) } else { (vec![41, 42, 43, 44, 45], 8) };

    let spots = [KillSpot::BeforeAppend, KillSpot::AfterAppend, KillSpot::AfterSnapshot];
    let corruptions = [
        Corruption::None,
        Corruption::SnapshotBitFlip,
        Corruption::JournalTruncate,
        Corruption::AllSnapshotsBitFlip,
    ];

    let mut cases = Vec::new();
    for &seed in &seeds {
        println!("seed {seed}: reference run ({max_rounds} rounds)…");
        let reference = reference_run(seed, max_rounds);
        let mut chaos_rng = NebulaRng::seed(seed ^ 0xCAFE);
        for (i, &corruption) in corruptions.iter().enumerate() {
            // Randomized kill round (≥ 3 so at least one post-offline
            // snapshot predates the kill and bit-flipping the newest
            // still leaves a fallback) and rotating kill spot.
            let kill_round = 3 + chaos_rng.below(max_rounds - 2) as u64;
            let kill_spot = spots[(i + seed as usize) % spots.len()];
            let case = run_case(seed, max_rounds, kill_round, kill_spot, corruption, &reference);
            println!(
                "  kill@{kill_round} {kill_spot:?} {corruption:?}: {} — {}",
                if case.pass { "PASS" } else { "FAIL" },
                case.detail
            );
            cases.push(case);
        }
    }

    let passed = cases.iter().filter(|c| c.pass).count();
    let failed = cases.len() - passed;
    let report = ChaosReport { max_rounds, seeds, cases, passed, failed };

    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("chaos_report.json");
    fs::write(&path, serde_json::to_string(&report).expect("serialize report")).expect("write report");
    println!("\n{passed} passed, {failed} failed — report at {}", path.display());

    if failed > 0 {
        std::process::exit(1);
    }
}
