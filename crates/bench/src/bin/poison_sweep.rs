//! **Poison sweep** — Byzantine robustness of the module-wise aggregators
//! (DESIGN.md §13 "Threat model & Byzantine robustness").
//!
//! Protocol: each grid point plants a seeded malicious cohort (attacker
//! fraction × persona) into an otherwise clean world, then runs the
//! standard one-step adaptation experiment with Nebula under each
//! aggregation rule. The attack scale (×8) deliberately slips under the
//! sanitize gate's 10× RMS-norm cutoff, so whatever survives is decided
//! by the aggregator alone: the importance-weighted mean averages the
//! poison in, while the coordinate median / trimmed mean / Krum bound the
//! cohort's influence.
//!
//! Emits one JSON record per run to `results/poison_sweep.jsonl` and a
//! summary to `BENCH_POISON.json` at the repo root.
//!
//! Run: `cargo run --release -p nebula-bench --bin poison_sweep
//! [--quick] [--check]` — `--check` exits nonzero unless the robust
//! aggregators beat the weighted mean under the 20% scaled-update attack.

use std::path::PathBuf;

use nebula_bench::{emit_record, print_row, Scale, TaskRow};
use nebula_core::RobustAggregator;
use nebula_sim::experiment::{run_adaptation_step, ExperimentConfig};
use nebula_sim::{AdversaryPlan, AttackPersona, FaultPlan, NebulaStrategy};
use serde::Serialize;

#[derive(Serialize)]
struct PoisonRecord {
    experiment: &'static str,
    task: String,
    aggregator: String,
    persona: String,
    attack_frac: f64,
    collude: bool,
    attack_scale: f32,
    accuracy_before: f32,
    /// Accuracy after adapting under attack; -1 when the model was
    /// poisoned to NaN (JSON has no NaN literal).
    accuracy_after: f32,
    poisoned: bool,
    comm_mib: f64,
    participated: u64,
    rejected: u64,
}

#[derive(Clone, Serialize)]
struct SummaryRow {
    aggregator: String,
    /// Accuracy with no attackers (frac 0).
    clean_acc: f32,
    /// Accuracy under the 20% scaled-update cohort.
    attacked_acc: f32,
    /// clean − attacked, in accuracy points (negative = improved).
    gap: f32,
}

#[derive(Serialize)]
struct PoisonReport {
    mode: String,
    task: String,
    attack_scale: f32,
    reference_attack: String,
    reference_frac: f64,
    summary: Vec<SummaryRow>,
    rows: Vec<PoisonRecord>,
}

fn persona_label(p: AttackPersona) -> &'static str {
    match p {
        AttackPersona::SignFlip => "sign_flip",
        AttackPersona::GaussianNoise => "gaussian_noise",
        AttackPersona::ScaledUpdate => "scaled_update",
        AttackPersona::GateGaming => "gate_gaming",
    }
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    let scale = Scale::from_args();
    let check = std::env::args().any(|a| a == "--check");
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = 42u64;
    let row = TaskRow::table1_rows()[1]; // CIFAR-10, m=2

    // Krum's `f` must cover the worst sweep point: 30% of a 25-device
    // round, rounded up. n = 25 ≥ 2·8 + 3 keeps the guarantee live. The
    // trimmed mean trims 30% per side for the same reason: a module's
    // contributor column can run hotter than the population's 20%
    // attacker fraction, and one surviving ×8-scaled value drags the
    // mean of the survivors.
    let krum_f = (0.3 * row.strategy_config(scale).devices_per_round as f64).ceil() as usize;
    let aggregators = [
        RobustAggregator::WeightedMean,
        RobustAggregator::CoordinateMedian,
        RobustAggregator::TrimmedMean { frac: 0.3 },
        RobustAggregator::Krum { f: krum_f },
    ];

    // (attacker fraction, persona): a fraction ramp under the reference
    // scaled-update attack plus a persona sweep at the reference fraction.
    let grid: [(f64, AttackPersona); 7] = [
        (0.0, AttackPersona::ScaledUpdate), // clean baseline per aggregator
        (0.1, AttackPersona::ScaledUpdate),
        (0.2, AttackPersona::ScaledUpdate),
        (0.3, AttackPersona::ScaledUpdate),
        (0.2, AttackPersona::SignFlip),
        (0.2, AttackPersona::GaussianNoise),
        (0.2, AttackPersona::GateGaming),
    ];
    let attack_scale = AdversaryPlan::none().scale;

    println!("Poison sweep: adaptation under a seeded Byzantine cohort\n");
    let widths = [16usize, 14, 6, 9, 9, 9, 7, 7];
    print_row(
        ["Aggregator", "Persona", "Frac", "AccBefore", "AccAfter", "Comm(MiB)", "Part", "Rej"]
            .map(String::from)
            .as_ref(),
        &widths,
    );

    let mut rows: Vec<PoisonRecord> = Vec::new();
    for &(frac, persona) in &grid {
        for &agg in &aggregators {
            let mut s = NebulaStrategy::new(row.strategy_config(scale), seed);
            s.set_aggregator(agg);
            let mut world = row.world(scale, None, seed);
            world.set_fault_plan(FaultPlan {
                adversary: AdversaryPlan {
                    seed: seed ^ 0xBAD,
                    frac,
                    persona,
                    collude: true,
                    ..AdversaryPlan::none()
                },
                ..FaultPlan::none()
            });
            let exp = ExperimentConfig { eval_devices: scale.eval_devices, seed };
            let out = run_adaptation_step(&mut s, &mut world, &exp);

            let poisoned = !out.accuracy_after.is_finite();
            let acc_after = if poisoned { -1.0 } else { out.accuracy_after };
            print_row(
                &[
                    agg.to_string(),
                    persona_label(persona).to_string(),
                    format!("{frac:.2}"),
                    format!("{:.3}", out.accuracy_before),
                    if poisoned { "NaN".to_string() } else { format!("{acc_after:.3}") },
                    format!("{:.1}", out.comm.total_mib()),
                    format!("{}", out.faults.participated),
                    format!("{}", out.faults.rejected),
                ],
                &widths,
            );
            let rec = PoisonRecord {
                experiment: "poison_sweep",
                task: row.task.name().to_string(),
                aggregator: agg.to_string(),
                persona: persona_label(persona).to_string(),
                attack_frac: frac,
                collude: true,
                attack_scale,
                accuracy_before: out.accuracy_before,
                accuracy_after: acc_after,
                poisoned,
                comm_mib: out.comm.total_mib(),
                participated: out.faults.participated,
                rejected: out.faults.rejected,
            };
            emit_record("poison_sweep", &rec);
            rows.push(rec);
        }
    }

    // Summary: clean vs 20%-scaled-update accuracy per aggregator.
    let acc_at = |agg: &str, frac: f64, persona: &str| {
        rows.iter()
            .find(|r| r.aggregator == agg && r.attack_frac == frac && r.persona == persona)
            .map(|r| r.accuracy_after)
            .expect("grid point present")
    };
    let summary: Vec<SummaryRow> = aggregators
        .iter()
        .map(|agg| {
            let name = agg.to_string();
            let clean_acc = acc_at(&name, 0.0, "scaled_update");
            let attacked_acc = acc_at(&name, 0.2, "scaled_update");
            SummaryRow { aggregator: name, clean_acc, attacked_acc, gap: clean_acc - attacked_acc }
        })
        .collect();

    println!("\n20% scaled-update attack, clean → attacked accuracy:");
    for s in &summary {
        println!("  {:<16} {:.3} → {:.3} (gap {:+.3})", s.aggregator, s.clean_acc, s.attacked_acc, s.gap);
    }

    let report = PoisonReport {
        mode: if quick { "quick" } else { "full" }.to_string(),
        task: row.task.name().to_string(),
        attack_scale,
        reference_attack: "scaled_update".to_string(),
        reference_frac: 0.2,
        summary: summary.clone(),
        rows,
    };
    let path = repo_root().join("BENCH_POISON.json");
    std::fs::write(&path, serde_json::to_string(&report).expect("serialize report"))
        .expect("write BENCH_POISON.json");
    println!("wrote {}", path.display());

    if check {
        let by = |name: &str| summary.iter().find(|s| s.aggregator.starts_with(name)).unwrap();
        let weighted = by("weighted_mean");
        let median = by("coord_median");
        let trimmed = by("trimmed_mean");
        let mut failures = Vec::new();
        for robust in [median, trimmed] {
            if robust.attacked_acc <= weighted.attacked_acc {
                failures.push(format!(
                    "{} ({:.3}) did not beat weighted_mean ({:.3}) under attack",
                    robust.aggregator, robust.attacked_acc, weighted.attacked_acc
                ));
            }
            if robust.gap > 0.02 {
                failures.push(format!(
                    "{} lost {:.3} accuracy under attack (allowed 0.02)",
                    robust.aggregator, robust.gap
                ));
            }
        }
        if weighted.gap <= 0.02 {
            failures.push(format!(
                "weighted_mean was expected to degrade under attack, gap only {:+.3}",
                weighted.gap
            ));
        }
        if failures.is_empty() {
            println!("check passed: robust aggregators hold, weighted mean degrades");
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
