//! **Figure 1** — the motivation study: impact of dynamic edge
//! environments.
//!
//! * (a) on-device accuracy per time slot under data drift (30% of local
//!   data replaced per slot) for four approaches: static cloud model,
//!   static edge model, locally-updated edge model, and edge model
//!   updated collaboratively across devices;
//! * (b) inference latency vs number of co-running processes for two
//!   mobile-CNN cost profiles (the paper uses MobileNetV2/ShuffleNetV2).
//!
//! Run: `cargo run --release -p nebula-bench --bin fig1_motivation [--quick]`

use nebula_bench::{emit_record, Scale, TaskRow};
use nebula_data::TaskPreset;
use nebula_sim::contention::contention_multiplier;
use nebula_sim::experiment::ExperimentConfig;
use nebula_sim::strategy::AdaptStrategy;
use nebula_sim::{
    AdaptiveNetStrategy, FedAvgStrategy, LocalAdaptStrategy, NoAdaptStrategy, RoundStats, Runner, SimWorld,
};
use nebula_tensor::NebulaRng;
use serde::Serialize;

#[derive(Serialize)]
struct SlotRecord {
    experiment: &'static str,
    panel: &'static str,
    series: String,
    x: f64,
    y: f64,
}

/// A frozen AdaptiveNet branch: picks a branch per device but never
/// adapts — the paper's "static edge model".
struct StaticEdge(AdaptiveNetStrategy);

impl AdaptStrategy for StaticEdge {
    fn name(&self) -> &'static str {
        "Static edge model"
    }
    fn offline(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) {
        self.0.offline(world, rng);
    }
    fn track(&mut self, ids: &[usize]) {
        self.0.track(ids);
    }
    fn adaptation_step(&mut self, _world: &mut SimWorld, _rng: &mut NebulaRng) -> RoundStats {
        RoundStats::default() // frozen: never adapts
    }
    fn device_accuracy(&mut self, world: &mut SimWorld, id: usize) -> f32 {
        self.0.device_accuracy(world, id)
    }
    fn footprint(&self, world: &SimWorld, id: usize) -> nebula_sim::strategy::Footprint {
        self.0.footprint(world, id)
    }
}

fn main() {
    let scale = Scale::from_args();
    let slots = if std::env::args().any(|a| a == "--quick") { 4 } else { 8 };
    let row = TaskRow { task: TaskPreset::Cifar100, skew_m: Some(10) };

    println!("Fig 1(a): accuracy per time slot under drift (CIFAR100-like, 30% replaced/slot)\n");
    let mut cfg = row.strategy_config(scale);
    cfg.rounds_per_step = 2; // light collaboration per slot

    let strategies: Vec<Box<dyn AdaptStrategy>> = vec![
        Box::new(NoAdaptStrategy::new(cfg.clone(), 42)),
        Box::new(StaticEdge(AdaptiveNetStrategy::new(cfg.clone(), 42))),
        Box::new(LocalAdaptStrategy::new(cfg.clone(), 42)),
        Box::new(FedAvgStrategy::new(cfg.clone(), 42)),
    ];
    let names = [
        "Static cloud model",
        "Static edge model",
        "Updated edge model (individual)",
        "Updated edge model (collaborative)",
    ];

    for (mut s, name) in strategies.into_iter().zip(names) {
        let mut world = row.world(scale, Some(0.3), 42);
        let out = Runner::new(&mut world, s.as_mut())
            .config(ExperimentConfig { eval_devices: scale.eval_devices.min(6), seed: 42 })
            .continuous(slots)
            .run()
            .expect("continuous run config is valid");
        let series: Vec<String> = out.accuracy_per_slot.iter().map(|a| format!("{:.3}", a)).collect();
        println!("  {name:<38}: {}", series.join("  "));
        for (slot, acc) in out.accuracy_per_slot.iter().enumerate() {
            emit_record(
                "fig1",
                &SlotRecord {
                    experiment: "fig1",
                    panel: "a_drift",
                    series: name.to_string(),
                    x: (slot + 1) as f64,
                    y: *acc as f64,
                },
            );
        }
    }

    // ---- (b) contention ---------------------------------------------------
    println!("\nFig 1(b): inference latency vs co-running processes (Jetson-class, ms)\n");
    // MobileNetV2 (~300 M MACs) and ShuffleNetV2 (~146 M MACs) profiles.
    let device_flops_per_sec = 5.4e9;
    for (model, flops) in [("MobileNetV2", 300_000_000u64), ("ShuffleNetV2", 146_000_000u64)] {
        let mut cols = Vec::new();
        for procs in 0..4usize {
            let ms = flops as f64 / device_flops_per_sec * 1e3 * contention_multiplier(procs);
            cols.push(format!("{}p:{ms:.1}", procs + 1));
            emit_record(
                "fig1",
                &SlotRecord {
                    experiment: "fig1",
                    panel: "b_contention",
                    series: model.to_string(),
                    x: (procs + 1) as f64,
                    y: ms,
                },
            );
        }
        println!("  {model:<14}: {}", cols.join("  "));
    }
    println!(
        "\n(slowdown at 4 co-running processes = {:.2}x, paper reports 5.06x)",
        contention_multiplier(3)
    );
}
