//! Internal calibration utility: times each strategy and prints accuracy
//! on selected rows. Not part of the paper reproduction set.
use nebula_bench::{Scale, TaskRow};
use nebula_data::TaskPreset;
use nebula_sim::experiment::{run_adaptation_step, ExperimentConfig};
use nebula_sim::*;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let only: Option<String> = std::env::args().skip(1).find(|a| !a.starts_with("--"));
    let mut rows = vec![
        TaskRow { task: TaskPreset::Har, skew_m: None },
        TaskRow { task: TaskPreset::Cifar10, skew_m: Some(2) },
        TaskRow { task: TaskPreset::Cifar100, skew_m: Some(10) },
        TaskRow { task: TaskPreset::SpeechCommands, skew_m: Some(5) },
    ];
    if let Some(f) = only {
        rows.retain(|r| {
            format!("{}-{}", r.task.name(), r.skew_m.unwrap_or(0)).to_lowercase().contains(&f.to_lowercase())
        });
    }
    for row in rows {
        println!("=== {} {} ===", row.task.name(), row.partition_label());
        let cfg = row.strategy_config(scale);
        let mk: Vec<(&str, Box<dyn AdaptStrategy>)> = vec![
            ("NA", Box::new(NoAdaptStrategy::new(cfg.clone(), 42))),
            ("LA", Box::new(LocalAdaptStrategy::new(cfg.clone(), 42))),
            ("AN", Box::new(AdaptiveNetStrategy::new(cfg.clone(), 42))),
            ("FA", Box::new(FedAvgStrategy::new(cfg.clone(), 42))),
            ("HFL", Box::new(HeteroFlStrategy::new(cfg.clone(), 42))),
            ("NEB", Box::new(NebulaStrategy::new(cfg.clone(), 42))),
        ];
        for (name, mut s) in mk {
            let t = Instant::now();
            let mut world = row.world(scale, None, 42);
            let out = run_adaptation_step(
                s.as_mut(),
                &mut world,
                &ExperimentConfig { eval_devices: scale.eval_devices, seed: 42 },
            );
            println!(
                "{name}: acc {:.2}%  comm {} KB  elapsed {:.1}s",
                out.accuracy_after * 100.0,
                out.comm_total_bytes / 1024,
                t.elapsed().as_secs_f64()
            );
        }
    }
}
