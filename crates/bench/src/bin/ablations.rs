//! **Ablations** of the design choices called out in DESIGN.md §5 (not a
//! paper figure — sanity studies backing the implementation decisions):
//!
//! 1. importance-weighted vs uniform module-wise aggregation;
//! 2. noisy vs deterministic top-k gating during pre-training;
//! 3. load-balancing loss weight λ sweep (module utilisation entropy);
//! 4. greedy vs exact multi-dimensional knapsack (quality and latency).
//!
//! Run: `cargo run --release -p nebula-bench --bin ablations [--quick]`

use nebula_bench::{emit_record, Scale, TaskRow};
use nebula_core::edge::update_bytes;
use nebula_core::{aggregate_module_wise_with, modular_config_for, EdgeClient, NebulaCloud, NebulaParams};
use nebula_data::{evaluate_accuracy, TaskPreset};
use nebula_modular::cost::CostModel;
use nebula_modular::ModularModel;
use nebula_opt::{solve_mdkp_exact, solve_mdkp_greedy, MdkpInstance};
use nebula_sim::experiment::pick_eval_ids;
use nebula_sim::SimWorld;
use nebula_tensor::NebulaRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct AblationRecord {
    experiment: &'static str,
    study: &'static str,
    variant: String,
    metric: &'static str,
    value: f64,
}

fn offline_cloud(
    world: &mut SimWorld,
    scale: Scale,
    noise: f32,
    lb: f32,
    rng: &mut NebulaRng,
) -> NebulaCloud {
    offline_cloud_for(world, TaskPreset::Cifar10, scale, noise, lb, rng)
}

fn offline_cloud_for(
    world: &mut SimWorld,
    task: TaskPreset,
    scale: Scale,
    noise: f32,
    lb: f32,
    rng: &mut NebulaRng,
) -> NebulaCloud {
    let mut mcfg = modular_config_for(task);
    mcfg.gate_noise_std = noise;
    mcfg.load_balance_weight = lb;
    let mut params = NebulaParams::default();
    params.pretrain.epochs = scale.pretrain_epochs;
    let mut cloud = NebulaCloud::new(mcfg, params, 42);
    let proxy = world.proxy(scale.proxy_samples);
    cloud.pretrain(&proxy, rng);
    let subtasks = world.subtask_datasets(150);
    cloud.enhance(&subtasks, rng);
    cloud
}

/// Runs `rounds` collaborative rounds with a choice of aggregation
/// weighting; returns mean eval-device accuracy.
fn rounds_with_aggregation(
    cloud: &mut NebulaCloud,
    world: &mut SimWorld,
    rounds: usize,
    use_importance: bool,
    rng: &mut NebulaRng,
) -> f32 {
    let mcfg = cloud.model().config().clone();
    for _ in 0..rounds {
        let ids = world.sample_participants(25);
        let mut updates = Vec::new();
        for &id in &ids {
            let (profile, local);
            {
                let d = &world.devices[id];
                profile = d.profile(cloud.cost_model());
                local = d.partition.data.clone();
            }
            let outcome = cloud.derive_for_data(&local, &profile, None);
            let payload = cloud.dispatch(&outcome.spec);
            let mut client = EdgeClient::from_payload(mcfg.clone(), &payload);
            let mut drng = rng.fork(id as u64);
            client.adapt(&local, 3, 16, 0.02, &mut drng);
            let u = client.make_update(&local);
            let _ = update_bytes(&u);
            updates.push(u);
        }
        aggregate_module_wise_with(cloud.model_mut(), &updates, use_importance);
    }
    // Personalized eval.
    let eval_ids = pick_eval_ids(world, 8);
    let mut sum = 0.0;
    for &id in &eval_ids {
        let (profile, local, test);
        {
            let d = &world.devices[id];
            profile = d.profile(cloud.cost_model());
            local = d.partition.data.clone();
            test = d.test.clone();
        }
        let outcome = cloud.derive_for_data(&local, &profile, None);
        let payload = cloud.dispatch(&outcome.spec);
        let mut client = EdgeClient::from_payload(mcfg.clone(), &payload);
        client.adapt(&local, 3, 16, 0.02, rng);
        sum += client.accuracy(&test);
    }
    sum / eval_ids.len() as f32
}

fn study_aggregation(scale: Scale) {
    // CIFAR-100 m=10: the hardest label-skew row — the CIFAR-10 rows
    // saturate at full scale and cannot separate the aggregation variants.
    println!("Ablation 1: importance-weighted vs uniform module aggregation\n");
    let row = TaskRow { task: TaskPreset::Cifar100, skew_m: Some(10) };
    for (variant, use_importance) in [("importance-weighted", true), ("uniform", false)] {
        let mut rng = NebulaRng::seed(42);
        let mut world = row.world(scale, None, 42);
        let mut cloud = offline_cloud_for(&mut world, row.task, scale, 0.3, 0.02, &mut rng);
        let acc = rounds_with_aggregation(
            &mut cloud,
            &mut world,
            scale.rounds_per_step.min(8),
            use_importance,
            &mut rng,
        );
        println!("  {variant:<22}: accuracy {acc:.3}");
        emit_record(
            "ablations",
            &AblationRecord {
                experiment: "ablations",
                study: "aggregation_weighting",
                variant: variant.into(),
                metric: "accuracy",
                value: acc as f64,
            },
        );
    }
}

fn study_gate_noise(scale: Scale) {
    println!("\nAblation 2: noisy vs deterministic top-k during pre-training\n");
    let row = TaskRow { task: TaskPreset::Cifar10, skew_m: Some(2) };
    for (variant, noise) in [("deterministic", 0.0f32), ("noisy σ=0.3", 0.3)] {
        let mut rng = NebulaRng::seed(42);
        let mut world = row.world(scale, None, 42);
        let mut cloud = offline_cloud(&mut world, scale, noise, 0.02, &mut rng);
        let test = world.proxy(800);
        let acc = evaluate_accuracy(cloud.model_mut(), &test, 64);
        let util = module_utilisation_entropy(cloud.model_mut(), &test);
        println!("  {variant:<16}: global acc {acc:.3}, gate-entropy {util:.3}");
        for (metric, value) in [("global_accuracy", acc as f64), ("gate_entropy", util)] {
            emit_record(
                "ablations",
                &AblationRecord {
                    experiment: "ablations",
                    study: "gate_noise",
                    variant: variant.into(),
                    metric,
                    value,
                },
            );
        }
    }
}

/// Mean (over layers) normalised entropy of the batch-mean gate
/// distribution: 1.0 = perfectly balanced module utilisation.
fn module_utilisation_entropy(model: &mut ModularModel, data: &nebula_data::Dataset) -> f64 {
    let imp = model.importance(data.features());
    let mut total = 0.0;
    for layer in &imp {
        let n = layer.len() as f64;
        let h: f64 = layer
            .iter()
            .map(|&p| {
                let p = p as f64;
                if p > 0.0 {
                    -p * p.ln()
                } else {
                    0.0
                }
            })
            .sum();
        total += h / n.ln();
    }
    total / imp.len() as f64
}

fn study_lb_weight(scale: Scale) {
    println!("\nAblation 3: load-balancing weight λ\n");
    let row = TaskRow { task: TaskPreset::Cifar10, skew_m: Some(2) };
    for lambda in [0.0f32, 0.02, 0.1] {
        let mut rng = NebulaRng::seed(42);
        let mut world = row.world(scale, None, 42);
        let mut cloud = offline_cloud(&mut world, scale, 0.3, lambda, &mut rng);
        let test = world.proxy(800);
        let acc = evaluate_accuracy(cloud.model_mut(), &test, 64);
        let util = module_utilisation_entropy(cloud.model_mut(), &test);
        println!("  λ = {lambda:<5}: global acc {acc:.3}, gate-entropy {util:.3}");
        for (metric, value) in [("global_accuracy", acc as f64), ("gate_entropy", util)] {
            emit_record(
                "ablations",
                &AblationRecord {
                    experiment: "ablations",
                    study: "lb_weight",
                    variant: format!("lambda={lambda}"),
                    metric,
                    value,
                },
            );
        }
    }
}

fn study_knapsack(_scale: Scale) {
    println!("\nAblation 4: greedy vs exact knapsack in sub-model derivation\n");
    let mcfg = modular_config_for(TaskPreset::Cifar10);
    let cost = CostModel::new(mcfg.clone());
    let full = cost.full_model();
    let mut rng = NebulaRng::seed(7);

    let mut ratio_sum = 0.0;
    let trials = 20;
    let mut greedy_ns = 0u128;
    let mut exact_ns = 0u128;
    for _ in 0..trials {
        // Random importance over one layer's modules (exact solver caps at
        // 30 items, so use a 16-module instance as in the ResNet18 config).
        let values: Vec<f32> = (0..16).map(|_| rng.uniform_f32(0.0, 1.0)).collect();
        let module_cost = cost.module(0, 0);
        let costs: Vec<Vec<f32>> =
            (0..16).map(|_| vec![module_cost.param_bytes() as f32, module_cost.flops as f32]).collect();
        let limits = vec![full.comm_bytes as f32 * 0.08, full.flops as f32 * 0.08];
        let inst = MdkpInstance { values, costs, limits };

        let t0 = Instant::now();
        let g = solve_mdkp_greedy(&inst);
        greedy_ns += t0.elapsed().as_nanos();
        let t1 = Instant::now();
        let e = solve_mdkp_exact(&inst);
        exact_ns += t1.elapsed().as_nanos();
        let gv = inst.value(&g);
        let ev = inst.value(&e).max(1e-9);
        ratio_sum += (gv / ev) as f64;
    }
    let quality = ratio_sum / trials as f64;
    println!("  greedy/exact value ratio: {quality:.4}");
    println!(
        "  greedy {:.1} µs/solve, exact {:.1} µs/solve",
        greedy_ns as f64 / trials as f64 / 1e3,
        exact_ns as f64 / trials as f64 / 1e3
    );
    emit_record(
        "ablations",
        &AblationRecord {
            experiment: "ablations",
            study: "knapsack",
            variant: "greedy_vs_exact".into(),
            metric: "value_ratio",
            value: quality,
        },
    );
}

fn study_unified_selector(_scale: Scale) {
    println!("\nAblation 5: unified one-shot selector vs sequential per-layer routing\n");
    // §4.2's design argument: the unified selector is decoupled from
    // module execution, so a device can score module importance from its
    // local data *without running the backbone*. A sequential selector
    // (gates fed by each layer's actual input) would require a full
    // forward pass per sample. Measure both costs on the ResNet18-shaped
    // configuration.
    use nebula_nn::{Layer, Mode};
    use nebula_tensor::Tensor;

    let mcfg = modular_config_for(TaskPreset::Cifar10);
    let mut model = ModularModel::new(mcfg.clone(), 42);
    let mut rng = NebulaRng::seed(9);
    let x = Tensor::from_vec(
        (0..256 * mcfg.input_dim).map(|_| rng.normal_f32(0.0, 1.0)).collect(),
        &[256, mcfg.input_dim],
    );

    let reps = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = model.importance(&x); // unified: selector-only forward
    }
    let unified_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

    let t1 = Instant::now();
    for _ in 0..reps {
        let _ = model.forward(&x, Mode::Eval); // sequential would need this
    }
    let sequential_ms = t1.elapsed().as_secs_f64() * 1e3 / reps as f64;

    println!("  unified selector (importance scoring): {unified_ms:.2} ms / 256 samples");
    println!("  sequential routing (full forward):     {sequential_ms:.2} ms / 256 samples");
    println!("  one-shot speedup: {:.1}x", sequential_ms / unified_ms);
    emit_record(
        "ablations",
        &AblationRecord {
            experiment: "ablations",
            study: "unified_selector",
            variant: "speedup_vs_sequential".into(),
            metric: "latency_ratio",
            value: sequential_ms / unified_ms,
        },
    );
}

fn main() {
    let scale = Scale::from_args();
    study_aggregation(scale);
    study_gate_noise(scale);
    study_lb_weight(scale);
    study_knapsack(scale);
    study_unified_selector(scale);
}
