//! **Figure 7** — communication cost during model adaptation for the
//! edge-cloud collaborative strategies (FedAvg, HeteroFL, Nebula), over
//! the four tasks × two data partitions.
//!
//! Protocol: every system pre-trains offline, then the environment
//! shifts (70% of every device's data is replaced by a new context /
//! class group — the "newly collected data" of §6.2). The system then
//! adapts round by round; we record accuracy and cumulative bytes per
//! round and report the bytes needed to reach 98% of the system's own
//! converged accuracy. Slow convergence (the paper measures 1.83× extra
//! rounds for HeteroFL) therefore shows up as extra communication.
//!
//! Run: `cargo run --release -p nebula-bench --bin fig7_comm_cost [--quick]`

use nebula_bench::{emit_record, print_row, Scale, TaskRow};
use nebula_sim::experiment::{mean_accuracy, pick_eval_ids, ExperimentConfig};
use nebula_sim::network::CommTracker;
use nebula_sim::{AdaptStrategy, FedAvgStrategy, HeteroFlStrategy, NebulaStrategy};
use nebula_tensor::NebulaRng;
use serde::Serialize;

#[derive(Serialize)]
struct CommRecord {
    experiment: &'static str,
    task: String,
    partition: String,
    strategy: String,
    rounds_to_adapt: usize,
    comm_mib: f64,
    adapted_accuracy: f32,
    converged_accuracy: f32,
}

fn main() {
    let scale = Scale::from_args();
    let max_rounds = scale.rounds_per_step + scale.rounds_per_step / 2;
    let seed = 42u64;

    println!("Fig 7: communication cost to adapt to a new environment (MiB)\n");
    let widths = [14usize, 10, 9, 12, 9, 9, 9];
    print_row(
        ["Task", "Partition", "Strategy", "Comm(MiB)", "Rounds", "AdaptAcc", "ConvAcc"]
            .map(String::from)
            .as_ref(),
        &widths,
    );

    for row in TaskRow::table1_rows() {
        let mut cfg = row.strategy_config(scale);
        cfg.rounds_per_step = 1; // step one round at a time
        let exp = ExperimentConfig { eval_devices: scale.eval_devices, seed };

        let strategies: Vec<Box<dyn AdaptStrategy>> = vec![
            Box::new(FedAvgStrategy::new(cfg.clone(), seed)),
            Box::new(HeteroFlStrategy::new(cfg.clone(), seed)),
            Box::new(NebulaStrategy::new(cfg.clone(), seed)),
        ];
        for mut s in strategies {
            // Identical world per strategy: offline on the original
            // environments, then a hard shift before adaptation begins.
            let mut world = row.world(scale, Some(0.7), seed);
            let mut rng = NebulaRng::seed(seed ^ 0xF167);
            let eval_ids = pick_eval_ids(&world, exp.eval_devices);
            s.track(&eval_ids);
            s.offline(&mut world, &mut rng);
            world.advance_slot();

            // Round-by-round trajectory.
            let mut comm = CommTracker::new();
            let mut trajectory: Vec<(f32, u64)> = Vec::with_capacity(max_rounds);
            for _ in 0..max_rounds {
                let report = s.adaptation_step(&mut world, &mut rng);
                comm.merge(&report.comm);
                let acc = mean_accuracy(s.as_mut(), &mut world, &eval_ids);
                trajectory.push((acc, comm.total_bytes()));
            }
            let converged = trajectory.iter().map(|&(a, _)| a).fold(0.0f32, f32::max);
            let target = converged * 0.98;
            let (rounds, adapted_acc, bytes) = trajectory
                .iter()
                .enumerate()
                .find(|(_, &(a, _))| a >= target)
                .map(|(i, &(a, b))| (i + 1, a, b))
                .unwrap_or((max_rounds, converged, comm.total_bytes()));

            let mib = bytes as f64 / (1024.0 * 1024.0);
            print_row(
                &[
                    row.task.name().to_string(),
                    row.partition_label(),
                    s.name().to_string(),
                    format!("{mib:.1}"),
                    format!("{rounds}"),
                    format!("{adapted_acc:.3}"),
                    format!("{converged:.3}"),
                ],
                &widths,
            );
            emit_record(
                "fig7",
                &CommRecord {
                    experiment: "fig7",
                    task: row.task.name().to_string(),
                    partition: row.partition_label(),
                    strategy: s.name().to_string(),
                    rounds_to_adapt: rounds,
                    comm_mib: mib,
                    adapted_accuracy: adapted_acc,
                    converged_accuracy: converged,
                },
            );
        }
    }
}
