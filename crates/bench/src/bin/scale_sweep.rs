//! Population-scale sweep of the sharded round engine (DESIGN.md §14):
//! populations × shard counts → per-case round timings, throughput and
//! peak RSS, written to `results/scale_sweep.jsonl` (one record per case)
//! and `BENCH_SCALE.json` (summary + gate verdicts) at the repo root.
//!
//! Rounds run in [`RoundMode::Synthetic`]: the full derive → dispatch →
//! fold → absorb engine with analytic local steps, so 10^5–10^6-device
//! populations fit a laptop. Numbers are engine throughput, not learning
//! curves.
//!
//! Two clocks are reported per case:
//!
//! * **Simulated round time** — the synchronous-round model: device
//!   compute in parallel, uploads serialized at each aggregation point's
//!   ingress, partials over the backhaul. This is where hierarchy wins
//!   (each edge serializes 1/S of the cohort), and it is
//!   machine-independent.
//! * **Host wall-clock** — what this machine took; improves with shard
//!   parallelism only when cores are available.
//!
//! Usage: `scale_sweep [--quick] [--check]`.
//! `--quick` shrinks the sweep to the 10^3/10^4 tiers for CI.
//! `--check` exits nonzero unless (a) the simulated S=8 round beats S=1
//! by ≥3× on every tier, (b) peak RSS stays flat (≤4×) from the smallest
//! to the largest population, and (c) — only when ≥4 cores are available —
//! S=8 also improves host wall-clock by ≥1.5×.

use nebula_core::RobustAggregator;
use nebula_modular::ModularConfig;
use nebula_sim::{FoldPlan, RoundMode, ShardConfig, ShardedWorld};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// One (population, shards) case of the sweep.
#[derive(Clone, Debug, Serialize)]
struct CaseRecord {
    population: usize,
    shards: usize,
    devices_per_round: usize,
    rounds: usize,
    /// Mean simulated synchronous round time, ms.
    sim_round_ms: f64,
    /// Mean slowest-device compute+link share of the simulated round, ms.
    sim_max_device_ms: f64,
    /// Mean ingress-serialization share, ms.
    sim_ingress_ms: f64,
    /// Mean backhaul + cloud-ingress share, ms (zero when flat).
    sim_backhaul_ms: f64,
    /// Simulated round throughput: sampled devices / simulated second.
    sim_devices_per_sec: f64,
    /// Mean host wall-clock per round, ms.
    wall_round_ms: f64,
    /// Host throughput: sampled devices / wall second.
    wall_devices_per_sec: f64,
    /// Device→edge upload bytes per round.
    device_upload_bytes: u64,
    /// Edge→cloud partial bytes per round (zero when flat).
    partial_upload_bytes: u64,
    /// Process peak RSS (VmHWM) after the case, bytes. Monotone across
    /// the process lifetime — cases run smallest population first, so
    /// growth between tiers is attributable to the tier.
    peak_rss_bytes: u64,
}

#[derive(Serialize)]
struct Summary {
    suite: String,
    mode: String,
    cores: usize,
    cases: Vec<CaseRecord>,
    /// Simulated S-max vs S=1 round-time speedup per population tier.
    sim_speedup_by_population: Vec<Speedup>,
    /// Host wall-clock speedup per tier (meaningful only with >1 core).
    wall_speedup_by_population: Vec<Speedup>,
    /// peak RSS(largest population) / peak RSS(smallest population).
    rss_growth: f64,
    check: Option<CheckVerdict>,
}

/// S-max vs S=1 round-time ratio at one population tier.
#[derive(Clone, Copy, Debug, Serialize)]
struct Speedup {
    population: usize,
    speedup: f64,
}

#[derive(Serialize)]
struct CheckVerdict {
    passed: bool,
    failures: Vec<String>,
}

/// Reads a VmHWM/VmRSS-style line (kB) from /proc/self/status; 0 when the
/// platform has no procfs (the sweep still runs, the RSS gate degrades).
fn proc_status_kb(key: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find(|l| l.starts_with(key))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Builds one sweep world. The model is the paper's toy modular config —
/// the sweep tracks engine scaling, not model capacity.
fn world(population: usize, k: usize, shards: usize) -> ShardedWorld {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.0;
    let mut cfg = ShardConfig::new(population, k, shards);
    // Enough cells that every shard gets real work at the small tiers,
    // without drowning the big tiers in per-cell groups. Cell layout is a
    // per-tier constant, so S=1 vs S=8 at a tier stays comparable (and
    // PerCell keeps them bit-identical).
    cfg.spec.cell_size = (population / 128).clamp(32, 8192);
    cfg.fold = FoldPlan::PerCell;
    cfg.mode = RoundMode::Synthetic;
    cfg.aggregator = RobustAggregator::WeightedMean;
    ShardedWorld::new(modular, cfg, 42).expect("sweep config is valid")
}

/// Sampled cohort per round for a population tier: 1% of the population,
/// clamped so ingress serialization (the term hierarchy attacks) carries
/// the small tiers and the 10^6 tier stays tractable.
fn cohort(population: usize) -> usize {
    (population / 100).clamp(400, 10_000).min(population)
}

fn run_case(population: usize, shards: usize, rounds: usize) -> CaseRecord {
    let k = cohort(population);
    let mut w = world(population, k, shards);
    let mut sim_round_ms = 0.0;
    let mut sim_max_device_ms = 0.0;
    let mut sim_ingress_ms = 0.0;
    let mut sim_backhaul_ms = 0.0;
    let mut device_upload_bytes = 0;
    let mut partial_upload_bytes = 0;
    let mut sampled = 0usize;
    let start = Instant::now();
    for _ in 0..rounds {
        let r = w.run_round();
        sim_round_ms += r.sim_round_ms;
        sim_max_device_ms += r.sim_max_device_ms;
        sim_ingress_ms += r.sim_ingress_ms;
        sim_backhaul_ms += r.sim_backhaul_ms;
        device_upload_bytes = r.device_upload_bytes;
        partial_upload_bytes = r.partial_upload_bytes;
        sampled = r.sampled;
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3 / rounds as f64;
    let n = rounds as f64;
    let (sim_round_ms, sim_max_device_ms, sim_ingress_ms, sim_backhaul_ms) =
        (sim_round_ms / n, sim_max_device_ms / n, sim_ingress_ms / n, sim_backhaul_ms / n);
    CaseRecord {
        population,
        shards,
        devices_per_round: sampled,
        rounds,
        sim_round_ms,
        sim_max_device_ms,
        sim_ingress_ms,
        sim_backhaul_ms,
        sim_devices_per_sec: sampled as f64 / (sim_round_ms / 1e3),
        wall_round_ms: wall_ms,
        wall_devices_per_sec: sampled as f64 / (wall_ms / 1e3),
        device_upload_bytes,
        partial_upload_bytes,
        peak_rss_bytes: proc_status_kb("VmHWM") * 1024,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let mode = if quick { "quick" } else { "full" };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Smallest population first: VmHWM is monotone, so per-tier readings
    // attribute growth to the tier that caused it.
    let populations: &[usize] = if quick { &[1_000, 10_000] } else { &[1_000, 10_000, 100_000, 1_000_000] };
    let shard_counts: &[usize] = if quick { &[1, 8] } else { &[1, 4, 8] };
    let rounds = if quick { 2 } else { 3 };

    let mut cases = Vec::new();
    for &pop in populations {
        for &s in shard_counts {
            let rec = run_case(pop, s, rounds);
            println!(
                "pop {:>9}  S={}  sim {:>10.1} ms/round ({:>9.0} dev/s)  wall {:>8.1} ms  peak RSS {:>5} MB",
                rec.population,
                rec.shards,
                rec.sim_round_ms,
                rec.sim_devices_per_sec,
                rec.wall_round_ms,
                rec.peak_rss_bytes / (1024 * 1024),
            );
            cases.push(rec);
        }
    }

    let smax = *shard_counts.iter().max().unwrap();
    let speedup = |pop: usize, f: fn(&CaseRecord) -> f64| -> Option<f64> {
        let flat = cases.iter().find(|c| c.population == pop && c.shards == 1)?;
        let hier = cases.iter().find(|c| c.population == pop && c.shards == smax)?;
        Some(f(flat) / f(hier))
    };
    let sim_speedups: Vec<Speedup> = populations
        .iter()
        .filter_map(|&p| speedup(p, |c| c.sim_round_ms).map(|s| Speedup { population: p, speedup: s }))
        .collect();
    let wall_speedups: Vec<Speedup> = populations
        .iter()
        .filter_map(|&p| speedup(p, |c| c.wall_round_ms).map(|s| Speedup { population: p, speedup: s }))
        .collect();
    let rss_growth = {
        let lo = cases.iter().filter(|c| c.population == populations[0]).map(|c| c.peak_rss_bytes).max();
        let hi = cases
            .iter()
            .filter(|c| c.population == *populations.last().unwrap())
            .map(|c| c.peak_rss_bytes)
            .max();
        match (lo, hi) {
            (Some(lo), Some(hi)) if lo > 0 => hi as f64 / lo as f64,
            _ => 1.0,
        }
    };

    let verdict = if check {
        let mut failures = Vec::new();
        for sp in &sim_speedups {
            if sp.speedup < 3.0 {
                failures.push(format!(
                    "simulated S={smax} vs S=1 speedup at population {} is {:.2}x (< 3x)",
                    sp.population, sp.speedup
                ));
            }
        }
        if rss_growth > 4.0 {
            failures.push(format!(
                "peak RSS grew {rss_growth:.2}x from population {} to {} (> 4x: memory is not flat)",
                populations[0],
                populations.last().unwrap()
            ));
        }
        if cores >= 4 {
            for sp in &wall_speedups {
                if sp.speedup < 1.5 {
                    failures.push(format!(
                        "host wall-clock S={smax} vs S=1 speedup at population {} is {:.2}x (< 1.5x on {cores} cores)",
                        sp.population, sp.speedup
                    ));
                }
            }
        } else {
            println!("note: {cores} core(s) available — wall-clock speedup gate skipped (simulated gate still applies)");
        }
        Some(CheckVerdict { passed: failures.is_empty(), failures })
    } else {
        None
    };

    let root = repo_root();
    let jsonl: String = cases
        .iter()
        .map(|c| serde_json::to_string(c).expect("case serializes"))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    let jsonl_path = root.join("results/scale_sweep.jsonl");
    std::fs::write(&jsonl_path, jsonl).expect("write results/scale_sweep.jsonl");
    println!("wrote {}", jsonl_path.display());

    let summary = Summary {
        suite: "scale_sweep".into(),
        mode: mode.into(),
        cores,
        cases: cases.clone(),
        sim_speedup_by_population: sim_speedups,
        wall_speedup_by_population: wall_speedups,
        rss_growth,
        check: verdict,
    };
    let json_path = root.join("BENCH_SCALE.json");
    std::fs::write(&json_path, serde_json::to_string(&summary).expect("summary serializes"))
        .expect("write BENCH_SCALE.json");
    println!("wrote {}", json_path.display());

    if let Some(v) = &summary.check {
        if v.passed {
            println!("check passed: hierarchy speeds up simulated rounds, memory stays flat");
        } else {
            for f in &v.failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
